#!/usr/bin/env python3
"""Repo-convention linter: mechanical rules clang-tidy does not cover.

Rules (each maps to a documented convention, see DESIGN.md §10):
  naked-new        No `new` / `delete` expressions outside the allowlist —
                   ownership goes through make_unique / make_shared /
                   containers.
  nodiscard-status util::Status and util::StatusOr must stay [[nodiscard]]
                   so an ignored Status is a compiler warning (-Werror in
                   CI), and explicit discards must be spelled `(void)`.
  discarded-ok     `expr.ok();` as a full statement checks a Status and
                   throws the answer away — always a bug.
  no-null-macro    `NULL` is banned; use nullptr.
  no-using-std     `using namespace std;` is banned everywhere.
  thread-detach    std::thread::detach() is banned — every thread in the
                   codebase is joined (TSan-enforced shutdown discipline).
  adhoc-timing     std::chrono::*_clock::now() is banned in src/ outside
                   src/util/ and src/obs/ — timing goes through
                   cspm::WallTimer so every measurement (including the obs
                   histograms) reads the same steady clock.

Usage: ci/lint_conventions.py [root]   (exit 1 on any finding)
"""

import pathlib
import re
import sys

LINT_DIRS = ("src", "tests", "tools", "bench", "examples", "fuzz")
EXTENSIONS = {".cc", ".cpp", ".h", ".hpp"}

def adhoc_timing_scope(path: pathlib.Path) -> bool:
    """src/ only, minus the two layers that own the clock: util/ defines
    WallTimer and obs/ builds the histograms on it."""
    posix = path.as_posix()
    if "src/" not in posix:
        return False
    tail = posix.rsplit("src/", 1)[1]
    return not (tail.startswith("util/") or tail.startswith("obs/"))


# (rule, regex, explanation, scope). Patterns are applied line-wise after
# comment and string stripping, so prose and string literals cannot trip
# them. `scope` is None (everywhere) or a path predicate.
RULES = [
    (
        "naked-new",
        re.compile(r"(?<![:\w])new\s+[A-Za-z_:<]"),
        "naked `new`: use std::make_unique / std::make_shared or a container",
        None,
    ),
    (
        "naked-new",
        re.compile(r"(?<![:\w])delete(\[\])?\s+[A-Za-z_*]"),
        "naked `delete`: owning raw pointers are banned",
        None,
    ),
    (
        "discarded-ok",
        re.compile(r"^\s*[A-Za-z_][\w.\->()\[\]]*\.ok\(\)\s*;\s*$"),
        "`.ok()` result discarded: handle the Status or drop the call",
        None,
    ),
    (
        "no-null-macro",
        re.compile(r"(?<![\w.])NULL(?![\w])"),
        "NULL: use nullptr",
        None,
    ),
    (
        "no-using-std",
        re.compile(r"^\s*using\s+namespace\s+std\s*;"),
        "`using namespace std` is banned",
        None,
    ),
    (
        "thread-detach",
        re.compile(r"\.detach\s*\(\s*\)"),
        "std::thread::detach(): every thread must be joined",
        None,
    ),
    (
        "adhoc-timing",
        re.compile(r"std::chrono::\w+_clock::now"),
        "ad-hoc clock read: use cspm::WallTimer (util/timer.h) so every "
        "measurement shares the obs histograms' steady clock",
        adhoc_timing_scope,
    ),
]

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)*'")


def strip_noise(line: str) -> str:
    """Removes string/char literals and // comments (coarse but effective:
    the codebase bans multi-line /* */ comments by clang-format idiom)."""
    line = STRING_RE.sub('""', line)
    line = CHAR_RE.sub("''", line)
    return COMMENT_RE.sub("", line)


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    in_block_comment = False
    for lineno, raw in enumerate(
        path.read_text(encoding="utf-8", errors="replace").splitlines(), 1
    ):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2 :]
        line = strip_noise(line)
        for rule, pattern, message, scope in RULES:
            if scope is not None and not scope(path):
                continue
            # An inline `lint:allow <rule>` comment documents a deliberate
            # exception (e.g. a leaky bench singleton) without widening the
            # rule for everyone else.
            if f"lint:allow {rule}" in raw:
                continue
            if pattern.search(line):
                findings.append(f"{path}:{lineno}: [{rule}] {message}")
    return findings


def check_status_nodiscard(root: pathlib.Path) -> list[str]:
    """The whole ignored-Status story hangs off two attributes — make their
    removal a lint failure, not a silent regression."""
    status_h = root / "src" / "util" / "status.h"
    text = status_h.read_text(encoding="utf-8")
    findings = []
    for cls in ("Status", "StatusOr"):
        pattern = re.compile(
            r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b(?!Or)"
        )
        if not pattern.search(text):
            findings.append(
                f"{status_h}: [nodiscard-status] `class {cls}` lost its "
                "[[nodiscard]] attribute"
            )
    return findings


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    findings = check_status_nodiscard(root)
    for top in LINT_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS:
                findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} convention violation(s).", file=sys.stderr)
        return 1
    print("lint_conventions: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
