#!/usr/bin/env python3
"""Keeps docs/METRICS.md and the registered metric surface in agreement.

docs/METRICS.md claims to list every metric the process can emit. This
check makes that claim enforceable, in both directions:

  source -> doc   Every literal metric name registered in src/ + tools/
                  (obs::GetCounter("..."), GetGauge, GetHistogram) must
                  have a doc row, and the row's type column must match
                  the registration call.
  doc -> source   Every concrete doc row (no '*') must still name a
                  metric registered somewhere in the source — rows must
                  be deleted with the code that fed them.
  live -> doc     With --live SNAPSHOT.json (a SnapshotJson() capture,
                  e.g. `cspm_client <addr> metrics`), every key the
                  process actually emitted must match a doc row — exact
                  or glob — in the section the row's type names.
  doc -> live     Every concrete `net.*` doc row must be present in the
                  live snapshot: the server registers its whole surface
                  eagerly at startup (RegisterNetMetrics), so an absent
                  name means the doc names a metric the server no longer
                  registers. Only net.* is held to this — other
                  subsystems register lazily, so their absence from one
                  snapshot proves nothing.

Doc rows are markdown table lines whose first cell is a backticked name:
`| `net.frames_read` | counter | ... |`. Names ending in '*' are
fnmatch globs for dynamically built families (phase.mine*, shell.cmd.*).
Dynamic registrations in the source (name built at runtime, e.g.
"shell.cmd." + cmd) are invisible to the source scrape and are covered
by the live direction instead.

Usage: ci/check_metrics_doc.py [--root DIR] [--live SNAPSHOT.json]
Exit 1 on any disagreement, listing every finding.
"""

import argparse
import fnmatch
import json
import pathlib
import re
import sys

SOURCE_DIRS = ("src", "tools")
EXTENSIONS = {".cc", ".h"}

GET_RE = re.compile(r'Get(Counter|Gauge|Histogram)\("([^"]+)"\)')
DOC_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*(\w+)\s*\|")
KIND_BY_CALL = {"Counter": "counter", "Gauge": "gauge",
                "Histogram": "histogram"}
SECTION_BY_KIND = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}


def scrape_source(root):
    """{name: type} for every full-literal registration in src/ + tools/."""
    found = {}
    for top in SOURCE_DIRS:
        for path in sorted((root / top).rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            for call, name in GET_RE.findall(path.read_text()):
                found[name] = KIND_BY_CALL[call]
    return found


def parse_doc(doc_path):
    """({exact_name: type}, [(glob, type)]) from the METRICS.md tables."""
    exact, globs = {}, []
    for line in doc_path.read_text().splitlines():
        m = DOC_ROW_RE.match(line)
        if m is None:
            continue
        name, kind = m.group(1), m.group(2).lower()
        if kind not in SECTION_BY_KIND:
            continue  # table header rows ("| name | type |")
        if "*" in name:
            globs.append((name, kind))
        else:
            exact[name] = kind
    return exact, globs


def doc_kind_for(name, exact, globs):
    if name in exact:
        return exact[name]
    for pattern, kind in globs:
        if fnmatch.fnmatchcase(name, pattern):
            return kind
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".", type=pathlib.Path)
    parser.add_argument("--live", type=pathlib.Path,
                        help="SnapshotJson() capture to cross-check")
    args = parser.parse_args()

    doc_path = args.root / "docs" / "METRICS.md"
    exact, globs = parse_doc(doc_path)
    source = scrape_source(args.root)
    problems = []

    # source -> doc
    for name, kind in sorted(source.items()):
        doc_kind = doc_kind_for(name, exact, globs)
        if doc_kind is None:
            problems.append(
                f"undocumented metric: {kind} \"{name}\" is registered in "
                f"the source but has no docs/METRICS.md row")
        elif doc_kind != kind:
            problems.append(
                f"type mismatch: \"{name}\" is a {kind} in the source but "
                f"documented as a {doc_kind}")

    # doc -> source
    for name, kind in sorted(exact.items()):
        if name not in source:
            problems.append(
                f"stale doc row: \"{name}\" is documented but no "
                f"Get{kind.capitalize()}(\"{name}\") exists in src/ or "
                f"tools/ — delete the row or restore the metric")

    if args.live is not None:
        snapshot = json.loads(args.live.read_text())
        # live -> doc
        for section in ("counters", "gauges", "histograms"):
            kind = {"counters": "counter", "gauges": "gauge",
                    "histograms": "histogram"}[section]
            for name in sorted(snapshot.get(section, {})):
                doc_kind = doc_kind_for(name, exact, globs)
                if doc_kind is None:
                    problems.append(
                        f"undocumented live metric: the process emitted "
                        f"{kind} \"{name}\" with no docs/METRICS.md row")
                elif doc_kind != kind:
                    problems.append(
                        f"live type mismatch: \"{name}\" appeared under "
                        f"\"{section}\" but is documented as a {doc_kind}")
        # doc -> live, for the eagerly registered server surface only
        for name, kind in sorted(exact.items()):
            if not name.startswith("net."):
                continue
            if name not in snapshot.get(SECTION_BY_KIND[kind], {}):
                problems.append(
                    f"missing from live snapshot: documented {kind} "
                    f"\"{name}\" was not in the server's eagerly "
                    f"registered surface")

    if problems:
        for p in problems:
            print(f"check_metrics_doc: {p}")
        print(f"check_metrics_doc: FAIL ({len(problems)} problem(s))")
        return 1
    live_note = " + live snapshot" if args.live is not None else ""
    print(f"check_metrics_doc: OK ({len(exact)} documented metrics, "
          f"{len(globs)} patterns, {len(source)} source "
          f"registrations{live_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
