#!/usr/bin/env python3
"""Bench regression gate for CI.

Parses google-benchmark JSON from bench_serving and bench_updates, writes
the consolidated BENCH_PR.json artifact, and exits non-zero when:

  * serving throughput regressed more than --max-serving-regression
    (default 20%) against the checked-in BENCH_BASELINE.json. The gated
    signal is the plan-vs-legacy speedup — both sides measured in the same
    run on the same machine, so runner-speed differences cancel; the
    absolute vertices/s are reported alongside for humans.

  * the delta-apply path (transactional graph patch + inverted-database
    patch) is less than baseline `min_delta_apply_speedup` (5x) faster
    than a full rebuild at <= 1% dirty vertices.

  * the fast (continue-from-final-model) warm re-mine is less than
    baseline `min_warm_remine_speedup` (5x) faster end-to-end than a
    cold re-mine at 1% dirty vertices, or its model quality slips: the
    dl_ratio_vs_cold counter (fast model DL / cold model DL on the same
    mutated graph) exceeds `max_fast_dl_ratio` (1.01, the DL-epsilon
    contract). Both sides of the speedup come from one run on one
    machine, so runner speed cancels; the exact-mode warm ratio is
    reported alongside but not gated (bit-identity bounds it, see
    DESIGN.md section 9).

  * (with --obs) the observability instrumentation costs more than
    baseline `max_obs_overhead` on the serving hot path: bench_obs runs
    BM_ScoreBatchObsOn and BM_ScoreBatchObsOff in one binary and one run,
    so the on/off ratio is machine-normalized; 1.02 means the
    instrumented path must stay within 2% of the obs-off path.

  * (with --store) cold open -> first scored vertex via the mmap plan
    section is less than baseline `min_cold_open_speedup` (50x) faster
    than the decode+compile path: bench_store runs
    BM_ColdOpenFirstBatchDecode and BM_ColdOpenFirstBatchMmap in one
    binary and one run, so the ratio is machine-normalized. The paged
    catalog lookup page-read counts at 1k and 10k models are reported
    alongside (the O(log n) shape itself is asserted in store_test).

  * (with --loadgen) the network serving stack's batched path (multi-
    vertex frames, pipelined connections, server-side coalescing) is
    less than baseline `min_net_batch_speedup` (2x) faster in sustained
    vertices/s than the per-request path (one vertex per frame, one
    request in flight per connection, --max-batch 1) at 8 concurrent
    connections: bench_loadgen measures both closed-loop capacities in
    one run of one binary, so runner speed cancels. The open-loop
    p50/p99 latency and OVERLOADED shed counts at a fixed offered rate
    are reported alongside (docs/OPERATIONS.md "Capacity planning").

Test hook: --serving-scale N multiplies the measured serving throughput,
e.g. --serving-scale 0.7 simulates a 30% serving regression and must trip
the gate (verified in the repo's CI setup notes).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        out[bench["name"]] = bench
    return out


def require(benches, name):
    if name not in benches:
        sys.exit(f"bench_gate: benchmark '{name}' missing from results")
    return benches[name]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--serving", required=True,
                        help="bench_serving JSON output")
    parser.add_argument("--updates", required=True,
                        help="bench_updates JSON output")
    parser.add_argument("--obs", default=None,
                        help="bench_obs JSON output (gates max_obs_overhead)")
    parser.add_argument("--store", default=None,
                        help="bench_store JSON output "
                             "(gates min_cold_open_speedup)")
    parser.add_argument("--loadgen", default=None,
                        help="bench_loadgen JSON output "
                             "(gates min_net_batch_speedup)")
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_BASELINE.json")
    parser.add_argument("--out", required=True,
                        help="where to write BENCH_PR.json")
    parser.add_argument("--max-serving-regression", type=float, default=0.20)
    parser.add_argument("--serving-scale", type=float, default=1.0,
                        help="test hook: scale measured serving throughput")
    args = parser.parse_args()

    serving = load_benchmarks(args.serving)
    updates = load_benchmarks(args.updates)
    with open(args.baseline) as f:
        baseline = json.load(f)

    legacy = require(serving, "BM_LegacyPerVertex/real_time")
    plan = require(serving, "BM_PlanBatchSerial/real_time")
    plan_per_sec = plan["items_per_second"] * args.serving_scale
    legacy_per_sec = legacy["items_per_second"]
    plan_vs_legacy = plan_per_sec / legacy_per_sec

    apply_0p1 = require(updates, "BM_DeltaApply/4/real_time")
    apply_1 = require(updates, "BM_DeltaApply/40/real_time")
    rebuild = require(updates, "BM_FullRebuild/real_time")
    # real_time is in the benchmark's own unit (ms for these benches).
    delta_apply_speedup = rebuild["real_time"] / apply_1["real_time"]

    report = {
        "serving_vertices_per_sec": round(plan_per_sec, 1),
        "legacy_vertices_per_sec": round(legacy_per_sec, 1),
        "plan_vs_legacy": round(plan_vs_legacy, 3),
        "delta_apply_ms_0p1pct_dirty": round(apply_0p1["real_time"], 3),
        "delta_apply_ms_1pct_dirty": round(apply_1["real_time"], 3),
        "full_rebuild_ms": round(rebuild["real_time"], 3),
        "delta_apply_speedup_1pct_dirty": round(delta_apply_speedup, 2),
        "baseline_plan_vs_legacy": baseline["plan_vs_legacy"],
        "min_delta_apply_speedup": baseline["min_delta_apply_speedup"],
        "min_warm_remine_speedup": baseline["min_warm_remine_speedup"],
        "max_fast_dl_ratio": baseline["max_fast_dl_ratio"],
        "max_serving_regression": args.max_serving_regression,
    }
    # End-to-end re-mine ratios, both modes, vs one cold re-mine of the
    # same mutated graph. The exact-mode ratio is reported but not gated
    # (bit-identity bounds the achievable win on co-occurrence-dense
    # graphs, see DESIGN.md section 9); the fast-mode ratio and its DL
    # quality counter are gated below.
    for ops, label in ((4, "0p1pct"), (40, "1pct")):
        cold = updates.get(f"BM_ColdRemine/{ops}/real_time")
        warm = updates.get(f"BM_WarmRemine/{ops}/real_time")
        fast = updates.get(f"BM_FastRemine/{ops}/real_time")
        if cold:
            report[f"cold_remine_ms_{label}_dirty"] = round(
                cold["real_time"], 1)
        if warm and cold:
            report[f"warm_remine_ms_{label}_dirty"] = round(
                warm["real_time"], 1)
            report[f"warm_remine_end_to_end_speedup_exact_{label}"] = round(
                cold["real_time"] / warm["real_time"], 2)
        if fast and cold:
            report[f"fast_remine_ms_{label}_dirty"] = round(
                fast["real_time"], 1)
            report[f"warm_remine_end_to_end_speedup_fast_{label}"] = round(
                cold["real_time"] / fast["real_time"], 2)
            report[f"dl_ratio_vs_cold_{label}"] = round(
                fast["dl_ratio_vs_cold"], 5)

    failures = []
    floor = baseline["plan_vs_legacy"] * (1.0 - args.max_serving_regression)
    if plan_vs_legacy < floor:
        failures.append(
            f"serving throughput regressed: plan-vs-legacy speedup "
            f"{plan_vs_legacy:.2f}x is below {floor:.2f}x "
            f"(baseline {baseline['plan_vs_legacy']:.2f}x minus "
            f"{args.max_serving_regression:.0%} tolerance)")
    if delta_apply_speedup < baseline["min_delta_apply_speedup"]:
        failures.append(
            f"delta-apply speedup {delta_apply_speedup:.1f}x at 1% dirty "
            f"vertices is below the required "
            f"{baseline['min_delta_apply_speedup']:.1f}x")
    if args.obs:
        obs = load_benchmarks(args.obs)
        obs_on = require(obs, "BM_ScoreBatchObsOn/real_time")
        obs_off = require(obs, "BM_ScoreBatchObsOff/real_time")
        # The gated ratio comes from the interleaved bench (obs toggled
        # on/off within each iteration), not from dividing the two
        # standalone runs — sequential runs see 3-6% machine noise, which
        # would swamp a 2% contract. The standalone numbers are reported
        # for humans.
        interleaved = require(obs, "BM_ScoreBatchObsOverhead/real_time")
        obs_overhead = interleaved["obs_overhead_ratio"]
        report["obs_score_batch_ms_on"] = round(obs_on["real_time"], 3)
        report["obs_score_batch_ms_off"] = round(obs_off["real_time"], 3)
        report["obs_overhead_ratio"] = round(obs_overhead, 4)
        report["max_obs_overhead"] = baseline["max_obs_overhead"]
        if obs_overhead > baseline["max_obs_overhead"]:
            failures.append(
                f"obs instrumentation overhead {obs_overhead:.4f}x on the "
                f"serving hot path exceeds the allowed "
                f"{baseline['max_obs_overhead']:.4f}x (overhead contract, "
                f"DESIGN.md section 11)")
    if args.store:
        store = load_benchmarks(args.store)
        decode = require(store, "BM_ColdOpenFirstBatchDecode/real_time")
        mmap = require(store, "BM_ColdOpenFirstBatchMmap/real_time")
        # Both sides from one run of one binary, so runner speed cancels;
        # the scored vertex is identical on both sides, so the ratio
        # isolates record-decode + plan-compile vs mmap + O(1) validate.
        cold_open_speedup = decode["real_time"] / mmap["real_time"]
        report["cold_open_first_batch_ms_decode"] = round(
            decode["real_time"], 3)
        report["cold_open_first_batch_ms_mmap"] = round(mmap["real_time"], 3)
        report["cold_open_speedup"] = round(cold_open_speedup, 1)
        report["min_cold_open_speedup"] = baseline["min_cold_open_speedup"]
        if cold_open_speedup < baseline["min_cold_open_speedup"]:
            failures.append(
                f"cold open -> first scored vertex via mmap is only "
                f"{cold_open_speedup:.1f}x faster than decode+compile, "
                f"below the required "
                f"{baseline['min_cold_open_speedup']:.1f}x "
                f"(zero-copy serving contract, DESIGN.md section 12)")
        for n in (1000, 10000):
            lookup = store.get(f"BM_CatalogLookup/{n}")
            if lookup:
                report[f"catalog_lookup_us_{n}_models"] = round(
                    lookup["real_time"], 2)
                report[f"catalog_index_page_reads_{n}_models"] = round(
                    lookup["index_page_reads_per_open_lookup"], 2)
    if args.loadgen:
        loadgen = load_benchmarks(args.loadgen)
        net_pr = require(loadgen, "BM_NetClosedLoopPerRequest/real_time")
        net_b = require(loadgen, "BM_NetClosedLoopBatched/real_time")
        # Recomputed from the two throughputs rather than trusting the
        # binary's own counter; both sides come from one run of one
        # binary, so runner speed cancels.
        net_speedup = net_b["vertices_per_sec"] / net_pr["vertices_per_sec"]
        report["net_per_request_vertices_per_sec"] = round(
            net_pr["vertices_per_sec"], 1)
        report["net_batched_vertices_per_sec"] = round(
            net_b["vertices_per_sec"], 1)
        report["net_batch_speedup"] = round(net_speedup, 2)
        report["min_net_batch_speedup"] = baseline["min_net_batch_speedup"]
        for mode, key in (("BM_NetOpenLoopPerRequest/real_time",
                           "net_open_loop_per_request"),
                          ("BM_NetOpenLoopBatched/real_time",
                           "net_open_loop_batched")):
            entry = loadgen.get(mode)
            if entry:
                report[f"{key}_p50_ms"] = round(entry["p50_ms"], 2)
                report[f"{key}_p99_ms"] = round(entry["p99_ms"], 2)
                report[f"{key}_vertices_per_sec"] = round(
                    entry["vertices_per_sec"], 1)
                report[f"{key}_overloaded_replies"] = int(
                    entry["overloaded_replies"])
        if net_speedup < baseline["min_net_batch_speedup"]:
            failures.append(
                f"network batched serving is only {net_speedup:.2f}x the "
                f"per-request path at 8 connections, below the required "
                f"{baseline['min_net_batch_speedup']:.1f}x (dynamic "
                f"batching contract, DESIGN.md section 13)")
    fast_1 = require(updates, "BM_FastRemine/40/real_time")
    cold_1 = require(updates, "BM_ColdRemine/40/real_time")
    fast_speedup = cold_1["real_time"] / fast_1["real_time"]
    fast_dl_ratio = fast_1["dl_ratio_vs_cold"]
    if fast_speedup < baseline["min_warm_remine_speedup"]:
        failures.append(
            f"fast warm re-mine speedup {fast_speedup:.1f}x at 1% dirty "
            f"vertices is below the required "
            f"{baseline['min_warm_remine_speedup']:.1f}x")
    if fast_dl_ratio > baseline["max_fast_dl_ratio"]:
        failures.append(
            f"fast warm re-mine DL ratio vs cold {fast_dl_ratio:.4f} at 1% "
            f"dirty vertices exceeds the allowed "
            f"{baseline['max_fast_dl_ratio']:.4f} (DL-epsilon contract)")
    report["failures"] = failures
    report["gate"] = "fail" if failures else "pass"

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"bench_gate: FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
