// Plain-text serialization of attributed graphs.
//
// Format ("cspm graph v1"):
//   # comment lines anywhere
//   v <attr> <attr> ...        one line per vertex, id = line order
//   e <u> <v>                  undirected edge by vertex index
#ifndef CSPM_GRAPH_IO_H_
#define CSPM_GRAPH_IO_H_

#include <string>

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::graph {

/// Serializes to the v1 text format.
std::string ToText(const AttributedGraph& g);

/// Parses the v1 text format.
StatusOr<AttributedGraph> FromText(const std::string& text);

/// Writes ToText(g) to a file.
Status SaveToFile(const AttributedGraph& g, const std::string& path);

/// Reads a graph from a file in the v1 text format.
StatusOr<AttributedGraph> LoadFromFile(const std::string& path);

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_IO_H_
