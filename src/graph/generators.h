// Random attributed-graph generators used by tests, examples and the
// synthetic dataset suite.
#ifndef CSPM_GRAPH_GENERATORS_H_
#define CSPM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/attributed_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace cspm::graph {

/// A planted a-star rule: when a vertex carries all of `core_values`, each
/// neighbour independently receives each of `leaf_values` with
/// `leaf_probability`.
struct PlantedAStar {
  std::vector<std::string> core_values;
  std::vector<std::string> leaf_values;
  double leaf_probability = 0.8;
};

/// Options for the planted a-star generator.
struct PlantedGraphOptions {
  uint32_t num_vertices = 1000;
  /// Barabasi-Albert attachment degree of the underlying topology.
  uint32_t attachment_degree = 3;
  /// Number of noise attribute values drawn per vertex.
  uint32_t noise_attributes_per_vertex = 2;
  /// Size of the noise attribute vocabulary.
  uint32_t noise_vocabulary = 50;
  /// Fraction of vertices designated as rule cores (per rule).
  double core_fraction = 0.10;
  uint64_t seed = 1;
};

/// Erdos-Renyi G(n, p) topology; vertices receive `attrs_per_vertex`
/// attribute values drawn Zipf-distributed from a vocabulary of size
/// `vocabulary`. Isolated graphs may be disconnected; no connectivity
/// requirement is enforced.
StatusOr<AttributedGraph> ErdosRenyi(uint32_t n, double p,
                                     uint32_t vocabulary,
                                     uint32_t attrs_per_vertex, Rng* rng);

/// Barabasi-Albert preferential attachment topology (m edges per new
/// vertex), same attribute assignment scheme as ErdosRenyi.
StatusOr<AttributedGraph> BarabasiAlbert(uint32_t n, uint32_t m,
                                         uint32_t vocabulary,
                                         uint32_t attrs_per_vertex, Rng* rng);

/// Builds only a Barabasi-Albert edge list (utility for simulators that
/// attach their own attributes).
std::vector<std::pair<VertexId, VertexId>> BarabasiAlbertEdges(uint32_t n,
                                                               uint32_t m,
                                                               Rng* rng);

/// Generates a graph with planted a-star structure plus attribute noise.
/// The returned graph provably contains the planted correlations (up to the
/// sampling probabilities), which CSPM should recover.
StatusOr<AttributedGraph> PlantedAStarGraph(
    const PlantedGraphOptions& options,
    const std::vector<PlantedAStar>& rules);

/// Community (stochastic block model) graph with homophilous attributes:
/// `num_communities` blocks, intra/inter edge probabilities, and each
/// community drawing its attributes from a community-specific pool with
/// `attribute_affinity` probability (else from the global pool).
struct CommunityGraphOptions {
  uint32_t num_vertices = 1000;
  uint32_t num_communities = 8;
  double intra_probability = 0.02;
  double inter_probability = 0.0005;
  uint32_t attributes_per_vertex = 4;
  uint32_t community_pool_size = 8;
  uint32_t global_pool_size = 64;
  double attribute_affinity = 0.8;
  uint64_t seed = 1;
};

/// Result of the community generator: graph plus ground-truth community of
/// each vertex (used by completion experiments).
struct CommunityGraph {
  AttributedGraph graph;
  std::vector<uint32_t> community;
};

StatusOr<CommunityGraph> MakeCommunityGraph(
    const CommunityGraphOptions& options);

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_GENERATORS_H_
