// Attributed graph G = (A, lambda, V, E): undirected simple graph with a
// set of nominal attribute values per vertex (Section III of the paper).
// Immutable CSR representation built through GraphBuilder.
#ifndef CSPM_GRAPH_ATTRIBUTED_GRAPH_H_
#define CSPM_GRAPH_ATTRIBUTED_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/attribute_dictionary.h"
#include "util/status.h"

namespace cspm::graph {

/// A vertex of the attributed graph (strong type, see util/ids.h).
using VertexId = ::cspm::VertexId;

/// Immutable attributed graph with CSR adjacency and CSR vertex->attribute
/// table. Neighbour and attribute lists are sorted ascending.
class AttributedGraph {
 public:
  /// Default-constructs an empty graph (0 vertices); useful as a value
  /// member before assignment. All accessors are safe on it.
  AttributedGraph()
      : adj_offsets_{0}, attr_offsets_{0}, attr_index_offsets_{0} {}

  VertexId num_vertices() const {
    return VertexId(static_cast<uint32_t>(adj_offsets_.size() - 1));
  }
  /// Number of undirected edges.
  uint64_t num_edges() const { return adjacency_.size() / 2; }
  /// Number of distinct attribute values in the dictionary.
  size_t num_attribute_values() const { return dict_.size(); }

  /// Sorted neighbours of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + adj_offsets_[v.index()],
            adj_offsets_[v.index() + 1] - adj_offsets_[v.index()]};
  }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adj_offsets_[v.index() + 1] -
                                 adj_offsets_[v.index()]);
  }

  /// Sorted attribute values of v.
  std::span<const AttrId> Attributes(VertexId v) const {
    return {attrs_.data() + attr_offsets_[v.index()],
            attr_offsets_[v.index() + 1] - attr_offsets_[v.index()]};
  }

  /// True if v carries attribute value a (binary search).
  bool HasAttribute(VertexId v, AttrId a) const;

  /// True if {u, v} is an edge (binary search).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Sorted vertices carrying attribute value a (inverted attribute index).
  std::span<const VertexId> VerticesWithAttribute(AttrId a) const {
    return {attr_vertices_.data() + attr_index_offsets_[a.index()],
            attr_index_offsets_[a.index() + 1] - attr_index_offsets_[a.index()]};
  }

  /// Number of (vertex, attribute-value) occurrences, i.e. sum over vertices
  /// of attribute-set size. This is the total used by the standard code
  /// table ST.
  uint64_t total_attribute_occurrences() const { return attrs_.size(); }

  /// Occurrence count of a single attribute value.
  uint64_t AttributeFrequency(AttrId a) const {
    return attr_index_offsets_[a.index() + 1] - attr_index_offsets_[a.index()];
  }

  const AttributeDictionary& dict() const { return dict_; }

  /// True if the graph is connected (BFS from vertex 0); an empty graph is
  /// connected by convention.
  bool IsConnected() const;

 private:
  friend class GraphBuilder;
  friend class GraphDeltaApplier;  // graph_delta.cc: transactional patches

  AttributeDictionary dict_;
  std::vector<uint64_t> adj_offsets_;   // size V+1
  std::vector<VertexId> adjacency_;     // 2|E|
  std::vector<uint64_t> attr_offsets_;  // size V+1
  std::vector<AttrId> attrs_;
  std::vector<uint64_t> attr_index_offsets_;  // size |A|+1
  std::vector<VertexId> attr_vertices_;
};

/// Mutable builder for AttributedGraph. Duplicate edges are deduplicated;
/// self-loops are rejected (the paper's input model forbids them).
class GraphBuilder {
 public:
  /// Adds a vertex with the given attribute-value names; returns its id.
  VertexId AddVertex(const std::vector<std::string>& attribute_names);

  /// Adds a vertex with pre-interned attribute ids; returns its id.
  VertexId AddVertexWithIds(std::vector<AttrId> attribute_ids);

  /// Adds an attribute value to an existing vertex.
  Status AddVertexAttribute(VertexId v, std::string_view attribute_name);

  /// Adds an undirected edge. Fails on self-loops or unknown endpoints.
  Status AddEdge(VertexId u, VertexId v);

  /// Interns an attribute name without attaching it to a vertex.
  AttrId InternAttribute(std::string_view name) {
    return dict_.Intern(name);
  }

  VertexId num_vertices() const {
    return VertexId(static_cast<uint32_t>(vertex_attrs_.size()));
  }

  /// Finalizes into an immutable graph. `require_connected` enforces the
  /// paper's connectivity assumption.
  StatusOr<AttributedGraph> Build(bool require_connected = false) &&;

 private:
  AttributeDictionary dict_;
  std::vector<std::vector<AttrId>> vertex_attrs_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_ATTRIBUTED_GRAPH_H_
