#include "graph/validate.h"

#include <algorithm>

#include "util/string_util.h"

namespace cspm::graph {

Status CheckInvariants(const AttributedGraph& g) {
  const VertexId n = g.num_vertices();
  const size_t num_attrs = g.num_attribute_values();

  uint64_t directed_edges = 0;
  uint64_t forward_occurrences = 0;
  for (VertexId v(0); v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    directed_edges += nbrs.size();
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (w == v) {
        return Status::Internal(
            StrFormat("vertex %u has a self-loop", v.value()));
      }
      if (w >= n) {
        return Status::Internal(StrFormat(
            "vertex %u lists neighbour %u out of range (V=%u)", v.value(),
            w.value(), n.value()));
      }
      if (i > 0 && !(nbrs[i - 1] < w)) {
        return Status::Internal(StrFormat(
            "adjacency of vertex %u not strictly ascending at slot %zu",
            v.value(), i));
      }
      // Symmetry: the reverse edge must exist.
      const auto back = g.Neighbors(w);
      if (!std::binary_search(back.begin(), back.end(), v)) {
        return Status::Internal(
            StrFormat("edge %u->%u has no reverse entry", v.value(),
                      w.value()));
      }
    }

    const auto attrs = g.Attributes(v);
    forward_occurrences += attrs.size();
    for (size_t i = 0; i < attrs.size(); ++i) {
      const AttrId a = attrs[i];
      if (a.index() >= num_attrs) {
        return Status::Internal(StrFormat(
            "vertex %u carries attribute id %u outside the dictionary (%zu)",
            v.value(), a.value(), num_attrs));
      }
      if (i > 0 && !(attrs[i - 1] < a)) {
        return Status::Internal(StrFormat(
            "attributes of vertex %u not strictly ascending at slot %zu",
            v.value(), i));
      }
      // The inverted index must contain this (vertex, value) occurrence.
      const auto bucket = g.VerticesWithAttribute(a);
      if (!std::binary_search(bucket.begin(), bucket.end(), v)) {
        return Status::Internal(StrFormat(
            "occurrence (v=%u, a=%u) missing from the inverted index",
            v.value(), a.value()));
      }
    }
  }

  if (directed_edges != 2 * g.num_edges()) {
    return Status::Internal(
        StrFormat("degree sum %llu != 2 * num_edges %llu",
                  static_cast<unsigned long long>(directed_edges),
                  static_cast<unsigned long long>(2 * g.num_edges())));
  }

  // Inverted index buckets: sorted, in range, and counting exactly the
  // forward occurrences (with membership checked above, equal totals make
  // forward and inverted tables true transposes).
  uint64_t inverted_occurrences = 0;
  for (AttrId a(0); a.index() < num_attrs; ++a) {
    const auto bucket = g.VerticesWithAttribute(a);
    if (bucket.size() != g.AttributeFrequency(a)) {
      return Status::Internal(StrFormat(
          "attribute %u: bucket size %zu != frequency %llu", a.value(),
          bucket.size(),
          static_cast<unsigned long long>(g.AttributeFrequency(a))));
    }
    inverted_occurrences += bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i] >= n) {
        return Status::Internal(StrFormat(
            "attribute %u: bucket vertex %u out of range", a.value(),
            bucket[i].value()));
      }
      if (i > 0 && !(bucket[i - 1] < bucket[i])) {
        return Status::Internal(StrFormat(
            "attribute %u: bucket not strictly ascending at slot %zu",
            a.value(), i));
      }
    }
  }
  if (forward_occurrences != inverted_occurrences ||
      forward_occurrences != g.total_attribute_occurrences()) {
    return Status::Internal(StrFormat(
        "occurrence totals disagree: forward %llu, inverted %llu, "
        "reported %llu",
        static_cast<unsigned long long>(forward_occurrences),
        static_cast<unsigned long long>(inverted_occurrences),
        static_cast<unsigned long long>(g.total_attribute_occurrences())));
  }
  return Status::OK();
}

}  // namespace cspm::graph
