#include "graph/attribute_dictionary.h"

#include "util/check.h"

namespace cspm::graph {

AttrId AttributeDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  AttrId id(static_cast<uint32_t>(names_.size()));
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

AttrId AttributeDictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& AttributeDictionary::Name(AttrId id) const {
  CSPM_CHECK(id.index() < names_.size());
  return names_[id.index()];
}

}  // namespace cspm::graph
