#include "graph/graph_delta.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "graph/validate.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cspm::graph {

/// Befriended by AttributedGraph: assembles the patched CSR arrays
/// directly, so an edge-only delta costs one pass over the old arrays
/// instead of a full GraphBuilder re-sort of every edge.
class GraphDeltaApplier {
 public:
  static StatusOr<DeltaApplication> Apply(const AttributedGraph& g,
                                          const GraphDelta& delta);
};

namespace {

/// Inserts `value` into a sorted vector; false if already present.
template <typename T>
bool SortedInsert(std::vector<T>* vec, T value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it != vec->end() && *it == value) return false;
  vec->insert(it, value);
  return true;
}

/// Removes `value` from a sorted vector; false if absent.
template <typename T>
bool SortedErase(std::vector<T>* vec, T value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it == vec->end() || *it != value) return false;
  vec->erase(it);
  return true;
}

}  // namespace

StatusOr<DeltaApplication> GraphDeltaApplier::Apply(const AttributedGraph& g,
                                                    const GraphDelta& delta) {
  const VertexId n_old = g.num_vertices();
  const VertexId n_new(
      n_old.value() + static_cast<uint32_t>(delta.added_vertices.size()));

  DeltaApplication out;
  out.first_new_vertex = n_old;

  // --- validate and stage attribute mutations ----------------------------
  AttributeDictionary dict = g.dict();
  // Working attribute sets, only for vertices whose set changes.
  std::map<VertexId, std::vector<AttrId>> attrs_patch;
  auto working_attrs = [&](VertexId v) -> std::vector<AttrId>& {
    auto it = attrs_patch.find(v);
    if (it == attrs_patch.end()) {
      std::vector<AttrId> base;
      if (v < n_old) {
        auto span = g.Attributes(v);
        base.assign(span.begin(), span.end());
      }
      it = attrs_patch.emplace(v, std::move(base)).first;
    }
    return it->second;
  };

  for (size_t i = 0; i < delta.added_vertices.size(); ++i) {
    const VertexId v(n_old.value() + static_cast<uint32_t>(i));
    std::vector<AttrId>& attrs = working_attrs(v);
    for (const std::string& name : delta.added_vertices[i].attributes) {
      SortedInsert(&attrs, dict.Intern(name));
    }
    if (!attrs.empty()) out.attributes_changed = true;
  }
  for (const GraphDelta::AttrOp& op : delta.set_attributes) {
    if (op.vertex >= n_new) {
      return Status::InvalidArgument(
          StrFormat("set attribute: unknown vertex %u", op.vertex.value()));
    }
    if (!SortedInsert(&working_attrs(op.vertex), dict.Intern(op.attribute))) {
      return Status::InvalidArgument(
          StrFormat("set attribute: vertex %u already carries '%s'",
                    op.vertex.value(), op.attribute.c_str()));
    }
    out.attributes_changed = true;
  }
  for (const GraphDelta::AttrOp& op : delta.cleared_attributes) {
    if (op.vertex >= n_new) {
      return Status::InvalidArgument(
          StrFormat("clear attribute: unknown vertex %u", op.vertex.value()));
    }
    const AttrId a = dict.Find(op.attribute);
    if (a == AttributeDictionary::kNotFound ||
        !SortedErase(&working_attrs(op.vertex), a)) {
      return Status::InvalidArgument(
          StrFormat("clear attribute: vertex %u does not carry '%s'",
                    op.vertex.value(), op.attribute.c_str()));
    }
    out.attributes_changed = true;
  }

  // --- validate and stage edge mutations ---------------------------------
  // Normalized (min, max) pairs staged in delta order; per-vertex sorted
  // add/remove neighbour lists drive the CSR splice below.
  std::set<std::pair<VertexId, VertexId>> removed_pairs;
  std::set<std::pair<VertexId, VertexId>> added_pairs;
  std::map<VertexId, std::vector<VertexId>> nbr_add;
  std::map<VertexId, std::vector<VertexId>> nbr_del;

  for (const GraphDelta::EdgeOp& op : delta.removed_edges) {
    VertexId u = op.u;
    VertexId v = op.v;
    if (u > v) std::swap(u, v);
    if (v >= n_old || u == v) {
      return Status::InvalidArgument(
          StrFormat("remove edge {%u, %u}: no such edge", op.u.value(), op.v.value()));
    }
    if (!g.HasEdge(u, v) || !removed_pairs.emplace(u, v).second) {
      return Status::InvalidArgument(
          StrFormat("remove edge {%u, %u}: no such edge", op.u.value(), op.v.value()));
    }
    nbr_del[u].push_back(v);
    nbr_del[v].push_back(u);
  }
  for (const GraphDelta::EdgeOp& op : delta.added_edges) {
    VertexId u = op.u;
    VertexId v = op.v;
    if (u == v) {
      return Status::InvalidArgument(
          StrFormat("add edge: self-loop on vertex %u rejected", u.value()));
    }
    if (u > v) std::swap(u, v);
    if (v >= n_new) {
      return Status::InvalidArgument(
          StrFormat("add edge {%u, %u}: unknown endpoint", op.u.value(), op.v.value()));
    }
    // Re-adding an edge removed by this same delta is a legal rewire.
    const bool exists_before =
        v < n_old && g.HasEdge(u, v) && removed_pairs.count({u, v}) == 0;
    if (exists_before || !added_pairs.emplace(u, v).second) {
      return Status::InvalidArgument(
          StrFormat("add edge {%u, %u}: edge already present", op.u.value(), op.v.value()));
    }
    nbr_add[u].push_back(v);
    nbr_add[v].push_back(u);
  }
  for (auto& [v, nbrs] : nbr_add) std::sort(nbrs.begin(), nbrs.end());
  for (auto& [v, nbrs] : nbr_del) std::sort(nbrs.begin(), nbrs.end());

  // --- splice the new CSR graph ------------------------------------------
  AttributedGraph g2;
  g2.dict_ = std::move(dict);

  // Vertex -> attributes table.
  g2.attr_offsets_.assign(n_new.index() + 1, 0);
  for (VertexId v(0); v < n_new; ++v) {
    auto it = attrs_patch.find(v);
    const size_t count = it != attrs_patch.end() ? it->second.size()
                                                 : g.Attributes(v).size();
    g2.attr_offsets_[v.index() + 1] = g2.attr_offsets_[v.index()] + count;
  }
  g2.attrs_.reserve(g2.attr_offsets_[n_new.index()]);
  for (VertexId v(0); v < n_new; ++v) {
    auto it = attrs_patch.find(v);
    if (it != attrs_patch.end()) {
      g2.attrs_.insert(g2.attrs_.end(), it->second.begin(), it->second.end());
    } else {
      auto span = g.Attributes(v);
      g2.attrs_.insert(g2.attrs_.end(), span.begin(), span.end());
    }
  }

  // Adjacency: untouched vertices copy their old run; touched vertices
  // merge old-minus-removed with the sorted additions.
  g2.adj_offsets_.assign(n_new.index() + 1, 0);
  for (VertexId v(0); v < n_new; ++v) {
    size_t degree = v < n_old ? g.Degree(v) : 0;
    auto add_it = nbr_add.find(v);
    auto del_it = nbr_del.find(v);
    if (add_it != nbr_add.end()) degree += add_it->second.size();
    if (del_it != nbr_del.end()) degree -= del_it->second.size();
    g2.adj_offsets_[v.index() + 1] = g2.adj_offsets_[v.index()] + degree;
  }
  g2.adjacency_.resize(g2.adj_offsets_[n_new.index()]);
  for (VertexId v(0); v < n_new; ++v) {
    VertexId* dst = g2.adjacency_.data() + g2.adj_offsets_[v.index()];
    auto old_nbrs = v < n_old ? g.Neighbors(v) : std::span<const VertexId>{};
    auto add_it = nbr_add.find(v);
    auto del_it = nbr_del.find(v);
    if (add_it == nbr_add.end() && del_it == nbr_del.end()) {
      std::copy(old_nbrs.begin(), old_nbrs.end(), dst);
      continue;
    }
    static const std::vector<VertexId> kNone;
    const std::vector<VertexId>& adds =
        add_it != nbr_add.end() ? add_it->second : kNone;
    const std::vector<VertexId>& dels =
        del_it != nbr_del.end() ? del_it->second : kNone;
    auto ai = adds.begin();
    auto di = dels.begin();
    for (VertexId w : old_nbrs) {
      if (di != dels.end() && *di == w) {
        ++di;
        continue;
      }
      while (ai != adds.end() && *ai < w) *dst++ = *ai++;
      *dst++ = w;
    }
    while (ai != adds.end()) *dst++ = *ai++;
  }

  // Inverted attribute index, rebuilt from the new attribute table.
  const size_t num_attrs = g2.dict_.size();
  std::vector<uint64_t> attr_counts(num_attrs, 0);
  for (AttrId a : g2.attrs_) ++attr_counts[a.index()];
  g2.attr_index_offsets_.assign(num_attrs + 1, 0);
  for (size_t a = 0; a < num_attrs; ++a) {
    g2.attr_index_offsets_[a + 1] = g2.attr_index_offsets_[a] + attr_counts[a];
  }
  g2.attr_vertices_.resize(g2.attrs_.size());
  std::vector<uint64_t> cursor(g2.attr_index_offsets_.begin(),
                               g2.attr_index_offsets_.end() - 1);
  for (VertexId v(0); v < n_new; ++v) {
    for (AttrId a : g2.Attributes(v)) g2.attr_vertices_[cursor[a.index()]++] = v;
  }

  // --- dirty-vertex propagation ------------------------------------------
  std::vector<VertexId> dirty;
  for (const auto& [u, v] : removed_pairs) {
    dirty.push_back(u);
    dirty.push_back(v);
  }
  for (const auto& [u, v] : added_pairs) {
    dirty.push_back(u);
    dirty.push_back(v);
  }
  auto mark_attr_dirty = [&](VertexId v) {
    dirty.push_back(v);
    // A changed attribute set alters the neighbourhood-attribute multiset
    // of every neighbour, old and new.
    if (v < n_old) {
      auto span = g.Neighbors(v);
      dirty.insert(dirty.end(), span.begin(), span.end());
    }
    auto span = g2.Neighbors(v);
    dirty.insert(dirty.end(), span.begin(), span.end());
  };
  for (const GraphDelta::AttrOp& op : delta.set_attributes) {
    mark_attr_dirty(op.vertex);
  }
  for (const GraphDelta::AttrOp& op : delta.cleared_attributes) {
    mark_attr_dirty(op.vertex);
  }
  for (VertexId v = n_old; v < n_new; ++v) dirty.push_back(v);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  out.dirty_vertices = std::move(dirty);
  out.graph = std::move(g2);
  CSPM_DCHECK_OK(CheckInvariants(out.graph));
  // Counted only once the delta validated: rejected deltas mutate nothing.
  obs::GetCounter("graph.deltas_applied")->Add(1);
  obs::GetCounter("graph.edges_added")->Add(added_pairs.size());
  obs::GetCounter("graph.edges_removed")->Add(removed_pairs.size());
  obs::GetCounter("graph.dirty_vertices")->Add(out.dirty_vertices.size());
  return out;
}

StatusOr<DeltaApplication> ApplyDelta(const AttributedGraph& g,
                                      const GraphDelta& delta) {
  return GraphDeltaApplier::Apply(g, delta);
}

StatusOr<GraphDelta> MakeRandomEdgeRewires(const AttributedGraph& g,
                                           uint32_t ops, uint64_t seed) {
  if (g.num_vertices().value() < 2) {
    return Status::FailedPrecondition("graph too small to rewire");
  }
  GraphDelta delta;
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> used;
  auto norm = [](VertexId u, VertexId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  };
  for (uint32_t i = 0; i < ops; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 1000 && !placed; ++attempt) {
      const VertexId u(
          static_cast<uint32_t>(rng.Uniform(g.num_vertices().value())));
      if (i % 2 == 0) {  // remove an existing edge
        if (g.Degree(u) == 0) continue;
        const auto nbrs = g.Neighbors(u);
        const auto w = nbrs[rng.Uniform(nbrs.size())];
        if (!used.insert(norm(u, w)).second) continue;
        delta.RemoveEdge(u, w);
        placed = true;
      } else {  // add a fresh edge
        const VertexId v(
            static_cast<uint32_t>(rng.Uniform(g.num_vertices().value())));
        if (u == v || g.HasEdge(u, v)) continue;
        if (!used.insert(norm(u, v)).second) continue;
        delta.AddEdge(u, v);
        placed = true;
      }
    }
    if (!placed) {
      return Status::FailedPrecondition(
          "could not sample enough edge rewires");
    }
  }
  return delta;
}

}  // namespace cspm::graph
