#include "graph/stats.h"

#include "util/string_util.h"

namespace cspm::graph {

GraphStats ComputeStats(const AttributedGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices().value();
  s.num_edges = g.num_edges();
  s.num_attribute_values = g.num_attribute_values();
  uint64_t attr_occurrences = g.total_attribute_occurrences();
  s.avg_attributes_per_vertex =
      s.num_vertices ? static_cast<double>(attr_occurrences) /
                           static_cast<double>(s.num_vertices)
                     : 0.0;
  s.avg_degree = s.num_vertices ? 2.0 * static_cast<double>(s.num_edges) /
                                      static_cast<double>(s.num_vertices)
                                : 0.0;
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    s.max_degree = std::max(s.max_degree, g.Degree(v));
  }
  // A coreset (single-core mode) exists for an attribute value iff it occurs
  // on a vertex that has at least one neighbour.
  uint64_t coresets = 0;
  for (AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    for (VertexId v : g.VerticesWithAttribute(a)) {
      if (g.Degree(v) > 0) {
        ++coresets;
        break;
      }
    }
  }
  s.num_coresets = coresets;
  return s;
}

std::string StatsToString(const GraphStats& s) {
  return StrFormat(
      "|V|=%llu |E|=%llu |A|=%llu |Sc|=%llu avg_attrs=%.2f avg_deg=%.2f "
      "max_deg=%u",
      static_cast<unsigned long long>(s.num_vertices),
      static_cast<unsigned long long>(s.num_edges),
      static_cast<unsigned long long>(s.num_attribute_values),
      static_cast<unsigned long long>(s.num_coresets),
      s.avg_attributes_per_vertex, s.avg_degree, s.max_degree);
}

}  // namespace cspm::graph
