// Deep structural validation of the CSR graph — the invariants the rest of
// the engine assumes but CRCs and spot checks cannot see: sorted adjacency,
// edge symmetry, no self-loops, sorted per-vertex attribute sets, and an
// inverted attribute index that is exactly the transpose of the forward
// table. Run under CSPM_DCHECK after every build/splice and by
// `cspm_shell fsck` on stored graph snapshots.
#ifndef CSPM_GRAPH_VALIDATE_H_
#define CSPM_GRAPH_VALIDATE_H_

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::graph {

/// Returns OK iff every CSR invariant holds; otherwise an Internal error
/// naming the first violation. Cost is O(V + E log d + A log f) — meant
/// for debug builds, tests, and fsck, not the serving hot path.
Status CheckInvariants(const AttributedGraph& g);

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_VALIDATE_H_
