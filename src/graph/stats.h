// Dataset statistics in the shape of the paper's Table II.
#ifndef CSPM_GRAPH_STATS_H_
#define CSPM_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/attributed_graph.h"

namespace cspm::graph {

/// Summary statistics of an attributed graph.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  /// Number of distinct single-value coresets, i.e. distinct attribute
  /// values that occur on at least one non-isolated vertex (|S^M_c| in
  /// Table II for the single-core configuration).
  uint64_t num_coresets = 0;
  uint64_t num_attribute_values = 0;
  double avg_attributes_per_vertex = 0.0;
  double avg_degree = 0.0;
  uint32_t max_degree = 0;
};

/// Computes summary statistics.
GraphStats ComputeStats(const AttributedGraph& g);

/// One-line human readable rendering.
std::string StatsToString(const GraphStats& s);

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_STATS_H_
