#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace cspm::graph {

std::string ToText(const AttributedGraph& g) {
  std::string out = "# cspm graph v1\n";
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    out += "v";
    for (AttrId a : g.Attributes(v)) {
      out += " ";
      out += g.dict().Name(a);
    }
    out += "\n";
  }
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (w > v) out += StrFormat("e %u %u\n", v.value(), w.value());
    }
  }
  return out;
}

StatusOr<AttributedGraph> FromText(const std::string& text) {
  GraphBuilder builder;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto tokens = SplitString(stripped, ' ');
    if (tokens[0] == "v") {
      std::vector<std::string> attrs(tokens.begin() + 1, tokens.end());
      builder.AddVertex(attrs);
    } else if (tokens[0] == "e") {
      if (tokens.size() != 3) {
        return Status::IOError(
            StrFormat("line %zu: edge needs two endpoints", line_no));
      }
      char* end = nullptr;
      unsigned long u = std::strtoul(tokens[1].c_str(), &end, 10);
      if (*end != '\0') {
        return Status::IOError(StrFormat("line %zu: bad vertex id", line_no));
      }
      unsigned long v = std::strtoul(tokens[2].c_str(), &end, 10);
      if (*end != '\0') {
        return Status::IOError(StrFormat("line %zu: bad vertex id", line_no));
      }
      Status st = builder.AddEdge(VertexId(static_cast<uint32_t>(u)),
                                  VertexId(static_cast<uint32_t>(v)));
      if (!st.ok()) {
        return Status::IOError(
            StrFormat("line %zu: %s", line_no, st.message().c_str()));
      }
    } else {
      return Status::IOError(
          StrFormat("line %zu: unknown record '%s'", line_no,
                    tokens[0].c_str()));
    }
  }
  return std::move(builder).Build();
}

Status SaveToFile(const AttributedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToText(g);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<AttributedGraph> LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromText(buf.str());
}

}  // namespace cspm::graph
