#include "graph/attributed_graph.h"

#include <algorithm>
#include <queue>

#include "graph/validate.h"
#include "util/check.h"
#include "util/string_util.h"

namespace cspm::graph {

bool AttributedGraph::HasAttribute(VertexId v, AttrId a) const {
  auto attrs = Attributes(v);
  return std::binary_search(attrs.begin(), attrs.end(), a);
}

bool AttributedGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool AttributedGraph::IsConnected() const {
  const size_t n = num_vertices().index();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::queue<VertexId> q;
  q.push(VertexId(0));
  seen[0] = true;
  size_t visited = 1;
  while (!q.empty()) {
    VertexId v = q.front();
    q.pop();
    for (VertexId w : Neighbors(v)) {
      if (!seen[w.index()]) {
        seen[w.index()] = true;
        ++visited;
        q.push(w);
      }
    }
  }
  return visited == n;
}

VertexId GraphBuilder::AddVertex(
    const std::vector<std::string>& attribute_names) {
  std::vector<AttrId> ids;
  ids.reserve(attribute_names.size());
  for (const auto& name : attribute_names) ids.push_back(dict_.Intern(name));
  return AddVertexWithIds(std::move(ids));
}

VertexId GraphBuilder::AddVertexWithIds(std::vector<AttrId> attribute_ids) {
  std::sort(attribute_ids.begin(), attribute_ids.end());
  attribute_ids.erase(
      std::unique(attribute_ids.begin(), attribute_ids.end()),
      attribute_ids.end());
  vertex_attrs_.push_back(std::move(attribute_ids));
  return VertexId(static_cast<uint32_t>(vertex_attrs_.size() - 1));
}

Status GraphBuilder::AddVertexAttribute(VertexId v,
                                        std::string_view attribute_name) {
  if (v.index() >= vertex_attrs_.size()) {
    return Status::InvalidArgument("AddVertexAttribute: unknown vertex");
  }
  AttrId a = dict_.Intern(attribute_name);
  auto& attrs = vertex_attrs_[v.index()];
  auto it = std::lower_bound(attrs.begin(), attrs.end(), a);
  if (it == attrs.end() || *it != a) attrs.insert(it, a);
  return Status::OK();
}

Status GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) {
    return Status::InvalidArgument(
        StrFormat("self-loop on vertex %u rejected", u.value()));
  }
  if (u.index() >= vertex_attrs_.size() || v.index() >= vertex_attrs_.size()) {
    return Status::InvalidArgument("AddEdge: unknown endpoint");
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  return Status::OK();
}

StatusOr<AttributedGraph> GraphBuilder::Build(bool require_connected) && {
  const size_t n = vertex_attrs_.size();
  if (n == 0) return Status::InvalidArgument("graph has no vertices");
  // Ids handed to AddVertexWithIds must have been interned: an id outside
  // the dictionary would corrupt the inverted index below.
  for (const auto& attrs : vertex_attrs_) {
    for (AttrId a : attrs) {
      if (a.index() >= dict_.size()) {
        return Status::InvalidArgument(StrFormat(
            "attribute id %u not in the dictionary (%zu names interned)",
            a.value(), dict_.size()));
      }
    }
  }

  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  AttributedGraph g;
  g.dict_ = std::move(dict_);

  // CSR adjacency (each undirected edge stored in both directions).
  std::vector<uint32_t> degree(n, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u.index()];
    ++degree[v.index()];
  }
  g.adj_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    g.adj_offsets_[v + 1] = g.adj_offsets_[v] + degree[v];
  }
  g.adjacency_.resize(2 * edges_.size());
  std::vector<uint64_t> cursor(g.adj_offsets_.begin(),
                               g.adj_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u.index()]++] = v;
    g.adjacency_[cursor[v.index()]++] = u;
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<long>(g.adj_offsets_[v]),
              g.adjacency_.begin() + static_cast<long>(g.adj_offsets_[v + 1]));
  }

  // CSR vertex -> attributes (already sorted & deduped per vertex).
  g.attr_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    g.attr_offsets_[v + 1] = g.attr_offsets_[v] + vertex_attrs_[v].size();
  }
  g.attrs_.reserve(g.attr_offsets_[n]);
  for (size_t v = 0; v < n; ++v) {
    g.attrs_.insert(g.attrs_.end(), vertex_attrs_[v].begin(),
                    vertex_attrs_[v].end());
  }

  // Inverted attribute index.
  const size_t num_attrs = g.dict_.size();
  std::vector<uint64_t> attr_counts(num_attrs, 0);
  for (AttrId a : g.attrs_) ++attr_counts[a.index()];
  g.attr_index_offsets_.assign(num_attrs + 1, 0);
  for (size_t a = 0; a < num_attrs; ++a) {
    g.attr_index_offsets_[a + 1] = g.attr_index_offsets_[a] + attr_counts[a];
  }
  g.attr_vertices_.resize(g.attrs_.size());
  std::vector<uint64_t> acur(g.attr_index_offsets_.begin(),
                             g.attr_index_offsets_.end() - 1);
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    for (AttrId a : g.Attributes(v)) g.attr_vertices_[acur[a.index()]++] = v;
  }
  // Vertex ids are appended in increasing order, so each bucket is sorted.

  if (require_connected && !g.IsConnected()) {
    return Status::FailedPrecondition("graph is not connected");
  }
  CSPM_DCHECK_OK(CheckInvariants(g));
  return g;
}

}  // namespace cspm::graph
