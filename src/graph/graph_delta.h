// Live-update layer of the graph: a GraphDelta is a batch of mutations
// (add vertex, set/clear vertex attribute, add/remove edge) applied
// transactionally to an immutable AttributedGraph. ApplyDelta validates
// the whole batch first and then splices a new CSR graph, so a bad op
// never leaves a half-mutated graph behind; the input graph is untouched.
//
// The result also reports the dirty vertex set (vertices whose coreset or
// neighbourhood-attribute contribution to the inverted database may have
// changed) — the seed of the incremental re-mine path (DESIGN.md §9).
#ifndef CSPM_GRAPH_GRAPH_DELTA_H_
#define CSPM_GRAPH_GRAPH_DELTA_H_

#include <string>
#include <vector>

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::graph {

/// A batch of graph mutations. Ops are applied in a fixed order regardless
/// of call order: added vertices first, then attribute sets, attribute
/// clears, edge removals, and edge additions last. The i-th added vertex
/// gets id `old num_vertices + i`; later ops may reference those ids.
struct GraphDelta {
  struct VertexSpec {
    std::vector<std::string> attributes;
  };
  struct AttrOp {
    VertexId vertex{};
    std::string attribute;
  };
  struct EdgeOp {
    VertexId u{};
    VertexId v{};
  };

  std::vector<VertexSpec> added_vertices;
  std::vector<AttrOp> set_attributes;
  std::vector<AttrOp> cleared_attributes;
  std::vector<EdgeOp> removed_edges;
  std::vector<EdgeOp> added_edges;

  // --- builder conveniences ----------------------------------------------

  /// Schedules a vertex addition; returns its index among added vertices
  /// (its final id is `old num_vertices + index`).
  size_t AddVertex(std::vector<std::string> attributes) {
    added_vertices.push_back({std::move(attributes)});
    return added_vertices.size() - 1;
  }
  void SetAttribute(VertexId v, std::string attribute) {
    set_attributes.push_back({v, std::move(attribute)});
  }
  void ClearAttribute(VertexId v, std::string attribute) {
    cleared_attributes.push_back({v, std::move(attribute)});
  }
  void AddEdge(VertexId u, VertexId v) { added_edges.push_back({u, v}); }
  void RemoveEdge(VertexId u, VertexId v) { removed_edges.push_back({u, v}); }

  bool empty() const {
    return added_vertices.empty() && set_attributes.empty() &&
           cleared_attributes.empty() && removed_edges.empty() &&
           added_edges.empty();
  }
  size_t num_ops() const {
    return added_vertices.size() + set_attributes.size() +
           cleared_attributes.size() + removed_edges.size() +
           added_edges.size();
  }
};

/// The outcome of applying a delta: the new graph plus the propagation
/// facts the incremental miner consumes.
struct DeltaApplication {
  AttributedGraph graph;
  /// Sorted, deduplicated vertices whose inverted-database contribution
  /// may have changed: endpoints of edge ops, attribute-op vertices plus
  /// all their (old and new) neighbours, and every added vertex.
  std::vector<VertexId> dirty_vertices;
  /// True if any attribute occurrence count changed (attribute set/clear,
  /// or an added vertex carrying attributes). When set, every ST /
  /// coreset code length moves, so no cached candidate gain survives.
  bool attributes_changed = false;
  /// Id of the first added vertex (== the input graph's num_vertices).
  VertexId first_new_vertex{};
};

/// Validates and applies `delta` to `g`, returning the patched graph.
/// Strict semantics catch update bugs early: removing a missing edge,
/// adding an existing edge, setting a present attribute, clearing an
/// absent one, self-loops, and unknown vertices are all
/// InvalidArgument — and nothing is applied.
StatusOr<DeltaApplication> ApplyDelta(const AttributedGraph& g,
                                      const GraphDelta& delta);

/// Deterministic update workload: `ops` random edge rewires (alternating
/// removals of existing edges and additions of fresh non-edges), seeded.
/// Used by the shell's `update` command, bench_updates, and the delta
/// tests — one generator so "k ops" means the same thing everywhere.
/// Fails when the graph is too small or sampling cannot place every op.
StatusOr<GraphDelta> MakeRandomEdgeRewires(const AttributedGraph& g,
                                           uint32_t ops, uint64_t seed);

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_GRAPH_DELTA_H_
