#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace cspm::graph {
namespace {

void AttachZipfAttributes(GraphBuilder* builder, uint32_t n,
                          uint32_t vocabulary, uint32_t attrs_per_vertex,
                          Rng* rng) {
  for (uint32_t v = 0; v < n; ++v) {
    std::vector<AttrId> ids;
    ids.reserve(attrs_per_vertex);
    for (uint32_t k = 0; k < attrs_per_vertex; ++k) {
      uint64_t a = rng->Zipf(vocabulary, 1.2);
      ids.push_back(
          builder->InternAttribute(StrFormat("attr_%u", static_cast<uint32_t>(a))));
    }
    builder->AddVertexWithIds(std::move(ids));
  }
}

}  // namespace

StatusOr<AttributedGraph> ErdosRenyi(uint32_t n, double p,
                                     uint32_t vocabulary,
                                     uint32_t attrs_per_vertex, Rng* rng) {
  if (n == 0) return Status::InvalidArgument("ErdosRenyi: n must be > 0");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("ErdosRenyi: p must be in [0,1]");
  }
  GraphBuilder builder;
  AttachZipfAttributes(&builder, n, vocabulary, attrs_per_vertex, rng);
  // Geometric skipping for sparse graphs.
  if (p > 0.0) {
    uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
    auto pair_of = [n](uint64_t idx) {
      // Row-major enumeration of the strict upper triangle.
      uint64_t u = 0;
      uint64_t remaining = idx;
      uint64_t row_len = n - 1;
      while (remaining >= row_len) {
        remaining -= row_len;
        ++u;
        --row_len;
      }
      return std::make_pair(VertexId(static_cast<uint32_t>(u)),
                            VertexId(static_cast<uint32_t>(u + 1 + remaining)));
    };
    uint64_t idx = 0;
    while (idx < total_pairs) {
      if (p >= 1.0) {
        auto [u, v] = pair_of(idx);
        CSPM_RETURN_IF_ERROR(builder.AddEdge(u, v));
        ++idx;
        continue;
      }
      double u01 = rng->UniformDouble();
      if (u01 < 1e-300) u01 = 1e-300;
      uint64_t skip =
          static_cast<uint64_t>(std::log(u01) / std::log(1.0 - p));
      idx += skip;
      if (idx >= total_pairs) break;
      auto [u, v] = pair_of(idx);
      CSPM_RETURN_IF_ERROR(builder.AddEdge(u, v));
      ++idx;
    }
  }
  return std::move(builder).Build();
}

std::vector<std::pair<VertexId, VertexId>> BarabasiAlbertEdges(uint32_t n,
                                                               uint32_t m,
                                                               Rng* rng) {
  CSPM_CHECK(n >= 2);
  CSPM_CHECK(m >= 1);
  std::vector<std::pair<VertexId, VertexId>> edges;
  // Repeated-endpoint list implements preferential attachment.
  std::vector<VertexId> targets;
  targets.reserve(2ull * m * n);
  // Seed clique on min(m+1, n) vertices.
  uint32_t seed_size = std::min(m + 1, n);
  for (uint32_t u = 0; u < seed_size; ++u) {
    for (uint32_t v = u + 1; v < seed_size; ++v) {
      edges.emplace_back(VertexId(u), VertexId(v));
      targets.push_back(VertexId(u));
      targets.push_back(VertexId(v));
    }
  }
  for (uint32_t v_raw = seed_size; v_raw < n; ++v_raw) {
    const VertexId v(v_raw);
    std::vector<VertexId> chosen;
    chosen.reserve(m);
    uint32_t attempts = 0;
    while (chosen.size() < m && attempts < 50 * m) {
      VertexId t = targets[rng->Uniform(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
      ++attempts;
    }
    for (VertexId t : chosen) {
      edges.emplace_back(t, v);
      targets.push_back(t);
      targets.push_back(v);
    }
  }
  return edges;
}

StatusOr<AttributedGraph> BarabasiAlbert(uint32_t n, uint32_t m,
                                         uint32_t vocabulary,
                                         uint32_t attrs_per_vertex, Rng* rng) {
  if (n < 2) return Status::InvalidArgument("BarabasiAlbert: n must be >= 2");
  if (m < 1) return Status::InvalidArgument("BarabasiAlbert: m must be >= 1");
  GraphBuilder builder;
  AttachZipfAttributes(&builder, n, vocabulary, attrs_per_vertex, rng);
  for (auto [u, v] : BarabasiAlbertEdges(n, m, rng)) {
    CSPM_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  return std::move(builder).Build();
}

StatusOr<AttributedGraph> PlantedAStarGraph(
    const PlantedGraphOptions& options,
    const std::vector<PlantedAStar>& rules) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("PlantedAStarGraph: need >= 2 vertices");
  }
  Rng rng(options.seed);
  GraphBuilder builder;

  // Vertices start with noise attributes only.
  for (uint32_t v = 0; v < options.num_vertices; ++v) {
    std::vector<AttrId> ids;
    for (uint32_t k = 0; k < options.noise_attributes_per_vertex; ++k) {
      uint64_t a = rng.Zipf(std::max(options.noise_vocabulary, 1u), 1.1);
      ids.push_back(builder.InternAttribute(
          StrFormat("noise_%u", static_cast<uint32_t>(a))));
    }
    builder.AddVertexWithIds(std::move(ids));
  }

  auto edges = BarabasiAlbertEdges(options.num_vertices,
                                   options.attachment_degree, &rng);
  std::vector<std::vector<VertexId>> adjacency(options.num_vertices);
  for (auto [u, v] : edges) {
    CSPM_RETURN_IF_ERROR(builder.AddEdge(u, v));
    adjacency[u.index()].push_back(v);
    adjacency[v.index()].push_back(u);
  }

  // Plant each rule on a random subset of core vertices.
  const uint32_t cores_per_rule = std::max<uint32_t>(
      1, static_cast<uint32_t>(options.core_fraction *
                               static_cast<double>(options.num_vertices)));
  for (const auto& rule : rules) {
    auto cores =
        rng.SampleWithoutReplacement(options.num_vertices, cores_per_rule);
    for (uint32_t core_raw : cores) {
      const VertexId c(core_raw);
      for (const auto& cv : rule.core_values) {
        CSPM_RETURN_IF_ERROR(builder.AddVertexAttribute(c, cv));
      }
      if (adjacency[c.index()].empty()) continue;
      // The full leaf set lands on each selected neighbour, so leaf values
      // genuinely co-occur around the core (that is what an a-star states).
      bool placed = false;
      for (VertexId nbr : adjacency[c.index()]) {
        if (!rng.Bernoulli(rule.leaf_probability)) continue;
        placed = true;
        for (const auto& lv : rule.leaf_values) {
          CSPM_RETURN_IF_ERROR(builder.AddVertexAttribute(nbr, lv));
        }
      }
      if (!placed) {
        VertexId nbr =
            adjacency[c.index()][rng.Uniform(adjacency[c.index()].size())];
        for (const auto& lv : rule.leaf_values) {
          CSPM_RETURN_IF_ERROR(builder.AddVertexAttribute(nbr, lv));
        }
      }
    }
  }
  return std::move(builder).Build();
}

StatusOr<CommunityGraph> MakeCommunityGraph(
    const CommunityGraphOptions& options) {
  if (options.num_vertices == 0 || options.num_communities == 0) {
    return Status::InvalidArgument("MakeCommunityGraph: empty sizes");
  }
  Rng rng(options.seed);
  GraphBuilder builder;
  std::vector<uint32_t> community(options.num_vertices);
  for (uint32_t v = 0; v < options.num_vertices; ++v) {
    community[v] = static_cast<uint32_t>(rng.Uniform(options.num_communities));
  }
  for (uint32_t v = 0; v < options.num_vertices; ++v) {
    std::vector<AttrId> ids;
    for (uint32_t k = 0; k < options.attributes_per_vertex; ++k) {
      if (rng.Bernoulli(options.attribute_affinity)) {
        uint64_t a = rng.Zipf(std::max(options.community_pool_size, 1u), 1.05);
        ids.push_back(builder.InternAttribute(StrFormat(
            "c%u_t%u", community[v], static_cast<uint32_t>(a))));
      } else {
        uint64_t a = rng.Zipf(std::max(options.global_pool_size, 1u), 1.05);
        ids.push_back(builder.InternAttribute(
            StrFormat("g_t%u", static_cast<uint32_t>(a))));
      }
    }
    builder.AddVertexWithIds(std::move(ids));
  }
  // SBM edges; for efficiency sample intra edges per community and inter
  // edges globally with geometric skipping over vertex pairs.
  const uint32_t n = options.num_vertices;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      double p = community[u] == community[v] ? options.intra_probability
                                              : options.inter_probability;
      if (rng.Bernoulli(p)) {
        CSPM_RETURN_IF_ERROR(builder.AddEdge(VertexId(u), VertexId(v)));
      }
    }
  }
  CSPM_ASSIGN_OR_RETURN(AttributedGraph g, std::move(builder).Build());
  return CommunityGraph{std::move(g), std::move(community)};
}

}  // namespace cspm::graph
