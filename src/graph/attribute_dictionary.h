// Bidirectional mapping between human-readable attribute-value names and
// dense integer ids used everywhere in the library.
#ifndef CSPM_GRAPH_ATTRIBUTE_DICTIONARY_H_
#define CSPM_GRAPH_ATTRIBUTE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace cspm::graph {

/// Dense id of a nominal attribute value (e.g. "ICDM", "rock", "Link_down").
/// A strong type: constructing one from a raw integer is explicit, and it
/// cannot be confused with a VertexId / LeafsetId / CoreId (util/ids.h).
using AttrValueId = ::cspm::AttrValueId;
/// Historical shorthand, same strong type.
using AttrId = AttrValueId;

/// Interns attribute-value names to dense AttrIds.
class AttributeDictionary {
 public:
  /// Returns the id for `name`, interning it if unseen.
  AttrId Intern(std::string_view name);

  /// Returns the id for `name`, or kNotFound if never interned.
  static constexpr AttrId kNotFound = static_cast<AttrId>(-1);
  AttrId Find(std::string_view name) const;

  /// Name for an interned id. id must be < size().
  const std::string& Name(AttrId id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> index_;
};

}  // namespace cspm::graph

#endif  // CSPM_GRAPH_ATTRIBUTE_DICTIONARY_H_
