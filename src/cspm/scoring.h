// The scoring module of Algorithm 5: turns a mined CSPM model into
// per-attribute-value scores for a vertex with missing attributes, based on
// the attribute values observed on its neighbours.
#ifndef CSPM_CSPM_SCORING_H_
#define CSPM_CSPM_SCORING_H_

#include <vector>

#include "cspm/model.h"
#include "graph/attributed_graph.h"

namespace cspm::core {

struct ScoringOptions {
  /// Leafsets whose similarity with the neighbourhood falls below this are
  /// skipped (w would diverge).
  double min_similarity = 1e-9;
};

/// Per-value scores for one vertex. Raw scores follow Algorithm 5
/// (cl = -w * Scode, higher = more likely); `normalized` maps the finite
/// raw scores to (0, 1] min-max style with 0 for values without evidence,
/// ready for the multiply-fusion of Fig. 7.
struct AttributeScores {
  std::vector<double> raw;         ///< -inf when no a-star gave evidence
  std::vector<double> normalized;  ///< in [0, 1]
};

/// Scores every attribute value for vertex v given the model M.
/// similarity(SL, neighbours) = |SL ∩ N_attrs| / |SL| and w = 1/similarity,
/// so dissimilar leafsets get large w and strongly negative scores.
AttributeScores ScoreAttributes(const graph::AttributedGraph& g,
                                const CspmModel& model, VertexId v,
                                const ScoringOptions& options = {});

/// Same, but against an explicit neighbour-attribute set (used when the
/// graph's own attributes for v's neighbours are partially masked).
AttributeScores ScoreAttributesWithNeighbourhood(
    size_t num_attribute_values, const CspmModel& model,
    const std::vector<AttrId>& neighbourhood_attrs,
    const ScoringOptions& options = {});

}  // namespace cspm::core

#endif  // CSPM_CSPM_SCORING_H_
