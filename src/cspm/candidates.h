// Candidate bookkeeping for the greedy search: a gain-ordered pair store
// with lazy heap invalidation, and the related-leafset dictionary (rdict)
// used by CSPM-Partial (Algorithms 3-4).
#ifndef CSPM_CSPM_CANDIDATES_H_
#define CSPM_CSPM_CANDIDATES_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cspm/types.h"

namespace cspm::core {

/// Canonical 64-bit key of an unordered leafset pair — the map key of the
/// CandidateStore and of the warm-start initial-gain cache.
inline uint64_t CandidatePairKey(LeafsetId x, LeafsetId y) {
  if (x > y) std::swap(x, y);
  return (static_cast<uint64_t>(x.value()) << 32) | y.value();
}

/// Max-gain priority store over unordered leafset pairs. Set() overwrites;
/// stale heap entries are skipped on pop via version counters.
class CandidateStore {
 public:
  /// Inserts or updates the pair's gain.
  void Set(LeafsetId x, LeafsetId y, double gain);

  /// Removes the pair if present.
  void Erase(LeafsetId x, LeafsetId y);

  /// True if no live candidates remain.
  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

  /// Pops the live pair with the maximum gain. Returns false when empty.
  bool PopBest(LeafsetId* x, LeafsetId* y, double* gain);

  /// Gain of the best live pair without popping (false when empty).
  bool PeekBest(double* gain);

 private:
  struct HeapEntry {
    double gain;
    uint64_t key;
    uint64_t version;
    bool operator<(const HeapEntry& o) const { return gain < o.gain; }
  };
  struct LiveEntry {
    double gain;
    uint64_t version;
  };

  static uint64_t PairKey(LeafsetId x, LeafsetId y) {
    return CandidatePairKey(x, y);
  }
  void DropStale();

  std::unordered_map<uint64_t, LiveEntry> live_;
  std::priority_queue<HeapEntry> heap_;
  uint64_t next_version_ = 1;
};

/// rdict of Algorithm 3: for each leafset, the set of leafsets it currently
/// forms a positive-gain candidate with.
class RelatedDict {
 public:
  void Link(LeafsetId x, LeafsetId y);
  void Unlink(LeafsetId x, LeafsetId y);

  /// Removes l and all its links; fills `former` with l's former relations.
  void RemoveLeafset(LeafsetId l, std::vector<LeafsetId>* former);

  /// Related leafsets of l (empty set if none).
  const std::unordered_set<LeafsetId>& RelatedTo(LeafsetId l) const;

  bool Contains(LeafsetId l) const { return rdict_.count(l) > 0; }
  size_t size() const { return rdict_.size(); }
  bool empty() const { return rdict_.empty(); }

  /// Sorted intersection of the relation sets of x and y (Algorithm 4,
  /// line 6).
  std::vector<LeafsetId> Intersection(LeafsetId x, LeafsetId y) const;

 private:
  std::unordered_map<LeafsetId, std::unordered_set<LeafsetId>> rdict_;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_CANDIDATES_H_
