#include "cspm/inverted_database.h"

#include <algorithm>

#include "mdl/codes.h"
#include "util/check.h"

namespace cspm::core {
namespace {

// out = a - b for sorted vectors.
void DifferenceInto(const PosList& a, const PosList& b, PosList* out) {
  out->clear();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*out));
}

// out = a ∩ b for sorted vectors.
void IntersectInto(const PosList& a, const PosList& b, PosList* out) {
  out->clear();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

}  // namespace

const PosList* InvertedDatabase::FindLine(CoreId e, LeafsetId l) const {
  auto it = lines_.find(Key(e, l));
  return it == lines_.end() ? nullptr : &it->second;
}

const std::vector<CoreId>& InvertedDatabase::CoresOf(LeafsetId l) const {
  static const std::vector<CoreId> kEmpty;
  if (l >= cores_of_.size()) return kEmpty;
  return cores_of_[l];
}

void InvertedDatabase::ForEachLine(
    const std::function<void(CoreId, LeafsetId, const PosList&)>& fn) const {
  for (const auto& [key, positions] : lines_) {
    fn(static_cast<CoreId>(key >> 32), static_cast<LeafsetId>(key),
       positions);
  }
}

void InvertedDatabase::ActivateLeafset(LeafsetId l) {
  auto it = std::lower_bound(active_leafsets_.begin(), active_leafsets_.end(),
                             l);
  if (it == active_leafsets_.end() || *it != l) {
    active_leafsets_.insert(it, l);
  }
}

void InvertedDatabase::InsertCoreOf(LeafsetId l, CoreId e) {
  if (l >= cores_of_.size()) cores_of_.resize(l + 1);
  auto& cores = cores_of_[l];
  auto it = std::lower_bound(cores.begin(), cores.end(), e);
  if (it == cores.end() || *it != e) cores.insert(it, e);
}

void InvertedDatabase::EraseCoreOf(LeafsetId l, CoreId e) {
  auto& cores = cores_of_[l];
  auto it = std::lower_bound(cores.begin(), cores.end(), e);
  CSPM_DCHECK(it != cores.end() && *it == e);
  cores.erase(it);
  if (cores.empty()) {
    auto ait = std::lower_bound(active_leafsets_.begin(),
                                active_leafsets_.end(), l);
    if (ait != active_leafsets_.end() && *ait == l) {
      active_leafsets_.erase(ait);
    }
  }
}

void InvertedDatabase::AddInitialLine(CoreId e, LeafsetId l, VertexId v) {
  PosList& positions = lines_[Key(e, l)];
  // Vertices are visited in increasing order during construction, so the
  // list stays sorted; a vertex is added at most once per (e, l).
  CSPM_DCHECK(positions.empty() || positions.back() < v);
  positions.push_back(v);
  ++core_line_total_[e];
}

void InvertedDatabase::Finalize() {
  num_lines_ = lines_.size();
  for (const auto& [key, positions] : lines_) {
    (void)positions;
    CoreId e = static_cast<CoreId>(key >> 32);
    LeafsetId l = static_cast<LeafsetId>(key);
    InsertCoreOf(l, e);
    ActivateLeafset(l);
  }
}

StatusOr<InvertedDatabase> InvertedDatabase::FromGraph(
    const graph::AttributedGraph& g) {
  // Single-core-value mode: coreset ids coincide with attribute ids.
  std::vector<std::vector<AttrId>> coreset_values(g.num_attribute_values());
  std::vector<std::vector<CoreId>> vertex_coresets(g.num_vertices());
  for (AttrId a = 0; a < g.num_attribute_values(); ++a) {
    coreset_values[a] = {a};
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto attrs = g.Attributes(v);
    vertex_coresets[v].assign(attrs.begin(), attrs.end());
  }
  return FromGraphWithCoresets(g, std::move(coreset_values), vertex_coresets);
}

StatusOr<InvertedDatabase> InvertedDatabase::FromGraphWithCoresets(
    const graph::AttributedGraph& g,
    std::vector<std::vector<AttrId>> coreset_values,
    const std::vector<std::vector<CoreId>>& vertex_coresets) {
  if (vertex_coresets.size() != g.num_vertices()) {
    return Status::InvalidArgument(
        "vertex_coresets must have one entry per vertex");
  }
  InvertedDatabase idb;
  idb.coreset_values_ = std::move(coreset_values);
  idb.coreset_freq_.assign(idb.coreset_values_.size(), 0);
  idb.core_line_total_.assign(idb.coreset_values_.size(), 0);
  idb.vertex_coresets_ = vertex_coresets;

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (CoreId c : vertex_coresets[v]) {
      if (c >= idb.coreset_values_.size()) {
        return Status::InvalidArgument("vertex coreset id out of range");
      }
      ++idb.coreset_freq_[c];
      ++idb.total_coreset_freq_;
    }
  }

  // Pre-intern singleton leafsets so that leafset id == attr id for all
  // attribute values (convenient and deterministic).
  for (AttrId a = 0; a < g.num_attribute_values(); ++a) {
    LeafsetId l = idb.leafsets_.Intern({a});
    CSPM_CHECK(l == a);
  }

  // Neighbourhood attribute union, computed per vertex with a stamp array.
  std::vector<uint32_t> stamp(g.num_attribute_values(), 0);
  uint32_t current = 0;
  std::vector<AttrId> neighbourhood;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (vertex_coresets[v].empty()) continue;
    ++current;
    neighbourhood.clear();
    for (VertexId w : g.Neighbors(v)) {
      for (AttrId a : g.Attributes(w)) {
        if (stamp[a] != current) {
          stamp[a] = current;
          neighbourhood.push_back(a);
        }
      }
    }
    if (neighbourhood.empty()) continue;
    std::sort(neighbourhood.begin(), neighbourhood.end());
    for (CoreId c : vertex_coresets[v]) {
      for (AttrId y : neighbourhood) {
        idb.AddInitialLine(c, /*leafset=*/y, v);
      }
    }
  }
  idb.Finalize();
  return idb;
}

MergeOutcome InvertedDatabase::MergeLeafsets(LeafsetId x, LeafsetId y) {
  CSPM_CHECK(x != y);
  MergeOutcome outcome;
  const std::vector<CoreId>& cx = CoresOf(x);
  const std::vector<CoreId>& cy = CoresOf(y);
  std::vector<CoreId> shared;
  std::set_intersection(cx.begin(), cx.end(), cy.begin(), cy.end(),
                        std::back_inserter(shared));
  if (shared.empty()) return outcome;

  const LeafsetId u = leafsets_.InternUnion(x, y);
  outcome.merged_id = u;
  PosList intersection;
  PosList remainder;
  for (CoreId e : shared) {
    auto itx = lines_.find(Key(e, x));
    auto ity = lines_.find(Key(e, y));
    CSPM_DCHECK(itx != lines_.end() && ity != lines_.end());
    IntersectInto(itx->second, ity->second, &intersection);
    if (intersection.empty()) continue;
    outcome.no_op = false;
    ++outcome.cores_touched;
    outcome.moved_positions += intersection.size();

    // Shrink the x line.
    DifferenceInto(itx->second, intersection, &remainder);
    if (remainder.empty()) {
      lines_.erase(itx);
      --num_lines_;
      EraseCoreOf(x, e);
    } else {
      itx->second = remainder;
    }
    // Shrink the y line.
    DifferenceInto(ity->second, intersection, &remainder);
    if (remainder.empty()) {
      lines_.erase(ity);
      --num_lines_;
      EraseCoreOf(y, e);
    } else {
      ity->second = remainder;
    }
    // Grow (or create) the union line. Positions are disjoint from any
    // existing union-line positions by the losslessness invariant.
    PosList& target = lines_[Key(e, u)];
    if (target.empty()) {
      ++num_lines_;
      InsertCoreOf(u, e);
      ActivateLeafset(u);
      target = intersection;
    } else {
      PosList merged;
      merged.reserve(target.size() + intersection.size());
      std::merge(target.begin(), target.end(), intersection.begin(),
                 intersection.end(), std::back_inserter(merged));
      target = std::move(merged);
    }
    // Two line-occurrences removed, one added: f_e drops by |I|.
    CSPM_DCHECK(core_line_total_[e] >= intersection.size());
    core_line_total_[e] -= intersection.size();
  }
  if (outcome.no_op) return outcome;

  for (LeafsetId l : {x, y}) {
    if (CoresOf(l).empty()) {
      outcome.totally_merged.push_back(l);
    } else {
      outcome.partly_merged.push_back(l);
    }
  }
  return outcome;
}

double InvertedDatabase::DataCostBits() const {
  double cost = 0.0;
  for (uint64_t fe : core_line_total_) {
    cost += mdl::XLog2X(static_cast<double>(fe));
  }
  for (const auto& [key, positions] : lines_) {
    (void)key;
    cost -= mdl::XLog2X(static_cast<double>(positions.size()));
  }
  return cost;
}

}  // namespace cspm::core
