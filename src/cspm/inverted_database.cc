#include "cspm/inverted_database.h"

#include <algorithm>

#include "cspm/scoring_plan.h"
#include "cspm/verify.h"
#include "mdl/codes.h"
#include "util/check.h"

namespace cspm::core {
namespace {

// out = a - b for sorted ranges.
void DifferenceInto(PosListView a, PosListView b, PosList* out) {
  out->clear();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*out));
}

// out = a ∩ b for sorted ranges.
void IntersectInto(PosListView a, PosListView b, PosList* out) {
  out->clear();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

}  // namespace

size_t InvertedDatabase::LowerBoundCore(const LeafsetLines& lines, CoreId e) {
  return static_cast<size_t>(
      std::lower_bound(lines.cores.begin(), lines.cores.end(), e) -
      lines.cores.begin());
}

void InvertedDatabase::ActivateLeafset(LeafsetId l) {
  auto it = std::lower_bound(active_leafsets_.begin(), active_leafsets_.end(),
                             l);
  if (it == active_leafsets_.end() || *it != l) {
    active_leafsets_.insert(it, l);
  }
}

void InvertedDatabase::DeactivateLeafset(LeafsetId l) {
  auto it = std::lower_bound(active_leafsets_.begin(), active_leafsets_.end(),
                             l);
  if (it != active_leafsets_.end() && *it == l) {
    active_leafsets_.erase(it);
  }
}

void InvertedDatabase::EraseLineAt(LeafsetId l, size_t i) {
  LeafsetLines& lines = lines_of_[l.index()];
  pool_.Free(lines.refs[i]);
  lines.cores.erase(lines.cores.begin() + i);
  lines.refs.erase(lines.refs.begin() + i);
  --num_lines_;
  if (lines.cores.empty()) DeactivateLeafset(l);
}

StatusOr<InvertedDatabase> InvertedDatabase::FromGraph(
    const graph::AttributedGraph& g) {
  // Single-core-value mode: coreset ids coincide with attribute ids.
  std::vector<std::vector<AttrId>> coreset_values(g.num_attribute_values());
  std::vector<std::vector<CoreId>> vertex_coresets(g.num_vertices().index());
  for (AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    coreset_values[a.index()] = {a};
  }
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    vertex_coresets[v.index()].clear();
    for (AttrId a : g.Attributes(v)) {
      vertex_coresets[v.index()].push_back(CoreId(a.value()));
    }
  }
  return FromGraphWithCoresets(g, std::move(coreset_values), vertex_coresets);
}

StatusOr<InvertedDatabase> InvertedDatabase::FromGraphWithCoresets(
    const graph::AttributedGraph& g,
    std::vector<std::vector<AttrId>> coreset_values,
    const std::vector<std::vector<CoreId>>& vertex_coresets) {
  if (vertex_coresets.size() != g.num_vertices().index()) {
    return Status::InvalidArgument(
        "vertex_coresets must have one entry per vertex");
  }
  InvertedDatabase idb;
  idb.coreset_values_ = std::move(coreset_values);
  idb.coreset_freq_.assign(idb.coreset_values_.size(), 0);
  idb.core_line_total_.assign(idb.coreset_values_.size(), 0);
  idb.vertex_coresets_ = vertex_coresets;

  for (VertexId v(0); v < g.num_vertices(); ++v) {
    for (CoreId c : vertex_coresets[v.index()]) {
      if (c.index() >= idb.coreset_values_.size()) {
        return Status::InvalidArgument("vertex coreset id out of range");
      }
      ++idb.coreset_freq_[c.index()];
      ++idb.total_coreset_freq_;
    }
  }

  // Pre-intern singleton leafsets so that leafset id == attr id for all
  // attribute values (convenient and deterministic).
  for (AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    LeafsetId l = idb.leafsets_.Intern({a});
    CSPM_CHECK(l.value() == a.value());
  }

  // Group the (leaf value, coreset, vertex) occurrences into contiguous
  // initial lines with two linear counting scatters — no hashing, no
  // comparison sort. Vertices are visited in ascending order throughout,
  // so every scatter is stable and position lists come out sorted.
  const size_t num_attrs = g.num_attribute_values();
  std::vector<uint32_t> stamp(num_attrs, 0);
  uint32_t current = 0;
  std::vector<AttrId> neighbourhood;

  // Pass 1: per-leaf occurrence counts.
  std::vector<uint64_t> leaf_offsets(num_attrs + 1, 0);
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    if (vertex_coresets[v.index()].empty()) continue;
    ++current;
    neighbourhood.clear();
    for (VertexId w : g.Neighbors(v)) {
      for (AttrId a : g.Attributes(w)) {
        if (stamp[a.index()] != current) {
          stamp[a.index()] = current;
          neighbourhood.push_back(a);
        }
      }
    }
    const uint64_t cores = vertex_coresets[v.index()].size();
    for (AttrId y : neighbourhood) leaf_offsets[y.index() + 1] += cores;
  }
  for (size_t a = 0; a < num_attrs; ++a) leaf_offsets[a + 1] += leaf_offsets[a];
  const uint64_t total = leaf_offsets[num_attrs];

  // Pass 2: scatter (core, vertex) pairs into per-leaf buckets, in v order.
  std::vector<CoreId> bucket_core(total);
  std::vector<VertexId> bucket_vertex(total);
  std::vector<uint64_t> cursor(leaf_offsets.begin(), leaf_offsets.end() - 1);
  current = 0;
  std::fill(stamp.begin(), stamp.end(), 0);
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    if (vertex_coresets[v.index()].empty()) continue;
    ++current;
    neighbourhood.clear();
    for (VertexId w : g.Neighbors(v)) {
      for (AttrId a : g.Attributes(w)) {
        if (stamp[a.index()] != current) {
          stamp[a.index()] = current;
          neighbourhood.push_back(a);
        }
      }
    }
    for (AttrId y : neighbourhood) {
      uint64_t& at = cursor[y.index()];
      for (CoreId c : vertex_coresets[v.index()]) {
        bucket_core[at] = c;
        bucket_vertex[at] = v;
        ++at;
      }
    }
  }

  // Pass 3: within each leaf bucket, a counting scatter by coreset (the
  // same stamp trick over core ids) yields the lines, cores ascending.
  idb.lines_of_.resize(num_attrs);
  std::vector<uint32_t> core_stamp(idb.coreset_values_.size(), 0);
  std::vector<uint64_t> core_cursor(idb.coreset_values_.size(), 0);
  std::vector<CoreId> cores_here;
  std::vector<VertexId> line_vertices;
  uint32_t leaf_generation = 0;
  for (size_t leaf = 0; leaf < num_attrs; ++leaf) {
    const uint64_t begin = leaf_offsets[leaf];
    const uint64_t end = leaf_offsets[leaf + 1];
    if (begin == end) continue;
    ++leaf_generation;
    cores_here.clear();
    for (uint64_t i = begin; i < end; ++i) {
      const CoreId c = bucket_core[i];
      if (core_stamp[c.index()] != leaf_generation) {
        core_stamp[c.index()] = leaf_generation;
        core_cursor[c.index()] = 0;
        cores_here.push_back(c);
      }
      ++core_cursor[c.index()];
    }
    std::sort(cores_here.begin(), cores_here.end());
    // Per-core cursors become scatter offsets into the leaf's line block.
    uint64_t offset = 0;
    for (CoreId c : cores_here) {
      const uint64_t count = core_cursor[c.index()];
      core_cursor[c.index()] = offset;
      offset += count;
    }
    line_vertices.resize(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      line_vertices[core_cursor[bucket_core[i].index()]++] = bucket_vertex[i];
    }

    LeafsetLines& lines = idb.lines_of_[leaf];
    lines.cores.reserve(cores_here.size());
    lines.refs.reserve(cores_here.size());
    uint64_t line_begin = 0;
    for (CoreId c : cores_here) {
      const uint64_t line_end = core_cursor[c.index()];  // stops past c's run
      const std::span<const VertexId> positions(
          line_vertices.data() + line_begin, line_end - line_begin);
      lines.cores.push_back(c);
      lines.refs.push_back(idb.pool_.Allocate(positions));
      idb.core_line_total_[c.index()] += positions.size();
      ++idb.num_lines_;
      line_begin = line_end;
    }
    idb.active_leafsets_.push_back(LeafsetId(static_cast<uint32_t>(leaf)));
  }
  CSPM_DCHECK_OK(CheckInvariants(idb));
  return idb;
}

InvertedDatabase InvertedDatabase::Clone() const {
  InvertedDatabase c;
  c.leafsets_ = leafsets_;
  c.coreset_values_ = coreset_values_;
  c.coreset_freq_ = coreset_freq_;
  c.total_coreset_freq_ = total_coreset_freq_;
  c.core_line_total_ = core_line_total_;
  c.vertex_coresets_ = vertex_coresets_;
  c.active_leafsets_ = active_leafsets_;
  c.num_lines_ = num_lines_;
  c.lines_of_.resize(lines_of_.size());
  for (size_t l = 0; l < lines_of_.size(); ++l) {
    const LeafsetLines& src = lines_of_[l];
    LeafsetLines& dst = c.lines_of_[l];
    dst.cores = src.cores;
    dst.refs.reserve(src.refs.size());
    for (util::PosListPool::Ref ref : src.refs) {
      dst.refs.push_back(c.pool_.Allocate(pool_.View(ref)));
    }
  }
  return c;
}

void GatherDistinctNeighbourAttrs(const graph::AttributedGraph& g, VertexId v,
                                  std::vector<AttrId>* out) {
  // One definition of "neighbourhood" across the library (scoring_plan),
  // deduplicated for line membership.
  GatherNeighbourhoodAttrs(g, v, out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

Status InvertedDatabase::ApplyDelta(const graph::AttributedGraph& old_graph,
                                    const graph::AttributedGraph& new_graph,
                                    std::span<const VertexId> dirty_vertices,
                                    DeltaPatchStats* stats) {
  // Pre-merge single-value-coreset state only: one singleton leafset and
  // one singleton coreset per attribute value, ids coinciding.
  if (leafsets_.size() != coreset_values_.size()) {
    return Status::FailedPrecondition(
        "ApplyDelta needs the pre-merge database (leafsets were merged)");
  }
  for (CoreId c(0); c.index() < coreset_values_.size(); ++c) {
    if (coreset_values_[c.index()].size() != 1 ||
        coreset_values_[c.index()][0].value() != c.value()) {
      return Status::FailedPrecondition(
          "ApplyDelta needs a single-value-coreset database");
    }
  }
  const VertexId n_old = old_graph.num_vertices();
  const VertexId n_new = new_graph.num_vertices();
  if (n_new < n_old || vertex_coresets_.size() != n_old.index()) {
    return Status::InvalidArgument(
        "ApplyDelta: graphs do not bracket this database");
  }

  // Append singleton coresets + leafsets for attribute values new to the
  // patched graph, in id order (keeps leafset id == attr id).
  const size_t num_attrs_new = new_graph.num_attribute_values();
  for (AttrId a(static_cast<uint32_t>(coreset_values_.size()));
       a.index() < num_attrs_new; ++a) {
    coreset_values_.push_back({a});
    coreset_freq_.push_back(0);
    core_line_total_.push_back(0);
    const LeafsetId l = leafsets_.Intern({a});
    CSPM_CHECK(l.value() == a.value());
  }
  lines_of_.resize(num_attrs_new);
  vertex_coresets_.resize(n_new.index());

  std::vector<char> core_dirty(num_attrs_new, 0);
  std::vector<char> leafset_touched(num_attrs_new, 0);
  PosList scratch;

  // Removes u from line (c, y); the line must hold it.
  auto remove_position = [&](CoreId c, LeafsetId y, VertexId u) {
    LeafsetLines& lines = lines_of_[y.index()];
    const size_t i = LowerBoundCore(lines, c);
    CSPM_CHECK(i < lines.cores.size() && lines.cores[i] == c);
    PosListView view = pool_.View(lines.refs[i]);
    if (view.size() == 1) {
      CSPM_CHECK(view[0] == u);
      EraseLineAt(y, i);
    } else {
      scratch.clear();
      auto it = std::lower_bound(view.begin(), view.end(), u);
      CSPM_CHECK(it != view.end() && *it == u);
      scratch.insert(scratch.end(), view.begin(), it);
      scratch.insert(scratch.end(), it + 1, view.end());
      pool_.Assign(lines.refs[i], scratch);
    }
    --core_line_total_[c.index()];
    core_dirty[c.index()] = 1;
    leafset_touched[y.index()] = 1;
    ++stats->positions_removed;
  };
  // Adds u to line (c, y), creating the line if needed.
  auto insert_position = [&](CoreId c, LeafsetId y, VertexId u) {
    LeafsetLines& lines = lines_of_[y.index()];
    const size_t i = LowerBoundCore(lines, c);
    if (i == lines.cores.size() || lines.cores[i] != c) {
      if (lines.cores.empty()) ActivateLeafset(y);
      lines.cores.insert(lines.cores.begin() + i, c);
      const VertexId one[] = {u};
      lines.refs.insert(lines.refs.begin() + i, pool_.Allocate(one));
      ++num_lines_;
    } else {
      PosListView view = pool_.View(lines.refs[i]);
      auto it = std::lower_bound(view.begin(), view.end(), u);
      CSPM_CHECK(it == view.end() || *it != u);
      scratch.clear();
      scratch.insert(scratch.end(), view.begin(), it);
      scratch.push_back(u);
      scratch.insert(scratch.end(), it, view.end());
      pool_.Assign(lines.refs[i], scratch);
    }
    ++core_line_total_[c.index()];
    core_dirty[c.index()] = 1;
    leafset_touched[y.index()] = 1;
    ++stats->positions_added;
  };

  std::vector<AttrId> nbr_old;
  std::vector<AttrId> nbr_new;
  std::vector<CoreId> cores_new;
  for (VertexId u : dirty_vertices) {
    if (u >= n_new) {
      return Status::InvalidArgument("ApplyDelta: dirty vertex out of range");
    }
    // Old contribution comes from this database's own coreset assignment
    // and the old graph; the new one from the patched graph (single-core
    // mode: coresets == own attributes).
    const std::vector<CoreId>& cores_old = vertex_coresets_[u.index()];
    if (u < n_old) {
      GatherDistinctNeighbourAttrs(old_graph, u, &nbr_old);
    } else {
      nbr_old.clear();
    }
    GatherDistinctNeighbourAttrs(new_graph, u, &nbr_new);
    cores_new.clear();
    for (AttrId a : new_graph.Attributes(u)) {
      cores_new.push_back(CoreId(a.value()));
    }

    // Per leaf value y, diff the contributing core sets.
    size_t oi = 0;
    size_t ni = 0;
    auto patch_leaf = [&](AttrId y_attr, bool in_old, bool in_new) {
      const LeafsetId y(y_attr.value());
      size_t a = 0;
      size_t b = 0;
      const size_t na = in_old ? cores_old.size() : 0;
      const size_t nb = in_new ? cores_new.size() : 0;
      while (a < na || b < nb) {
        if (b >= nb || (a < na && cores_old[a] < cores_new[b])) {
          remove_position(cores_old[a], y, u);
          ++a;
        } else if (a >= na || cores_new[b] < cores_old[a]) {
          insert_position(cores_new[b], y, u);
          ++b;
        } else {
          ++a;
          ++b;
        }
      }
    };
    while (oi < nbr_old.size() || ni < nbr_new.size()) {
      if (ni >= nbr_new.size() ||
          (oi < nbr_old.size() && nbr_old[oi] < nbr_new[ni])) {
        patch_leaf(nbr_old[oi], /*in_old=*/true, /*in_new=*/false);
        ++oi;
      } else if (oi >= nbr_old.size() || nbr_new[ni] < nbr_old[oi]) {
        patch_leaf(nbr_new[ni], /*in_old=*/false, /*in_new=*/true);
        ++ni;
      } else {
        patch_leaf(nbr_old[oi], /*in_old=*/true, /*in_new=*/true);
        ++oi;
        ++ni;
      }
    }

    // Static coreset frequencies follow the vertex's own attribute set.
    size_t a = 0;
    size_t b = 0;
    while (a < cores_old.size() || b < cores_new.size()) {
      if (b >= cores_new.size() ||
          (a < cores_old.size() && cores_old[a] < cores_new[b])) {
        --coreset_freq_[cores_old[a].index()];
        --total_coreset_freq_;
        ++a;
      } else if (a >= cores_old.size() || cores_new[b] < cores_old[a]) {
        ++coreset_freq_[cores_new[b].index()];
        ++total_coreset_freq_;
        ++b;
      } else {
        ++a;
        ++b;
      }
    }
    vertex_coresets_[u.index()] = cores_new;
  }

  for (CoreId c(0); c.index() < num_attrs_new; ++c) {
    if (core_dirty[c.index()]) stats->dirty_cores.push_back(c);
  }
  for (LeafsetId l(0); l.index() < num_attrs_new; ++l) {
    if (leafset_touched[l.index()]) stats->touched_leafsets.push_back(l);
  }
  CSPM_DCHECK_OK(CheckInvariants(*this));
  return Status::OK();
}

Status InvertedDatabase::ApplyDeltaMerged(
    const graph::AttributedGraph& old_graph,
    const graph::AttributedGraph& new_graph,
    std::span<const VertexId> dirty_vertices, DeltaPatchStats* stats) {
  // Merges never touch coresets, so the single-value-coreset shape
  // (coreset id == attribute value) must still hold; leafsets are free to
  // have been merged.
  for (CoreId c(0); c.index() < coreset_values_.size(); ++c) {
    if (coreset_values_[c.index()].size() != 1 ||
        coreset_values_[c.index()][0].value() != c.value()) {
      return Status::FailedPrecondition(
          "ApplyDeltaMerged needs a single-value-coreset database");
    }
  }
  const VertexId n_old = old_graph.num_vertices();
  const VertexId n_new = new_graph.num_vertices();
  if (n_new < n_old || vertex_coresets_.size() != n_old.index()) {
    return Status::InvalidArgument(
        "ApplyDeltaMerged: graphs do not bracket this database");
  }

  // Append singleton coresets for attribute values new to the patched
  // graph. Unlike the pre-merge patch, no leafset is interned here — the
  // greedy re-cover interns singletons lazily, and in a merged registry
  // their ids need not coincide with attribute ids.
  const size_t num_attrs_new = new_graph.num_attribute_values();
  for (AttrId a(static_cast<uint32_t>(coreset_values_.size()));
       a.index() < num_attrs_new; ++a) {
    coreset_values_.push_back({a});
    coreset_freq_.push_back(0);
    core_line_total_.push_back(0);
  }
  const size_t num_cores = coreset_values_.size();
  vertex_coresets_.resize(n_new.index());

  // Per-core candidate leafsets, largest value set first then lowest id:
  // the removal sweep and the greedy re-cover both walk these. Built
  // once — lines erased later read as absent, and lines created later
  // only ever hold already-processed dirty vertices, so staleness never
  // hides a position the sweep must remove.
  std::vector<std::vector<LeafsetId>> leafsets_under(num_cores);
  for (LeafsetId l : active_leafsets_) {
    for (CoreId c : lines_of_[l.index()].cores) {
      leafsets_under[c.index()].push_back(l);
    }
  }
  for (std::vector<LeafsetId>& cands : leafsets_under) {
    std::sort(cands.begin(), cands.end(), [this](LeafsetId a, LeafsetId b) {
      const size_t sa = leafsets_.Values(a).size();
      const size_t sb = leafsets_.Values(b).size();
      if (sa != sb) return sa > sb;
      return a < b;
    });
  }

  std::vector<char> core_dirty(num_cores, 0);
  std::vector<LeafsetId> touched;
  PosList scratch;

  // Removes u from line (c, y) when present; false when it is not there.
  auto remove_if_present = [&](CoreId c, LeafsetId y, VertexId u) {
    LeafsetLines& lines = lines_of_[y.index()];
    const size_t i = LowerBoundCore(lines, c);
    if (i == lines.cores.size() || lines.cores[i] != c) return false;
    PosListView view = pool_.View(lines.refs[i]);
    auto it = std::lower_bound(view.begin(), view.end(), u);
    if (it == view.end() || *it != u) return false;
    if (view.size() == 1) {
      EraseLineAt(y, i);
    } else {
      scratch.clear();
      scratch.insert(scratch.end(), view.begin(), it);
      scratch.insert(scratch.end(), it + 1, view.end());
      pool_.Assign(lines.refs[i], scratch);
    }
    --core_line_total_[c.index()];
    core_dirty[c.index()] = 1;
    touched.push_back(y);
    ++stats->positions_removed;
    return true;
  };
  // Adds u to line (c, y), creating the line if needed; u must be absent.
  auto insert_position = [&](CoreId c, LeafsetId y, VertexId u) {
    if (y.index() >= lines_of_.size()) lines_of_.resize(y.index() + 1);
    LeafsetLines& lines = lines_of_[y.index()];
    const size_t i = LowerBoundCore(lines, c);
    if (i == lines.cores.size() || lines.cores[i] != c) {
      if (lines.cores.empty()) ActivateLeafset(y);
      lines.cores.insert(lines.cores.begin() + i, c);
      const VertexId one[] = {u};
      lines.refs.insert(lines.refs.begin() + i, pool_.Allocate(one));
      ++num_lines_;
    } else {
      PosListView view = pool_.View(lines.refs[i]);
      auto it = std::lower_bound(view.begin(), view.end(), u);
      CSPM_CHECK(it == view.end() || *it != u);
      scratch.clear();
      scratch.insert(scratch.end(), view.begin(), it);
      scratch.push_back(u);
      scratch.insert(scratch.end(), it, view.end());
      pool_.Assign(lines.refs[i], scratch);
    }
    ++core_line_total_[c.index()];
    core_dirty[c.index()] = 1;
    touched.push_back(y);
    ++stats->positions_added;
  };

  // Epoch-stamped cover state: needed[a] == cur while attribute a still
  // awaits cover for the vertex being re-inserted under the current core.
  std::vector<uint32_t> needed(num_attrs_new, 0);
  uint32_t cur = 0;

  std::vector<AttrId> nbr_new;
  std::vector<CoreId> cores_old;
  std::vector<CoreId> cores_new;
  std::vector<AttrId> singleton(1, AttrId(0));
  for (VertexId u : dirty_vertices) {
    if (u >= n_new) {
      return Status::InvalidArgument(
          "ApplyDeltaMerged: dirty vertex out of range");
    }
    // Remove u everywhere under its old cores. By the partition invariant
    // those lines jointly held u's old neighbour values exactly once each,
    // so the sweep needs no old-graph adjacency.
    cores_old = vertex_coresets_[u.index()];  // copied: overwritten below
    for (CoreId c : cores_old) {
      for (LeafsetId l : leafsets_under[c.index()]) {
        remove_if_present(c, l, u);
      }
    }

    GatherDistinctNeighbourAttrs(new_graph, u, &nbr_new);
    cores_new.clear();
    for (AttrId a : new_graph.Attributes(u)) {
      cores_new.push_back(CoreId(a.value()));
    }
    // Greedy re-cover of the new neighbour values under each new core:
    // existing mined leafsets whose values are all still uncovered first,
    // leftovers to singleton lines. Deterministic by the candidate order.
    for (CoreId c : cores_new) {
      ++cur;
      for (AttrId a : nbr_new) needed[a.index()] = cur;
      size_t remaining = nbr_new.size();
      for (LeafsetId l : leafsets_under[c.index()]) {
        if (remaining == 0) break;
        const std::vector<AttrId>& values = leafsets_.Values(l);
        if (values.size() > remaining) continue;
        bool fits = true;
        for (AttrId a : values) {
          if (needed[a.index()] != cur) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;
        insert_position(c, l, u);
        for (AttrId a : values) needed[a.index()] = 0;
        remaining -= values.size();
      }
      if (remaining > 0) {
        for (AttrId a : nbr_new) {
          if (needed[a.index()] != cur) continue;
          singleton[0] = a;
          insert_position(c, leafsets_.Intern(singleton), u);
        }
      }
    }

    // Static coreset frequencies follow the vertex's own attribute set.
    size_t a = 0;
    size_t b = 0;
    while (a < cores_old.size() || b < cores_new.size()) {
      if (b >= cores_new.size() ||
          (a < cores_old.size() && cores_old[a] < cores_new[b])) {
        --coreset_freq_[cores_old[a].index()];
        --total_coreset_freq_;
        ++a;
      } else if (a >= cores_old.size() || cores_new[b] < cores_old[a]) {
        ++coreset_freq_[cores_new[b].index()];
        ++total_coreset_freq_;
        ++b;
      } else {
        ++a;
        ++b;
      }
    }
    vertex_coresets_[u.index()] = cores_new;
  }

  for (CoreId c(0); c.index() < num_cores; ++c) {
    if (core_dirty[c.index()]) stats->dirty_cores.push_back(c);
  }
  // One `touched` entry was pushed per moved position, so a leafset's
  // multiplicity is its moved-position count.
  std::sort(touched.begin(), touched.end());
  for (size_t i = 0; i < touched.size();) {
    size_t j = i;
    while (j < touched.size() && touched[j] == touched[i]) ++j;
    stats->touched_leafsets.push_back(touched[i]);
    stats->touched_position_moves.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }
  CSPM_DCHECK_OK(CheckInvariants(*this));
  return Status::OK();
}

Status InvertedDatabase::SplitLine(CoreId e, LeafsetId l) {
  if (l.index() >= lines_of_.size()) {
    return Status::InvalidArgument("SplitLine: no such line");
  }
  const size_t i = LowerBoundCore(lines_of_[l.index()], e);
  if (i == lines_of_[l.index()].cores.size() ||
      lines_of_[l.index()].cores[i] != e) {
    return Status::InvalidArgument("SplitLine: no such line");
  }
  // Copies, not references: Intern below may reallocate the registry's
  // value storage, and EraseLineAt frees the line's pool extent.
  const std::vector<AttrId> values = leafsets_.Values(l);
  if (values.size() < 2) {
    return Status::InvalidArgument("SplitLine: singleton leafset");
  }
  PosListView view = pool_.View(lines_of_[l.index()].refs[i]);
  const PosList positions(view.begin(), view.end());
  const uint64_t fl = positions.size();
  EraseLineAt(l, i);
  core_line_total_[e.index()] -= fl;

  PosList merged;
  for (AttrId a : values) {
    const LeafsetId s = leafsets_.Intern({a});
    if (s.index() >= lines_of_.size()) lines_of_.resize(s.index() + 1);
    LeafsetLines& lines = lines_of_[s.index()];
    const size_t j = LowerBoundCore(lines, e);
    if (j == lines.cores.size() || lines.cores[j] != e) {
      if (lines.cores.empty()) ActivateLeafset(s);
      lines.cores.insert(lines.cores.begin() + j, e);
      lines.refs.insert(lines.refs.begin() + j, pool_.Allocate(positions));
      ++num_lines_;
    } else {
      // Disjoint from the existing singleton line by the partition
      // invariant (a vertex's value-a occurrence lives in exactly one
      // line under e, and it lived in (e, l)).
      PosListView existing = pool_.View(lines.refs[j]);
      merged.clear();
      merged.reserve(existing.size() + positions.size());
      std::merge(existing.begin(), existing.end(), positions.begin(),
                 positions.end(), std::back_inserter(merged));
      pool_.Assign(lines.refs[j], merged);
    }
    core_line_total_[e.index()] += fl;
  }
  CSPM_DCHECK_OK(CheckInvariants(*this));
  return Status::OK();
}

MergeOutcome InvertedDatabase::MergeLeafsets(LeafsetId x, LeafsetId y) {
  CSPM_CHECK(x != y);
  MergeOutcome outcome;
  const std::vector<CoreId>& cx = CoresOf(x);
  const std::vector<CoreId>& cy = CoresOf(y);
  std::vector<CoreId> shared;
  std::set_intersection(cx.begin(), cx.end(), cy.begin(), cy.end(),
                        std::back_inserter(shared));
  if (shared.empty()) return outcome;

  const LeafsetId u = leafsets_.InternUnion(x, y);
  outcome.merged_id = u;
  if (u.index() >= lines_of_.size()) lines_of_.resize(u.index() + 1);

  PosList intersection;
  PosList remainder;
  for (CoreId e : shared) {
    // Indices are re-searched per coreset: erasures shift the vectors.
    LeafsetLines& lx = lines_of_[x.index()];
    LeafsetLines& ly = lines_of_[y.index()];
    const size_t ix = LowerBoundCore(lx, e);
    const size_t iy = LowerBoundCore(ly, e);
    CSPM_DCHECK(ix < lx.cores.size() && lx.cores[ix] == e);
    CSPM_DCHECK(iy < ly.cores.size() && ly.cores[iy] == e);
    IntersectInto(pool_.View(lx.refs[ix]), pool_.View(ly.refs[iy]),
                  &intersection);
    if (intersection.empty()) continue;
    outcome.no_op = false;
    ++outcome.cores_touched;
    outcome.touched_cores.push_back(e);  // `shared` ascending -> sorted
    outcome.moved_positions += intersection.size();

    // Shrink the x line.
    DifferenceInto(pool_.View(lx.refs[ix]), intersection, &remainder);
    if (remainder.empty()) {
      EraseLineAt(x, ix);
    } else {
      pool_.Assign(lx.refs[ix], remainder);
    }
    // Shrink the y line.
    DifferenceInto(pool_.View(ly.refs[iy]), intersection, &remainder);
    if (remainder.empty()) {
      EraseLineAt(y, iy);
    } else {
      pool_.Assign(ly.refs[iy], remainder);
    }
    // Grow (or create) the union line. Positions are disjoint from any
    // existing union-line positions by the losslessness invariant.
    LeafsetLines& lu = lines_of_[u.index()];
    const size_t iu = LowerBoundCore(lu, e);
    if (iu == lu.cores.size() || lu.cores[iu] != e) {
      if (lu.cores.empty()) ActivateLeafset(u);
      lu.cores.insert(lu.cores.begin() + iu, e);
      lu.refs.insert(lu.refs.begin() + iu, pool_.Allocate(intersection));
      ++num_lines_;
    } else {
      PosList merged;
      PosListView existing = pool_.View(lu.refs[iu]);
      merged.reserve(existing.size() + intersection.size());
      std::merge(existing.begin(), existing.end(), intersection.begin(),
                 intersection.end(), std::back_inserter(merged));
      pool_.Assign(lu.refs[iu], merged);
    }
    // Two line-occurrences removed, one added: f_e drops by |I|.
    CSPM_DCHECK(core_line_total_[e.index()] >= intersection.size());
    core_line_total_[e.index()] -= intersection.size();
  }
  if (outcome.no_op) return outcome;

  for (LeafsetId l : {x, y}) {
    if (CoresOf(l).empty()) {
      outcome.totally_merged.push_back(l);
    } else {
      outcome.partly_merged.push_back(l);
    }
  }
  return outcome;
}

double InvertedDatabase::DataCostBits() const {
  double cost = 0.0;
  for (uint64_t fe : core_line_total_) {
    cost += mdl::XLog2X(static_cast<double>(fe));
  }
  for (const LeafsetLines& lines : lines_of_) {
    for (util::PosListPool::Ref ref : lines.refs) {
      cost -= mdl::XLog2X(static_cast<double>(pool_.Size(ref)));
    }
  }
  return cost;
}

}  // namespace cspm::core
