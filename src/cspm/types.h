// Shared id types of the CSPM core.
#ifndef CSPM_CSPM_TYPES_H_
#define CSPM_CSPM_TYPES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"
#include "util/ids.h"

namespace cspm::core {

using graph::AttrId;
using graph::AttrValueId;
using graph::VertexId;

/// Dense id of an interned leafset (set of leaf attribute values). Strong
/// type: numerically a leafset id often equals the AttrValueId of its single
/// member in the pre-merge database, but the axes are distinct and the
/// conversion is spelled out where it is intentional.
using LeafsetId = ::cspm::LeafsetId;
/// Dense id of a coreset (set of core attribute values; a single value in
/// the default single-core configuration). Strong type, same rationale.
using CoreId = ::cspm::CoreId;

/// Sorted list of vertex positions (the third column of the inverted
/// database), as an owning scratch buffer.
using PosList = std::vector<VertexId>;

/// Non-owning view of a position list living in the flat storage pool.
/// Lines never have empty position lists, so an empty view means "no such
/// line". Views are invalidated by the next mutation of the database.
using PosListView = std::span<const VertexId>;

}  // namespace cspm::core

#endif  // CSPM_CSPM_TYPES_H_
