// Shared id types of the CSPM core.
#ifndef CSPM_CSPM_TYPES_H_
#define CSPM_CSPM_TYPES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"

namespace cspm::core {

using graph::AttrId;
using graph::VertexId;

/// Dense id of an interned leafset (set of leaf attribute values).
using LeafsetId = uint32_t;
/// Dense id of a coreset (set of core attribute values; a single value in
/// the default single-core configuration).
using CoreId = uint32_t;

/// Sorted list of vertex positions (the third column of the inverted
/// database), as an owning scratch buffer.
using PosList = std::vector<VertexId>;

/// Non-owning view of a position list living in the flat storage pool.
/// Lines never have empty position lists, so an empty view means "no such
/// line". Views are invalidated by the next mutation of the database.
using PosListView = std::span<const VertexId>;

}  // namespace cspm::core

#endif  // CSPM_CSPM_TYPES_H_
