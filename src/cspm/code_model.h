// The model M of Section IV-C: the standard code table ST over attribute
// values, the coreset code table CTc (Eq. 5), and the per-line leafset code
// CTL (Eq. 6). Provides the model-cost terms of the two-part MDL.
#ifndef CSPM_CSPM_CODE_MODEL_H_
#define CSPM_CSPM_CODE_MODEL_H_

#include <span>
#include <vector>

#include "cspm/inverted_database.h"
#include "cspm/types.h"

namespace cspm::core {

/// Immutable code-length oracle built from the graph's attribute frequencies
/// and the inverted database's coreset frequencies.
class CodeModel {
 public:
  /// Builds ST from the graph's (vertex, attribute) occurrence counts and
  /// CTc from the inverted database's static coreset frequencies.
  CodeModel(const graph::AttributedGraph& g, const InvertedDatabase& idb);

  /// ST code length of one attribute value: -log2(freq / total occurrences).
  double StCodeLength(AttrId a) const { return st_len_[a.index()]; }

  /// Cost of spelling a value set in ST codes (left column of CTL / CTc).
  double StCost(std::span<const AttrId> values) const;

  /// Code_c of Eq. 5 for a coreset.
  double CoreCodeLength(CoreId c) const { return core_len_[c.index()]; }

  /// Code_L of Eq. 6 for a line with frequency fl under a coreset whose
  /// dynamic total is fe.
  static double LeafCodeLength(uint64_t fl, uint64_t fe);

  /// L(CTc|I): every coreset spelled in ST codes plus its own code.
  double CoresetTableCostBits(const InvertedDatabase& idb) const;

  /// L(CTL|I): every line's leafset spelled in ST codes, plus the pointer to
  /// its coreset (Code_c), plus its own conditional code (Code_L).
  double LeafsetTableCostBits(const InvertedDatabase& idb) const;

  /// The per-line model cost used by the gain's model-delta term:
  /// StCost(leafset values) + CoreCodeLength(core). (The Code_L column is
  /// part of the data-dependent term and is accounted by Eq. 9.)
  double LineModelCost(std::span<const AttrId> leaf_values, CoreId core) const {
    return StCost(leaf_values) + CoreCodeLength(core);
  }

  /// Full two-part description length L(M, I) = L(CTc|I) + L(CTL|I) +
  /// L(I|M) (Eqs. 1-3, 8).
  double TotalDescriptionLengthBits(const InvertedDatabase& idb) const;

 private:
  std::vector<double> st_len_;
  std::vector<double> core_len_;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_CODE_MODEL_H_
