#include "cspm/scoring.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cspm::core {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

AttributeScores ScoreAttributesWithNeighbourhood(
    size_t num_attribute_values, const CspmModel& model,
    const std::vector<AttrId>& neighbourhood_attrs,
    const ScoringOptions& options) {
  AttributeScores scores;
  scores.raw.assign(num_attribute_values, kNegInf);

  std::vector<bool> in_neighbourhood(num_attribute_values, false);
  for (AttrId a : neighbourhood_attrs) {
    if (a.index() < num_attribute_values) in_neighbourhood[a.index()] = true;
  }

  for (const AStar& s : model.astars) {
    if (s.leaf_values.empty()) continue;
    size_t matched = 0;
    for (AttrId a : s.leaf_values) {
      if (a.index() < num_attribute_values && in_neighbourhood[a.index()]) {
        ++matched;
      }
    }
    const double similarity = static_cast<double>(matched) /
                              static_cast<double>(s.leaf_values.size());
    if (similarity < options.min_similarity) continue;
    const double w = 1.0 / similarity;
    const double cl = -w * s.code_length_bits;
    for (AttrId cv : s.core_values) {
      if (cv.index() < num_attribute_values && cl > scores.raw[cv.index()]) {
        scores.raw[cv.index()] = cl;
      }
    }
  }

  // Min-max normalization of finite scores into (0, 1]; -inf -> 0.
  double lo = std::numeric_limits<double>::infinity();
  double hi = kNegInf;
  for (double s : scores.raw) {
    if (std::isfinite(s)) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
  }
  scores.normalized.assign(num_attribute_values, 0.0);
  if (hi >= lo && std::isfinite(hi)) {
    const double span = hi - lo;
    for (size_t a = 0; a < num_attribute_values; ++a) {
      if (!std::isfinite(scores.raw[a])) continue;
      scores.normalized[a] =
          span > 0 ? 0.05 + 0.95 * (scores.raw[a] - lo) / span : 1.0;
    }
  }
  return scores;
}

AttributeScores ScoreAttributes(const graph::AttributedGraph& g,
                                const CspmModel& model, VertexId v,
                                const ScoringOptions& options) {
  std::vector<AttrId> neighbourhood;
  for (VertexId w : g.Neighbors(v)) {
    auto attrs = g.Attributes(w);
    neighbourhood.insert(neighbourhood.end(), attrs.begin(), attrs.end());
  }
  std::sort(neighbourhood.begin(), neighbourhood.end());
  neighbourhood.erase(
      std::unique(neighbourhood.begin(), neighbourhood.end()),
      neighbourhood.end());
  return ScoreAttributesWithNeighbourhood(g.num_attribute_values(), model,
                                          neighbourhood, options);
}

}  // namespace cspm::core
