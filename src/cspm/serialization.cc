#include "cspm/serialization.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace cspm::core {
namespace {

std::string RenderNames(const std::vector<AttrId>& values,
                        const graph::AttributeDictionary& dict) {
  std::vector<std::string> names;
  names.reserve(values.size());
  for (AttrId a : values) names.push_back(dict.Name(a));
  return JoinStrings(names, " ");
}

StatusOr<std::vector<AttrId>> ParseNames(
    const std::vector<std::string>& tokens, size_t begin, size_t end,
    const graph::AttributeDictionary& dict) {
  std::vector<AttrId> out;
  for (size_t i = begin; i < end; ++i) {
    AttrId id = dict.Find(tokens[i]);
    if (id == graph::AttributeDictionary::kNotFound) {
      return Status::NotFound("unknown attribute value: " + tokens[i]);
    }
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string ModelToText(const CspmModel& model,
                        const graph::AttributeDictionary& dict) {
  // Doubles print with max_digits10 (%.17g) so stats and code lengths
  // survive a save→load round trip bit-exactly.
  std::string out = "# cspm model v1\n";
  out += StrFormat("stats %.17g %.17g %llu\n", model.stats.initial_dl_bits,
                   model.stats.final_dl_bits,
                   static_cast<unsigned long long>(model.stats.iterations));
  for (const AStar& s : model.astars) {
    out += StrFormat("astar %.17g %llu %llu %llu | ", s.code_length_bits,
                     static_cast<unsigned long long>(s.frequency),
                     static_cast<unsigned long long>(s.core_total),
                     static_cast<unsigned long long>(s.coreset_frequency));
    out += RenderNames(s.core_values, dict);
    out += " | ";
    out += RenderNames(s.leaf_values, dict);
    out += "\n";
  }
  return out;
}

StatusOr<CspmModel> ModelFromText(const std::string& text,
                                  const graph::AttributeDictionary& dict) {
  CspmModel model;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto tokens = SplitString(stripped, ' ');
    if (tokens[0] == "stats") {
      if (tokens.size() != 4) {
        return Status::IOError(
            StrFormat("line %zu: stats needs 3 fields", line_no));
      }
      model.stats.initial_dl_bits = std::strtod(tokens[1].c_str(), nullptr);
      model.stats.final_dl_bits = std::strtod(tokens[2].c_str(), nullptr);
      model.stats.iterations = std::strtoull(tokens[3].c_str(), nullptr, 10);
    } else if (tokens[0] == "astar") {
      // astar <code> <fL> <fe> <fc> | cores... | leaves...
      size_t bar1 = 0;
      size_t bar2 = 0;
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "|") {
          if (bar1 == 0) {
            bar1 = i;
          } else {
            bar2 = i;
            break;
          }
        }
      }
      if (bar1 != 5 || bar2 <= bar1) {
        return Status::IOError(
            StrFormat("line %zu: malformed astar record", line_no));
      }
      AStar s;
      s.code_length_bits = std::strtod(tokens[1].c_str(), nullptr);
      s.frequency = std::strtoull(tokens[2].c_str(), nullptr, 10);
      s.core_total = std::strtoull(tokens[3].c_str(), nullptr, 10);
      s.coreset_frequency = std::strtoull(tokens[4].c_str(), nullptr, 10);
      CSPM_ASSIGN_OR_RETURN(s.core_values,
                            ParseNames(tokens, bar1 + 1, bar2, dict));
      CSPM_ASSIGN_OR_RETURN(
          s.leaf_values, ParseNames(tokens, bar2 + 1, tokens.size(), dict));
      if (s.core_values.empty() || s.leaf_values.empty()) {
        return Status::IOError(
            StrFormat("line %zu: empty core or leaf set", line_no));
      }
      model.astars.push_back(std::move(s));
    } else {
      return Status::IOError(StrFormat("line %zu: unknown record '%s'",
                                       line_no, tokens[0].c_str()));
    }
  }
  return model;
}

Status SaveModelToFile(const CspmModel& model,
                       const graph::AttributeDictionary& dict,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  out << ModelToText(model, dict);
  out.flush();
  if (!out) {
    return Status::IOError("write failed for " + path + ": " +
                           std::strerror(errno));
  }
  out.close();
  if (out.fail()) {
    return Status::IOError("close failed for " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<CspmModel> LoadModelFromFile(const std::string& path,
                                      const graph::AttributeDictionary& dict) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed for " + path + ": " +
                           std::strerror(errno));
  }
  return ModelFromText(buf.str(), dict);
}

}  // namespace cspm::core
