#include "cspm/model.h"

#include <algorithm>

#include "util/string_util.h"

namespace cspm::core {
namespace {

std::string RenderValues(const std::vector<AttrId>& values,
                         const graph::AttributeDictionary& dict) {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out += ",";
    out += dict.Name(values[i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string AStar::ToString(const graph::AttributeDictionary& dict) const {
  return StrFormat(
      "(%s -> %s) fL=%llu fc=%llu code=%.3f bits",
      RenderValues(core_values, dict).c_str(),
      RenderValues(leaf_values, dict).c_str(),
      static_cast<unsigned long long>(frequency),
      static_cast<unsigned long long>(core_total), code_length_bits);
}

std::vector<AStar> CspmModel::PatternsWithMinLeaves(
    size_t min_leaf_values) const {
  std::vector<AStar> out;
  for (const auto& s : astars) {
    if (s.leaf_values.size() >= min_leaf_values) out.push_back(s);
  }
  return out;
}

std::string CspmModel::Describe(const graph::AttributeDictionary& dict,
                                size_t top_k) const {
  std::string out;
  size_t n = std::min(top_k, astars.size());
  for (size_t i = 0; i < n; ++i) {
    out += StrFormat("%3zu. ", i + 1) + astars[i].ToString(dict) + "\n";
  }
  return out;
}

}  // namespace cspm::core
