// Gain of merging a pair of leafsets (Section IV-E, Eqs. 9-15).
#ifndef CSPM_CSPM_GAIN_H_
#define CSPM_CSPM_GAIN_H_

#include "cspm/code_model.h"
#include "cspm/inverted_database.h"

namespace cspm::core {

/// Which terms the acceptance test uses.
enum class GainPolicy {
  /// Pure data gain ΔL of Eq. 9 (the check used by Algorithm 2).
  kDataOnly,
  /// ΔL minus the code-table cost delta of materializing the new leafset
  /// (the "cost increase of the new pattern's leafset ... obtained through
  /// ST" the paper discusses); the MDL-faithful default.
  kDataPlusModel,
};

/// Decomposition of a candidate merge's effect on the description length.
struct GainResult {
  /// ΔL = P1 - P2 of Eq. 9, in bits (positive = data term shrinks).
  double data_gain_bits = 0.0;
  /// Net change of the CTL model cost in bits (positive = model grows).
  double model_delta_bits = 0.0;
  /// Shared coresets with non-empty position intersection.
  uint32_t cores_with_overlap = 0;
  /// Sum of xy_e over those coresets.
  uint64_t total_overlap = 0;
  /// True if at least one shared coreset has a non-empty intersection; an
  /// infeasible pair can never be merged (the paper's "gain is equal to
  /// zero" case).
  bool feasible = false;

  /// The gain under a policy.
  double Total(GainPolicy policy) const {
    return policy == GainPolicy::kDataOnly
               ? data_gain_bits
               : data_gain_bits - model_delta_bits;
  }
};

/// Computes the exact gain of merging leafsets x and y against the current
/// inverted database (no mutation). Handles all three cases of Eqs. 12-15
/// plus the fold-into-existing-union-line extension.
GainResult ComputeMergeGain(const InvertedDatabase& idb, const CodeModel& cm,
                            LeafsetId x, LeafsetId y);

/// Computes the exact gain of *undoing* line (e, l) of a merged leafset
/// via InvertedDatabase::SplitLine (no mutation): its positions return to
/// the member singleton lines, so f_e grows by (|values| - 1) * fL. Uses
/// the same conventions as ComputeMergeGain — data_gain_bits is the exact
/// drop of Eq. 8's data term (positive = splitting shrinks it) and
/// model_delta_bits counts ST + Code_c per created/removed line, ignoring
/// Code_L drift. Infeasible when the line does not exist or l is a
/// singleton. Total(policy) > 0 means the split pays for itself — the
/// fast re-mine's undo criterion.
GainResult ComputeSplitGain(const InvertedDatabase& idb, const CodeModel& cm,
                            CoreId e, LeafsetId l);

}  // namespace cspm::core

#endif  // CSPM_CSPM_GAIN_H_
