// Compiled execution form of Algorithm 5: a CspmModel is compiled once
// into a ScoringPlan and applied to many vertices (Krimp/SLIM-style "code
// table compiled once, applied per transaction"). The MDL model itself is
// untouched — only the execution layout changes:
//
//  - leafsets are flattened into one slab of sorted AttrIds (no per-star
//    heap vectors on the hot path),
//  - an attribute -> leafset inverted posting list turns the per-leafset
//    similarity scan into intersection counting: only leafsets that share
//    at least one attribute with the neighbourhood are ever touched,
//  - the Scode / |SL| terms of every star are precomputed,
//  - ScoreInto() writes into caller-provided buffers (AttributeScores is
//    reused across calls; per-call scratch lives in a ScoringScratch that
//    each serving thread owns).
//
// Contract: for every neighbourhood and every ScoringOptions, ScoreInto
// produces bit-identical raw and normalized scores to
// ScoreAttributesWithNeighbourhood (regression-tested per vertex, per
// value). The plan is immutable after Compile and safe to share across
// threads; only the scratch is per-thread.
//
// View/owner split (store format v3, DESIGN.md §12): the execution state
// is six flat slabs accessed through spans. Compile() materialises owned
// slabs on the heap; FromSlabs() wraps externally owned memory — in
// particular an mmap'd plan section, where the bytes on disk are exactly
// the bytes ScoreInto reads (zero decode, zero allocation). Either way a
// type-erased shared owner keeps the slab bytes alive for the plan and
// all of its copies, so evicting a plan from a cache while an engine
// still scores through it is safe by construction.
#ifndef CSPM_CSPM_SCORING_PLAN_H_
#define CSPM_CSPM_SCORING_PLAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cspm/model.h"
#include "cspm/scoring.h"
#include "util/status.h"

namespace cspm::core {

/// Per-thread mutable state for ScoringPlan::ScoreInto. All arrays are
/// restored to zero before ScoreInto returns, so one scratch serves any
/// number of sequential calls without re-clearing.
struct ScoringScratch {
  /// Per-star intersection counters (|SL ∩ N_attrs| accumulation).
  std::vector<uint32_t> matched;
  /// Stars with matched > 0 in the current call.
  std::vector<uint32_t> touched_stars;
  /// Per-attribute dedup flags for the neighbourhood set.
  std::vector<uint8_t> attr_seen;
  /// Attrs flagged in the current call.
  std::vector<AttrId> seen_attrs;
  /// Neighbour-attribute gather buffer for the vertex-level entry points.
  std::vector<AttrId> neighbourhood;
};

class ScoringPlan {
 public:
  /// The six flat slabs of the compiled layout, in the order the v3 plan
  /// section lays them out on disk (DESIGN.md §12).
  struct Slabs {
    std::span<const uint32_t> leaf_size;       ///< |SL| per star
    std::span<const double> code_length_bits;  ///< L(S_code) per star
    std::span<const uint32_t> core_offsets;    ///< num_stars + 1
    std::span<const AttrId> cores;             ///< flat in-range core values
    std::span<const uint32_t> posting_offsets;  ///< num_attrs + 1
    std::span<const uint32_t> postings;         ///< attr -> star ids
  };

  ScoringPlan() = default;

  /// Compiles the model against a dictionary of `num_attribute_values`
  /// attribute values. Stars with empty leafsets are dropped (they can
  /// never contribute evidence); everything else is laid out flat.
  static ScoringPlan Compile(const CspmModel& model,
                             size_t num_attribute_values);

  /// Wraps externally owned slabs — the mmap-native plan section — behind
  /// the same interface as a compiled plan, with zero decode and zero
  /// allocation. Only the O(1) geometry (offset-table shapes and covering
  /// totals) is validated here; run CheckInvariants for the deep audit.
  /// `storage` keeps the slab bytes alive for the plan's lifetime and the
  /// lifetime of every copy made from it.
  static StatusOr<ScoringPlan> FromSlabs(size_t num_attribute_values,
                                         const Slabs& slabs,
                                         std::shared_ptr<const void> storage);

  size_t num_attribute_values() const { return num_attrs_; }
  /// Stars carried by the plan (empty-leafset stars are compiled out).
  size_t num_stars() const { return slabs_.leaf_size.size(); }
  /// Resident bytes of the slab layout. For a compiled plan this is the
  /// heap footprint; for an mmap view it is the mapped section's working
  /// set — the same value either way, so cache accounting is uniform.
  size_t ApproxBytes() const;
  /// Back-compat alias for ApproxBytes.
  size_t memory_bytes() const { return ApproxBytes(); }

  /// Read access to the slab layout (the plan-section encoder and the
  /// store's fsck cross-check read the plan exactly as ScoreInto does).
  const Slabs& slabs() const { return slabs_; }
  /// True when the slabs alias externally owned memory (an mmap view)
  /// rather than heap vectors built by Compile.
  bool is_view() const { return view_; }

  /// Sizes `scratch` for this plan (idempotent; cheap when already sized).
  void PrepareScratch(ScoringScratch* scratch) const;

  /// Scores one neighbourhood-attribute set into `out`, bit-identically to
  /// ScoreAttributesWithNeighbourhood. `neighbourhood_attrs` need not be
  /// sorted or deduplicated; ids >= num_attribute_values() are ignored.
  /// `scratch` must have been sized with PrepareScratch.
  void ScoreInto(std::span<const AttrId> neighbourhood_attrs,
                 const ScoringOptions& options, ScoringScratch* scratch,
                 AttributeScores* out) const;

  /// Convenience allocating wrapper around ScoreInto.
  AttributeScores Score(std::span<const AttrId> neighbourhood_attrs,
                        const ScoringOptions& options = {}) const;

  /// Deep structural validation of the compiled layout: monotone offset
  /// tables, in-range star/core/posting ids, finite non-negative code
  /// lengths, and posting lists consistent with the per-star leaf sizes.
  /// Run under CSPM_DCHECK after Compile and by `cspm_shell fsck`.
  Status CheckInvariants() const;

 private:
  uint32_t num_attrs_ = 0;
  /// True for FromSlabs views (mmap-backed), false for compiled plans.
  bool view_ = false;
  /// Spans into either the owned slab block or external (mmap) memory.
  Slabs slabs_;
  /// Type-erased owner of the slab bytes: the heap block Compile built,
  /// or the mapping a view was opened over. Shared by plan copies.
  std::shared_ptr<const void> storage_;
};

/// Compiles a plan ready for sharing across engines, registry handles and
/// threads (the one way every layer builds plans, so the attribute-space
/// source cannot drift between call sites).
std::shared_ptr<const ScoringPlan> CompileSharedPlan(
    const CspmModel& model, size_t num_attribute_values);

/// Appends the attribute values of every neighbour of `v` to `out`
/// (cleared first; not sorted, not deduplicated — ScoreInto treats the
/// list as a set). The single definition of "neighbourhood" used by all
/// plan-based vertex scoring paths.
void GatherNeighbourhoodAttrs(const graph::AttributedGraph& g, VertexId v,
                              std::vector<AttrId>* out);

}  // namespace cspm::core

#endif  // CSPM_CSPM_SCORING_PLAN_H_
