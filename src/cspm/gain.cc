#include "cspm/gain.h"

#include <algorithm>

#include "mdl/codes.h"
#include "util/check.h"

namespace cspm::core {
namespace {

uint64_t IntersectionSize(PosListView a, PosListView b) {
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

GainResult ComputeMergeGain(const InvertedDatabase& idb, const CodeModel& cm,
                            LeafsetId x, LeafsetId y) {
  GainResult result;
  if (x == y) return result;
  if (idb.CoresOf(x).empty() || idb.CoresOf(y).empty()) return result;

  const std::vector<AttrId> union_values =
      idb.leafsets().UnionValues(x, y);
  // If y ⊆ x (or vice versa) the union equals one of the pair; by the
  // losslessness invariant their positions are disjoint under every shared
  // coreset, so the pair is infeasible. Detect cheaply and bail out.
  const LeafsetId existing_union = idb.leafsets().Find(union_values);
  if (existing_union == x || existing_union == y) return result;

  const double union_st_cost = cm.StCost(union_values);
  const double x_st_cost = cm.StCost(idb.leafsets().Values(x));
  const double y_st_cost = cm.StCost(idb.leafsets().Values(y));

  idb.ForEachSharedCore(x, y, [&](CoreId e, PosListView px, PosListView py) {
    const uint64_t xye = IntersectionSize(px, py);
    if (xye == 0) return;  // nothing merges under this coreset
    result.feasible = true;
    ++result.cores_with_overlap;
    result.total_overlap += xye;

    const uint64_t xe = px.size();
    const uint64_t ye = py.size();
    const uint64_t fe = idb.CoreLineTotal(e);

    // P1 (Eq. 10): f_e log f_e - (f_e - xy_e) log(f_e - xy_e).
    result.data_gain_bits += mdl::XLog2X(static_cast<double>(fe)) -
                             mdl::XLog2X(static_cast<double>(fe - xye));

    // P2 (Eqs. 11-15, generalized): old Σ l log l minus new Σ l log l over
    // the affected lines. XLog2X(0) = 0 handles the totally-merged cases
    // uniformly.
    uint64_t ze = 0;  // existing union line frequency, if any
    if (existing_union != LeafsetRegistry::kNotFound) {
      ze = idb.FindLine(e, existing_union).size();
    }
    const double old_terms = mdl::XLog2X(static_cast<double>(xe)) +
                             mdl::XLog2X(static_cast<double>(ye)) +
                             mdl::XLog2X(static_cast<double>(ze));
    const double new_terms = mdl::XLog2X(static_cast<double>(xe - xye)) +
                             mdl::XLog2X(static_cast<double>(ye - xye)) +
                             mdl::XLog2X(static_cast<double>(ze + xye));
    result.data_gain_bits -= old_terms - new_terms;

    // Model delta for CTL: removed lines vs added line at this coreset.
    const double core_code = cm.CoreCodeLength(e);
    if (ze == 0) result.model_delta_bits += union_st_cost + core_code;
    if (xe == xye) result.model_delta_bits -= x_st_cost + core_code;
    if (ye == xye) result.model_delta_bits -= y_st_cost + core_code;
  });
  if (!result.feasible) {
    result.data_gain_bits = 0.0;
    result.model_delta_bits = 0.0;
  }
  return result;
}

GainResult ComputeSplitGain(const InvertedDatabase& idb, const CodeModel& cm,
                            CoreId e, LeafsetId l) {
  GainResult result;
  const PosListView line = idb.FindLine(e, l);
  if (line.empty()) return result;
  const std::vector<AttrId>& values = idb.leafsets().Values(l);
  if (values.size() < 2) return result;

  const uint64_t fl = line.size();
  const uint64_t fe = idb.CoreLineTotal(e);
  const uint64_t grown = fe + (static_cast<uint64_t>(values.size()) - 1) * fl;

  result.feasible = true;
  result.cores_with_overlap = 1;
  result.total_overlap = fl;

  // Eq. 8's core term grows from f_e to f_e + (|values|-1) fL; the split
  // line leaves the Σ fL log fL sum and every member singleton absorbs fL.
  result.data_gain_bits = mdl::XLog2X(static_cast<double>(fe)) -
                          mdl::XLog2X(static_cast<double>(grown)) -
                          mdl::XLog2X(static_cast<double>(fl));
  result.model_delta_bits = -cm.LineModelCost(values, e);
  const double core_code = cm.CoreCodeLength(e);
  std::vector<AttrId> singleton(1, AttrId(0));
  for (AttrId a : values) {
    singleton[0] = a;
    uint64_t se = 0;
    const LeafsetId s = idb.leafsets().Find(singleton);
    if (s != LeafsetRegistry::kNotFound) se = idb.FindLine(e, s).size();
    result.data_gain_bits += mdl::XLog2X(static_cast<double>(se + fl)) -
                             mdl::XLog2X(static_cast<double>(se));
    if (se == 0) result.model_delta_bits += cm.StCost(singleton) + core_code;
  }
  return result;
}

}  // namespace cspm::core
