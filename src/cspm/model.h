// The mined model: a ranked set of a-star patterns plus mining statistics.
#ifndef CSPM_CSPM_MODEL_H_
#define CSPM_CSPM_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cspm/types.h"
#include "graph/attributed_graph.h"

namespace cspm::core {

/// One attribute-star pattern S = (Sc, SL) with its encoding statistics.
struct AStar {
  std::vector<AttrId> core_values;  ///< Sc, sorted
  std::vector<AttrId> leaf_values;  ///< SL, sorted
  uint64_t frequency = 0;           ///< fL: line frequency (|positions|)
  uint64_t core_total = 0;          ///< f_e: dynamic coreset total
  uint64_t coreset_frequency = 0;   ///< static mapping-table frequency of Sc
  /// L(S_code) = L(Code_c) + L(Code_L) (Eq. 4); patterns are ranked by this
  /// ascending — shorter code = more informative.
  double code_length_bits = 0.0;

  /// Human-readable "({a,b} -> {c,d})  fL=.. code=..bits".
  std::string ToString(const graph::AttributeDictionary& dict) const;
};

/// Per-iteration instrumentation (drives the Fig. 5 reproduction).
struct IterationStats {
  uint64_t iteration = 0;
  /// Gain computations performed during this iteration.
  uint64_t gain_computations = 0;
  /// C(#active leafsets, 2) at the start of the iteration.
  uint64_t possible_pairs = 0;
  /// Gain (bits) of the accepted merge.
  double accepted_gain_bits = 0.0;
  uint64_t active_leafsets = 0;
  uint64_t num_lines = 0;

  double UpdateRatio() const {
    return possible_pairs == 0
               ? 0.0
               : static_cast<double>(gain_computations) /
                     static_cast<double>(possible_pairs);
  }
};

/// Aggregate statistics of one mining run.
struct MiningStats {
  double initial_dl_bits = 0.0;
  double final_dl_bits = 0.0;
  uint64_t iterations = 0;           ///< accepted merges
  uint64_t total_gain_computations = 0;
  uint64_t initial_leafsets = 0;
  uint64_t final_leafsets = 0;
  uint64_t initial_lines = 0;
  uint64_t final_lines = 0;
  double runtime_seconds = 0.0;
  /// True if the search stopped because CspmOptions::max_seconds expired.
  bool hit_time_budget = false;
  std::vector<IterationStats> per_iteration;

  double CompressionRatio() const {
    return initial_dl_bits > 0 ? final_dl_bits / initial_dl_bits : 1.0;
  }
};

/// The output of CSPM: a-stars sorted by ascending code length.
struct CspmModel {
  std::vector<AStar> astars;
  MiningStats stats;

  /// A-stars whose leafset has at least `min_leaf_values` values (merged
  /// patterns; the initial single-leaf lines are trivially present).
  std::vector<AStar> PatternsWithMinLeaves(size_t min_leaf_values) const;

  /// Renders the top-k patterns.
  std::string Describe(const graph::AttributeDictionary& dict,
                       size_t top_k) const;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_MODEL_H_
