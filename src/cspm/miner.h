// The CSPM algorithm (Section IV-F): parameter-free mining of compressing
// a-star patterns. Two search strategies are provided:
//  - kBasic:   Algorithms 1-2 — regenerate all candidate pair gains after
//              every merge.
//  - kPartial: Algorithms 3-4 — maintain candidates incrementally through
//              the related-leafset dictionary (rdict).
#ifndef CSPM_CSPM_MINER_H_
#define CSPM_CSPM_MINER_H_

#include <unordered_map>

#include "cspm/gain.h"
#include "cspm/inverted_database.h"
#include "cspm/model.h"
#include "itemset/slim.h"
#include "util/status.h"
#include "util/timer.h"

namespace cspm::core {

/// Warm-start state captured by MineWithWarmState and consumed (and
/// refreshed) by ResumeWarm: the pristine pre-merge inverted database plus
/// the initial candidate gains of the last run. After a graph delta, patch
/// `initial_db` with InvertedDatabase::ApplyDelta and hand the state back
/// to ResumeWarm — only pairs involving dirty leafsets are recomputed.
struct WarmState {
  InvertedDatabase initial_db;
  /// CandidatePairKey(x, y) -> total gain for every feasible
  /// above-threshold initial pair (exactly the CandidateStore seed).
  std::unordered_map<uint64_t, double> initial_gains;
  /// The *final* (post-merge) inverted database of the last mine — the
  /// starting point of the fast re-mine path. Patch it with
  /// InvertedDatabase::ApplyDeltaMerged and hand it to ResumeFast, which
  /// repairs it in place (it stays current for the next fast update).
  InvertedDatabase final_db;
};

/// What the fast resume did beyond the ordinary merge loop.
struct FastResumeStats {
  /// Merged leafsets undone (every line split back to the member
  /// singletons) because their global gain went negative under the delta.
  uint64_t splits = 0;
  /// Candidate pairs seeded into the store (pairs involving a leafset
  /// whose lines the delta or the unmerge pass actually changed).
  uint64_t seeded_pairs = 0;
};

/// Which cached initial gains are stale after a delta patch.
struct DirtyCandidates {
  /// Sorted CandidatePairKeys of the pairs to recompute; ignored when
  /// all_dirty (see CollectDirtyCandidatePairs).
  std::vector<uint64_t> pair_keys;
  /// Set when the code model moved (any attribute-frequency change):
  /// every ST / coreset code length shifts, so no cached gain survives
  /// and the full seed is regenerated (the patched database is still
  /// reused).
  bool all_dirty = false;
};

/// The exact initial-candidate invalidation set of an edge-only delta:
/// pairs of leaf values co-occurring in the neighbourhood of a vertex that
/// carries a dirty core — in the new state, or (for dirty vertices, whose
/// lines moved) the old one. Any other pair keeps identical position
/// lists and f_e totals under every shared core with overlap, so its seed
/// gain is bit-identical and the cache can stand. Single-value-coreset
/// databases only (leafset id == core id == attr id).
std::vector<uint64_t> CollectDirtyCandidatePairs(
    const graph::AttributedGraph& old_graph,
    const graph::AttributedGraph& new_graph,
    std::span<const graph::VertexId> dirty_vertices,
    std::span<const CoreId> dirty_cores);

enum class SearchStrategy { kBasic, kPartial };

struct CspmOptions {
  SearchStrategy strategy = SearchStrategy::kPartial;
  GainPolicy gain_policy = GainPolicy::kDataPlusModel;

  /// When true, Step 1 mines multi-value coresets from the vertex-attribute
  /// transactions with SLIM (Section IV-F); otherwise every attribute value
  /// is its own coreset.
  bool multi_value_coresets = false;
  itemset::SlimOptions slim;

  /// Safety valve; 0 = run to convergence (the parameter-free default).
  uint64_t max_iterations = 0;

  /// Wall-clock budget in seconds; 0 = unlimited. When exceeded the search
  /// stops early and MiningStats::hit_time_budget is set (used by the
  /// runtime benches to bound CSPM-Basic on large inputs).
  double max_seconds = 0.0;

  /// A merge must improve the DL by strictly more than this (bits).
  double min_gain_bits = 1e-9;

  /// Record per-iteration stats (Fig. 5 instrumentation).
  bool record_iteration_stats = true;

  /// Partial only: recompute the popped pair's gain before merging (guards
  /// against f_e drift making a stored gain stale; see DESIGN.md).
  bool revalidate_on_pop = true;

  /// Keep single-leaf-value a-stars in the returned model. They are part of
  /// the code table; disabling returns only merged patterns.
  bool include_singleton_leafsets = true;

  /// Threads for the gain-evaluation fan-outs (the kBasic regenerate-all
  /// scan and the kPartial full candidate generation). 1 = serial (the
  /// default), 0 = one thread per hardware core. The parallel path is
  /// bit-identical to the serial one: every gain is computed from the same
  /// inputs and the reduction follows the serial pair order (see DESIGN.md
  /// §4).
  uint32_t num_threads = 1;
};

/// Runs CSPM on an attributed graph.
class CspmMiner {
 public:
  explicit CspmMiner(CspmOptions options) : options_(options) {}

  /// Mines a model. The graph must outlive the call (not the result).
  StatusOr<CspmModel> Mine(const graph::AttributedGraph& g) const;

  /// Mines and also exposes the final inverted database + code model
  /// (used by tests and the losslessness verifier).
  struct MineArtifacts {
    CspmModel model;
    InvertedDatabase inverted_db;
  };
  StatusOr<MineArtifacts> MineWithArtifacts(
      const graph::AttributedGraph& g) const;

  /// Mines like MineWithArtifacts and additionally captures warm-start
  /// state for later incremental re-mines. Single-value coresets only
  /// (SLIM covers are not incrementally maintainable).
  StatusOr<MineArtifacts> MineWithWarmState(const graph::AttributedGraph& g,
                                            WarmState* warm) const;

  /// Re-mines after `warm->initial_db` was patched to match `g`: re-seeds
  /// candidate gains only for pairs involving a dirty leafset (cached
  /// gains cover clean pairs — sound because a clean pair shares no dirty
  /// core, so its position lists and f_e totals are unchanged), then runs
  /// the merge loop from that seed. The model is bit-identical to a cold
  /// Mine(g): the seeded store matches the cold store entry for entry and
  /// insertion order is replayed, so even gain ties break the same way.
  /// `warm` is refreshed for the next update; `reseed_computations` (may
  /// be null) receives the number of gains recomputed during the seed.
  StatusOr<MineArtifacts> ResumeWarm(const graph::AttributedGraph& g,
                                     WarmState* warm,
                                     const DirtyCandidates& dirty,
                                     uint64_t* reseed_computations) const;

  /// Continue-from-final-model re-mine (DESIGN.md §9): `warm->final_db`
  /// must already be patched to `g` via ApplyDeltaMerged, whose
  /// DeltaPatchStats is `patch`. Unmerges leafsets (under dirty cores)
  /// whose global gain went negative under the delta (to a fixpoint),
  /// then seeds the candidate store with repair-scope pairs — both
  /// members stale, i.e. a meaningful share of their positions moved
  /// (patch.touched_leafsets weighted by touched_position_moves) or the
  /// unmerge pass fed them — and runs the ordinary partial merge loop.
  /// Pairs with an up-to-date member are NOT re-evaluated even when a
  /// shared core's totals drifted: those second-order shifts are exactly
  /// what the DL-ε contract absorbs (anything broader degenerates into a
  /// near-cold seed, because dirty cores are popular attributes). The
  /// result is path-dependent: its description length tracks a cold mine
  /// within a small ε but the model need not be bit-identical. The
  /// database is repaired in place; on error it is left partially patched
  /// and the caller must discard the warm state. `artifacts.inverted_db`
  /// is only populated when `want_database` is set (the clone is pure
  /// overhead otherwise). kPartial + single-value coresets only.
  StatusOr<MineArtifacts> ResumeFast(const graph::AttributedGraph& g,
                                     WarmState* warm,
                                     const DeltaPatchStats& patch,
                                     bool all_dirty, bool want_database,
                                     FastResumeStats* fast_stats) const;

 private:
  StatusOr<MineArtifacts> MineImpl(const graph::AttributedGraph& g,
                                   WarmState* warm) const;
  StatusOr<MineArtifacts> SearchAndExtract(const graph::AttributedGraph& g,
                                           InvertedDatabase idb,
                                           WarmState* warm,
                                           const DirtyCandidates* dirty,
                                           uint64_t* reseed_computations,
                                           const WallTimer& timer) const;

  CspmOptions options_;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_MINER_H_
