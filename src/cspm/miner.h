// The CSPM algorithm (Section IV-F): parameter-free mining of compressing
// a-star patterns. Two search strategies are provided:
//  - kBasic:   Algorithms 1-2 — regenerate all candidate pair gains after
//              every merge.
//  - kPartial: Algorithms 3-4 — maintain candidates incrementally through
//              the related-leafset dictionary (rdict).
#ifndef CSPM_CSPM_MINER_H_
#define CSPM_CSPM_MINER_H_

#include "cspm/gain.h"
#include "cspm/inverted_database.h"
#include "cspm/model.h"
#include "itemset/slim.h"
#include "util/status.h"

namespace cspm::core {

enum class SearchStrategy { kBasic, kPartial };

struct CspmOptions {
  SearchStrategy strategy = SearchStrategy::kPartial;
  GainPolicy gain_policy = GainPolicy::kDataPlusModel;

  /// When true, Step 1 mines multi-value coresets from the vertex-attribute
  /// transactions with SLIM (Section IV-F); otherwise every attribute value
  /// is its own coreset.
  bool multi_value_coresets = false;
  itemset::SlimOptions slim;

  /// Safety valve; 0 = run to convergence (the parameter-free default).
  uint64_t max_iterations = 0;

  /// Wall-clock budget in seconds; 0 = unlimited. When exceeded the search
  /// stops early and MiningStats::hit_time_budget is set (used by the
  /// runtime benches to bound CSPM-Basic on large inputs).
  double max_seconds = 0.0;

  /// A merge must improve the DL by strictly more than this (bits).
  double min_gain_bits = 1e-9;

  /// Record per-iteration stats (Fig. 5 instrumentation).
  bool record_iteration_stats = true;

  /// Partial only: recompute the popped pair's gain before merging (guards
  /// against f_e drift making a stored gain stale; see DESIGN.md).
  bool revalidate_on_pop = true;

  /// Keep single-leaf-value a-stars in the returned model. They are part of
  /// the code table; disabling returns only merged patterns.
  bool include_singleton_leafsets = true;

  /// Threads for the gain-evaluation fan-outs (the kBasic regenerate-all
  /// scan and the kPartial full candidate generation). 1 = serial (the
  /// default), 0 = one thread per hardware core. The parallel path is
  /// bit-identical to the serial one: every gain is computed from the same
  /// inputs and the reduction follows the serial pair order (see DESIGN.md
  /// §4).
  uint32_t num_threads = 1;
};

/// Runs CSPM on an attributed graph.
class CspmMiner {
 public:
  explicit CspmMiner(CspmOptions options) : options_(options) {}

  /// Mines a model. The graph must outlive the call (not the result).
  StatusOr<CspmModel> Mine(const graph::AttributedGraph& g) const;

  /// Mines and also exposes the final inverted database + code model
  /// (used by tests and the losslessness verifier).
  struct MineArtifacts {
    CspmModel model;
    InvertedDatabase inverted_db;
  };
  StatusOr<MineArtifacts> MineWithArtifacts(
      const graph::AttributedGraph& g) const;

 private:
  CspmOptions options_;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_MINER_H_
