#include "cspm/candidates.h"

#include <algorithm>

namespace cspm::core {

void CandidateStore::Set(LeafsetId x, LeafsetId y, double gain) {
  const uint64_t key = PairKey(x, y);
  const uint64_t version = next_version_++;
  live_[key] = {gain, version};
  heap_.push({gain, key, version});
}

void CandidateStore::Erase(LeafsetId x, LeafsetId y) {
  live_.erase(PairKey(x, y));
}

void CandidateStore::DropStale() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    auto it = live_.find(top.key);
    if (it != live_.end() && it->second.version == top.version) return;
    heap_.pop();
  }
}

bool CandidateStore::PopBest(LeafsetId* x, LeafsetId* y, double* gain) {
  DropStale();
  if (heap_.empty()) return false;
  HeapEntry top = heap_.top();
  heap_.pop();
  live_.erase(top.key);
  *x = static_cast<LeafsetId>(top.key >> 32);
  *y = static_cast<LeafsetId>(top.key);
  *gain = top.gain;
  return true;
}

bool CandidateStore::PeekBest(double* gain) {
  DropStale();
  if (heap_.empty()) return false;
  *gain = heap_.top().gain;
  return true;
}

void RelatedDict::Link(LeafsetId x, LeafsetId y) {
  rdict_[x].insert(y);
  rdict_[y].insert(x);
}

void RelatedDict::Unlink(LeafsetId x, LeafsetId y) {
  auto ix = rdict_.find(x);
  if (ix != rdict_.end()) {
    ix->second.erase(y);
    if (ix->second.empty()) rdict_.erase(ix);
  }
  auto iy = rdict_.find(y);
  if (iy != rdict_.end()) {
    iy->second.erase(x);
    if (iy->second.empty()) rdict_.erase(iy);
  }
}

void RelatedDict::RemoveLeafset(LeafsetId l, std::vector<LeafsetId>* former) {
  former->clear();
  auto it = rdict_.find(l);
  if (it == rdict_.end()) return;
  former->assign(it->second.begin(), it->second.end());
  std::sort(former->begin(), former->end());
  for (LeafsetId rel : *former) {
    auto rit = rdict_.find(rel);
    if (rit != rdict_.end()) {
      rit->second.erase(l);
      if (rit->second.empty()) rdict_.erase(rit);
    }
  }
  rdict_.erase(l);
}

const std::unordered_set<LeafsetId>& RelatedDict::RelatedTo(
    LeafsetId l) const {
  static const std::unordered_set<LeafsetId> kEmpty;
  auto it = rdict_.find(l);
  return it == rdict_.end() ? kEmpty : it->second;
}

std::vector<LeafsetId> RelatedDict::Intersection(LeafsetId x,
                                                 LeafsetId y) const {
  const auto& rx = RelatedTo(x);
  const auto& ry = RelatedTo(y);
  const auto& small = rx.size() <= ry.size() ? rx : ry;
  const auto& large = rx.size() <= ry.size() ? ry : rx;
  std::vector<LeafsetId> out;
  for (LeafsetId l : small) {
    if (large.count(l)) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cspm::core
