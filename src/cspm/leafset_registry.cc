#include "cspm/leafset_registry.h"

#include <algorithm>

#include "util/check.h"

namespace cspm::core {

LeafsetId LeafsetRegistry::Intern(std::vector<AttrId> values) {
  CSPM_DCHECK(std::is_sorted(values.begin(), values.end()));
  auto it = index_.find(values);
  if (it != index_.end()) return it->second;
  LeafsetId id(static_cast<uint32_t>(sets_.size()));
  index_.emplace(values, id);
  sets_.push_back(std::move(values));
  return id;
}

LeafsetId LeafsetRegistry::Find(const std::vector<AttrId>& values) const {
  auto it = index_.find(values);
  return it == index_.end() ? kNotFound : it->second;
}

const std::vector<AttrId>& LeafsetRegistry::Values(LeafsetId id) const {
  CSPM_CHECK(id.index() < sets_.size());
  return sets_[id.index()];
}

std::vector<AttrId> LeafsetRegistry::UnionValues(LeafsetId a,
                                                 LeafsetId b) const {
  const auto& va = Values(a);
  const auto& vb = Values(b);
  std::vector<AttrId> out;
  out.reserve(va.size() + vb.size());
  std::set_union(va.begin(), va.end(), vb.begin(), vb.end(),
                 std::back_inserter(out));
  return out;
}

LeafsetId LeafsetRegistry::InternUnion(LeafsetId a, LeafsetId b) {
  return Intern(UnionValues(a, b));
}

}  // namespace cspm::core
