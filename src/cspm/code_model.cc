#include "cspm/code_model.h"

#include "mdl/codes.h"

namespace cspm::core {

CodeModel::CodeModel(const graph::AttributedGraph& g,
                     const InvertedDatabase& idb) {
  const uint64_t attr_total = g.total_attribute_occurrences();
  st_len_.resize(g.num_attribute_values(), 0.0);
  for (AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    const uint64_t f = g.AttributeFrequency(a);
    st_len_[a.index()] = f > 0 ? mdl::ShannonCodeLength(f, attr_total) : 0.0;
  }
  const uint64_t core_total = idb.total_coreset_frequency();
  core_len_.resize(idb.num_coresets(), 0.0);
  for (CoreId c(0); c.index() < idb.num_coresets(); ++c) {
    const uint64_t f = idb.CoresetFrequency(c);
    core_len_[c.index()] = f > 0 ? mdl::ShannonCodeLength(f, core_total) : 0.0;
  }
}

double CodeModel::StCost(std::span<const AttrId> values) const {
  double bits = 0.0;
  for (AttrId a : values) bits += st_len_[a.index()];
  return bits;
}

double CodeModel::LeafCodeLength(uint64_t fl, uint64_t fe) {
  return mdl::ConditionalCodeLength(fl, fe);
}

double CodeModel::CoresetTableCostBits(const InvertedDatabase& idb) const {
  double bits = 0.0;
  for (CoreId c(0); c.index() < idb.num_coresets(); ++c) {
    if (idb.CoresetFrequency(c) == 0) continue;
    bits += StCost(idb.CoresetValues(c)) + CoreCodeLength(c);
  }
  return bits;
}

double CodeModel::LeafsetTableCostBits(const InvertedDatabase& idb) const {
  double bits = 0.0;
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    bits += StCost(idb.leafsets().Values(l)) + CoreCodeLength(e) +
            LeafCodeLength(positions.size(), idb.CoreLineTotal(e));
  });
  return bits;
}

double CodeModel::TotalDescriptionLengthBits(
    const InvertedDatabase& idb) const {
  return CoresetTableCostBits(idb) + LeafsetTableCostBits(idb) +
         idb.DataCostBits();
}

}  // namespace cspm::core
