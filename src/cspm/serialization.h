// Text serialization of mined CSPM models, so a model can be mined once
// and reused (e.g. by the completion scoring service) without re-mining.
//
// Format ("cspm model v1"):
//   # comments
//   stats <initial_dl> <final_dl> <iterations>
//   astar <code_length> <fL> <f_e> <fc> | <core names...> | <leaf names...>
//
// Doubles are emitted with max_digits10 precision, so numeric fields
// round-trip bit-exactly. This format resolves attribute names against an
// external dictionary; for a fully self-contained file (embedded
// dictionary, optional graph snapshot, multiple models, CRC-checked
// pages) use the binary store format in store/model_store.h — loaders
// tell the two apart by the store's "CSPMSTR1" magic.
#ifndef CSPM_CSPM_SERIALIZATION_H_
#define CSPM_CSPM_SERIALIZATION_H_

#include <string>

#include "cspm/model.h"
#include "util/status.h"

namespace cspm::core {

/// Serializes a model; attribute ids are spelled with `dict` names.
std::string ModelToText(const CspmModel& model,
                        const graph::AttributeDictionary& dict);

/// Parses a model. Attribute names are resolved against (and must already
/// exist in) `dict` — use the dictionary of the graph the model was mined
/// on.
StatusOr<CspmModel> ModelFromText(const std::string& text,
                                  const graph::AttributeDictionary& dict);

/// File convenience wrappers.
Status SaveModelToFile(const CspmModel& model,
                       const graph::AttributeDictionary& dict,
                       const std::string& path);
StatusOr<CspmModel> LoadModelFromFile(const std::string& path,
                                      const graph::AttributeDictionary& dict);

}  // namespace cspm::core

#endif  // CSPM_CSPM_SERIALIZATION_H_
