#include "cspm/verify.h"

#include <algorithm>

#include "util/string_util.h"

namespace cspm::core {

Status VerifyLossless(const graph::AttributedGraph& g,
                      const InvertedDatabase& idb) {
  // Count, for every (coreset, vertex, leaf value) triple that should be
  // represented, how many lines cover it.
  std::vector<AttrId> neighbourhood;
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    neighbourhood.clear();
    for (VertexId w : g.Neighbors(v)) {
      auto attrs = g.Attributes(w);
      neighbourhood.insert(neighbourhood.end(), attrs.begin(), attrs.end());
    }
    std::sort(neighbourhood.begin(), neighbourhood.end());
    neighbourhood.erase(
        std::unique(neighbourhood.begin(), neighbourhood.end()),
        neighbourhood.end());
    if (neighbourhood.empty()) continue;

    for (CoreId c : idb.vertex_coresets()[v.index()]) {
      // For each leaf value y in the neighbourhood: count lines under c
      // whose leafset contains y and whose positions contain v.
      std::vector<uint32_t> cover_count(neighbourhood.size(), 0);
      // Scan all lines of coreset c that contain v. We iterate active
      // leafsets having a line with c.
      for (LeafsetId l(0); l.index() < idb.leafsets().size(); ++l) {
        const PosListView positions = idb.FindLine(c, l);
        if (positions.empty()) continue;
        if (!std::binary_search(positions.begin(), positions.end(), v)) {
          continue;
        }
        for (AttrId y : idb.leafsets().Values(l)) {
          auto it = std::lower_bound(neighbourhood.begin(),
                                     neighbourhood.end(), y);
          if (it == neighbourhood.end() || *it != y) {
            return Status::Internal(StrFormat(
                "line (core=%u, leafset=%u) places vertex %u but leaf "
                "value %u is not in its neighbourhood",
                c.value(), l.value(), v.value(), y.value()));
          }
          ++cover_count[static_cast<size_t>(it - neighbourhood.begin())];
        }
      }
      for (size_t i = 0; i < neighbourhood.size(); ++i) {
        if (cover_count[i] != 1) {
          return Status::Internal(StrFormat(
              "vertex %u, coreset %u, leaf value %u covered %u times "
              "(expected exactly 1)",
              v.value(), c.value(), neighbourhood[i].value(),
              cover_count[i]));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckInvariants(const InvertedDatabase& idb) {
  // Coreset tables: values sorted/unique, static frequencies summing to
  // the reported total.
  uint64_t freq_sum = 0;
  for (CoreId c(0); c.index() < idb.num_coresets(); ++c) {
    const auto& values = idb.CoresetValues(c);
    for (size_t i = 1; i < values.size(); ++i) {
      if (!(values[i - 1] < values[i])) {
        return Status::Internal(StrFormat(
            "coreset %u values not strictly ascending at slot %zu",
            c.value(), i));
      }
    }
    freq_sum += idb.CoresetFrequency(c);
  }
  if (freq_sum != idb.total_coreset_frequency()) {
    return Status::Internal(StrFormat(
        "coreset frequency sum %llu != reported total %llu",
        static_cast<unsigned long long>(freq_sum),
        static_cast<unsigned long long>(idb.total_coreset_frequency())));
  }

  // Leafset registry: every interned set sorted and duplicate-free.
  for (LeafsetId l(0); l.index() < idb.leafsets().size(); ++l) {
    const auto& values = idb.leafsets().Values(l);
    for (size_t i = 1; i < values.size(); ++i) {
      if (!(values[i - 1] < values[i])) {
        return Status::Internal(StrFormat(
            "leafset %u values not strictly ascending at slot %zu",
            l.value(), i));
      }
    }
  }

  // Lines: recompute every dynamic total from scratch and compare.
  std::vector<uint64_t> core_totals(idb.num_coresets(), 0);
  std::vector<uint8_t> leafset_has_line(idb.leafsets().size(), 0);
  size_t line_count = 0;
  Status line_status = Status::OK();
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    if (!line_status.ok()) return;
    ++line_count;
    if (e.index() >= idb.num_coresets()) {
      line_status = Status::Internal(StrFormat(
          "line under unknown coreset %u (have %zu)", e.value(),
          idb.num_coresets()));
      return;
    }
    if (l.index() >= idb.leafsets().size()) {
      line_status = Status::Internal(StrFormat(
          "line under unknown leafset %u (have %zu)", l.value(),
          idb.leafsets().size()));
      return;
    }
    if (positions.empty()) {
      line_status = Status::Internal(StrFormat(
          "line (core=%u, leafset=%u) has an empty position list — empty "
          "lines must be erased",
          e.value(), l.value()));
      return;
    }
    for (size_t i = 1; i < positions.size(); ++i) {
      if (!(positions[i - 1] < positions[i])) {
        line_status = Status::Internal(StrFormat(
            "line (core=%u, leafset=%u) positions not strictly ascending "
            "at slot %zu",
            e.value(), l.value(), i));
        return;
      }
    }
    core_totals[e.index()] += positions.size();
    leafset_has_line[l.index()] = 1;
  });
  CSPM_RETURN_IF_ERROR(line_status);

  if (line_count != idb.num_lines()) {
    return Status::Internal(StrFormat(
        "counted %zu lines but num_lines() reports %zu", line_count,
        idb.num_lines()));
  }
  for (CoreId e(0); e.index() < idb.num_coresets(); ++e) {
    if (core_totals[e.index()] != idb.CoreLineTotal(e)) {
      return Status::Internal(StrFormat(
          "coreset %u: recomputed f_e %llu != maintained %llu", e.value(),
          static_cast<unsigned long long>(core_totals[e.index()]),
          static_cast<unsigned long long>(idb.CoreLineTotal(e))));
    }
  }

  // Per-leafset line tables sorted by core, and the active list exactly
  // the leafsets that own at least one line.
  const auto& actives = idb.active_leafsets();
  for (size_t i = 1; i < actives.size(); ++i) {
    if (!(actives[i - 1] < actives[i])) {
      return Status::Internal(StrFormat(
          "active leafset list not strictly ascending at slot %zu", i));
    }
  }
  if (actives.size() != idb.num_active_leafsets()) {
    return Status::Internal("active leafset count disagrees with the list");
  }
  std::vector<uint8_t> is_active(idb.leafsets().size(), 0);
  for (LeafsetId l : actives) {
    if (l.index() >= idb.leafsets().size()) {
      return Status::Internal(
          StrFormat("active leafset %u is not interned", l.value()));
    }
    is_active[l.index()] = 1;
  }
  for (LeafsetId l(0); l.index() < idb.leafsets().size(); ++l) {
    if (leafset_has_line[l.index()] != is_active[l.index()]) {
      return Status::Internal(StrFormat(
          "leafset %u: has-line=%u but active=%u — activation bookkeeping "
          "out of sync",
          l.value(), leafset_has_line[l.index()], is_active[l.index()]));
    }
    const auto& cores = idb.CoresOf(l);
    for (size_t i = 1; i < cores.size(); ++i) {
      if (!(cores[i - 1] < cores[i])) {
        return Status::Internal(StrFormat(
            "leafset %u line table not strictly ascending at slot %zu",
            l.value(), i));
      }
    }
  }
  return Status::OK();
}

}  // namespace cspm::core
