#include "cspm/verify.h"

#include <algorithm>

#include "util/string_util.h"

namespace cspm::core {

Status VerifyLossless(const graph::AttributedGraph& g,
                      const InvertedDatabase& idb) {
  // Count, for every (coreset, vertex, leaf value) triple that should be
  // represented, how many lines cover it.
  std::vector<AttrId> neighbourhood;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    neighbourhood.clear();
    for (VertexId w : g.Neighbors(v)) {
      auto attrs = g.Attributes(w);
      neighbourhood.insert(neighbourhood.end(), attrs.begin(), attrs.end());
    }
    std::sort(neighbourhood.begin(), neighbourhood.end());
    neighbourhood.erase(
        std::unique(neighbourhood.begin(), neighbourhood.end()),
        neighbourhood.end());
    if (neighbourhood.empty()) continue;

    for (CoreId c : idb.vertex_coresets()[v]) {
      // For each leaf value y in the neighbourhood: count lines under c
      // whose leafset contains y and whose positions contain v.
      std::vector<uint32_t> cover_count(neighbourhood.size(), 0);
      // Scan all lines of coreset c that contain v. We iterate active
      // leafsets having a line with c.
      for (LeafsetId l = 0;
           l < static_cast<LeafsetId>(idb.leafsets().size()); ++l) {
        const PosListView positions = idb.FindLine(c, l);
        if (positions.empty()) continue;
        if (!std::binary_search(positions.begin(), positions.end(), v)) {
          continue;
        }
        for (AttrId y : idb.leafsets().Values(l)) {
          auto it = std::lower_bound(neighbourhood.begin(),
                                     neighbourhood.end(), y);
          if (it == neighbourhood.end() || *it != y) {
            return Status::Internal(StrFormat(
                "line (core=%u, leafset=%u) places vertex %u but leaf "
                "value %u is not in its neighbourhood",
                c, l, v, y));
          }
          ++cover_count[static_cast<size_t>(it - neighbourhood.begin())];
        }
      }
      for (size_t i = 0; i < neighbourhood.size(); ++i) {
        if (cover_count[i] != 1) {
          return Status::Internal(StrFormat(
              "vertex %u, coreset %u, leaf value %u covered %u times "
              "(expected exactly 1)",
              v, c, neighbourhood[i], cover_count[i]));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace cspm::core
