// Losslessness verification of the inverted database (the compression is a
// means, not the goal — but it must remain lossless at every step, Section
// IV-A). The invariant: for every vertex v, every coreset c assigned to v,
// and every attribute value y appearing on a neighbour of v, EXACTLY ONE
// line (SL ∋ y, c, P ∋ v) exists.
#ifndef CSPM_CSPM_VERIFY_H_
#define CSPM_CSPM_VERIFY_H_

#include "cspm/inverted_database.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::core {

/// Returns OK iff the invariant holds for every (vertex, coreset,
/// leaf-value) triple of the graph; otherwise an Internal error naming the
/// first violation.
Status VerifyLossless(const graph::AttributedGraph& g,
                      const InvertedDatabase& idb);

/// Deep structural validation of the pooled inverted database, independent
/// of any graph: sorted/unique coreset values and leafset values, sorted
/// non-empty position lists, per-core f_e totals that match the lines,
/// active-leafset bookkeeping that matches line existence, and consistent
/// global counters. Run under CSPM_DCHECK after builds and delta patches.
Status CheckInvariants(const InvertedDatabase& idb);

}  // namespace cspm::core

#endif  // CSPM_CSPM_VERIFY_H_
