#include "cspm/scoring_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/string_util.h"

namespace cspm::core {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

ScoringPlan ScoringPlan::Compile(const CspmModel& model,
                                 size_t num_attribute_values) {
  // Amortized once per model load / hot swap, but it sits on the serving
  // critical path, so its latency is first-class.
  static auto* const compile_hist =
      obs::GetHistogram("phase.serving.plan_compile");
  static auto* const compiles = obs::GetCounter("serving.plan_compiles");
  obs::ScopedPhaseTimer compile_timer(compile_hist);
  compiles->Add(1);
  ScoringPlan plan;
  plan.num_attrs_ = static_cast<uint32_t>(num_attribute_values);

  // Pass 1: count compiled stars, flat core slots and per-attribute
  // posting lengths (a counting scatter, the same shape as the inverted
  // database build).
  size_t num_stars = 0;
  size_t num_cores = 0;
  std::vector<uint32_t> posting_counts(num_attribute_values, 0);
  for (const AStar& s : model.astars) {
    if (s.leaf_values.empty()) continue;
    ++num_stars;
    for (AttrId cv : s.core_values) {
      if (cv.index() < num_attribute_values) ++num_cores;
    }
    for (AttrId a : s.leaf_values) {
      if (a.index() < num_attribute_values) ++posting_counts[a.index()];
    }
  }

  plan.leaf_size_.reserve(num_stars);
  plan.code_length_bits_.reserve(num_stars);
  plan.core_offsets_.reserve(num_stars + 1);
  plan.cores_.reserve(num_cores);
  plan.core_offsets_.push_back(0);

  plan.posting_offsets_.assign(num_attribute_values + 1, 0);
  for (size_t a = 0; a < num_attribute_values; ++a) {
    plan.posting_offsets_[a + 1] = plan.posting_offsets_[a] + posting_counts[a];
  }
  plan.postings_.resize(plan.posting_offsets_.back());

  // Pass 2: scatter. Compiled stars keep model order, so any per-star
  // iteration downstream matches the legacy scan order.
  std::vector<uint32_t> cursor(plan.posting_offsets_.begin(),
                               plan.posting_offsets_.end() - 1);
  uint32_t star = 0;
  for (const AStar& s : model.astars) {
    if (s.leaf_values.empty()) continue;
    plan.leaf_size_.push_back(static_cast<uint32_t>(s.leaf_values.size()));
    plan.code_length_bits_.push_back(s.code_length_bits);
    for (AttrId cv : s.core_values) {
      if (cv.index() < num_attribute_values) plan.cores_.push_back(cv);
    }
    plan.core_offsets_.push_back(static_cast<uint32_t>(plan.cores_.size()));
    for (AttrId a : s.leaf_values) {
      if (a.index() < num_attribute_values) {
        plan.postings_[cursor[a.index()]++] = star;
      }
    }
    ++star;
  }
  CSPM_DCHECK_OK(plan.CheckInvariants());
  return plan;
}

Status ScoringPlan::CheckInvariants() const {
  const size_t stars = leaf_size_.size();
  if (code_length_bits_.size() != stars) {
    return Status::Internal("code-length table size != star count");
  }
  if (core_offsets_.size() != stars + 1 || core_offsets_.front() != 0) {
    return Status::Internal("core offset table malformed");
  }
  for (size_t s = 0; s < stars; ++s) {
    if (leaf_size_[s] == 0) {
      return Status::Internal(StrFormat(
          "compiled star %zu has an empty leafset — Compile must drop it",
          s));
    }
    if (!std::isfinite(code_length_bits_[s]) || code_length_bits_[s] < 0.0) {
      return Status::Internal(
          StrFormat("compiled star %zu has invalid code length", s));
    }
    if (core_offsets_[s] > core_offsets_[s + 1]) {
      return Status::Internal(
          StrFormat("core offsets decrease at star %zu", s));
    }
  }
  if (core_offsets_.back() != cores_.size()) {
    return Status::Internal("core offsets do not cover the core slab");
  }
  for (AttrId cv : cores_) {
    if (cv.index() >= num_attrs_) {
      return Status::Internal(StrFormat(
          "core value %u outside the attribute space (%u)", cv.value(),
          num_attrs_));
    }
  }

  if (posting_offsets_.size() != static_cast<size_t>(num_attrs_) + 1 ||
      posting_offsets_.front() != 0) {
    return Status::Internal("posting offset table malformed");
  }
  std::vector<uint32_t> per_star_postings(stars, 0);
  for (size_t a = 0; a < num_attrs_; ++a) {
    if (posting_offsets_[a] > posting_offsets_[a + 1]) {
      return Status::Internal(
          StrFormat("posting offsets decrease at attribute %zu", a));
    }
    for (uint32_t i = posting_offsets_[a]; i < posting_offsets_[a + 1]; ++i) {
      const uint32_t s = postings_[i];
      if (s >= stars) {
        return Status::Internal(StrFormat(
            "posting of attribute %zu names unknown star %u", a, s));
      }
      // A star may appear at most once per attribute (leafsets are sets);
      // postings within one attribute are ascending by construction.
      if (i > posting_offsets_[a] && postings_[i - 1] >= s) {
        return Status::Internal(StrFormat(
            "postings of attribute %zu not strictly ascending", a));
      }
      ++per_star_postings[s];
    }
  }
  if (posting_offsets_.back() != postings_.size()) {
    return Status::Internal("posting offsets do not cover the posting slab");
  }
  // Every posting entry is one in-range leaf value of the star, so a star
  // can never be referenced more often than its leafset size (out-of-range
  // leaf values count toward leaf_size_ but get no posting).
  for (size_t s = 0; s < stars; ++s) {
    if (per_star_postings[s] > leaf_size_[s]) {
      return Status::Internal(StrFormat(
          "star %zu referenced by %u postings but its leafset holds %u",
          s, per_star_postings[s], leaf_size_[s]));
    }
  }
  return Status::OK();
}

size_t ScoringPlan::memory_bytes() const {
  return leaf_size_.capacity() * sizeof(uint32_t) +
         code_length_bits_.capacity() * sizeof(double) +
         core_offsets_.capacity() * sizeof(uint32_t) +
         cores_.capacity() * sizeof(AttrId) +
         posting_offsets_.capacity() * sizeof(uint32_t) +
         postings_.capacity() * sizeof(uint32_t);
}

void ScoringPlan::PrepareScratch(ScoringScratch* scratch) const {
  scratch->matched.resize(num_stars(), 0);
  scratch->attr_seen.resize(num_attrs_, 0);
  scratch->touched_stars.clear();
  scratch->seen_attrs.clear();
}

void ScoringPlan::ScoreInto(std::span<const AttrId> neighbourhood_attrs,
                            const ScoringOptions& options,
                            ScoringScratch* scratch,
                            AttributeScores* out) const {
  out->raw.assign(num_attrs_, kNegInf);

  // Intersection counting: only stars sharing an attribute with the
  // neighbourhood are touched, instead of scanning every leafset. The
  // attr_seen flags make the neighbourhood a set, exactly like the
  // legacy in_neighbourhood bitmap.
  scratch->touched_stars.clear();
  scratch->seen_attrs.clear();
  for (AttrId a : neighbourhood_attrs) {
    if (a.index() >= num_attrs_ || scratch->attr_seen[a.index()]) continue;
    scratch->attr_seen[a.index()] = 1;
    scratch->seen_attrs.push_back(a);
    const uint32_t begin = posting_offsets_[a.index()];
    const uint32_t end = posting_offsets_[a.index() + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint32_t s = postings_[i];
      if (scratch->matched[s]++ == 0) scratch->touched_stars.push_back(s);
    }
  }
  for (AttrId a : scratch->seen_attrs) scratch->attr_seen[a.index()] = 0;

  // Stars with matched == 0 have similarity 0 and can never move a score
  // (w diverges; cl is -inf or NaN, neither beats any raw value), so
  // iterating only touched stars is exact. Each subexpression mirrors the
  // legacy path so results stay bit-identical.
  for (const uint32_t s : scratch->touched_stars) {
    const double similarity = static_cast<double>(scratch->matched[s]) /
                              static_cast<double>(leaf_size_[s]);
    scratch->matched[s] = 0;  // restore the zero invariant as we go
    if (similarity < options.min_similarity) continue;
    const double w = 1.0 / similarity;
    const double cl = -w * code_length_bits_[s];
    const uint32_t core_end = core_offsets_[s + 1];
    for (uint32_t i = core_offsets_[s]; i < core_end; ++i) {
      const AttrId cv = cores_[i];
      if (cl > out->raw[cv.index()]) out->raw[cv.index()] = cl;
    }
  }

  // Min-max normalization of finite scores into (0, 1]; -inf -> 0. The
  // same full-array sweep as the legacy scorer.
  double lo = std::numeric_limits<double>::infinity();
  double hi = kNegInf;
  for (double s : out->raw) {
    if (std::isfinite(s)) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
  }
  out->normalized.assign(num_attrs_, 0.0);
  if (hi >= lo && std::isfinite(hi)) {
    const double span = hi - lo;
    for (size_t a = 0; a < num_attrs_; ++a) {
      if (!std::isfinite(out->raw[a])) continue;
      out->normalized[a] =
          span > 0 ? 0.05 + 0.95 * (out->raw[a] - lo) / span : 1.0;
    }
  }
}

AttributeScores ScoringPlan::Score(std::span<const AttrId> neighbourhood_attrs,
                                   const ScoringOptions& options) const {
  ScoringScratch scratch;
  PrepareScratch(&scratch);
  AttributeScores scores;
  ScoreInto(neighbourhood_attrs, options, &scratch, &scores);
  return scores;
}

std::shared_ptr<const ScoringPlan> CompileSharedPlan(
    const CspmModel& model, size_t num_attribute_values) {
  return std::make_shared<const ScoringPlan>(
      ScoringPlan::Compile(model, num_attribute_values));
}

void GatherNeighbourhoodAttrs(const graph::AttributedGraph& g, VertexId v,
                              std::vector<AttrId>* out) {
  out->clear();
  for (graph::VertexId w : g.Neighbors(v)) {
    const auto attrs = g.Attributes(w);
    out->insert(out->end(), attrs.begin(), attrs.end());
  }
}

}  // namespace cspm::core
