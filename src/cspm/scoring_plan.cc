#include "cspm/scoring_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/string_util.h"

namespace cspm::core {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Heap home of a compiled plan's slabs. Held behind the plan's
/// type-erased storage pointer; the plan's spans alias these vectors.
struct OwnedSlabs {
  std::vector<uint32_t> leaf_size;
  std::vector<double> code_length_bits;
  std::vector<uint32_t> core_offsets;
  std::vector<AttrId> cores;
  std::vector<uint32_t> posting_offsets;
  std::vector<uint32_t> postings;
};

}  // namespace

ScoringPlan ScoringPlan::Compile(const CspmModel& model,
                                 size_t num_attribute_values) {
  // Amortized once per model load / hot swap, but it sits on the serving
  // critical path, so its latency is first-class.
  static auto* const compile_hist =
      obs::GetHistogram("phase.serving.plan_compile");
  static auto* const compiles = obs::GetCounter("serving.plan_compiles");
  obs::ScopedPhaseTimer compile_timer(compile_hist);
  compiles->Add(1);
  auto owned = std::make_shared<OwnedSlabs>();

  // Pass 1: count compiled stars, flat core slots and per-attribute
  // posting lengths (a counting scatter, the same shape as the inverted
  // database build).
  size_t num_stars = 0;
  size_t num_cores = 0;
  std::vector<uint32_t> posting_counts(num_attribute_values, 0);
  for (const AStar& s : model.astars) {
    if (s.leaf_values.empty()) continue;
    ++num_stars;
    for (AttrId cv : s.core_values) {
      if (cv.index() < num_attribute_values) ++num_cores;
    }
    for (AttrId a : s.leaf_values) {
      if (a.index() < num_attribute_values) ++posting_counts[a.index()];
    }
  }

  owned->leaf_size.reserve(num_stars);
  owned->code_length_bits.reserve(num_stars);
  owned->core_offsets.reserve(num_stars + 1);
  owned->cores.reserve(num_cores);
  owned->core_offsets.push_back(0);

  owned->posting_offsets.assign(num_attribute_values + 1, 0);
  for (size_t a = 0; a < num_attribute_values; ++a) {
    owned->posting_offsets[a + 1] =
        owned->posting_offsets[a] + posting_counts[a];
  }
  owned->postings.resize(owned->posting_offsets.back());

  // Pass 2: scatter. Compiled stars keep model order, so any per-star
  // iteration downstream matches the legacy scan order.
  std::vector<uint32_t> cursor(owned->posting_offsets.begin(),
                               owned->posting_offsets.end() - 1);
  uint32_t star = 0;
  for (const AStar& s : model.astars) {
    if (s.leaf_values.empty()) continue;
    owned->leaf_size.push_back(static_cast<uint32_t>(s.leaf_values.size()));
    owned->code_length_bits.push_back(s.code_length_bits);
    for (AttrId cv : s.core_values) {
      if (cv.index() < num_attribute_values) owned->cores.push_back(cv);
    }
    owned->core_offsets.push_back(static_cast<uint32_t>(owned->cores.size()));
    for (AttrId a : s.leaf_values) {
      if (a.index() < num_attribute_values) {
        owned->postings[cursor[a.index()]++] = star;
      }
    }
    ++star;
  }

  ScoringPlan plan;
  plan.num_attrs_ = static_cast<uint32_t>(num_attribute_values);
  plan.slabs_ = Slabs{owned->leaf_size, owned->code_length_bits,
                      owned->core_offsets, owned->cores,
                      owned->posting_offsets, owned->postings};
  plan.storage_ = std::move(owned);
  CSPM_DCHECK_OK(plan.CheckInvariants());
  return plan;
}

StatusOr<ScoringPlan> ScoringPlan::FromSlabs(
    size_t num_attribute_values, const Slabs& slabs,
    std::shared_ptr<const void> storage) {
  // O(1) geometry only: the shapes ScoreInto's indexing depends on. The
  // deep per-element audit is CheckInvariants (run by fsck, not on the
  // microsecond open path).
  const size_t stars = slabs.leaf_size.size();
  if (slabs.code_length_bits.size() != stars) {
    return Status::InvalidArgument(
        "plan slabs: code-length table size != star count");
  }
  if (slabs.core_offsets.size() != stars + 1 ||
      slabs.core_offsets.front() != 0 ||
      slabs.core_offsets.back() != slabs.cores.size()) {
    return Status::InvalidArgument(
        "plan slabs: core offset table does not cover the core slab");
  }
  if (slabs.posting_offsets.size() != num_attribute_values + 1 ||
      slabs.posting_offsets.front() != 0 ||
      slabs.posting_offsets.back() != slabs.postings.size()) {
    return Status::InvalidArgument(
        "plan slabs: posting offset table does not cover the posting slab");
  }
  ScoringPlan plan;
  plan.num_attrs_ = static_cast<uint32_t>(num_attribute_values);
  plan.view_ = true;
  plan.slabs_ = slabs;
  plan.storage_ = std::move(storage);
  return plan;
}

Status ScoringPlan::CheckInvariants() const {
  const Slabs& sb = slabs_;
  const size_t stars = sb.leaf_size.size();
  if (sb.code_length_bits.size() != stars) {
    return Status::Internal("code-length table size != star count");
  }
  if (sb.core_offsets.size() != stars + 1 || sb.core_offsets.front() != 0) {
    return Status::Internal("core offset table malformed");
  }
  for (size_t s = 0; s < stars; ++s) {
    if (sb.leaf_size[s] == 0) {
      return Status::Internal(StrFormat(
          "compiled star %zu has an empty leafset — Compile must drop it",
          s));
    }
    if (!std::isfinite(sb.code_length_bits[s]) ||
        sb.code_length_bits[s] < 0.0) {
      return Status::Internal(
          StrFormat("compiled star %zu has invalid code length", s));
    }
    if (sb.core_offsets[s] > sb.core_offsets[s + 1]) {
      return Status::Internal(
          StrFormat("core offsets decrease at star %zu", s));
    }
  }
  if (sb.core_offsets.back() != sb.cores.size()) {
    return Status::Internal("core offsets do not cover the core slab");
  }
  for (AttrId cv : sb.cores) {
    if (cv.index() >= num_attrs_) {
      return Status::Internal(StrFormat(
          "core value %u outside the attribute space (%u)", cv.value(),
          num_attrs_));
    }
  }

  if (sb.posting_offsets.size() != static_cast<size_t>(num_attrs_) + 1 ||
      sb.posting_offsets.front() != 0) {
    return Status::Internal("posting offset table malformed");
  }
  std::vector<uint32_t> per_star_postings(stars, 0);
  for (size_t a = 0; a < num_attrs_; ++a) {
    if (sb.posting_offsets[a] > sb.posting_offsets[a + 1]) {
      return Status::Internal(
          StrFormat("posting offsets decrease at attribute %zu", a));
    }
    for (uint32_t i = sb.posting_offsets[a]; i < sb.posting_offsets[a + 1];
         ++i) {
      const uint32_t s = sb.postings[i];
      if (s >= stars) {
        return Status::Internal(StrFormat(
            "posting of attribute %zu names unknown star %u", a, s));
      }
      // A star may appear at most once per attribute (leafsets are sets);
      // postings within one attribute are ascending by construction.
      if (i > sb.posting_offsets[a] && sb.postings[i - 1] >= s) {
        return Status::Internal(StrFormat(
            "postings of attribute %zu not strictly ascending", a));
      }
      ++per_star_postings[s];
    }
  }
  if (sb.posting_offsets.back() != sb.postings.size()) {
    return Status::Internal("posting offsets do not cover the posting slab");
  }
  // Every posting entry is one in-range leaf value of the star, so a star
  // can never be referenced more often than its leafset size (out-of-range
  // leaf values count toward leaf_size but get no posting).
  for (size_t s = 0; s < stars; ++s) {
    if (per_star_postings[s] > sb.leaf_size[s]) {
      return Status::Internal(StrFormat(
          "star %zu referenced by %u postings but its leafset holds %u",
          s, per_star_postings[s], sb.leaf_size[s]));
    }
  }
  return Status::OK();
}

size_t ScoringPlan::ApproxBytes() const {
  return slabs_.leaf_size.size_bytes() + slabs_.code_length_bits.size_bytes() +
         slabs_.core_offsets.size_bytes() + slabs_.cores.size_bytes() +
         slabs_.posting_offsets.size_bytes() + slabs_.postings.size_bytes();
}

void ScoringPlan::PrepareScratch(ScoringScratch* scratch) const {
  scratch->matched.resize(num_stars(), 0);
  scratch->attr_seen.resize(num_attrs_, 0);
  scratch->touched_stars.clear();
  scratch->seen_attrs.clear();
}

void ScoringPlan::ScoreInto(std::span<const AttrId> neighbourhood_attrs,
                            const ScoringOptions& options,
                            ScoringScratch* scratch,
                            AttributeScores* out) const {
  const Slabs& sb = slabs_;
  out->raw.assign(num_attrs_, kNegInf);

  // Intersection counting: only stars sharing an attribute with the
  // neighbourhood are touched, instead of scanning every leafset. The
  // attr_seen flags make the neighbourhood a set, exactly like the
  // legacy in_neighbourhood bitmap.
  scratch->touched_stars.clear();
  scratch->seen_attrs.clear();
  for (AttrId a : neighbourhood_attrs) {
    if (a.index() >= num_attrs_ || scratch->attr_seen[a.index()]) continue;
    scratch->attr_seen[a.index()] = 1;
    scratch->seen_attrs.push_back(a);
    const uint32_t begin = sb.posting_offsets[a.index()];
    const uint32_t end = sb.posting_offsets[a.index() + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint32_t s = sb.postings[i];
      if (scratch->matched[s]++ == 0) scratch->touched_stars.push_back(s);
    }
  }
  for (AttrId a : scratch->seen_attrs) scratch->attr_seen[a.index()] = 0;

  // Stars with matched == 0 have similarity 0 and can never move a score
  // (w diverges; cl is -inf or NaN, neither beats any raw value), so
  // iterating only touched stars is exact. Each subexpression mirrors the
  // legacy path so results stay bit-identical.
  for (const uint32_t s : scratch->touched_stars) {
    const double similarity = static_cast<double>(scratch->matched[s]) /
                              static_cast<double>(sb.leaf_size[s]);
    scratch->matched[s] = 0;  // restore the zero invariant as we go
    if (similarity < options.min_similarity) continue;
    const double w = 1.0 / similarity;
    const double cl = -w * sb.code_length_bits[s];
    const uint32_t core_end = sb.core_offsets[s + 1];
    for (uint32_t i = sb.core_offsets[s]; i < core_end; ++i) {
      const AttrId cv = sb.cores[i];
      if (cl > out->raw[cv.index()]) out->raw[cv.index()] = cl;
    }
  }

  // Min-max normalization of finite scores into (0, 1]; -inf -> 0. The
  // same full-array sweep as the legacy scorer.
  double lo = std::numeric_limits<double>::infinity();
  double hi = kNegInf;
  for (double s : out->raw) {
    if (std::isfinite(s)) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
  }
  out->normalized.assign(num_attrs_, 0.0);
  if (hi >= lo && std::isfinite(hi)) {
    const double span = hi - lo;
    for (size_t a = 0; a < num_attrs_; ++a) {
      if (!std::isfinite(out->raw[a])) continue;
      out->normalized[a] =
          span > 0 ? 0.05 + 0.95 * (out->raw[a] - lo) / span : 1.0;
    }
  }
}

AttributeScores ScoringPlan::Score(std::span<const AttrId> neighbourhood_attrs,
                                   const ScoringOptions& options) const {
  ScoringScratch scratch;
  PrepareScratch(&scratch);
  AttributeScores scores;
  ScoreInto(neighbourhood_attrs, options, &scratch, &scores);
  return scores;
}

std::shared_ptr<const ScoringPlan> CompileSharedPlan(
    const CspmModel& model, size_t num_attribute_values) {
  return std::make_shared<const ScoringPlan>(
      ScoringPlan::Compile(model, num_attribute_values));
}

void GatherNeighbourhoodAttrs(const graph::AttributedGraph& g, VertexId v,
                              std::vector<AttrId>* out) {
  out->clear();
  for (graph::VertexId w : g.Neighbors(v)) {
    const auto attrs = g.Attributes(w);
    out->insert(out->end(), attrs.begin(), attrs.end());
  }
}

}  // namespace cspm::core
