// Interning of leafsets (sets of leaf attribute values) to dense ids.
#ifndef CSPM_CSPM_LEAFSET_REGISTRY_H_
#define CSPM_CSPM_LEAFSET_REGISTRY_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "cspm/types.h"

namespace cspm::core {

/// FNV-1a over the id bytes. The registry grows to one entry per line
/// leafset (hundreds of thousands on dense graphs) and Find/InternUnion
/// sit on the merge-loop hot path, so lookups must not pay an ordered-map
/// walk with full vector comparisons at every node.
struct LeafsetHash {
  size_t operator()(const std::vector<AttrId>& values) const {
    uint64_t h = 1469598103934665603ull;
    for (AttrId v : values) {
      h = (h ^ v.value()) * 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// Interns sorted attribute-value sets. Ids are stable for the lifetime of
/// the registry.
class LeafsetRegistry {
 public:
  static constexpr LeafsetId kNotFound = static_cast<LeafsetId>(-1);

  /// Interns `values` (must be sorted and duplicate-free); returns its id.
  LeafsetId Intern(std::vector<AttrId> values);

  /// Id of an existing leafset, or kNotFound.
  LeafsetId Find(const std::vector<AttrId>& values) const;

  /// Values of an interned leafset.
  const std::vector<AttrId>& Values(LeafsetId id) const;

  /// Interns the union of two existing leafsets.
  LeafsetId InternUnion(LeafsetId a, LeafsetId b);

  /// Union of two existing leafsets without interning.
  std::vector<AttrId> UnionValues(LeafsetId a, LeafsetId b) const;

  size_t size() const { return sets_.size(); }

 private:
  std::vector<std::vector<AttrId>> sets_;
  std::unordered_map<std::vector<AttrId>, LeafsetId, LeafsetHash> index_;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_LEAFSET_REGISTRY_H_
