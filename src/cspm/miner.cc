#include "cspm/miner.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cspm/candidates.h"
#include "itemset/transaction_db.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cspm::core {
namespace {

uint64_t PossiblePairs(uint64_t n) { return n < 2 ? 0 : n * (n - 1) / 2; }

/// True if two ascending core-id lists intersect (two-pointer).
bool SharesAnyCore(const std::vector<CoreId>& a, const std::vector<CoreId>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

// Step 1 for multi-value coresets: SLIM over the vertex-attribute
// transactions; the accepted patterns (plus in-use singletons) become the
// coresets, and each vertex is assigned the coresets used by its cover.
Status BuildSlimCoresets(const graph::AttributedGraph& g,
                         const itemset::SlimOptions& slim_options,
                         std::vector<std::vector<AttrId>>* coreset_values,
                         std::vector<std::vector<CoreId>>* vertex_coresets) {
  itemset::TransactionDb db =
      itemset::TransactionDb::FromVertexAttributes(g);
  auto slim_or = itemset::RunSlim(db, slim_options);
  if (!slim_or.ok()) return slim_or.status();
  const itemset::CodeTable& ct = *slim_or.value().code_table;

  // Map in-use code table entries to dense coreset ids.
  std::vector<size_t> entry_to_core(ct.num_entries(), SIZE_MAX);
  coreset_values->clear();
  for (size_t i = 0; i < ct.num_entries(); ++i) {
    if (ct.entries()[i].usage == 0) continue;
    entry_to_core[i] = coreset_values->size();
    coreset_values->emplace_back(ct.entries()[i].items.begin(),
                                 ct.entries()[i].items.end());
  }
  vertex_coresets->assign(g.num_vertices().index(), {});
  std::vector<size_t> used;
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    used.clear();
    const auto& t = db.transaction(v.index());
    if (t.empty()) continue;
    ct.CoverTransaction(t, &used);
    for (size_t idx : used) {
      (*vertex_coresets)[v.index()].push_back(
          CoreId(static_cast<uint32_t>(entry_to_core[idx])));
    }
    std::sort((*vertex_coresets)[v.index()].begin(),
              (*vertex_coresets)[v.index()].end());
  }
  return Status::OK();
}

struct SearchContext {
  const CspmOptions* options;
  InvertedDatabase* idb;
  const CodeModel* cm;
  MiningStats* stats;
  const WallTimer* timer;
  /// Non-null when the gain fan-outs run thread-pooled.
  util::ThreadPool* pool;

  bool OutOfBudget() const {
    if (options->max_seconds <= 0.0) return false;
    if (timer->ElapsedSeconds() < options->max_seconds) return false;
    stats->hit_time_budget = true;
    return true;
  }
};

/// Best pair of one all-pairs scan. The serial scan keeps the first pair,
/// in row-major (i, j) order, whose gain strictly exceeds every earlier
/// one; Offer/Reduce replicate exactly that rule, so the pooled path is
/// bit-identical as long as rows are reduced in ascending order.
struct BestPair {
  double gain = 0.0;
  LeafsetId x{};
  LeafsetId y{};
  bool found = false;

  void Offer(double g, double threshold, LeafsetId px, LeafsetId py) {
    if (g > (found ? gain : threshold)) {
      gain = g;
      x = px;
      y = py;
      found = true;
    }
  }
  void Reduce(const BestPair& o, double threshold) {
    if (o.found) Offer(o.gain, threshold, o.x, o.y);
  }
};

// Scans all pairs of `actives` for the best gain above the threshold.
// Serial and pooled paths produce identical results (same FP inputs, same
// reduction order).
BestPair ScanAllPairs(const SearchContext& ctx,
                      const std::vector<LeafsetId>& actives,
                      uint64_t* computations) {
  const size_t m = actives.size();
  const double threshold = ctx.options->min_gain_bits;
  BestPair best;
  if (ctx.pool == nullptr || m < 3) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        GainResult gr =
            ComputeMergeGain(*ctx.idb, *ctx.cm, actives[i], actives[j]);
        ++*computations;
        if (!gr.feasible) continue;
        best.Offer(gr.Total(ctx.options->gain_policy), threshold,
                   actives[i], actives[j]);
      }
    }
    return best;
  }

  // One task per row i; each row keeps its local best, then rows reduce in
  // ascending order.
  std::vector<BestPair> row_best(m - 1);
  ctx.pool->ParallelFor(row_best.size(), [&](size_t i) {
    BestPair& row = row_best[i];
    for (size_t j = i + 1; j < m; ++j) {
      GainResult gr =
          ComputeMergeGain(*ctx.idb, *ctx.cm, actives[i], actives[j]);
      if (!gr.feasible) continue;
      row.Offer(gr.Total(ctx.options->gain_policy), threshold,
                actives[i], actives[j]);
    }
  });
  *computations += PossiblePairs(m);
  for (const BestPair& row : row_best) best.Reduce(row, threshold);
  return best;
}

// Seeds the candidate store over all active pairs, in (i, j) row-major
// order on both the serial and pooled paths (rows are applied in order),
// so the store's heap state never depends on threading. Cold runs (cache
// == nullptr) compute every gain. Warm runs compute only the pairs in
// `dirty` (all of them under all_dirty) and replay the cached gain for
// clean pairs — sound per CollectDirtyCandidatePairs, and bit-identical
// to a cold regeneration because iteration and insertion order match
// exactly. `capture` (optional) receives the refreshed gain cache.
// Returns the number of gains computed.
uint64_t GenerateCandidates(const SearchContext& ctx,
                            const std::unordered_map<uint64_t, double>* cache,
                            const DirtyCandidates* dirty,
                            CandidateStore* store, RelatedDict* rdict,
                            std::unordered_map<uint64_t, double>* capture) {
  const auto actives = ctx.idb->active_leafsets();  // copy: stable snapshot
  const size_t m = actives.size();
  auto pair_is_dirty = [&](LeafsetId x, LeafsetId y) {
    return dirty == nullptr || dirty->all_dirty ||
           std::binary_search(dirty->pair_keys.begin(),
                              dirty->pair_keys.end(), CandidatePairKey(x, y));
  };
  auto accept = [&](LeafsetId x, LeafsetId y, double total) {
    store->Set(x, y, total);
    rdict->Link(x, y);
    if (capture != nullptr) capture->emplace(CandidatePairKey(x, y), total);
  };
  // One pair's seed gain: freshly computed when dirty (counted), replayed
  // from the cache when clean. False keeps the pair out of the store.
  auto evaluate = [&](LeafsetId x, LeafsetId y, uint64_t* computations,
                      double* total) {
    if (!pair_is_dirty(x, y)) {
      auto it = cache->find(CandidatePairKey(x, y));
      if (it == cache->end()) return false;
      *total = it->second;
      return true;
    }
    GainResult gr = ComputeMergeGain(*ctx.idb, *ctx.cm, x, y);
    ++*computations;
    if (!gr.feasible) return false;
    *total = gr.Total(ctx.options->gain_policy);
    return *total > ctx.options->min_gain_bits;
  };

  if (ctx.pool == nullptr || m < 3) {
    uint64_t computations = 0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        double total = 0.0;
        if (evaluate(actives[i], actives[j], &computations, &total)) {
          accept(actives[i], actives[j], total);
        }
      }
    }
    return computations;
  }

  std::vector<std::vector<std::pair<LeafsetId, double>>> row_hits(m - 1);
  std::vector<uint64_t> row_computations(m - 1, 0);
  ctx.pool->ParallelFor(m - 1, [&](size_t i) {
    for (size_t j = i + 1; j < m; ++j) {
      double total = 0.0;
      if (evaluate(actives[i], actives[j], &row_computations[i], &total)) {
        row_hits[i].emplace_back(actives[j], total);
      }
    }
  });
  uint64_t computations = 0;
  for (size_t i = 0; i + 1 < m; ++i) {
    computations += row_computations[i];
    for (const auto& [other, total] : row_hits[i]) {
      accept(actives[i], other, total);
    }
  }
  return computations;
}

void RecordIteration(const SearchContext& ctx, uint64_t iteration,
                     uint64_t computations, uint64_t possible,
                     double accepted_gain) {
  ctx.stats->total_gain_computations += computations;
  if (!ctx.options->record_iteration_stats) return;
  IterationStats is;
  is.iteration = iteration;
  is.gain_computations = computations;
  is.possible_pairs = possible;
  is.accepted_gain_bits = accepted_gain;
  is.active_leafsets = ctx.idb->num_active_leafsets();
  is.num_lines = ctx.idb->num_lines();
  ctx.stats->per_iteration.push_back(is);
}

// CSPM-Basic main loop (Algorithm 1): full candidate regeneration.
void RunBasicSearch(const SearchContext& ctx) {
  obs::TraceSpan merge_loop_span("merge_loop");
  uint64_t iteration = 0;
  for (;;) {
    if (ctx.options->max_iterations &&
        iteration >= ctx.options->max_iterations) {
      break;
    }
    if (ctx.OutOfBudget()) break;
    const auto actives = ctx.idb->active_leafsets();
    const uint64_t possible = PossiblePairs(actives.size());
    uint64_t computations = 0;
    BestPair best = ScanAllPairs(ctx, actives, &computations);
    if (!best.found) {
      ctx.stats->total_gain_computations += computations;
      break;
    }
    MergeOutcome outcome = ctx.idb->MergeLeafsets(best.x, best.y);
    (void)outcome;
    ++iteration;
    RecordIteration(ctx, iteration, computations, possible, best.gain);
  }
  ctx.stats->iterations = iteration;
  obs::GetCounter("mine.merges")->Add(iteration);
}

// CSPM-Partial main loop (Algorithms 3-4): incremental candidate updates
// through the related-leafset dictionary, from an already seeded store.
void RunPartialLoop(const SearchContext& ctx, CandidateStore& store,
                    RelatedDict& rdict) {
  obs::TraceSpan merge_loop_span("merge_loop");
  uint64_t iteration = 0;
  std::vector<LeafsetId> scratch;
  while (!store.empty() && !rdict.empty()) {
    if (ctx.options->max_iterations &&
        iteration >= ctx.options->max_iterations) {
      break;
    }
    if (ctx.OutOfBudget()) break;
    const uint64_t possible =
        PossiblePairs(ctx.idb->num_active_leafsets());
    uint64_t computations = 0;

    LeafsetId x{};
    LeafsetId y{};
    double stored_gain = 0.0;
    if (!store.PopBest(&x, &y, &stored_gain)) break;

    double gain = stored_gain;
    if (ctx.options->revalidate_on_pop) {
      GainResult gr = ComputeMergeGain(*ctx.idb, *ctx.cm, x, y);
      ++computations;
      gain = gr.Total(ctx.options->gain_policy);
      if (!gr.feasible || gain <= ctx.options->min_gain_bits) {
        rdict.Unlink(x, y);
        ctx.stats->total_gain_computations += computations;
        continue;  // stale candidate; not an accepted iteration
      }
    }

    // Snapshot relations before mutating rdict (Algorithm 4 uses the
    // pre-merge relation sets).
    std::vector<LeafsetId> related_both = rdict.Intersection(x, y);
    std::vector<LeafsetId> rel_x(rdict.RelatedTo(x).begin(),
                                 rdict.RelatedTo(x).end());
    std::vector<LeafsetId> rel_y(rdict.RelatedTo(y).begin(),
                                 rdict.RelatedTo(y).end());

    MergeOutcome outcome = ctx.idb->MergeLeafsets(x, y);
    if (outcome.no_op) {
      // Cannot happen when revalidation is on; defensive for the off case.
      rdict.Unlink(x, y);
      ctx.stats->total_gain_computations += computations;
      continue;
    }
    ++iteration;
    rdict.Unlink(x, y);

    // (1) Remove totally merged leafsets everywhere.
    for (LeafsetId l : outcome.totally_merged) {
      rdict.RemoveLeafset(l, &scratch);
      for (LeafsetId rel : scratch) store.Erase(l, rel);
    }

    // (2) Score the new pattern against leafsets related to both halves.
    const LeafsetId u = outcome.merged_id;
    for (LeafsetId rel : related_both) {
      if (rel == x || rel == y || rel == u) continue;
      if (ctx.idb->CoresOf(rel).empty()) continue;  // vanished meanwhile
      GainResult gr = ComputeMergeGain(*ctx.idb, *ctx.cm, rel, u);
      ++computations;
      if (gr.feasible) {
        const double total = gr.Total(ctx.options->gain_policy);
        if (total > ctx.options->min_gain_bits) {
          store.Set(rel, u, total);
          rdict.Link(rel, u);
        }
      }
    }

    // (3) Update pairs influenced through partly merged leafsets.
    for (LeafsetId l : outcome.partly_merged) {
      const std::vector<LeafsetId>& snapshot = (l == x) ? rel_x : rel_y;
      for (LeafsetId rel : snapshot) {
        if (rel == x || rel == y) continue;
        if (ctx.idb->CoresOf(rel).empty() || ctx.idb->CoresOf(l).empty()) {
          continue;
        }
        // Everything the merge moved (l / u lines, f_e) sits under the
        // touched cores; with no line there, rel's pair with l kept
        // bit-identical inputs — the stored gain still stands.
        if (!SharesAnyCore(ctx.idb->CoresOf(rel), outcome.touched_cores)) {
          continue;
        }
        GainResult gr = ComputeMergeGain(*ctx.idb, *ctx.cm, l, rel);
        ++computations;
        const double total = gr.Total(ctx.options->gain_policy);
        if (gr.feasible && total > ctx.options->min_gain_bits) {
          store.Set(l, rel, total);
        } else {
          store.Erase(l, rel);
          rdict.Unlink(l, rel);
        }
      }
    }
    RecordIteration(ctx, iteration, computations, possible, gain);
  }
  ctx.stats->iterations = iteration;
  obs::GetCounter("mine.merges")->Add(iteration);
}

// Extracts the a-stars of a final database into the model, sorted by
// (code length, core values, leaf values) — shared by every mine/resume
// flavour so the published model shape never depends on the path taken.
void ExtractAStars(const CspmOptions& options, const InvertedDatabase& idb,
                   const CodeModel& cm, CspmModel* model) {
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    AStar s;
    s.core_values = idb.CoresetValues(e);
    s.leaf_values = idb.leafsets().Values(l);
    s.frequency = positions.size();
    s.core_total = idb.CoreLineTotal(e);
    s.coreset_frequency = idb.CoresetFrequency(e);
    s.code_length_bits =
        cm.CoreCodeLength(e) +
        CodeModel::LeafCodeLength(s.frequency, s.core_total);
    if (options.include_singleton_leafsets || s.leaf_values.size() >= 2) {
      model->astars.push_back(std::move(s));
    }
  });
  std::sort(model->astars.begin(), model->astars.end(),
            [](const AStar& a, const AStar& b) {
              if (a.code_length_bits != b.code_length_bits) {
                return a.code_length_bits < b.code_length_bits;
              }
              if (a.core_values != b.core_values) {
                return a.core_values < b.core_values;
              }
              return a.leaf_values < b.leaf_values;
            });
}

}  // namespace

std::vector<uint64_t> CollectDirtyCandidatePairs(
    const graph::AttributedGraph& old_graph,
    const graph::AttributedGraph& new_graph,
    std::span<const graph::VertexId> dirty_vertices,
    std::span<const CoreId> dirty_cores) {
  const size_t m = new_graph.num_attribute_values();
  // Pair marks: a dense m^2 bit matrix up to ~8 MB (m <= 8192), a hash
  // set of pair keys beyond — so the cost stays bounded by the touched
  // neighbourhoods, not by the attribute vocabulary squared.
  const bool dense = m <= 8192;
  std::vector<uint64_t> bits(dense ? (m * m + 63) / 64 : 0, 0);
  std::unordered_set<uint64_t> sparse;
  std::vector<char> vertex_done(new_graph.num_vertices().index(), 0);
  std::vector<AttrId> attrs;  // distinct neighbour attrs of one vertex

  auto mark_pairs = [&]() {
    for (size_t i = 0; i < attrs.size(); ++i) {
      for (size_t j = i + 1; j < attrs.size(); ++j) {
        if (dense) {
          const size_t bit = attrs[i].index() * m + attrs[j].index();
          bits[bit >> 6] |= uint64_t{1} << (bit & 63);
        } else {
          sparse.insert(CandidatePairKey(LeafsetId(attrs[i].value()),
                                         LeafsetId(attrs[j].value())));
        }
      }
    }
  };

  // New state: every vertex carrying a dirty core contributes its
  // neighbourhood co-occurrence pairs (its position sits in the
  // intersection of both members' lines under that core, so f_e and/or
  // line changes reach the pair's gain).
  for (CoreId c : dirty_cores) {
    // Single-value-coreset mode: core id c is attribute value c.
    for (VertexId v : new_graph.VerticesWithAttribute(AttrId(c.value()))) {
      if (vertex_done[v.index()]) continue;
      vertex_done[v.index()] = 1;
      GatherDistinctNeighbourAttrs(new_graph, v, &attrs);
      mark_pairs();
    }
  }
  // Old state: only dirty vertices' contributions differ from the new
  // state (clean vertices have identical lines), so their pre-delta
  // neighbourhoods complete the set.
  const VertexId n_old = old_graph.num_vertices();
  for (VertexId u : dirty_vertices) {
    if (u >= n_old) continue;
    GatherDistinctNeighbourAttrs(old_graph, u, &attrs);
    mark_pairs();
  }

  std::vector<uint64_t> keys;
  if (dense) {
    // Word-skip scan: cost proportional to marked pairs, not m^2 bits.
    for (size_t w = 0; w < bits.size(); ++w) {
      uint64_t word = bits[w];
      while (word != 0) {
        const size_t idx = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        keys.push_back(
            CandidatePairKey(LeafsetId(static_cast<uint32_t>(idx / m)),
                             LeafsetId(static_cast<uint32_t>(idx % m))));
      }
    }
  } else {
    keys.assign(sparse.begin(), sparse.end());
    std::sort(keys.begin(), keys.end());
  }
  return keys;
}

StatusOr<CspmModel> CspmMiner::Mine(const graph::AttributedGraph& g) const {
  CSPM_ASSIGN_OR_RETURN(MineArtifacts artifacts, MineWithArtifacts(g));
  return std::move(artifacts.model);
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::MineWithArtifacts(
    const graph::AttributedGraph& g) const {
  return MineImpl(g, nullptr);
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::MineWithWarmState(
    const graph::AttributedGraph& g, WarmState* warm) const {
  if (options_.multi_value_coresets) {
    return Status::FailedPrecondition(
        "warm-start state needs single-value coresets (SLIM covers are "
        "not incrementally maintainable)");
  }
  return MineImpl(g, warm);
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::ResumeWarm(
    const graph::AttributedGraph& g, WarmState* warm,
    const DirtyCandidates& dirty, uint64_t* reseed_computations) const {
  if (options_.multi_value_coresets) {
    return Status::FailedPrecondition(
        "ResumeWarm needs single-value coresets");
  }
  WallTimer timer;
  // The pristine patched database stays in `warm` for the next update;
  // the search mutates a clone.
  InvertedDatabase idb = warm->initial_db.Clone();
  return SearchAndExtract(g, std::move(idb), warm, &dirty,
                          reseed_computations, timer);
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::ResumeFast(
    const graph::AttributedGraph& g, WarmState* warm,
    const DeltaPatchStats& patch, bool all_dirty, bool want_database,
    FastResumeStats* fast_stats) const {
  if (options_.multi_value_coresets) {
    return Status::FailedPrecondition(
        "ResumeFast needs single-value coresets");
  }
  if (options_.strategy != SearchStrategy::kPartial) {
    return Status::FailedPrecondition(
        "ResumeFast needs the kPartial strategy (its convergence argument "
        "relies on the drained candidate store)");
  }
  if (warm->final_db.num_coresets() == 0) {
    return Status::FailedPrecondition(
        "ResumeFast needs a captured final-model database (mine warm first)");
  }
  WallTimer timer;
  // Repaired in place: the post-search state IS the next update's warm
  // final model, so no pristine copy is kept (that is what buys the
  // fast path its speed; on error the caller discards the warm state).
  InvertedDatabase& idb = warm->final_db;
  const CodeModel cm(g, idb);

  CspmModel model;
  model.stats.initial_dl_bits = cm.TotalDescriptionLengthBits(idb);
  model.stats.initial_leafsets = idb.num_active_leafsets();
  model.stats.initial_lines = idb.num_lines();

  SearchContext ctx{&options_, &idb,  &cm,
                    &model.stats, &timer, /*pool=*/nullptr};

  const size_t num_cores = idb.num_coresets();
  std::vector<char> core_dirty(num_cores, all_dirty ? 1 : 0);
  if (!all_dirty) {
    for (CoreId c : patch.dirty_cores) {
      if (c.index() < num_cores) core_dirty[c.index()] = 1;
    }
  }

  // Undo pass: unmerge leafsets whose continued existence stopped paying
  // for itself under the patched data. The decision is global — the
  // exact inverse of the merge it undoes, which summed its gain over
  // every core the pair overlapped in. Per-core split gains are
  // independent (splitting line (e1, l) moves no term of core e2), so
  // the leafset's unmerge gain is their sum; judging lines one at a time
  // instead would split locally-negative lines of globally-profitable
  // merges and dismantle the model. Only leafsets touching a dirty core
  // can have flipped; sweep to a fixpoint because a split feeds the
  // member singleton lines (and f_e) that other split gains read.
  uint64_t computations = 0;
  std::vector<LeafsetId> split_fed;  // singletons the unmerge pass grew
  std::optional<obs::TraceSpan> unmerge_span(std::in_place, "unmerge");
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<LeafsetId> actives = idb.active_leafsets();  // snapshot
    for (LeafsetId l : actives) {
      if (idb.leafsets().Values(l).size() < 2) continue;
      const std::vector<CoreId>& cores = idb.CoresOf(l);
      bool touches_dirty = false;
      for (CoreId e : cores) {
        if (core_dirty[e.index()]) {
          touches_dirty = true;
          break;
        }
      }
      if (!touches_dirty) continue;
      double total = 0.0;
      bool feasible = true;
      for (CoreId e : cores) {
        GainResult gr = ComputeSplitGain(idb, cm, e, l);
        ++computations;
        if (!gr.feasible) {
          feasible = false;
          break;
        }
        total += gr.Total(options_.gain_policy);
      }
      if (!feasible || total <= options_.min_gain_bits) continue;
      // Split every line; copy the core list first (SplitLine erases
      // from it as it goes) and the values (SplitLine interns, which can
      // reallocate the registry's value storage).
      const std::vector<CoreId> cores_copy = cores;
      const std::vector<AttrId> values = idb.leafsets().Values(l);
      for (CoreId e : cores_copy) {
        CSPM_RETURN_IF_ERROR(idb.SplitLine(e, l));
      }
      for (AttrId a : values) {
        split_fed.push_back(idb.leafsets().Find({a}));
      }
      if (fast_stats != nullptr) ++fast_stats->splits;
      changed = true;
    }
  }
  unmerge_span.reset();

  // Seed: repair scope only. The re-judged pairs are those BOTH of whose
  // members' position lists changed — by the delta patch
  // (touched_leafsets) or by the unmerge pass (the fed singletons).
  // Anything broader degenerates on real graphs: dirty cores are popular
  // attributes, so "every pair under a dirty core" — and even "every
  // pair with one touched member" — is a near-cold seed (millions of
  // evaluations), and because the partial heuristic leaves latent
  // positive pairs everywhere, re-judging them re-opens the whole
  // search. Pairs with an untouched member keep their pre-delta verdict;
  // the gain drift a handful of moved positions (or an f_e total)
  // causes them is the imprecision the DL-ε contract absorbs — the CI
  // gate holds the resulting model to within 1% of a cold mine's DL.
  // Sources ascend and partners are sorted, so tie-breaking in the store
  // stays deterministic.
  CandidateStore store;
  RelatedDict rdict;
  {
    obs::TraceSpan reseed_span("reseed");
    const std::vector<LeafsetId>& actives = idb.active_leafsets();
    const size_t m = actives.size();
    const size_t num_leafsets = idb.leafsets().size();
    std::vector<std::vector<LeafsetId>> under(num_cores);
    for (LeafsetId l : actives) {
      for (CoreId e : idb.CoresOf(l)) under[e.index()].push_back(l);
    }
    std::vector<char> is_source(num_leafsets, 0);
    std::vector<LeafsetId> sources;
    auto add_source = [&](LeafsetId l) {
      if (is_source[l.index()] || idb.CoresOf(l).empty()) return;
      is_source[l.index()] = 1;
      sources.push_back(l);
    };
    if (all_dirty) {
      for (LeafsetId l : actives) add_source(l);
    } else {
      // A touched leafset is stale in proportion to the share of its
      // positions that moved: gains shift by O(moved / mass) log-ratios.
      // Below 1/kStaleMassRatio the drift is deep inside the DL-ε budget
      // and skipping the leafset is what keeps the seed small — the
      // popular leafsets (huge mass, a position or two moved) are
      // precisely the ones with thousands of co-occurring partners.
      constexpr uint64_t kStaleMassRatio = 16;
      for (size_t i = 0; i < patch.touched_leafsets.size(); ++i) {
        const LeafsetId l = patch.touched_leafsets[i];
        if (idb.CoresOf(l).empty()) continue;  // emptied or unmerged away
        uint64_t mass = 0;
        for (CoreId e : idb.CoresOf(l)) mass += idb.FindLine(e, l).size();
        const uint64_t moved = i < patch.touched_position_moves.size()
                                   ? patch.touched_position_moves[i]
                                   : mass;
        if (moved * kStaleMassRatio < mass) continue;
        add_source(l);
      }
      for (LeafsetId l : split_fed) add_source(l);
    }
    std::sort(sources.begin(), sources.end());
    std::vector<uint32_t> seen(num_leafsets, 0);
    uint32_t epoch = 0;
    std::vector<LeafsetId> partners;
    for (LeafsetId t : sources) {
      ++epoch;
      partners.clear();
      for (CoreId e : idb.CoresOf(t)) {
        for (LeafsetId b : under[e.index()]) {
          if (seen[b.index()] == epoch) continue;
          seen[b.index()] = epoch;
          // Both-source pairs only, judged once from their smaller member.
          if (!is_source[b.index()] || b <= t) continue;
          partners.push_back(b);
        }
      }
      std::sort(partners.begin(), partners.end());
      for (LeafsetId b : partners) {
        GainResult gr = ComputeMergeGain(idb, cm, t, b);
        ++computations;
        if (!gr.feasible) continue;
        const double total = gr.Total(options_.gain_policy);
        if (total > options_.min_gain_bits) {
          store.Set(t, b, total);
          rdict.Link(t, b);
          if (fast_stats != nullptr) ++fast_stats->seeded_pairs;
        }
      }
    }
    RecordIteration(ctx, /*iteration=*/0, computations, PossiblePairs(m),
                    /*accepted_gain=*/0.0);
  }
  RunPartialLoop(ctx, store, rdict);

  model.stats.final_dl_bits = cm.TotalDescriptionLengthBits(idb);
  model.stats.final_leafsets = idb.num_active_leafsets();
  model.stats.final_lines = idb.num_lines();

  ExtractAStars(options_, idb, cm, &model);

  model.stats.runtime_seconds = timer.ElapsedSeconds();
  MineArtifacts artifacts;
  artifacts.model = std::move(model);
  if (want_database) artifacts.inverted_db = idb.Clone();
  return artifacts;
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::MineImpl(
    const graph::AttributedGraph& g, WarmState* warm) const {
  WallTimer timer;
  obs::TraceSpan mine_span("mine");
  obs::GetCounter("mine.runs")->Add(1);

  StatusOr<InvertedDatabase> idb_or = [&]() -> StatusOr<InvertedDatabase> {
    obs::TraceSpan db_build_span("db_build");
    if (!options_.multi_value_coresets) {
      return InvertedDatabase::FromGraph(g);
    }
    std::vector<std::vector<AttrId>> coreset_values;
    std::vector<std::vector<CoreId>> vertex_coresets;
    CSPM_RETURN_IF_ERROR(BuildSlimCoresets(g, options_.slim, &coreset_values,
                                           &vertex_coresets));
    return InvertedDatabase::FromGraphWithCoresets(
        g, std::move(coreset_values), vertex_coresets);
  }();
  if (!idb_or.ok()) return idb_or.status();
  InvertedDatabase idb = std::move(idb_or).value();
  if (warm != nullptr) {
    warm->initial_db = idb.Clone();
    warm->initial_gains.clear();
  }
  return SearchAndExtract(g, std::move(idb), warm, /*dirty=*/nullptr,
                          /*reseed_computations=*/nullptr, timer);
}

StatusOr<CspmMiner::MineArtifacts> CspmMiner::SearchAndExtract(
    const graph::AttributedGraph& g, InvertedDatabase idb, WarmState* warm,
    const DirtyCandidates* dirty, uint64_t* reseed_computations,
    const WallTimer& timer) const {
  const CodeModel cm(g, idb);

  CspmModel model;
  model.stats.initial_dl_bits = cm.TotalDescriptionLengthBits(idb);
  model.stats.initial_leafsets = idb.num_active_leafsets();
  model.stats.initial_lines = idb.num_lines();

  std::unique_ptr<util::ThreadPool> pool;
  const uint32_t threads = options_.num_threads == 0
                               ? static_cast<uint32_t>(
                                     util::ThreadPool::AutoThreads())
                               : options_.num_threads;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  SearchContext ctx{&options_, &idb, &cm, &model.stats, &timer, pool.get()};
  if (options_.strategy == SearchStrategy::kBasic) {
    RunBasicSearch(ctx);
  } else {
    CandidateStore store;
    RelatedDict rdict;
    const uint64_t possible = PossiblePairs(idb.num_active_leafsets());
    std::unordered_map<uint64_t, double> next_gains;
    const uint64_t computations = [&] {
      obs::TraceSpan candidate_gen_span("candidate_gen");
      return GenerateCandidates(
          ctx, dirty != nullptr ? &warm->initial_gains : nullptr, dirty,
          &store, &rdict, warm != nullptr ? &next_gains : nullptr);
    }();
    if (warm != nullptr) warm->initial_gains = std::move(next_gains);
    if (dirty != nullptr && reseed_computations != nullptr) {
      *reseed_computations = computations;
    }
    RecordIteration(ctx, /*iteration=*/0, computations, possible,
                    /*accepted_gain=*/0.0);
    RunPartialLoop(ctx, store, rdict);
  }

  model.stats.final_dl_bits = cm.TotalDescriptionLengthBits(idb);
  model.stats.final_leafsets = idb.num_active_leafsets();
  model.stats.final_lines = idb.num_lines();

  // The post-merge database is the fast re-mine's starting point.
  if (warm != nullptr) warm->final_db = idb.Clone();

  ExtractAStars(options_, idb, cm, &model);

  model.stats.runtime_seconds = timer.ElapsedSeconds();
  return MineArtifacts{std::move(model), std::move(idb)};
}

}  // namespace cspm::core
