// The inverted database representation of Section IV-B: a table of lines
// (leafset SL, coreset Sc, positions). Initially every line is a basic
// a-star with a single leaf value; mining proceeds by merging leafset pairs.
#ifndef CSPM_CSPM_INVERTED_DATABASE_H_
#define CSPM_CSPM_INVERTED_DATABASE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cspm/leafset_registry.h"
#include "cspm/types.h"
#include "util/status.h"

namespace cspm::core {

/// Outcome of merging the leafsets of a candidate pair.
struct MergeOutcome {
  LeafsetId merged_id = 0;
  /// Members of the merged pair whose last line vanished (Algorithm 4's
  /// l_total).
  std::vector<LeafsetId> totally_merged;
  /// Members of the merged pair that still have lines (l_part).
  std::vector<LeafsetId> partly_merged;
  /// Shared coresets with a non-empty position intersection.
  uint32_t cores_touched = 0;
  /// Sum of xy_e over touched coresets.
  uint64_t moved_positions = 0;
  /// True if no shared coreset had a non-empty intersection (nothing done).
  bool no_op = true;
};

/// The inverted database. Lines are keyed by (coreset, leafset); positions
/// are sorted vertex lists. Per-coreset dynamic totals f_e (the sum of line
/// frequencies, which the gain formula P1 consumes) are maintained
/// incrementally.
class InvertedDatabase {
 public:
  /// Builds the single-core-value inverted database: every attribute value
  /// is a coreset; line (c, {y}) holds every vertex that carries c and has
  /// a neighbour carrying y.
  static StatusOr<InvertedDatabase> FromGraph(const graph::AttributedGraph& g);

  /// Builds the multi-value-coreset inverted database: `vertex_coresets[v]`
  /// lists the coresets covering vertex v (from a Krimp/SLIM cover of the
  /// vertex-attribute transactions, Section IV-F Step 1) and
  /// `coreset_values[c]` the attribute values of coreset c.
  static StatusOr<InvertedDatabase> FromGraphWithCoresets(
      const graph::AttributedGraph& g,
      std::vector<std::vector<AttrId>> coreset_values,
      const std::vector<std::vector<CoreId>>& vertex_coresets);

  // --- structure access ---------------------------------------------------

  size_t num_coresets() const { return coreset_values_.size(); }
  size_t num_lines() const { return num_lines_; }
  /// Number of leafsets that currently have at least one line.
  size_t num_active_leafsets() const { return active_leafsets_.size(); }
  /// Sorted ids of leafsets with at least one line.
  const std::vector<LeafsetId>& active_leafsets() const {
    return active_leafsets_;
  }

  const LeafsetRegistry& leafsets() const { return leafsets_; }
  LeafsetRegistry& mutable_leafsets() { return leafsets_; }

  /// Attribute values of coreset c.
  const std::vector<AttrId>& CoresetValues(CoreId c) const {
    return coreset_values_[c];
  }
  /// Static mapping-table frequency of coreset c (number of vertices it
  /// covers), used by ST / Code_c (Eq. 5).
  uint64_t CoresetFrequency(CoreId c) const { return coreset_freq_[c]; }
  /// Sum of CoresetFrequency over all coresets.
  uint64_t total_coreset_frequency() const { return total_coreset_freq_; }

  /// Dynamic total f_e = sum of line frequencies under coreset e (the c_j of
  /// Eq. 8; decreases by xy_e at each merge).
  uint64_t CoreLineTotal(CoreId e) const { return core_line_total_[e]; }

  /// Positions of line (e, l), or nullptr if the line does not exist.
  const PosList* FindLine(CoreId e, LeafsetId l) const;

  /// Sorted coresets that have a line with leafset l (empty vector for
  /// inactive leafsets).
  const std::vector<CoreId>& CoresOf(LeafsetId l) const;

  /// Iterates over all lines.
  void ForEachLine(
      const std::function<void(CoreId, LeafsetId, const PosList&)>& fn) const;

  /// Coresets assigned to each vertex (identity for single-core mode).
  const std::vector<std::vector<CoreId>>& vertex_coresets() const {
    return vertex_coresets_;
  }

  // --- mutation -----------------------------------------------------------

  /// Merges leafsets x and y (Section IV-E): for every shared coreset e with
  /// a non-empty position intersection I, moves I into the line
  /// (e, x ∪ y) and shrinks the x / y lines by I. Updates f_e totals and
  /// active-leafset bookkeeping.
  MergeOutcome MergeLeafsets(LeafsetId x, LeafsetId y);

  // --- description length -------------------------------------------------

  /// L(I|M) of Eq. 8: sum_e f_e log2 f_e - sum_lines fL log2 fL.
  double DataCostBits() const;

 private:
  InvertedDatabase() = default;

  static uint64_t Key(CoreId e, LeafsetId l) {
    return (static_cast<uint64_t>(e) << 32) | l;
  }

  void AddInitialLine(CoreId e, LeafsetId l, VertexId v);
  void ActivateLeafset(LeafsetId l);
  void InsertCoreOf(LeafsetId l, CoreId e);
  void EraseCoreOf(LeafsetId l, CoreId e);
  void Finalize();

  LeafsetRegistry leafsets_;
  std::vector<std::vector<AttrId>> coreset_values_;
  std::vector<uint64_t> coreset_freq_;
  uint64_t total_coreset_freq_ = 0;
  std::vector<uint64_t> core_line_total_;
  std::vector<std::vector<CoreId>> vertex_coresets_;

  std::unordered_map<uint64_t, PosList> lines_;
  /// Per leafset: sorted coresets having a line with it.
  std::vector<std::vector<CoreId>> cores_of_;
  std::vector<LeafsetId> active_leafsets_;  // sorted
  size_t num_lines_ = 0;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_INVERTED_DATABASE_H_
