// The inverted database representation of Section IV-B: a table of lines
// (leafset SL, coreset Sc, positions). Initially every line is a basic
// a-star with a single leaf value; mining proceeds by merging leafset pairs.
//
// Storage layout (the "storage" layer of the engine): position lists live
// in a flat PosListPool arena and the lines of a leafset are two parallel
// sorted vectors (coresets, pool refs). Line lookup is a binary search and
// the merge/gain hot path is two-pointer scans over contiguous memory — no
// hashing and no per-line heap vectors.
//
// The search layer (miner / candidates / gain) consumes this class only
// through the narrow interface below: active_leafsets / CoresOf / FindLine
// / ForEachSharedCore / ForEachLine for iteration, MergeLeafsets for
// mutation, and the f_e / frequency accessors for the gain formulas. Keep
// it that way — it is what lets the storage be swapped or sharded without
// touching the search layer (see DESIGN.md §2).
#ifndef CSPM_CSPM_INVERTED_DATABASE_H_
#define CSPM_CSPM_INVERTED_DATABASE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cspm/leafset_registry.h"
#include "cspm/types.h"
#include "util/pos_list_pool.h"
#include "util/status.h"

namespace cspm::core {

/// What an ApplyDelta patch touched — the facts the incremental re-seed
/// consumes (DESIGN.md §9). A core is dirty when any line under it was
/// created, erased, or resized (its f_e and/or line composition moved);
/// a leafset is touched when one of its own lines changed.
struct DeltaPatchStats {
  std::vector<CoreId> dirty_cores;          ///< sorted, deduplicated
  std::vector<LeafsetId> touched_leafsets;  ///< sorted, deduplicated
  /// Parallel to touched_leafsets: how many of that leafset's positions
  /// the patch moved (adds + removes). Filled by ApplyDeltaMerged only
  /// (the fast re-mine scales a leafset's staleness by it); ApplyDelta
  /// leaves it empty.
  std::vector<uint32_t> touched_position_moves;
  uint64_t positions_added = 0;
  uint64_t positions_removed = 0;
};

/// Distinct sorted attribute values over the neighbours of v — the leaf
/// values v contributes lines for. Shared by the delta patch and the
/// dirty-candidate collection (miner.cc).
void GatherDistinctNeighbourAttrs(const graph::AttributedGraph& g, VertexId v,
                                  std::vector<AttrId>* out);

/// Outcome of merging the leafsets of a candidate pair.
struct MergeOutcome {
  LeafsetId merged_id{};
  /// Members of the merged pair whose last line vanished (Algorithm 4's
  /// l_total).
  std::vector<LeafsetId> totally_merged;
  /// Members of the merged pair that still have lines (l_part).
  std::vector<LeafsetId> partly_merged;
  /// Shared coresets with a non-empty position intersection.
  uint32_t cores_touched = 0;
  /// Those coresets, ascending. Everything the merge changed (x / y / u
  /// lines, f_e totals) lives under them, so a pair whose members have no
  /// line under any of these keeps a bit-identical gain — the search uses
  /// this to skip provably unchanged rescores (Algorithm 4 step 3).
  std::vector<CoreId> touched_cores;
  /// Sum of xy_e over touched coresets.
  uint64_t moved_positions = 0;
  /// True if no shared coreset had a non-empty intersection (nothing done).
  bool no_op = true;
};

/// The inverted database. Lines are keyed by (coreset, leafset); positions
/// are sorted vertex lists in pooled flat storage. Per-coreset dynamic
/// totals f_e (the sum of line frequencies, which the gain formula P1
/// consumes) are maintained incrementally.
class InvertedDatabase {
 public:
  /// Builds the single-core-value inverted database: every attribute value
  /// is a coreset; line (c, {y}) holds every vertex that carries c and has
  /// a neighbour carrying y.
  static StatusOr<InvertedDatabase> FromGraph(const graph::AttributedGraph& g);

  /// Builds the multi-value-coreset inverted database: `vertex_coresets[v]`
  /// lists the coresets covering vertex v (from a Krimp/SLIM cover of the
  /// vertex-attribute transactions, Section IV-F Step 1) and
  /// `coreset_values[c]` the attribute values of coreset c.
  static StatusOr<InvertedDatabase> FromGraphWithCoresets(
      const graph::AttributedGraph& g,
      std::vector<std::vector<AttrId>> coreset_values,
      const std::vector<std::vector<CoreId>>& vertex_coresets);

  /// An empty database (no coresets, no lines) — the value-member /
  /// WarmState default before a FromGraph result or Clone is assigned in.
  InvertedDatabase() = default;

  InvertedDatabase(InvertedDatabase&&) = default;
  InvertedDatabase& operator=(InvertedDatabase&&) = default;

  /// Deep copy (position lists re-pooled; pool refs differ, views are
  /// equal). The warm-start machinery clones the pre-merge database so
  /// the search can mutate one copy while the pristine one is kept for
  /// the next incremental update.
  InvertedDatabase Clone() const;

  // --- structure access ---------------------------------------------------

  size_t num_coresets() const { return coreset_values_.size(); }
  size_t num_lines() const { return num_lines_; }
  /// Number of leafsets that currently have at least one line.
  size_t num_active_leafsets() const { return active_leafsets_.size(); }
  /// Sorted ids of leafsets with at least one line.
  const std::vector<LeafsetId>& active_leafsets() const {
    return active_leafsets_;
  }

  const LeafsetRegistry& leafsets() const { return leafsets_; }

  /// Attribute values of coreset c.
  const std::vector<AttrId>& CoresetValues(CoreId c) const {
    return coreset_values_[c.index()];
  }
  /// Static mapping-table frequency of coreset c (number of vertices it
  /// covers), used by ST / Code_c (Eq. 5).
  uint64_t CoresetFrequency(CoreId c) const { return coreset_freq_[c.index()]; }
  /// Sum of CoresetFrequency over all coresets.
  uint64_t total_coreset_frequency() const { return total_coreset_freq_; }

  /// Dynamic total f_e = sum of line frequencies under coreset e (the c_j of
  /// Eq. 8; decreases by xy_e at each merge).
  uint64_t CoreLineTotal(CoreId e) const { return core_line_total_[e.index()]; }

  /// Positions of line (e, l); an empty view when the line does not exist
  /// (lines never have empty position lists).
  PosListView FindLine(CoreId e, LeafsetId l) const {
    if (l.index() >= lines_of_.size()) return {};
    const LeafsetLines& lines = lines_of_[l.index()];
    const size_t i = LowerBoundCore(lines, e);
    if (i == lines.cores.size() || lines.cores[i] != e) return {};
    return pool_.View(lines.refs[i]);
  }

  /// Sorted coresets that have a line with leafset l (empty vector for
  /// inactive leafsets).
  const std::vector<CoreId>& CoresOf(LeafsetId l) const {
    static const std::vector<CoreId> kEmptyCores;
    if (l.index() >= lines_of_.size()) return kEmptyCores;
    return lines_of_[l.index()].cores;
  }

  /// Iterates the shared coresets of leafsets x and y in ascending order,
  /// handing both position-list views: fn(CoreId, PosListView x_positions,
  /// PosListView y_positions). This is the gain formula's inner loop.
  template <typename Fn>
  void ForEachSharedCore(LeafsetId x, LeafsetId y, Fn&& fn) const {
    if (x.index() >= lines_of_.size() || y.index() >= lines_of_.size()) {
      return;
    }
    const LeafsetLines& lx = lines_of_[x.index()];
    const LeafsetLines& ly = lines_of_[y.index()];
    size_t i = 0;
    size_t j = 0;
    while (i < lx.cores.size() && j < ly.cores.size()) {
      if (lx.cores[i] < ly.cores[j]) {
        ++i;
      } else if (ly.cores[j] < lx.cores[i]) {
        ++j;
      } else {
        fn(lx.cores[i], pool_.View(lx.refs[i]), pool_.View(ly.refs[j]));
        ++i;
        ++j;
      }
    }
  }

  /// Iterates over all lines, in ascending (leafset, coreset) order:
  /// fn(CoreId, LeafsetId, PosListView).
  template <typename Fn>
  void ForEachLine(Fn&& fn) const {
    for (LeafsetId l(0); l.index() < lines_of_.size(); ++l) {
      const LeafsetLines& lines = lines_of_[l.index()];
      for (size_t i = 0; i < lines.cores.size(); ++i) {
        fn(lines.cores[i], l, pool_.View(lines.refs[i]));
      }
    }
  }

  /// Coresets assigned to each vertex (identity for single-core mode).
  const std::vector<std::vector<CoreId>>& vertex_coresets() const {
    return vertex_coresets_;
  }

  /// Values currently reserved by the position-list arena (observability).
  size_t pool_reserved_values() const { return pool_.reserved_values(); }

  // --- mutation -----------------------------------------------------------

  /// Merges leafsets x and y (Section IV-E): for every shared coreset e with
  /// a non-empty position intersection I, moves I into the line
  /// (e, x ∪ y) and shrinks the x / y lines by I. Updates f_e totals and
  /// active-leafset bookkeeping.
  MergeOutcome MergeLeafsets(LeafsetId x, LeafsetId y);

  /// Patches this database from `old_graph` to `new_graph`, recomputing
  /// line membership only for `dirty_vertices` (the set reported by
  /// graph::ApplyDelta) instead of the 3-pass full rebuild. The result is
  /// observably identical to FromGraph(new_graph): same lines, positions,
  /// f_e totals and active leafsets.
  ///
  /// Only valid on a single-value-coreset database in its initial
  /// (pre-merge) state — every leafset a singleton. New attribute values
  /// of `new_graph` get their singleton coresets and leafsets appended in
  /// id order, preserving the leafset-id == attr-id correspondence.
  Status ApplyDelta(const graph::AttributedGraph& old_graph,
                    const graph::AttributedGraph& new_graph,
                    std::span<const VertexId> dirty_vertices,
                    DeltaPatchStats* stats);

  /// Patches a *merged* single-value-coreset database (the final state of
  /// a mine) from `old_graph` to `new_graph`. Merges only ever touch
  /// leafsets, so coreset id == attr id still holds here; what no longer
  /// holds is the one-leafset-per-line-value shape, so each dirty vertex
  /// is first removed from every line under its old cores (sound by the
  /// partition invariant: under a core, the leafsets whose line holds a
  /// vertex partition that vertex's distinct neighbour values) and then
  /// re-covered under its new cores by a deterministic greedy cover that
  /// prefers existing leafsets (largest first, then lowest id) and sends
  /// leftover values to singleton lines. The result is a valid, lossless
  /// database for `new_graph` that keeps as much of the mined structure
  /// as possible — it is NOT the database a cold mine would produce; the
  /// fast re-mine path (CspmMiner::ResumeFast) repairs it by splitting
  /// and merging until the DL criterion is converged again.
  Status ApplyDeltaMerged(const graph::AttributedGraph& old_graph,
                          const graph::AttributedGraph& new_graph,
                          std::span<const VertexId> dirty_vertices,
                          DeltaPatchStats* stats);

  /// Undoes line (e, l) of a merged leafset: its positions move back into
  /// the member singleton lines (e, {a}) for every a in l's values —
  /// disjoint merges by the partition invariant. f_e grows by
  /// (|values| - 1) * fL. InvalidArgument when the line does not exist or
  /// l is a singleton.
  Status SplitLine(CoreId e, LeafsetId l);

  // --- description length -------------------------------------------------

  /// L(I|M) of Eq. 8: sum_e f_e log2 f_e - sum_lines fL log2 fL.
  double DataCostBits() const;

 private:
  /// All lines of one leafset: parallel vectors sorted by coreset id.
  struct LeafsetLines {
    std::vector<CoreId> cores;
    std::vector<util::PosListPool::Ref> refs;
  };

  static size_t LowerBoundCore(const LeafsetLines& lines, CoreId e);

  void ActivateLeafset(LeafsetId l);
  void DeactivateLeafset(LeafsetId l);
  /// Removes the line at index i of leafset l and frees its extent.
  void EraseLineAt(LeafsetId l, size_t i);

  LeafsetRegistry leafsets_;
  std::vector<std::vector<AttrId>> coreset_values_;
  std::vector<uint64_t> coreset_freq_;
  uint64_t total_coreset_freq_ = 0;
  std::vector<uint64_t> core_line_total_;
  std::vector<std::vector<CoreId>> vertex_coresets_;

  util::PosListPool pool_;
  std::vector<LeafsetLines> lines_of_;      // indexed by LeafsetId
  std::vector<LeafsetId> active_leafsets_;  // sorted
  size_t num_lines_ = 0;
};

}  // namespace cspm::core

#endif  // CSPM_CSPM_INVERTED_DATABASE_H_
