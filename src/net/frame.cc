#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "store/codec.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace cspm::net {
namespace {

void PutLe32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetLe32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

WireStatus WireStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kFailedPrecondition:
      return WireStatus::kFailedPrecondition;
    case StatusCode::kOutOfRange:
      return WireStatus::kOutOfRange;
    case StatusCode::kInternal:
      return WireStatus::kInternal;
    case StatusCode::kIOError:
      return WireStatus::kIOError;
  }
  return WireStatus::kInternal;
}

Status StatusFromWireStatus(WireStatus code, const std::string& message) {
  switch (code) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case WireStatus::kOutOfRange:
      return Status::OutOfRange(message);
    case WireStatus::kInternal:
      return Status::Internal(message);
    case WireStatus::kIOError:
      return Status::IOError(message);
    case WireStatus::kOverloaded:
      // The closest engine category: the server is healthy but declined
      // the work; the wire name is preserved in the message.
      return Status::FailedPrecondition("OVERLOADED: " + message);
  }
  return Status::Internal(message);
}

const char* WireStatusName(WireStatus code) {
  switch (code) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kNotFound:
      return "NOT_FOUND";
    case WireStatus::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case WireStatus::kOutOfRange:
      return "OUT_OF_RANGE";
    case WireStatus::kInternal:
      return "INTERNAL";
    case WireStatus::kIOError:
      return "IO_ERROR";
    case WireStatus::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

void AppendFrame(const Frame& frame, std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(frame.verb));
  out->push_back(static_cast<char>(frame.status));
  out->push_back('\0');
  out->push_back('\0');
  PutLe32(frame.request_id, out);
  PutLe32(static_cast<uint32_t>(frame.payload.size()), out);
  PutLe32(Crc32(frame.payload.data(), frame.payload.size()), out);
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  AppendFrame(frame, &out);
  return out;
}

Status FrameParser::Feed(std::string_view bytes, std::vector<Frame>* out) {
  if (!poisoned_.ok()) return poisoned_;
  buffer_.append(bytes.data(), bytes.size());
  size_t pos = 0;
  while (buffer_.size() - pos >= kHeaderBytes) {
    const char* header = buffer_.data() + pos;
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
      poisoned_ = Status::InvalidArgument(StrFormat(
          "bad frame magic 0x%02x%02x%02x%02x (stream out of sync)",
          static_cast<uint8_t>(header[0]), static_cast<uint8_t>(header[1]),
          static_cast<uint8_t>(header[2]), static_cast<uint8_t>(header[3])));
      return poisoned_;
    }
    if (header[6] != 0 || header[7] != 0) {
      poisoned_ = Status::InvalidArgument(
          "nonzero reserved bytes in frame header (future format?)");
      return poisoned_;
    }
    const uint32_t payload_len = GetLe32(header + 12);
    if (payload_len > max_payload_bytes_) {
      poisoned_ = Status::InvalidArgument(
          StrFormat("frame payload length %u exceeds the %zu-byte cap "
                    "(corrupt length field or hostile peer)",
                    payload_len, max_payload_bytes_));
      return poisoned_;
    }
    if (buffer_.size() - pos < kHeaderBytes + payload_len) break;
    const char* payload = header + kHeaderBytes;
    const uint32_t want_crc = GetLe32(header + 16);
    const uint32_t got_crc = Crc32(payload, payload_len);
    if (want_crc != got_crc) {
      poisoned_ = Status::IOError(
          StrFormat("frame payload CRC mismatch (stored 0x%08x, computed "
                    "0x%08x)",
                    want_crc, got_crc));
      return poisoned_;
    }
    Frame frame;
    frame.verb = static_cast<Verb>(header[4]);
    frame.status = static_cast<WireStatus>(header[5]);
    frame.request_id = GetLe32(header + 8);
    frame.payload.assign(payload, payload_len);
    out->push_back(std::move(frame));
    pos += kHeaderBytes + payload_len;
  }
  buffer_.erase(0, pos);
  return Status::OK();
}

// --- verb payload encodings ----------------------------------------------

std::string EncodeScoreRequest(const ScoreRequest& req) {
  store::Encoder enc;
  enc.PutString(req.model);
  enc.PutVarint(req.k);
  enc.PutVarint(req.vertices.size());
  for (graph::VertexId v : req.vertices) enc.PutVarint(v.value());
  return enc.Release();
}

StatusOr<ScoreRequest> DecodeScoreRequest(std::string_view payload) {
  store::Decoder dec(payload);
  ScoreRequest req;
  CSPM_ASSIGN_OR_RETURN(std::string_view model, dec.ReadString());
  req.model = std::string(model);
  CSPM_ASSIGN_OR_RETURN(uint64_t k, dec.ReadVarint());
  req.k = static_cast<uint32_t>(k);
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec.ReadVarint());
  if (count > payload.size()) {
    return Status::InvalidArgument("score request vertex count exceeds "
                                   "payload size (corrupt frame)");
  }
  req.vertices.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CSPM_ASSIGN_OR_RETURN(uint64_t v, dec.ReadVarint());
    req.vertices.push_back(graph::VertexId(static_cast<uint32_t>(v)));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after score request");
  }
  return req;
}

std::string EncodeScoreResponse(const ScoreResponse& resp) {
  store::Encoder enc;
  enc.PutVarint(resp.results.size());
  for (const auto& entries : resp.results) {
    enc.PutVarint(entries.size());
    for (const ScoreResponse::Entry& e : entries) {
      enc.PutVarint(e.attr.value());
      enc.PutDouble(e.score);
    }
  }
  return enc.Release();
}

StatusOr<ScoreResponse> DecodeScoreResponse(std::string_view payload) {
  store::Decoder dec(payload);
  ScoreResponse resp;
  CSPM_ASSIGN_OR_RETURN(uint64_t vertices, dec.ReadVarint());
  if (vertices > payload.size()) {
    return Status::InvalidArgument("score response vertex count exceeds "
                                   "payload size (corrupt frame)");
  }
  resp.results.resize(vertices);
  for (uint64_t i = 0; i < vertices; ++i) {
    CSPM_ASSIGN_OR_RETURN(uint64_t entries, dec.ReadVarint());
    if (entries > dec.remaining()) {
      return Status::InvalidArgument("score response entry count exceeds "
                                     "remaining payload (corrupt frame)");
    }
    resp.results[i].reserve(entries);
    for (uint64_t j = 0; j < entries; ++j) {
      ScoreResponse::Entry e;
      CSPM_ASSIGN_OR_RETURN(uint64_t attr, dec.ReadVarint());
      e.attr = graph::AttrId(static_cast<uint32_t>(attr));
      CSPM_ASSIGN_OR_RETURN(e.score, dec.ReadDouble());
      resp.results[i].push_back(e);
    }
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after score response");
  }
  return resp;
}

std::string EncodeUpdateRequest(const UpdateRequest& req) {
  store::Encoder enc;
  enc.PutString(req.model);
  enc.PutU8(req.mode);
  store::EncodeGraphDelta(req.delta, &enc);
  return enc.Release();
}

StatusOr<UpdateRequest> DecodeUpdateRequest(std::string_view payload) {
  store::Decoder dec(payload);
  UpdateRequest req;
  CSPM_ASSIGN_OR_RETURN(std::string_view model, dec.ReadString());
  req.model = std::string(model);
  CSPM_ASSIGN_OR_RETURN(req.mode, dec.ReadU8());
  if (req.mode > 1) {
    return Status::InvalidArgument(
        StrFormat("bad update mode byte %u (0 = exact, 1 = fast)", req.mode));
  }
  CSPM_ASSIGN_OR_RETURN(req.delta, store::DecodeGraphDelta(&dec));
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after update request");
  }
  return req;
}

std::string EncodeUpdateResponse(const UpdateResponse& resp) {
  store::Encoder enc;
  enc.PutU8(resp.fast_path ? 1 : 0);
  enc.PutU8(resp.warm_path ? 1 : 0);
  enc.PutVarint(resp.dirty_vertices);
  enc.PutDouble(resp.dl_before_bits);
  enc.PutDouble(resp.dl_after_bits);
  return enc.Release();
}

StatusOr<UpdateResponse> DecodeUpdateResponse(std::string_view payload) {
  store::Decoder dec(payload);
  UpdateResponse resp;
  CSPM_ASSIGN_OR_RETURN(uint8_t fast, dec.ReadU8());
  CSPM_ASSIGN_OR_RETURN(uint8_t warm, dec.ReadU8());
  resp.fast_path = fast != 0;
  resp.warm_path = warm != 0;
  CSPM_ASSIGN_OR_RETURN(resp.dirty_vertices, dec.ReadVarint());
  CSPM_ASSIGN_OR_RETURN(resp.dl_before_bits, dec.ReadDouble());
  CSPM_ASSIGN_OR_RETURN(resp.dl_after_bits, dec.ReadDouble());
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after update response");
  }
  return resp;
}

std::string EncodeListResponse(const ListResponse& resp) {
  store::Encoder enc;
  enc.PutVarint(resp.models.size());
  for (const std::string& name : resp.models) enc.PutString(name);
  return enc.Release();
}

StatusOr<ListResponse> DecodeListResponse(std::string_view payload) {
  store::Decoder dec(payload);
  ListResponse resp;
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec.ReadVarint());
  if (count > payload.size()) {
    return Status::InvalidArgument("list response count exceeds payload "
                                   "size (corrupt frame)");
  }
  resp.models.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CSPM_ASSIGN_OR_RETURN(std::string_view name, dec.ReadString());
    resp.models.emplace_back(name);
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after list response");
  }
  return resp;
}

Frame MakeErrorFrame(Verb verb, uint32_t request_id, WireStatus code,
                     const std::string& message) {
  Frame frame;
  frame.verb = verb;
  frame.status = code;
  frame.request_id = request_id;
  store::Encoder enc;
  enc.PutString(message);
  frame.payload = enc.Release();
  return frame;
}

std::string ErrorMessageOf(const Frame& frame) {
  store::Decoder dec(frame.payload);
  auto message_or = dec.ReadString();
  if (!message_or.ok()) return "";
  return std::string(message_or.value());
}

std::vector<ScoreResponse::Entry> TopKScores(
    const core::AttributeScores& scores, uint32_t k) {
  const std::vector<double>& normalized = scores.normalized;
  std::vector<ScoreResponse::Entry> entries;
  entries.reserve(normalized.size());
  for (size_t a = 0; a < normalized.size(); ++a) {
    entries.push_back({graph::AttrId(static_cast<uint32_t>(a)),
                       normalized[a]});
  }
  const size_t keep =
      k == 0 ? entries.size() : std::min<size_t>(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const ScoreResponse::Entry& x,
                       const ScoreResponse::Entry& y) {
                      if (x.score != y.score) return x.score > y.score;
                      return x.attr < y.attr;
                    });
  entries.resize(keep);
  return entries;
}

}  // namespace cspm::net
