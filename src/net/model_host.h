// The server's model plane: everything between a store file on disk and
// a scoreable, updatable set of named models. cspm_serve's data plane
// (src/net/server.cc) stays pure transport — it parses frames, batches
// requests and calls into this host.
//
// Open() loads every cataloged model. A model with no pending WAL loads
// through ModelRegistry::LoadModel (mmap plan section, microseconds); a
// model with pending WAL records is rebuilt the way `cspm_shell replay`
// does — deterministic Mine() from the snapshot, then each delta rolled
// forward in its recorded mode — so the served model reflects every
// update that was acknowledged before a crash (DESIGN.md §9, §13).
//
// Threading contract (enforced by the server, documented here):
//  - List() / ValidateScore() are safe from any thread: they only touch
//    the internally synchronized registry and immutable handles.
//  - Score() / Update() must be called from one thread at a time (the
//    server's executor thread). Update is a write to the live session;
//    Score reuses a cached ServingEngine keyed by the registry handle,
//    rebuilt after a hot swap.
#ifndef CSPM_NET_MODEL_HOST_H_
#define CSPM_NET_MODEL_HOST_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/model_registry.h"
#include "engine/session.h"
#include "store/model_store.h"
#include "util/status.h"

namespace cspm::net {

class ModelHost {
 public:
  struct Options {
    /// ServingOptions::num_threads for the cached per-model engines:
    /// 1 = serial, 0 = one shard per hardware core. Results are
    /// bit-identical at any setting (the PR 4 determinism contract).
    uint32_t score_threads = 1;
  };

  /// Opens the store and brings every cataloged model live (WAL replay
  /// where needed, see above). Fails if any model cannot be served — a
  /// server that silently drops a tenant at startup is worse than one
  /// that refuses to start.
  static StatusOr<std::unique_ptr<ModelHost>> Open(
      const std::string& store_path, Options options);
  static StatusOr<std::unique_ptr<ModelHost>> Open(
      const std::string& store_path) {
    return Open(store_path, Options());
  }

  /// Registered model names, sorted.
  std::vector<std::string> List() const { return registry_.List(); }

  /// Admission-time validation (any thread): the model exists, carries a
  /// graph snapshot, and every vertex id is in range. Running this before
  /// enqueueing means a coalesced batch cannot fail validation mid-flush
  /// — one bad request never poisons its batchmates. Deltas never remove
  /// vertices, so an id that validates here stays valid across hot swaps.
  Status ValidateScore(const std::string& model,
                       std::span<const graph::VertexId> vertices) const;

  /// Scores a batch (executor thread only). Output slot i holds
  /// vertices[i]; results are bit-identical to an in-process
  /// session.ScoreBatch over the same model state.
  StatusOr<std::vector<core::AttributeScores>> Score(
      const std::string& model, std::span<const graph::VertexId> vertices);

  /// Applies a graph delta (executor thread only), mirroring the shell's
  /// update sequence: ApplyUpdates → AppendDelta in the mode that
  /// actually ran → Publish (hot swap). If the WAL append fails the swap
  /// does not happen — the registry keeps serving the model the store can
  /// still reproduce, and the error says so.
  StatusOr<engine::UpdateStats> Update(const std::string& model,
                                       const graph::GraphDelta& delta,
                                       engine::UpdateMode mode);

  engine::ModelRegistry& registry() { return registry_; }
  store::ModelStore& store() { return *store_; }

 private:
  ModelHost(store::ModelStore store, Options options)
      : store_(std::make_unique<store::ModelStore>(std::move(store))),
        options_(options) {}

  /// Mines a live session for `model` from its snapshot and rolls the WAL
  /// forward (the replay path). Publishes the result.
  Status ReplayModel(const std::string& model);

  /// Ensures a live MiningSession exists for `model` (first update to a
  /// model that was served straight off its record).
  Status EnsureLive(const std::string& model);

  /// The cached engine for `model`, rebuilt when the registry handle
  /// changed since it was built (hot swap invalidation by pointer
  /// identity). Executor thread only.
  StatusOr<const engine::ServingEngine*> EngineFor(const std::string& model);

  std::unique_ptr<store::ModelStore> store_;
  Options options_;
  engine::ModelRegistry registry_;
  /// Live sessions (update state); mutated only on the executor thread
  /// (and in Open, before the server threads exist).
  std::map<std::string, engine::MiningSession> sessions_;
  struct CachedEngine {
    /// Identity of the handle the engine was built from; a hot swap
    /// changes it, invalidating the cache entry.
    const engine::ServableModel* built_from = nullptr;
    engine::ServingEngine engine;
  };
  std::map<std::string, CachedEngine> engines_;
};

}  // namespace cspm::net

#endif  // CSPM_NET_MODEL_HOST_H_
