#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace cspm::net {
namespace {

// epoll_event.data.u64 sentinels for the two non-connection fds.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Registers the full net.* metric surface up front. The handlers cache
/// their own function-local pointers for the hot path; touching every
/// name here means a `metrics` request (and the docs/METRICS.md CI
/// cross-check) sees the whole surface from the first frame, not only
/// the metrics whose code paths have already run.
void RegisterNetMetrics() {
  for (const char* name :
       {"net.connections_accepted", "net.connections_closed",
        "net.bytes_read", "net.bytes_written", "net.frames_read",
        "net.frames_written", "net.frame_errors", "net.requests_ping",
        "net.requests_list", "net.requests_metrics", "net.requests_score",
        "net.requests_update", "net.score_overloaded",
        "net.update_overloaded", "net.batches_flushed",
        "net.batch_flush_max_batch", "net.batch_flush_max_wait",
        "net.coalesced_requests"}) {
    obs::GetCounter(name);
  }
  obs::GetGauge("net.connections_active");
  obs::GetGauge("net.queued_vertices");
  obs::GetHistogram("net.batch.wait");
  obs::GetHistogram("net.request.score");
  obs::GetHistogram("net.request.update");
}

}  // namespace

StatusOr<std::unique_ptr<Server>> Server::Start(std::unique_ptr<ModelHost> host,
                                                ServerOptions options) {
  if (host == nullptr) {
    return Status::InvalidArgument("Server::Start: null ModelHost");
  }
  RegisterNetMetrics();
  std::unique_ptr<Server> server(
      new Server(std::move(host), std::move(options)));  // lint:allow naked-new (private ctor)
  CSPM_RETURN_IF_ERROR(server->Listen());
  server->epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (server->epoll_fd_ < 0) return Errno("epoll_create1");
  server->wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (server->wake_fd_ < 0) return Errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_, &ev) <
      0) {
    return Errno("epoll_ctl(listener)");
  }
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(eventfd)");
  }
  server->loop_thread_ = std::thread([s = server.get()] { s->LoopThread(); });
  server->exec_thread_ = std::thread([s = server.get()] { s->ExecThread(); });
  return server;
}

Server::~Server() {
  Stop();
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::RequestStop() {
  stop_.store(true, std::memory_order_release);
  // eventfd write is async-signal-safe; the loop thread wakes, sees stop_
  // and notifies the executor from normal (non-signal) context.
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
  if (exec_thread_.joinable()) exec_thread_.join();
}

void Server::Stop() {
  RequestStop();
  // Belt and braces: the loop thread normally forwards the stop to the
  // executor's condvar, but notify here too in case it already exited.
  exec_cv_.notify_all();
  Join();
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address +
                                   "' (IPv4 literal expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

// --- loop thread -----------------------------------------------------------

void Server::LoopThread() {
  std::array<epoll_event, 64> events;
  while (true) {
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — shutting down
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        AcceptConnections();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(tag);
      if (it == connections_.end()) continue;  // closed earlier this tick
      Connection* conn = &it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushWrites(conn)) {
          CloseConnection(tag);
          continue;
        }
        UpdateWriteInterest(conn);
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ReadConnection(conn);  // may close + erase `conn`
      }
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Forward the (possibly signal-context) stop to the executor from
      // normal context, then exit.
      exec_cv_.notify_all();
      break;
    }
  }
}

void Server::AcceptConnections() {
  static obs::Counter* accepted = obs::GetCounter("net.connections_accepted");
  static obs::Gauge* active = obs::GetGauge("net.connections_active");
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a transient accept error — retry later
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto [it, inserted] =
        connections_.emplace(id, Connection(options_.max_payload_bytes));
    it->second.fd = fd;
    it->second.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      connections_.erase(it);
      continue;
    }
    accepted->Add();
    active->Set(static_cast<double>(connections_.size()));
  }
}

void Server::ReadConnection(Connection* conn) {
  static obs::Counter* bytes_read = obs::GetCounter("net.bytes_read");
  static obs::Counter* frames_read = obs::GetCounter("net.frames_read");
  static obs::Counter* frame_errors = obs::GetCounter("net.frame_errors");
  const uint64_t id = conn->id;
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n == 0) {  // orderly remote close
      CloseConnection(id);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(id);
      return;
    }
    bytes_read->Add(static_cast<uint64_t>(n));
    std::vector<Frame> frames;
    const Status fed =
        conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)),
                          &frames);
    frames_read->Add(frames.size());
    // Frames completed before a framing error are still valid — serve
    // them, then drop the connection (stream offset is unknowable).
    for (const Frame& frame : frames) {
      HandleFrame(conn, frame);
      if (connections_.find(id) == connections_.end()) return;  // closed
    }
    if (!fed.ok()) {
      frame_errors->Add();
      CloseConnection(id);
      return;
    }
  }
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  switch (frame.verb) {
    case Verb::kPing: {
      static obs::Counter* pings = obs::GetCounter("net.requests_ping");
      pings->Add();
      Frame reply;
      reply.verb = Verb::kPing;
      reply.request_id = frame.request_id;
      SendFrame(conn, reply);
      return;
    }
    case Verb::kList: {
      static obs::Counter* lists = obs::GetCounter("net.requests_list");
      lists->Add();
      Frame reply;
      reply.verb = Verb::kList;
      reply.request_id = frame.request_id;
      reply.payload = EncodeListResponse(ListResponse{host_->List()});
      SendFrame(conn, reply);
      return;
    }
    case Verb::kMetrics: {
      static obs::Counter* metrics = obs::GetCounter("net.requests_metrics");
      metrics->Add();
      Frame reply;
      reply.verb = Verb::kMetrics;
      reply.request_id = frame.request_id;
      // SnapshotJson() verbatim: the payload is the UTF-8 JSON text itself,
      // not a codec-wrapped string (docs/PROTOCOL.md).
      reply.payload = obs::MetricsRegistry::Global().SnapshotJson();
      SendFrame(conn, reply);
      return;
    }
    case Verb::kScore:
      HandleScore(conn, frame);
      return;
    case Verb::kUpdate:
      HandleUpdate(conn, frame);
      return;
  }
  SendFrame(conn, MakeErrorFrame(frame.verb, frame.request_id,
                                 WireStatus::kInvalidArgument,
                                 StrFormat("unknown verb %u",
                                                 unsigned{static_cast<uint8_t>(
                                                     frame.verb)})));
}

void Server::HandleScore(Connection* conn, const Frame& frame) {
  static obs::Counter* scores = obs::GetCounter("net.requests_score");
  static obs::Counter* overloaded = obs::GetCounter("net.score_overloaded");
  static obs::Gauge* queued = obs::GetGauge("net.queued_vertices");
  scores->Add();
  auto req_or = DecodeScoreRequest(frame.payload);
  if (!req_or.ok()) {
    SendFrame(conn, MakeErrorFrame(Verb::kScore, frame.request_id,
                                   WireStatusFromStatus(req_or.status()),
                                   req_or.status().message()));
    return;
  }
  ScoreRequest req = std::move(req_or).value();
  // Validate at admission (model exists, vertices in range): a coalesced
  // batch then cannot fail validation mid-flush, so one bad request never
  // poisons its batchmates.
  const Status valid = host_->ValidateScore(req.model, req.vertices);
  if (!valid.ok()) {
    SendFrame(conn, MakeErrorFrame(Verb::kScore, frame.request_id,
                                   WireStatusFromStatus(valid),
                                   valid.message()));
    return;
  }
  if (req.vertices.empty()) {  // nothing to score — reply inline
    Frame reply;
    reply.verb = Verb::kScore;
    reply.request_id = frame.request_id;
    reply.payload = EncodeScoreResponse(ScoreResponse{});
    SendFrame(conn, reply);
    return;
  }
  PendingScore pending;
  pending.conn_id = conn->id;
  pending.request_id = frame.request_id;
  pending.k = req.k;
  pending.vertices = std::move(req.vertices);
  const size_t vertices = pending.vertices.size();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    auto [it, inserted] =
        batchers_.try_emplace(req.model, ScoreBatcher(options_.batching));
    admitted = it->second.Add(std::move(pending), NowNs()) ==
               ScoreBatcher::Admit::kAccepted;
    if (admitted) {
      queued_vertices_total_ += vertices;
      queued->Set(static_cast<double>(queued_vertices_total_));
    }
  }
  if (!admitted) {
    overloaded->Add();
    SendFrame(conn,
              MakeErrorFrame(Verb::kScore, frame.request_id,
                             WireStatus::kOverloaded,
                             StrFormat(
                                 "score queue for '%s' is full "
                                 "(max_queue_vertices=%zu); back off and retry",
                                 req.model.c_str(),
                                 options_.batching.max_queue_vertices)));
    return;
  }
  exec_cv_.notify_one();
}

void Server::HandleUpdate(Connection* conn, const Frame& frame) {
  static obs::Counter* updates = obs::GetCounter("net.requests_update");
  static obs::Counter* overloaded = obs::GetCounter("net.update_overloaded");
  updates->Add();
  auto req_or = DecodeUpdateRequest(frame.payload);
  if (!req_or.ok()) {
    SendFrame(conn, MakeErrorFrame(Verb::kUpdate, frame.request_id,
                                   WireStatusFromStatus(req_or.status()),
                                   req_or.status().message()));
    return;
  }
  UpdateRequest req = std::move(req_or).value();
  PendingUpdate pending;
  pending.conn_id = conn->id;
  pending.request_id = frame.request_id;
  pending.model = std::move(req.model);
  pending.mode = req.mode;
  pending.delta = std::move(req.delta);
  pending.enqueue_ns = NowNs();
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    if (updates_.size() < options_.max_pending_updates) {
      updates_.push_back(std::move(pending));
      admitted = true;
    }
  }
  if (!admitted) {
    overloaded->Add();
    SendFrame(conn, MakeErrorFrame(
                        Verb::kUpdate, frame.request_id,
                        WireStatus::kOverloaded,
                        StrFormat("update queue is full "
                                        "(max_pending_updates=%zu); back off "
                                        "and retry",
                                        options_.max_pending_updates)));
    return;
  }
  exec_cv_.notify_one();
}

void Server::SendFrame(Connection* conn, const Frame& frame) {
  static obs::Counter* frames_written = obs::GetCounter("net.frames_written");
  frames_written->Add();
  AppendFrame(frame, &conn->write_buffer);
  const uint64_t id = conn->id;
  if (!FlushWrites(conn)) {
    CloseConnection(id);
    return;
  }
  UpdateWriteInterest(conn);
}

bool Server::FlushWrites(Connection* conn) {
  static obs::Counter* bytes_written = obs::GetCounter("net.bytes_written");
  while (conn->write_offset < conn->write_buffer.size()) {
    const ssize_t n =
        ::write(conn->fd, conn->write_buffer.data() + conn->write_offset,
                conn->write_buffer.size() - conn->write_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // wait out
      if (errno == EINTR) continue;
      return false;  // peer gone — caller closes
    }
    bytes_written->Add(static_cast<uint64_t>(n));
    conn->write_offset += static_cast<size_t>(n);
  }
  conn->write_buffer.clear();
  conn->write_offset = 0;
  return true;
}

void Server::UpdateWriteInterest(Connection* conn) {
  const bool pending = conn->write_offset < conn->write_buffer.size();
  if (pending == conn->want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (pending ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->want_write = pending;
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  static obs::Counter* closed = obs::GetCounter("net.connections_closed");
  static obs::Gauge* active = obs::GetGauge("net.connections_active");
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
  closed->Add();
  active->Set(static_cast<double>(connections_.size()));
  // Completions still in flight for this connection are dropped when the
  // drain fails to find it — backpressure state was already released at
  // batch flush time, so nothing leaks.
}

void Server::DrainCompletions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // client went away — drop
    SendFrame(&it->second, completion.frame);
  }
}

// --- executor thread -------------------------------------------------------

void Server::ExecThread() {
  static obs::Counter* flushed = obs::GetCounter("net.batches_flushed");
  static obs::Counter* flush_max_batch =
      obs::GetCounter("net.batch_flush_max_batch");
  static obs::Counter* flush_max_wait =
      obs::GetCounter("net.batch_flush_max_wait");
  static obs::Counter* coalesced = obs::GetCounter("net.coalesced_requests");
  static obs::Histogram* batch_wait = obs::GetHistogram("net.batch.wait");
  static obs::Gauge* queued = obs::GetGauge("net.queued_vertices");
  std::unique_lock<std::mutex> lock(exec_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t now = NowNs();
    bool due = !updates_.empty();
    std::optional<uint64_t> deadline;
    for (const auto& [name, batcher] : batchers_) {
      if (batcher.Due(now)) {
        due = true;
        break;
      }
      const std::optional<uint64_t> d = batcher.NextDeadlineNs();
      if (d.has_value() && (!deadline.has_value() || *d < *deadline)) {
        deadline = *d;
      }
    }
    if (!due) {
      if (!deadline.has_value()) {
        // Idle. The 100ms cap is a stop_ safety net only — admissions
        // notify the condvar under the lock, so work is never missed.
        exec_cv_.wait_for(lock, std::chrono::milliseconds(100));
      } else if (*deadline > now) {
        exec_cv_.wait_for(lock, std::chrono::nanoseconds(*deadline - now));
      }
      continue;  // re-evaluate Due() against the new now
    }
    // Collect everything due this tick while holding the lock...
    std::vector<std::pair<std::string, std::vector<PendingScore>>> batches;
    for (auto& [name, batcher] : batchers_) {
      while (batcher.Due(now)) {
        ScoreBatcher::FlushReason reason = ScoreBatcher::FlushReason::kMaxWait;
        std::vector<PendingScore> batch = batcher.TakeBatch(&reason);
        if (batch.empty()) break;
        flushed->Add();
        (reason == ScoreBatcher::FlushReason::kMaxBatch ? flush_max_batch
                                                        : flush_max_wait)
            ->Add();
        coalesced->Add(batch.size());
        size_t vertices = 0;
        for (const PendingScore& r : batch) {
          vertices += r.vertices.size();
          batch_wait->Record(now - r.enqueue_ns);
        }
        queued_vertices_total_ -= vertices;
        batches.emplace_back(name, std::move(batch));
      }
    }
    queued->Set(static_cast<double>(queued_vertices_total_));
    std::deque<PendingUpdate> updates;
    updates.swap(updates_);
    lock.unlock();
    // ...execute outside it, so admissions keep flowing during a score or
    // a (potentially long) re-mine.
    std::vector<Completion> out;
    for (auto& [name, batch] : batches) {
      ExecuteBatch(name, std::move(batch), &out);
    }
    for (PendingUpdate& update : updates) {
      ExecuteUpdate(std::move(update), &out);
    }
    PostCompletions(std::move(out));
    lock.lock();
  }
}

void Server::ExecuteBatch(const std::string& model,
                          std::vector<PendingScore> batch,
                          std::vector<Completion>* out) {
  static obs::Histogram* score_latency =
      obs::GetHistogram("net.request.score");
  std::vector<graph::VertexId> all;
  size_t total = 0;
  for (const PendingScore& r : batch) total += r.vertices.size();
  all.reserve(total);
  for (const PendingScore& r : batch) {
    all.insert(all.end(), r.vertices.begin(), r.vertices.end());
  }
  auto scores_or = host_->Score(model, all);
  if (!scores_or.ok()) {
    // Cannot happen for admission-validated requests (deltas never shrink
    // the graph), but a clean per-request error beats a crash if it does.
    for (const PendingScore& r : batch) {
      out->push_back(
          {r.conn_id,
           MakeErrorFrame(Verb::kScore, r.request_id,
                          WireStatusFromStatus(scores_or.status()),
                          scores_or.status().message())});
    }
    return;
  }
  const std::vector<core::AttributeScores>& scores = scores_or.value();
  const uint64_t done = NowNs();
  size_t offset = 0;
  for (const PendingScore& r : batch) {
    ScoreResponse resp;
    resp.results.reserve(r.vertices.size());
    for (size_t i = 0; i < r.vertices.size(); ++i) {
      resp.results.push_back(TopKScores(scores[offset + i], r.k));
    }
    offset += r.vertices.size();
    Frame reply;
    reply.verb = Verb::kScore;
    reply.request_id = r.request_id;
    reply.payload = EncodeScoreResponse(resp);
    out->push_back({r.conn_id, std::move(reply)});
    score_latency->Record(done - r.enqueue_ns);
  }
}

void Server::ExecuteUpdate(PendingUpdate update, std::vector<Completion>* out) {
  static obs::Histogram* update_latency =
      obs::GetHistogram("net.request.update");
  const engine::UpdateMode mode =
      update.mode == 1 ? engine::UpdateMode::kFast : engine::UpdateMode::kExact;
  auto stats_or = host_->Update(update.model, update.delta, mode);
  update_latency->Record(NowNs() - update.enqueue_ns);
  if (!stats_or.ok()) {
    out->push_back({update.conn_id,
                    MakeErrorFrame(Verb::kUpdate, update.request_id,
                                   WireStatusFromStatus(stats_or.status()),
                                   stats_or.status().message())});
    return;
  }
  const engine::UpdateStats& stats = stats_or.value();
  UpdateResponse resp;
  resp.fast_path = stats.fast_path;
  resp.warm_path = stats.warm_path;
  resp.dirty_vertices = stats.dirty_vertices;
  resp.dl_before_bits = stats.dl_before_bits;
  resp.dl_after_bits = stats.dl_after_bits;
  Frame reply;
  reply.verb = Verb::kUpdate;
  reply.request_id = update.request_id;
  reply.payload = EncodeUpdateResponse(resp);
  out->push_back({update.conn_id, std::move(reply)});
}

void Server::PostCompletions(std::vector<Completion> completions) {
  if (completions.empty()) return;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    completions_.insert(completions_.end(),
                        std::make_move_iterator(completions.begin()),
                        std::make_move_iterator(completions.end()));
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace cspm::net
