// Request coalescing for the serving server: score requests from many
// connections accumulate into one ScoreBatch-sized batch per model, with
// a two-knob admission contract (DESIGN.md §13):
//
//  * flush when the accumulated vertex count reaches `max_batch_vertices`
//    (throughput bound), or when the oldest queued request has waited
//    `max_wait_us` (latency bound) — whichever comes first;
//  * admit at most `max_queue_vertices` queued vertices; beyond that the
//    caller must reply OVERLOADED immediately. The queue is bounded by
//    construction — backpressure is explicit, never silent buffering.
//
// The batcher is pure bookkeeping: time is injected (nanoseconds on the
// caller's steady clock), there are no locks, no sockets and no threads,
// so the flush policy is exhaustively unit-testable. The server wraps one
// batcher per model under its own mutex.
#ifndef CSPM_NET_BATCHER_H_
#define CSPM_NET_BATCHER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "graph/attributed_graph.h"

namespace cspm::net {

struct BatchOptions {
  /// Flush as soon as this many vertices are queued. 1 disables
  /// coalescing — every request is its own batch (the "per-request"
  /// baseline bench_loadgen compares against).
  size_t max_batch_vertices = 256;
  /// Flush when the oldest queued request has waited this long, even if
  /// the batch is small. 0 = flush on the next poll regardless.
  uint64_t max_wait_us = 200;
  /// Admission bound: queued vertices beyond this are rejected with
  /// OVERLOADED. Must be >= max_batch_vertices to make progress.
  size_t max_queue_vertices = 4096;
};

/// One admitted score request waiting for a batch slot.
struct PendingScore {
  uint64_t conn_id = 0;
  uint32_t request_id = 0;
  uint32_t k = 0;
  std::vector<graph::VertexId> vertices;
  /// Steady-clock nanoseconds at admission (the caller's clock).
  uint64_t enqueue_ns = 0;
};

class ScoreBatcher {
 public:
  explicit ScoreBatcher(BatchOptions options) : options_(options) {}

  enum class Admit {
    kAccepted,
    kOverloaded,  ///< queue full — reply OVERLOADED, nothing enqueued
  };

  /// Admission control + enqueue. A request larger than the whole queue
  /// bound is still admitted when the queue is empty (it forms its own
  /// batch) — otherwise an over-sized request could never be served.
  Admit Add(PendingScore request, uint64_t now_ns);

  /// True when a batch should flush at `now_ns`: the vertex count reached
  /// max_batch_vertices, or the oldest request aged past max_wait_us.
  bool Due(uint64_t now_ns) const;

  /// Steady-clock deadline (ns) when the oldest queued request hits
  /// max_wait_us; nullopt when the queue is empty. A full batch is due
  /// immediately, reported as deadline = enqueue time.
  std::optional<uint64_t> NextDeadlineNs() const;

  /// Why the last TakeBatch() fired (metrics attribution).
  enum class FlushReason { kMaxBatch, kMaxWait };

  /// Dequeues the next batch: whole requests, FIFO, up to
  /// max_batch_vertices (always at least one request). Empty result when
  /// nothing is queued.
  std::vector<PendingScore> TakeBatch(FlushReason* reason = nullptr);

  size_t queued_vertices() const { return queued_vertices_; }
  size_t queued_requests() const { return queue_.size(); }
  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
  std::deque<PendingScore> queue_;
  size_t queued_vertices_ = 0;
};

}  // namespace cspm::net

#endif  // CSPM_NET_BATCHER_H_
