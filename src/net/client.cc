#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cspm::net {

StatusOr<Client> Client::Connect(const std::string& address, uint16_t port) {
  Client client;
  client.fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (client.fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address '" + address +
                                   "' (IPv4 literal expected)");
  }
  if (::connect(client.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Status::IOError("connect " + address + ": " + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      parser_(std::move(other.parser_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    parser_ = std::move(other.parser_);
    pending_ = std::move(other.pending_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Send(Verb verb, std::string payload, uint32_t* request_id) {
  Frame frame;
  frame.verb = verb;
  frame.request_id = next_request_id_++;
  frame.payload = std::move(payload);
  if (request_id != nullptr) *request_id = frame.request_id;
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> Client::Receive() {
  if (!pending_.empty()) {
    Frame frame = std::move(pending_.front());
    pending_.pop_front();
    return frame;
  }
  return ReceiveFromSocket();
}

StatusOr<Frame> Client::ReceiveFromSocket() {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Status::IOError(
          "connection closed by server (a framing error closes it — see "
          "docs/PROTOCOL.md)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    std::vector<Frame> frames;
    CSPM_RETURN_IF_ERROR(parser_.Feed(
        std::string_view(buf, static_cast<size_t>(n)), &frames));
    if (frames.empty()) continue;  // torn frame — keep reading
    for (size_t i = 1; i < frames.size(); ++i) {
      pending_.push_back(std::move(frames[i]));
    }
    return std::move(frames[0]);
  }
}

StatusOr<Frame> Client::Call(Verb verb, std::string payload) {
  uint32_t id = 0;
  CSPM_RETURN_IF_ERROR(Send(verb, std::move(payload), &id));
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->request_id == id) {
      Frame frame = std::move(*it);
      pending_.erase(it);
      return frame;
    }
  }
  while (true) {
    // Socket only: a stashed frame re-entering Receive() here would spin.
    CSPM_ASSIGN_OR_RETURN(Frame frame, ReceiveFromSocket());
    if (frame.request_id == id) return frame;
    pending_.push_back(std::move(frame));  // someone else's pipelined reply
  }
}

Status Client::ToStatus(const Frame& frame) {
  if (frame.status == WireStatus::kOk) return Status::OK();
  return StatusFromWireStatus(frame.status, ErrorMessageOf(frame));
}

StatusOr<ScoreResponse> Client::Score(const ScoreRequest& request) {
  CSPM_ASSIGN_OR_RETURN(Frame reply,
                        Call(Verb::kScore, EncodeScoreRequest(request)));
  CSPM_RETURN_IF_ERROR(ToStatus(reply));
  return DecodeScoreResponse(reply.payload);
}

StatusOr<UpdateResponse> Client::Update(const UpdateRequest& request) {
  CSPM_ASSIGN_OR_RETURN(Frame reply,
                        Call(Verb::kUpdate, EncodeUpdateRequest(request)));
  CSPM_RETURN_IF_ERROR(ToStatus(reply));
  return DecodeUpdateResponse(reply.payload);
}

StatusOr<std::string> Client::MetricsJson() {
  CSPM_ASSIGN_OR_RETURN(Frame reply, Call(Verb::kMetrics, ""));
  CSPM_RETURN_IF_ERROR(ToStatus(reply));
  return reply.payload;  // the JSON text itself, unwrapped
}

StatusOr<std::vector<std::string>> Client::List() {
  CSPM_ASSIGN_OR_RETURN(Frame reply, Call(Verb::kList, ""));
  CSPM_RETURN_IF_ERROR(ToStatus(reply));
  CSPM_ASSIGN_OR_RETURN(ListResponse resp, DecodeListResponse(reply.payload));
  return std::move(resp.models);
}

Status Client::Ping() {
  CSPM_ASSIGN_OR_RETURN(Frame reply, Call(Verb::kPing, ""));
  return ToStatus(reply);
}

}  // namespace cspm::net
