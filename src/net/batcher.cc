#include "net/batcher.h"

#include <utility>

namespace cspm::net {

ScoreBatcher::Admit ScoreBatcher::Add(PendingScore request, uint64_t now_ns) {
  const size_t incoming = request.vertices.size();
  // An over-sized request (> max_queue_vertices by itself) is admitted only
  // into an empty queue, where it forms its own batch; otherwise it could
  // never be served at all.
  if (!queue_.empty() && queued_vertices_ + incoming > options_.max_queue_vertices) {
    return Admit::kOverloaded;
  }
  request.enqueue_ns = now_ns;
  queued_vertices_ += incoming;
  queue_.push_back(std::move(request));
  return Admit::kAccepted;
}

bool ScoreBatcher::Due(uint64_t now_ns) const {
  if (queue_.empty()) return false;
  if (queued_vertices_ >= options_.max_batch_vertices) return true;
  const uint64_t wait_ns = options_.max_wait_us * 1000;
  return now_ns - queue_.front().enqueue_ns >= wait_ns;
}

std::optional<uint64_t> ScoreBatcher::NextDeadlineNs() const {
  if (queue_.empty()) return std::nullopt;
  if (queued_vertices_ >= options_.max_batch_vertices) {
    return queue_.front().enqueue_ns;  // already due
  }
  return queue_.front().enqueue_ns + options_.max_wait_us * 1000;
}

std::vector<PendingScore> ScoreBatcher::TakeBatch(FlushReason* reason) {
  std::vector<PendingScore> batch;
  if (queue_.empty()) return batch;
  size_t taken_vertices = 0;
  // Whole requests only: a request's vertices never split across batches,
  // so every reply maps 1:1 onto one executed ScoreBatch call.
  while (!queue_.empty()) {
    const size_t next = queue_.front().vertices.size();
    if (!batch.empty() && taken_vertices + next > options_.max_batch_vertices) {
      break;
    }
    taken_vertices += next;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (taken_vertices >= options_.max_batch_vertices) break;
  }
  queued_vertices_ -= taken_vertices;
  if (reason != nullptr) {
    *reason = taken_vertices >= options_.max_batch_vertices
                  ? FlushReason::kMaxBatch
                  : FlushReason::kMaxWait;
  }
  return batch;
}

}  // namespace cspm::net
