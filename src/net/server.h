// The cspm_serve event loop: an epoll-based async server over a
// ModelHost, speaking the CSN1 frame protocol (net/frame.h,
// docs/PROTOCOL.md). Architecture (DESIGN.md §13):
//
//   loop thread                         executor thread
//   ───────────                         ───────────────
//   accept / read / parse frames        condvar wait until a batch is due
//   ping|list|metrics: reply inline       (max_wait deadline) or work queued
//   score: validate, admit to the       take due score batches + updates
//     model's ScoreBatcher (bounded     one ScoreBatch per model per flush
//     → OVERLOADED reply)               apply updates (WAL + hot swap)
//   update: admit to update queue       encode replies → completion queue
//   drain completions (eventfd wake),   eventfd wake → loop thread writes
//     write, flush, EPOLLOUT on short
//
// Two threads by design: the loop thread never blocks on model work, so
// accepts, metrics and backpressure replies stay responsive while a
// re-mine runs; the executor serializes scoring and updates, which makes
// the hot-swap path race-free without locking the model plane. Batching
// deadlines live on the executor's condvar (sub-millisecond max_wait
// granularity, which epoll_wait's millisecond timeout cannot express).
//
// Backpressure is explicit everywhere: per-model score queues and the
// update queue are bounded, and admission failure is an immediate
// OVERLOADED reply — the server never buffers unboundedly.
#ifndef CSPM_NET_SERVER_H_
#define CSPM_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/batcher.h"
#include "net/frame.h"
#include "net/model_host.h"
#include "util/status.h"
#include "util/timer.h"

namespace cspm::net {

struct ServerOptions {
  /// IPv4 literal to bind (loopback by default: the protocol has no auth).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is read back via Server::port().
  uint16_t port = 0;
  /// Score coalescing knobs, applied per model (see BatchOptions).
  BatchOptions batching;
  /// Bounded update queue; admission beyond this replies OVERLOADED.
  size_t max_pending_updates = 64;
  /// Frame payload cap; oversized lengths poison the connection.
  size_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

class Server {
 public:
  /// Binds, listens, and starts the loop + executor threads. The host's
  /// Score/Update contract (single executor caller) is honoured by
  /// construction.
  static StatusOr<std::unique_ptr<Server>> Start(
      std::unique_ptr<ModelHost> host, ServerOptions options);

  /// Stops and joins (idempotent).
  ~Server();

  /// The bound TCP port (the ephemeral choice when options.port was 0).
  uint16_t port() const { return port_; }

  /// Async-signal-safe stop request: one atomic store and one eventfd
  /// write — callable from a signal handler. Threads wind down on their
  /// own; call Join()/Stop() (not signal-safe) to wait for them.
  void RequestStop();

  /// Blocks until both threads exit (after RequestStop, or a later one).
  void Join();

  /// RequestStop + Join.
  void Stop();

  ModelHost& host() { return *host_; }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameParser parser;
    /// Bytes queued to write; [write_offset, size) is still pending.
    std::string write_buffer;
    size_t write_offset = 0;
    bool want_write = false;  ///< EPOLLOUT currently armed

    explicit Connection(size_t max_payload) : parser(max_payload) {}
  };

  /// A score request admitted to a batcher plus its executed reply's
  /// destination.
  struct PendingUpdate {
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    std::string model;
    uint8_t mode = 0;
    graph::GraphDelta delta;
    uint64_t enqueue_ns = 0;
  };

  /// An executed reply on its way back to the loop thread.
  struct Completion {
    uint64_t conn_id = 0;
    Frame frame;
  };

  Server(std::unique_ptr<ModelHost> host, ServerOptions options)
      : options_(std::move(options)), host_(std::move(host)) {}

  Status Listen();
  void LoopThread();
  void ExecThread();

  // --- loop-thread helpers -------------------------------------------------
  void AcceptConnections();
  void ReadConnection(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame);
  void HandleScore(Connection* conn, const Frame& frame);
  void HandleUpdate(Connection* conn, const Frame& frame);
  /// Queues `frame` on the connection and flushes what the socket accepts.
  void SendFrame(Connection* conn, const Frame& frame);
  /// False on a fatal socket error: the caller must close the connection.
  bool FlushWrites(Connection* conn);
  void UpdateWriteInterest(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();

  // --- executor helpers ----------------------------------------------------
  /// Executes one flushed score batch (outside exec_mu_).
  void ExecuteBatch(const std::string& model, std::vector<PendingScore> batch,
                    std::vector<Completion>* out);
  void ExecuteUpdate(PendingUpdate update, std::vector<Completion>* out);
  void PostCompletions(std::vector<Completion> completions);

  uint64_t NowNs() const { return timer_.ElapsedNanos(); }

  ServerOptions options_;
  std::unique_ptr<ModelHost> host_;
  WallTimer timer_;  ///< the server epoch; all deadlines are ElapsedNanos

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: executor→loop completions, stop requests
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::thread loop_thread_;
  std::thread exec_thread_;
  std::mutex join_mu_;  ///< serializes Join callers

  /// Loop-thread state (no lock: only the loop thread touches it).
  std::unordered_map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = wake fd in epoll data

  /// Executor work queues, guarded by exec_mu_ (loop thread admits,
  /// executor drains; exec_cv_ carries both "new work" and batch
  /// deadlines).
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::map<std::string, ScoreBatcher> batchers_;
  std::deque<PendingUpdate> updates_;
  size_t queued_vertices_total_ = 0;

  /// Executed replies travelling executor→loop, guarded by done_mu_.
  std::mutex done_mu_;
  std::vector<Completion> completions_;
};

}  // namespace cspm::net

#endif  // CSPM_NET_SERVER_H_
