#include "net/model_host.h"

#include <utility>

#include "graph/graph_delta.h"
#include "util/string_util.h"

namespace cspm::net {

StatusOr<std::unique_ptr<ModelHost>> ModelHost::Open(
    const std::string& store_path, Options options) {
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store,
                        store::ModelStore::Open(store_path));
  // unique_ptr so the address the registry's plan cache keys on (the
  // store path string) and the sessions' graph shares stay stable.
  std::unique_ptr<ModelHost> host(
      new ModelHost(std::move(store), options));  // lint:allow naked-new (private ctor)
  for (const store::ModelStore::Info& info : host->store_->List()) {
    if (info.wal_records == 0) {
      // Clean record: serve straight off the store (mmap plan section —
      // no decode of the model, no mine). A session is created lazily on
      // the first update.
      CSPM_RETURN_IF_ERROR(
          host->registry_.LoadModel(store_path, info.name));
      continue;
    }
    // Pending deltas: the record alone is stale. Rebuild the acknowledged
    // state exactly as `cspm_shell replay` would.
    CSPM_RETURN_IF_ERROR(host->ReplayModel(info.name));
  }
  return host;
}

Status ModelHost::ReplayModel(const std::string& model) {
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store_->Get(model));
  if (!stored.graph.has_value()) {
    return Status::FailedPrecondition(
        "model '" + model +
        "' has pending WAL records but no graph snapshot — cannot replay; "
        "re-save it with a snapshot (cspm_shell: save " + model + ")");
  }
  CSPM_ASSIGN_OR_RETURN(store::ModelStore::WalReplay wal,
                        store_->ReadWal(model));
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  CSPM_ASSIGN_OR_RETURN(
      engine::MiningSession session,
      engine::MiningSession::Create(
          std::make_shared<const graph::AttributedGraph>(
              std::move(*stored.graph)),
          opts));
  CSPM_RETURN_IF_ERROR(session.Mine());
  // Roll each delta forward in the mode it originally ran with: a fast
  // update's model is path-dependent, so reproducing the acknowledged
  // state means reproducing its path.
  for (size_t i = 0; i < wal.deltas.size(); ++i) {
    const engine::UpdateMode mode = wal.modes[i] == store::WalDeltaMode::kFast
                                        ? engine::UpdateMode::kFast
                                        : engine::UpdateMode::kExact;
    CSPM_RETURN_IF_ERROR(session.ApplyUpdates(wal.deltas[i], mode, nullptr));
  }
  if (wal.truncated) {
    // Checkpoint the salvaged prefix so later updates do not append after
    // unreadable records (mirrors the shell's replay command).
    store::StoredModel checkpoint;
    checkpoint.model = session.model();
    checkpoint.dict = session.graph().dict();
    checkpoint.graph = session.graph();
    CSPM_RETURN_IF_ERROR(store_->Put(model, checkpoint));
  }
  CSPM_RETURN_IF_ERROR(session.Publish(registry_, model).status());
  sessions_.insert_or_assign(model, std::move(session));
  return Status::OK();
}

Status ModelHost::EnsureLive(const std::string& model) {
  if (sessions_.find(model) != sessions_.end()) return Status::OK();
  // First update to a model served straight off its record: mining from
  // the snapshot is deterministic, so the session's model is bit-identical
  // to the record the registry is already serving.
  return ReplayModel(model);
}

Status ModelHost::ValidateScore(
    const std::string& model,
    std::span<const graph::VertexId> vertices) const {
  const engine::ModelRegistry::Handle handle = registry_.Get(model);
  if (handle == nullptr) {
    return Status::NotFound("no model named '" + model + "'");
  }
  if (handle->graph == nullptr) {
    return Status::FailedPrecondition(
        "model '" + model +
        "' has no graph snapshot; vertex scoring unavailable");
  }
  const uint32_t n = handle->graph->num_vertices().value();
  for (const graph::VertexId v : vertices) {
    if (v.value() >= n) {
      return Status::OutOfRange(
          StrFormat("vertex %u out of range (graph has %u vertices)",
                          v.value(), n));
    }
  }
  return Status::OK();
}

StatusOr<const engine::ServingEngine*> ModelHost::EngineFor(
    const std::string& model) {
  const engine::ModelRegistry::Handle handle = registry_.Get(model);
  if (handle == nullptr) {
    return Status::NotFound("no model named '" + model + "'");
  }
  auto it = engines_.find(model);
  if (it != engines_.end() && it->second.built_from == handle.get()) {
    return &it->second.engine;
  }
  engine::ServingOptions serve_opts;
  serve_opts.num_threads = options_.score_threads;
  CSPM_ASSIGN_OR_RETURN(engine::ServingEngine engine,
                        handle->Serve(serve_opts));
  // The engine retains the ServableModel it was built from, so dropping
  // the previous cache entry after a hot swap is safe even if a batch on
  // the old handle were still in flight elsewhere.
  auto [pos, inserted] = engines_.insert_or_assign(
      model, CachedEngine{handle.get(), std::move(engine)});
  (void)inserted;
  return &pos->second.engine;
}

StatusOr<std::vector<core::AttributeScores>> ModelHost::Score(
    const std::string& model, std::span<const graph::VertexId> vertices) {
  CSPM_ASSIGN_OR_RETURN(const engine::ServingEngine* engine,
                        EngineFor(model));
  return engine->ScoreBatch(vertices);
}

StatusOr<engine::UpdateStats> ModelHost::Update(
    const std::string& model, const graph::GraphDelta& delta,
    engine::UpdateMode mode) {
  CSPM_RETURN_IF_ERROR(EnsureLive(model));
  engine::MiningSession& session = sessions_.at(model);
  engine::UpdateStats stats;
  CSPM_RETURN_IF_ERROR(session.ApplyUpdates(delta, mode, &stats));
  // Persist before the serving swap (the shell's ordering): if the append
  // fails, the registry keeps serving the model the store can reproduce.
  // The WAL records the mode that actually ran — a fast request can fall
  // back to exact behaviour — so replay reproduces this path.
  Status appended = store_->AppendDelta(
      model, delta,
      stats.fast_path ? store::WalDeltaMode::kFast
                      : store::WalDeltaMode::kExact);
  if (!appended.ok()) {
    return Status::IOError(
        "update applied to the live session but its delta could not be "
        "logged (" +
        appended.ToString() + "); still serving the previous model");
  }
  CSPM_RETURN_IF_ERROR(session.Publish(registry_, model).status());
  return stats;
}

}  // namespace cspm::net
