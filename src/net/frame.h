// Wire protocol for cspm_serve: length-prefixed, CRC-protected binary
// frames over a byte stream (TCP). The format is normative in
// docs/PROTOCOL.md; this header is its executable counterpart.
//
// Frame layout (all integers little-endian), 20-byte header:
//
//   offset  size  field
//   0       4     magic "CSN1" (version is part of the magic, like the
//                 store's "CSPMSTR" header — a format bump mints "CSN2")
//   4       1     verb
//   5       1     status (0 in requests; response error code otherwise)
//   6       2     reserved, must be zero
//   8       4     request id (client-chosen, echoed verbatim in the
//                 response — responses may arrive out of request order)
//   12      4     payload length in bytes
//   16      4     CRC-32 of the payload bytes (util/crc32, IEEE 802.3)
//   20      ...   payload (verb-specific, store/codec varint encoding)
//
// The parser is hardened against hostile or torn streams: bad magic,
// nonzero reserved bytes, a length above the configured cap, and a CRC
// mismatch all surface as a clean Status — framing is unrecoverable after
// any of them, so the connection must be dropped. A partial frame is
// simply buffered until more bytes arrive (torn reads are normal).
#ifndef CSPM_NET_FRAME_H_
#define CSPM_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cspm/scoring.h"
#include "graph/graph_delta.h"
#include "util/status.h"

namespace cspm::net {

inline constexpr char kMagic[4] = {'C', 'S', 'N', '1'};
inline constexpr size_t kHeaderBytes = 20;
/// Default payload cap: a score batch over every vertex of a million-node
/// graph fits comfortably; anything larger is a corrupt length field.
inline constexpr size_t kDefaultMaxPayloadBytes = size_t{16} << 20;

/// Request verbs. On-wire values — do not renumber.
enum class Verb : uint8_t {
  kScore = 1,    ///< batch vertex scoring against a named model
  kUpdate = 2,   ///< graph delta ingestion (WAL + hot-swap path)
  kMetrics = 3,  ///< MetricsRegistry::SnapshotJson(), verbatim
  kList = 4,     ///< registered model names
  kPing = 5,     ///< liveness / warm-up no-op
};

/// Response status codes. 0 is success; nonzero mirrors util::StatusCode
/// plus the two conditions only the wire layer can produce. On-wire
/// values — do not renumber.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kIOError = 6,
  /// Admission control rejected the request: the model's score queue (or
  /// the update queue) is full. Back off and retry; nothing was executed.
  kOverloaded = 7,
};

/// Maps an engine Status onto the wire code (OK stays OK).
WireStatus WireStatusFromStatus(const Status& status);
/// Maps a non-OK wire code back onto a Status with the given message.
Status StatusFromWireStatus(WireStatus code, const std::string& message);
const char* WireStatusName(WireStatus code);

/// One parsed frame. For responses with status != kOk the payload is a
/// human-readable error message (codec string), not the verb's encoding.
struct Frame {
  Verb verb = Verb::kPing;
  WireStatus status = WireStatus::kOk;
  uint32_t request_id = 0;
  std::string payload;
};

/// Serializes header + payload (computes length and CRC).
std::string EncodeFrame(const Frame& frame);
void AppendFrame(const Frame& frame, std::string* out);

/// Incremental frame reassembler for one connection. Feed() buffers
/// partial input across calls, so frames torn anywhere — mid-magic,
/// mid-length, mid-payload — reassemble transparently; each connection
/// owns its parser, so interleaved reads across connections never mix.
class FrameParser {
 public:
  explicit FrameParser(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Consumes `bytes`, appending every completed frame to *out. After the
  /// first error the parser is poisoned: the stream offset is unknowable,
  /// so every later Feed returns the same error and the connection must
  /// be closed.
  Status Feed(std::string_view bytes, std::vector<Frame>* out);

  /// Bytes buffered waiting for the rest of a frame.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  Status poisoned_ = Status::OK();
};

// --- verb payload encodings ----------------------------------------------
//
// All payloads use store/codec primitives (LEB128 varints, length-prefixed
// strings, raw little-endian doubles — doubles round-trip bit-exactly,
// which is what makes the cross-process bit-identity contract testable).

struct ScoreRequest {
  std::string model;
  /// Top-k entries per vertex in the reply; 0 = every attribute value.
  uint32_t k = 0;
  std::vector<graph::VertexId> vertices;
};

struct ScoreResponse {
  struct Entry {
    graph::AttrId attr{0};
    double score = 0.0;  ///< normalized score, raw IEEE-754 bits on wire
  };
  /// results[i] holds the ranked entries of request vertex i.
  std::vector<std::vector<Entry>> results;
};

struct UpdateRequest {
  std::string model;
  /// 0 = exact (bit-identical re-mine), 1 = fast (DL-epsilon contract);
  /// mirrors engine::UpdateMode and the WAL's on-disk mode byte.
  uint8_t mode = 0;
  graph::GraphDelta delta;
};

struct UpdateResponse {
  bool fast_path = false;
  bool warm_path = false;
  uint64_t dirty_vertices = 0;
  double dl_before_bits = 0.0;
  double dl_after_bits = 0.0;
};

struct ListResponse {
  std::vector<std::string> models;  ///< sorted
};

std::string EncodeScoreRequest(const ScoreRequest& req);
StatusOr<ScoreRequest> DecodeScoreRequest(std::string_view payload);
std::string EncodeScoreResponse(const ScoreResponse& resp);
StatusOr<ScoreResponse> DecodeScoreResponse(std::string_view payload);

std::string EncodeUpdateRequest(const UpdateRequest& req);
StatusOr<UpdateRequest> DecodeUpdateRequest(std::string_view payload);
std::string EncodeUpdateResponse(const UpdateResponse& resp);
StatusOr<UpdateResponse> DecodeUpdateResponse(std::string_view payload);

std::string EncodeListResponse(const ListResponse& resp);
StatusOr<ListResponse> DecodeListResponse(std::string_view payload);

/// Builds an error response frame for `request`: echoes verb + id, carries
/// the message as a codec string payload.
Frame MakeErrorFrame(Verb verb, uint32_t request_id, WireStatus code,
                     const std::string& message);
/// Extracts the error message of a non-OK response frame ("" if absent).
std::string ErrorMessageOf(const Frame& frame);

/// The reply ranking shared by the server and the bit-identity checkers:
/// entries sorted by normalized score descending, attribute id ascending on
/// ties (the cspm_shell ordering), truncated to k (0 = keep all). Both
/// sides of the cross-process contract call this one function, so a reply
/// is bit-identical to an in-process ScoreBatch by construction — any
/// divergence is a transport bug, not a ranking one.
std::vector<ScoreResponse::Entry> TopKScores(
    const core::AttributeScores& scores, uint32_t k);

}  // namespace cspm::net

#endif  // CSPM_NET_FRAME_H_
