// Blocking CSN1 client: the programmatic counterpart of cspm_serve, used
// by cspm_client, bench_loadgen and net_test. One TCP connection, one
// FrameParser; the high-level calls are synchronous RPCs, the low-level
// Send/Receive pair supports pipelining (the load generator keeps several
// requests in flight per connection).
//
// Responses are matched by request id, not arrival order: the server
// replies to ping/list/metrics inline but holds score replies for the
// batch flush, so a pipelined stream sees interleaved orders.
#ifndef CSPM_NET_CLIENT_H_
#define CSPM_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/status.h"

namespace cspm::net {

class Client {
 public:
  /// Connects to an IPv4 literal (blocking socket, TCP_NODELAY).
  static StatusOr<Client> Connect(const std::string& address, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  // --- synchronous RPCs ----------------------------------------------------

  StatusOr<ScoreResponse> Score(const ScoreRequest& request);
  StatusOr<UpdateResponse> Update(const UpdateRequest& request);
  /// SnapshotJson() of the server process, verbatim.
  StatusOr<std::string> MetricsJson();
  StatusOr<std::vector<std::string>> List();
  Status Ping();

  // --- pipelining ----------------------------------------------------------

  /// Sends one request frame (assigns and returns the request id via
  /// *request_id when non-null).
  Status Send(Verb verb, std::string payload, uint32_t* request_id = nullptr);

  /// Blocks until the next response frame arrives (any request id).
  StatusOr<Frame> Receive();

  int fd() const { return fd_; }

 private:
  Client() = default;

  /// Send + Receive until the reply for this id shows up; other replies
  /// are stashed for later Receive() calls.
  StatusOr<Frame> Call(Verb verb, std::string payload);
  /// Receive() minus the pending queue (blocks on the socket).
  StatusOr<Frame> ReceiveFromSocket();
  /// Non-OK response frames become the equivalent Status.
  static Status ToStatus(const Frame& frame);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  FrameParser parser_;
  std::deque<Frame> pending_;
};

}  // namespace cspm::net

#endif  // CSPM_NET_CLIENT_H_
