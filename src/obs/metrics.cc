#include "obs/metrics.h"

#include <cstdlib>
#include <string>

#include "util/string_util.h"

namespace cspm::obs {

#ifndef CSPM_OBS_OFF
namespace internal {
// Live unless the CSPM_OBS_OFF environment variable is set (any value).
std::atomic<bool> g_enabled{std::getenv("CSPM_OBS_OFF") == nullptr};
}  // namespace internal
#endif

namespace internal {

unsigned AssignThreadShard() {
  static std::atomic<unsigned> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) %
         static_cast<unsigned>(kShards);
}

}  // namespace internal

namespace {

/// Lower bound of histogram bucket b (see Histogram::BucketIndex).
uint64_t BucketLow(std::size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

/// Exclusive upper bound of bucket b.
uint64_t BucketHigh(std::size_t b) {
  return b == 0 ? 1 : uint64_t{1} << b;
}

/// Value at `rank` (0-based) given merged bucket counts: find the bucket
/// holding that rank and interpolate linearly inside it.
double QuantileFromBuckets(
    const std::array<uint64_t, kHistogramBuckets>& buckets, uint64_t rank) {
  uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (rank < seen + buckets[b]) {
      const double frac =
          (static_cast<double>(rank - seen) + 0.5) /
          static_cast<double>(buckets[b]);
      const auto low = static_cast<double>(BucketLow(b));
      const auto high = static_cast<double>(BucketHigh(b));
      return low + frac * (high - low);
    }
    seen += buckets[b];
  }
  return 0.0;
}

void AppendJsonNumber(std::string& out, double v) {
  // %.12g keeps DL-bit gauges exact to the displayed precision while
  // staying locale-independent and compact.
  out += StrFormat("%.12g", v);
}

}  // namespace

Histogram::Snapshot Histogram::Snap() const {
  std::array<uint64_t, kHistogramBuckets> merged{};
  Snapshot snap;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
  }
  for (uint64_t c : merged) snap.count += c;
  if (snap.count == 0) return snap;
  snap.min_ns = min_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  const auto rank = [&](double q) {
    return static_cast<uint64_t>(q * static_cast<double>(snap.count - 1));
  };
  const auto clamp = [&](double v) {
    const auto lo = static_cast<double>(snap.min_ns);
    const auto hi = static_cast<double>(snap.max_ns);
    return v < lo ? lo : (v > hi ? hi : v);
  };
  snap.p50_ns = clamp(QuantileFromBuckets(merged, rank(0.50)));
  snap.p90_ns = clamp(QuantileFromBuckets(merged, rank(0.90)));
  snap.p99_ns = clamp(QuantileFromBuckets(merged, rank(0.99)));
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum_ns.store(0, std::memory_order_relaxed);
  }
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so metrics outlive every static destructor that might still
  // record during shutdown.
  static auto* registry = new MetricsRegistry();  // lint:allow naked-new
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snap());
  }
  return snap;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%llu", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":", name.c_str());
    AppendJsonNumber(out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    const Histogram::Snapshot snap = histogram->Snap();
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"sum_ns\":%llu,\"min_ns\":%llu,"
        "\"max_ns\":%llu,",
        name.c_str(), static_cast<unsigned long long>(snap.count),
        static_cast<unsigned long long>(snap.sum_ns),
        static_cast<unsigned long long>(snap.min_ns),
        static_cast<unsigned long long>(snap.max_ns));
    out += "\"p50_ns\":";
    AppendJsonNumber(out, snap.p50_ns);
    out += ",\"p90_ns\":";
    AppendJsonNumber(out, snap.p90_ns);
    out += ",\"p99_ns\":";
    AppendJsonNumber(out, snap.p99_ns);
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.second->Reset();
  for (auto& entry : gauges_) entry.second->Reset();
  for (auto& entry : histograms_) entry.second->Reset();
}

}  // namespace cspm::obs
