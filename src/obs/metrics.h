// Process-wide metrics: named counters, gauges, and latency histograms.
//
// Design contract (DESIGN.md §11):
//  * Hot-path cost is one relaxed fetch_add on a thread-local shard — no
//    locks, no allocation, TSan-clean by construction.
//  * Snapshots merge the shards; they are lock-free reads of relaxed
//    atomics, so a snapshot taken mid-write is internally consistent per
//    cell but may trail in-flight increments by design.
//  * Compile-out: building with -DCSPM_OBS_OFF turns Enabled() into a
//    compile-time `false`, so every Add/Record body dead-code-eliminates.
//  * Runtime toggle: without the macro, Enabled() is a relaxed load of a
//    process-global flag (initialised from the CSPM_OBS_OFF environment
//    variable) so one binary can measure its own instrumentation overhead.
#ifndef CSPM_OBS_METRICS_H_
#define CSPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cspm::obs {

/// Number of cache-line-padded shards per metric. Eight covers the thread
/// counts this engine runs at; excess threads hash onto shared shards and
/// still only pay a relaxed fetch_add.
inline constexpr std::size_t kShards = 8;

/// Histogram buckets: bucket b holds values with bit_width b, i.e. bucket 0
/// is {0} and bucket b >= 1 covers [2^(b-1), 2^b). 40 buckets of
/// nanoseconds reach 2^39 ns (~9 minutes); longer values clamp into the
/// last bucket.
inline constexpr std::size_t kHistogramBuckets = 40;

#ifdef CSPM_OBS_OFF
/// Compiled out: constant false so instrumentation bodies are eliminated.
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool /*on*/) {}
#else
namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when instrumentation is live. One relaxed load; the branch it
/// guards is perfectly predicted in steady state.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime toggle (bench_obs measures on-vs-off in a single binary; the
/// CSPM_OBS_OFF environment variable sets the initial state).
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

namespace internal {
/// Stable per-thread shard index in [0, kShards).
unsigned AssignThreadShard();

inline unsigned ThreadShard() {
  thread_local const unsigned shard = AssignThreadShard();
  return shard;
}
}  // namespace internal

/// Monotonic event counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (!Enabled()) return;
    cells_[internal::ThreadShard()].v.fetch_add(delta,
                                                std::memory_order_relaxed);
  }

  /// Sum across shards (relaxed; exact once writers are quiescent).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Last-write-wins instantaneous value (DL bits, WAL chain length, ...).
/// Gauges are written from already-serialised sections, so a single atomic
/// double is enough.
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    v_.store(value, std::memory_order_relaxed);
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }

  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram over nanoseconds. Buckets are powers of
/// two (index = bit_width of the value), so Record() is a shift plus two
/// relaxed adds; quantiles are reconstructed on snapshot with linear
/// interpolation inside the winning bucket.
class Histogram {
 public:
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    double p50_ns = 0.0;
    double p90_ns = 0.0;
    double p99_ns = 0.0;
  };

  void Record(uint64_t ns) {
    if (!Enabled()) return;
    Shard& shard = shards_[internal::ThreadShard()];
    shard.buckets[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    RelaxedMin(min_ns_, ns);
    RelaxedMax(max_ns_, ns);
  }

  Snapshot Snap() const;

  void Reset();

  static std::size_t BucketIndex(uint64_t ns) {
    const auto width = static_cast<std::size_t>(std::bit_width(ns));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum_ns{0};
  };

  static void RelaxedMin(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void RelaxedMax(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<Shard, kShards> shards_{};
  std::atomic<uint64_t> min_ns_{UINT64_MAX};
  std::atomic<uint64_t> max_ns_{0};
};

/// Process-wide registry. Metrics are created on first use and live for the
/// process lifetime, so the pointers handed out are stable and call sites
/// cache them in function-local statics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Structured snapshot for in-process consumers (the shell's `metrics`
  /// table); names come out sorted because the maps are ordered.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  Snapshot Snap() const;

  /// One-line JSON with a stable schema (DESIGN.md §11):
  ///   {"counters":{...},"gauges":{...},"histograms":{"name":
  ///     {"count":..,"sum_ns":..,"min_ns":..,"max_ns":..,
  ///      "p50_ns":..,"p90_ns":..,"p99_ns":..}}}
  /// Keys are sorted; zero-count histograms are kept so consumers see the
  /// full registered surface.
  std::string SnapshotJson() const;

  /// Zeroes every value in place; registered pointers stay valid. Safe to
  /// race with writers (relaxed stores on the same atomics).
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthands for the common "cache in a function-local static" pattern.
inline Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(std::string_view name) {
  return MetricsRegistry::Global().GetHistogram(name);
}

}  // namespace cspm::obs

#endif  // CSPM_OBS_METRICS_H_
