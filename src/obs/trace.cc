#include "obs/trace.h"

#ifndef CSPM_OBS_OFF

#include <string>
#include <vector>

namespace cspm::obs {

namespace {

/// Per-thread span path; nested TraceSpans on one thread stack up here and
/// the destructor joins the path into the histogram name.
std::vector<const char*>& ThreadSpanPath() {
  thread_local std::vector<const char*> path;
  return path;
}

}  // namespace

TraceSpan::TraceSpan(const char* name) : active_(Enabled()) {
  if (!active_) return;
  ThreadSpanPath().push_back(name);
  timer_.Reset();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t ns = timer_.ElapsedNanos();
  std::vector<const char*>& path = ThreadSpanPath();
  std::string name = "phase";
  for (const char* part : path) {
    name += '.';
    name += part;
  }
  path.pop_back();
  GetHistogram(name)->Record(ns);
}

}  // namespace cspm::obs

#endif  // CSPM_OBS_OFF
