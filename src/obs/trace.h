// Scoped phase timers feeding the metrics registry.
//
// Two tiers (DESIGN.md §11):
//  * TraceSpan — hierarchical: nested spans on one thread join their names
//    with '.' under a "phase." prefix ("phase.update.reseed"), so the call
//    structure defines the taxonomy. The destructor does a registry lookup
//    and a small string build — cold and warm phases only, never per-vertex.
//  * ScopedPhaseTimer — flat: takes a pre-resolved Histogram*, so the whole
//    cost is one clock read at each end plus Histogram::Record. Use on hot
//    paths with context-independent names ("phase.serving.score_batch").
//
// Both share util/timer.h WallTimer and become no-ops when obs is disabled
// (runtime flag, or entirely under -DCSPM_OBS_OFF).
#ifndef CSPM_OBS_TRACE_H_
#define CSPM_OBS_TRACE_H_

#include "obs/metrics.h"
#include "util/timer.h"

namespace cspm::obs {

#ifdef CSPM_OBS_OFF

/// Compiled out: empty bodies, no clock reads, zero residue.
class TraceSpan {
 public:
  explicit TraceSpan(const char* /*name*/) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Histogram* /*hist*/) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
};

#else

/// Hierarchical scoped timer. `name` must outlive the span (string
/// literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  WallTimer timer_;
};

/// Flat scoped timer onto a pre-resolved histogram. Cache the histogram in
/// a function-local static:
///   static auto* hist = obs::GetHistogram("phase.serving.score_batch");
///   obs::ScopedPhaseTimer t(hist);
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr) {}
  ~ScopedPhaseTimer() {
    if (hist_ != nullptr) hist_->Record(timer_.ElapsedNanos());
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Histogram* hist_;
  WallTimer timer_;
};

#endif  // CSPM_OBS_OFF

}  // namespace cspm::obs

#endif  // CSPM_OBS_TRACE_H_
