#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cspm::datasets {
namespace {

using graph::AttrId;
using graph::GraphBuilder;
using graph::VertexId;

// Venue pools per research area. Area 0 uses real data-mining venue names
// so the Fig. 6 patterns read naturally; other areas are generic.
std::vector<std::vector<std::string>> MakeVenuePools(uint32_t num_areas,
                                                     uint32_t pool_size) {
  static const char* kDataMining[] = {"ICDM",  "EDBT", "PODS", "KDD",
                                      "SDM",   "PAKDD", "DMKD", "ICDE",
                                      "VLDB",  "SAC"};
  std::vector<std::vector<std::string>> pools(num_areas);
  for (uint32_t area = 0; area < num_areas; ++area) {
    for (uint32_t k = 0; k < pool_size; ++k) {
      if (area == 0 && k < 10) {
        pools[area].push_back(kDataMining[k]);
      } else {
        pools[area].push_back(StrFormat("A%uV%u", area, k));
      }
    }
  }
  return pools;
}

// Community-structured co-author topology: each vertex links to a few
// earlier vertices of the same community (preferential-attachment flavour)
// plus rare cross-community edges. Produces ~edges_per_vertex * n edges.
Status AddCommunityEdges(GraphBuilder* builder,
                         const std::vector<uint32_t>& community,
                         double edges_per_vertex, double cross_probability,
                         Rng* rng) {
  const uint32_t n = static_cast<uint32_t>(community.size());
  std::vector<std::vector<VertexId>> members_so_far(
      1 + *std::max_element(community.begin(), community.end()));
  for (VertexId v(0); v.value() < n; ++v) {
    auto& own = members_so_far[community[v.index()]];
    const uint32_t k = rng->Bernoulli(edges_per_vertex -
                                      std::floor(edges_per_vertex))
                           ? static_cast<uint32_t>(edges_per_vertex) + 1
                           : static_cast<uint32_t>(edges_per_vertex);
    for (uint32_t i = 0; i < k; ++i) {
      VertexId target;
      if (!own.empty() && !rng->Bernoulli(cross_probability)) {
        target = own[rng->Uniform(own.size())];
      } else if (v.value() > 0) {
        target = VertexId(static_cast<uint32_t>(rng->Uniform(v.value())));
      } else {
        continue;
      }
      if (target != v) {
        CSPM_RETURN_IF_ERROR(builder->AddEdge(v, target));
      }
    }
    own.push_back(v);
  }
  return Status::OK();
}

StatusOr<graph::AttributedGraph> MakeDblpVariant(uint64_t seed,
                                                 uint32_t num_vertices,
                                                 bool with_trends) {
  Rng rng(seed);
  const uint32_t kAreas = 12;
  const uint32_t kPool = with_trends ? 7 : 10;  // 12*7*3=252ish vs 120
  auto pools = MakeVenuePools(kAreas, kPool);
  static const char* kTrends[] = {"+", "-", "="};

  GraphBuilder builder;
  std::vector<uint32_t> community(num_vertices);
  for (VertexId v(0); v.value() < num_vertices; ++v) {
    community[v.index()] = static_cast<uint32_t>(rng.Zipf(kAreas, 1.1));
  }
  for (VertexId v(0); v.value() < num_vertices; ++v) {
    const auto& pool = pools[community[v.index()]];
    const uint32_t num_venues =
        static_cast<uint32_t>(rng.UniformInt(2, 4));
    std::vector<AttrId> attrs;
    for (uint32_t i = 0; i < num_venues; ++i) {
      std::string venue;
      if (rng.Bernoulli(0.9)) {
        venue = pool[rng.Zipf(pool.size(), 1.3)];
      } else {
        const auto& other = pools[rng.Uniform(kAreas)];
        venue = other[rng.Zipf(other.size(), 1.3)];
      }
      if (with_trends) {
        // Trends correlate within a community: each community has a
        // dominant trend per venue index.
        const uint32_t dominant =
            (community[v.index()] + i) % 3;
        const uint32_t trend =
            rng.Bernoulli(0.75) ? dominant
                                : static_cast<uint32_t>(rng.Uniform(3));
        venue += kTrends[trend];
      }
      attrs.push_back(builder.InternAttribute(venue));
    }
    builder.AddVertexWithIds(std::move(attrs));
  }
  CSPM_RETURN_IF_ERROR(AddCommunityEdges(&builder, community,
                                         /*edges_per_vertex=*/1.3,
                                         /*cross_probability=*/0.05, &rng));
  return std::move(builder).Build();
}

}  // namespace

StatusOr<graph::AttributedGraph> MakeDblpLike(uint64_t seed,
                                              uint32_t num_vertices) {
  return MakeDblpVariant(seed, num_vertices, /*with_trends=*/false);
}

StatusOr<graph::AttributedGraph> MakeDblpTrendLike(uint64_t seed,
                                                   uint32_t num_vertices) {
  return MakeDblpVariant(seed, num_vertices, /*with_trends=*/true);
}

StatusOr<graph::AttributedGraph> MakeUsflightLike(uint64_t seed,
                                                  uint32_t num_airports) {
  Rng rng(seed);
  GraphBuilder builder;
  static const char* kMetrics[] = {"NbDepart", "DelayArriv", "NbArriv",
                                   "DelayDepart", "Cancel"};
  static const char* kTrends[] = {"+", "-", "="};
  const uint32_t kGenericMetrics = 18;  // plus the 5 named = 23 * 3 = 69

  // Topology first (attributes depend on degree).
  auto edges = graph::BarabasiAlbertEdges(num_airports, /*m=*/15, &rng);
  std::vector<uint32_t> degree(num_airports, 0);
  for (auto [u, v] : edges) {
    ++degree[u.index()];
    ++degree[v.index()];
  }
  uint32_t degree_threshold = 0;
  {
    std::vector<uint32_t> sorted = degree;
    std::sort(sorted.begin(), sorted.end());
    degree_threshold = sorted[num_airports * 85 / 100];  // top 15% = hubs
  }

  for (VertexId v(0); v.value() < num_airports; ++v) {
    std::vector<AttrId> attrs;
    const bool hub = degree[v.index()] >= degree_threshold;
    // Planted pattern: hubs lose departures; spokes gain them and see
    // fewer arrival delays (the paper's USFlight example).
    if (hub && rng.Bernoulli(0.8)) {
      attrs.push_back(builder.InternAttribute("NbDepart-"));
    } else if (!hub && rng.Bernoulli(0.6)) {
      attrs.push_back(builder.InternAttribute("NbDepart+"));
      if (rng.Bernoulli(0.7)) {
        attrs.push_back(builder.InternAttribute("DelayArriv-"));
      }
    }
    // Noise metrics.
    const uint32_t extra = static_cast<uint32_t>(rng.UniformInt(2, 4));
    for (uint32_t i = 0; i < extra; ++i) {
      const uint32_t metric =
          static_cast<uint32_t>(rng.Uniform(kGenericMetrics + 4)) + 1;
      const char* trend = kTrends[rng.Uniform(3)];
      std::string name =
          metric <= 4 ? std::string(kMetrics[metric]) + trend
                      : StrFormat("M%u%s", metric - 5, trend);
      attrs.push_back(builder.InternAttribute(name));
    }
    builder.AddVertexWithIds(std::move(attrs));
  }
  for (auto [u, v] : edges) {
    CSPM_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  return std::move(builder).Build();
}

StatusOr<graph::AttributedGraph> MakePokecLike(uint64_t seed,
                                               uint32_t num_vertices) {
  Rng rng(seed);
  GraphBuilder builder;
  // Taste communities with planted genre correlations; ~900 genres total.
  static const char* kYoung[] = {"rap", "rock", "metal", "pop", "sladaky"};
  static const char* kOld[] = {"disko", "oldies", "country", "folk"};
  const uint32_t kGenericGenres = 890;
  const uint32_t kCommunities = 40;

  std::vector<uint32_t> community(num_vertices);
  for (VertexId v(0); v.value() < num_vertices; ++v) {
    community[v.index()] = static_cast<uint32_t>(rng.Uniform(kCommunities));
  }
  for (VertexId v(0); v.value() < num_vertices; ++v) {
    std::vector<AttrId> attrs;
    const uint32_t kind = community[v.index()] % 4;  // 0: young, 1: old, 2-3: mixed
    if (kind == 0) {
      attrs.push_back(builder.InternAttribute(kYoung[rng.Uniform(5)]));
      if (rng.Bernoulli(0.7)) {
        attrs.push_back(builder.InternAttribute(kYoung[rng.Uniform(5)]));
      }
    } else if (kind == 1) {
      attrs.push_back(builder.InternAttribute(kOld[rng.Uniform(4)]));
      if (rng.Bernoulli(0.6)) {
        attrs.push_back(builder.InternAttribute(kOld[rng.Uniform(4)]));
      }
    }
    const uint32_t extra = static_cast<uint32_t>(rng.UniformInt(1, 4));
    for (uint32_t i = 0; i < extra; ++i) {
      attrs.push_back(builder.InternAttribute(StrFormat(
          "g%u", static_cast<uint32_t>(rng.Zipf(kGenericGenres, 1.05)))));
    }
    builder.AddVertexWithIds(std::move(attrs));
  }
  CSPM_RETURN_IF_ERROR(AddCommunityEdges(&builder, community,
                                         /*edges_per_vertex=*/9.0,
                                         /*cross_probability=*/0.08, &rng));
  return std::move(builder).Build();
}

StatusOr<graph::AttributedGraph> MakeCoraLike(uint64_t seed) {
  graph::CommunityGraphOptions options;
  options.num_vertices = 2708;
  options.num_communities = 7;
  options.intra_probability = 0.0080;
  options.inter_probability = 0.0002;
  options.attributes_per_vertex = 6;
  options.community_pool_size = 24;
  options.global_pool_size = 120;
  options.attribute_affinity = 0.8;
  options.seed = seed;
  CSPM_ASSIGN_OR_RETURN(graph::CommunityGraph cg,
                        graph::MakeCommunityGraph(options));
  return std::move(cg.graph);
}

StatusOr<graph::AttributedGraph> MakeCiteseerLike(uint64_t seed) {
  graph::CommunityGraphOptions options;
  options.num_vertices = 3327;
  options.num_communities = 6;
  options.intra_probability = 0.0050;
  options.inter_probability = 0.00015;
  options.attributes_per_vertex = 5;
  options.community_pool_size = 30;
  options.global_pool_size = 150;
  options.attribute_affinity = 0.75;
  options.seed = seed;
  CSPM_ASSIGN_OR_RETURN(graph::CommunityGraph cg,
                        graph::MakeCommunityGraph(options));
  return std::move(cg.graph);
}

}  // namespace cspm::datasets
