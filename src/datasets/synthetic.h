// Synthetic stand-ins for the paper's benchmark datasets (Table II /
// Table IV). Each generator plants attribute correlations on adjacent
// vertices so that the relative behaviours the paper reports (Partial vs
// Basic runtime, pattern interpretability, completion uplift) are
// exercised. Sizes follow Table II; Pokec is scaled down (see DESIGN.md).
#ifndef CSPM_DATASETS_SYNTHETIC_H_
#define CSPM_DATASETS_SYNTHETIC_H_

#include <cstdint>

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::datasets {

/// DBLP-like co-author network: researchers (vertices) publish in venues
/// (attribute values) clustered by research area; co-authors share areas.
/// Defaults shaped to Table II: 2,723 nodes, ~3.4k edges, ~127 venues.
StatusOr<graph::AttributedGraph> MakeDblpLike(uint64_t seed = 1,
                                              uint32_t num_vertices = 2723);

/// DBLP-Trend-like: venues carry publication-trend suffixes (+, -, =),
/// tripling the attribute vocabulary (~271 coresets in Table II).
StatusOr<graph::AttributedGraph> MakeDblpTrendLike(
    uint64_t seed = 1, uint32_t num_vertices = 2723);

/// USFlight-like: 280 airports, hub-heavy topology (~4k edges); attributes
/// are traffic/delay trend indicators. Plants the paper's
/// ({NbDepart-},{NbDepart+, DelayArriv-}) correlation on hubs.
StatusOr<graph::AttributedGraph> MakeUsflightLike(uint64_t seed = 1,
                                                  uint32_t num_airports = 280);

/// Pokec-like music-taste friendship network. The real Pokec has 1.6M
/// nodes / 30M edges; `num_vertices` scales the stand-in (default 20k).
/// Plants the paper's ({rap},{rock, metal, pop, sladaky}) and
/// ({disko},{oldies, disko}) patterns through taste communities.
StatusOr<graph::AttributedGraph> MakePokecLike(uint64_t seed = 1,
                                               uint32_t num_vertices = 20000);

/// Cora-like citation network for the completion task (2,708 nodes,
/// 7 communities, keyword attributes).
StatusOr<graph::AttributedGraph> MakeCoraLike(uint64_t seed = 1);

/// Citeseer-like citation network (3,327 nodes, 6 communities).
StatusOr<graph::AttributedGraph> MakeCiteseerLike(uint64_t seed = 1);

}  // namespace cspm::datasets

#endif  // CSPM_DATASETS_SYNTHETIC_H_
