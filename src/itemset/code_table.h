// Krimp-style code table (Vreeken et al., DMKD 2011): a set of itemsets
// with usage-based Shannon codes, plus the standard cover algorithm and the
// two-part MDL total L(CT, D) = L(CT|D) + L(D|CT).
#ifndef CSPM_ITEMSET_CODE_TABLE_H_
#define CSPM_ITEMSET_CODE_TABLE_H_

#include <cstdint>
#include <vector>

#include "itemset/transaction_db.h"

namespace cspm::itemset {

/// Code table over a fixed transaction database. Singleton entries for every
/// item are always present (they guarantee every transaction can be
/// covered); non-singleton patterns are inserted in the Krimp cover order
/// (cardinality desc, support desc, lexicographic).
class CodeTable {
 public:
  struct Entry {
    Itemset items;
    uint64_t support = 0;  ///< support in db (cover-order tiebreak)
    uint64_t usage = 0;    ///< filled by CoverDb()
    /// Transactions whose cover used this entry (sorted tids); maintained by
    /// CoverDb() when track_usage_tids is set.
    std::vector<uint32_t> usage_tids;
  };

  /// Builds the standard code table (singletons only) for `db`. The database
  /// must outlive the code table.
  explicit CodeTable(const TransactionDb* db, bool track_usage_tids = false);

  /// Inserts a non-singleton pattern at its cover-order position.
  /// Returns the entry index. Duplicate inserts are ignored (returns the
  /// existing index).
  size_t Insert(Itemset items, uint64_t support);

  /// Removes a non-singleton pattern (no-op if absent).
  void Remove(const Itemset& items);

  /// Recomputes all usages by covering every transaction.
  void CoverDb();

  /// Covers one transaction; appends indices of used entries to `out`.
  /// Requires singletons for all items of `t` to exist (true for
  /// transactions of the underlying db).
  void CoverTransaction(const Itemset& t, std::vector<size_t>* out) const;

  /// L(D|CT): encoded database length in bits (usages must be current).
  double EncodedDbLength() const;

  /// L(CT|D): code table length in bits — for every entry in use, its code
  /// plus its itemset spelled in standard (singleton-frequency) codes.
  double CodeTableLength() const;

  /// L(CT, D) = L(CT|D) + L(D|CT).
  double TotalLength() const { return EncodedDbLength() + CodeTableLength(); }

  /// Code length in bits of entry `idx` (usage must be > 0).
  double CodeLength(size_t idx) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t num_entries() const { return entries_.size(); }
  uint64_t total_usage() const { return total_usage_; }
  const TransactionDb& db() const { return *db_; }

  /// Index of the entry with exactly `items`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t Find(const Itemset& items) const;

 private:
  static bool CoverOrderLess(const Entry& a, const Entry& b);

  const TransactionDb* db_;
  bool track_usage_tids_;
  std::vector<Entry> entries_;  // maintained in cover order
  uint64_t total_usage_ = 0;
};

}  // namespace cspm::itemset

#endif  // CSPM_ITEMSET_CODE_TABLE_H_
