// Transaction database: the Krimp/SLIM input format (a set of itemsets).
#ifndef CSPM_ITEMSET_TRANSACTION_DB_H_
#define CSPM_ITEMSET_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "graph/attributed_graph.h"

namespace cspm::itemset {

using Item = uint32_t;
/// Sorted, duplicate-free item list.
using Itemset = std::vector<Item>;

/// In-memory transaction database over a dense item universe [0, num_items).
class TransactionDb {
 public:
  TransactionDb() = default;

  /// Adds a transaction (sorted + deduplicated internally).
  void Add(Itemset t);

  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }
  const Itemset& transaction(size_t i) const { return transactions_[i]; }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  /// Item universe size (max item id + 1).
  size_t num_items() const { return item_freq_.size(); }

  /// Occurrence count of an item across transactions.
  uint64_t ItemFrequency(Item i) const {
    return i < item_freq_.size() ? item_freq_[i] : 0;
  }

  /// Total number of (transaction, item) occurrences.
  uint64_t total_occurrences() const { return total_occurrences_; }

  /// One transaction per vertex: the vertex's own attribute values
  /// (the "mapping function" view used for multi-core coreset mining,
  /// Section IV-F Step 1).
  static TransactionDb FromVertexAttributes(const graph::AttributedGraph& g);

  /// One transaction per adjacency-list tuple: the attribute values of the
  /// core vertex plus those of all its neighbours. This is how the paper
  /// applies SLIM to an attributed graph for the Table III comparison.
  static TransactionDb FromStars(const graph::AttributedGraph& g);

 private:
  std::vector<Itemset> transactions_;
  std::vector<uint64_t> item_freq_;
  uint64_t total_occurrences_ = 0;
};

/// True if `sub` (sorted) is a subset of `super` (sorted).
bool IsSubset(const Itemset& sub, const Itemset& super);

/// Sorted union of two sorted itemsets.
Itemset UnionOf(const Itemset& a, const Itemset& b);

}  // namespace cspm::itemset

#endif  // CSPM_ITEMSET_TRANSACTION_DB_H_
