#include "itemset/code_table.h"

#include <algorithm>

#include "mdl/codes.h"
#include "util/check.h"

namespace cspm::itemset {

bool CodeTable::CoverOrderLess(const Entry& a, const Entry& b) {
  if (a.items.size() != b.items.size()) {
    return a.items.size() > b.items.size();
  }
  if (a.support != b.support) return a.support > b.support;
  return a.items < b.items;
}

CodeTable::CodeTable(const TransactionDb* db, bool track_usage_tids)
    : db_(db), track_usage_tids_(track_usage_tids) {
  for (Item i = 0; i < db_->num_items(); ++i) {
    Entry e;
    e.items = {i};
    e.support = db_->ItemFrequency(i);
    entries_.push_back(std::move(e));
  }
  std::sort(entries_.begin(), entries_.end(), CoverOrderLess);
}

size_t CodeTable::Find(const Itemset& items) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].items == items) return i;
  }
  return npos;
}

size_t CodeTable::Insert(Itemset items, uint64_t support) {
  CSPM_CHECK(items.size() >= 2);
  size_t existing = Find(items);
  if (existing != npos) return existing;
  Entry e;
  e.items = std::move(items);
  e.support = support;
  auto it = std::lower_bound(entries_.begin(), entries_.end(), e,
                             CoverOrderLess);
  it = entries_.insert(it, std::move(e));
  return static_cast<size_t>(it - entries_.begin());
}

void CodeTable::Remove(const Itemset& items) {
  CSPM_CHECK(items.size() >= 2);
  size_t idx = Find(items);
  if (idx != npos) entries_.erase(entries_.begin() + static_cast<long>(idx));
}

void CodeTable::CoverTransaction(const Itemset& t,
                                 std::vector<size_t>* out) const {
  // Greedy cover in table order over the remaining (uncovered) items.
  Itemset remaining = t;
  for (size_t i = 0; i < entries_.size() && !remaining.empty(); ++i) {
    const Entry& e = entries_[i];
    if (e.items.size() > remaining.size()) continue;
    if (IsSubset(e.items, remaining)) {
      out->push_back(i);
      Itemset next;
      next.reserve(remaining.size() - e.items.size());
      std::set_difference(remaining.begin(), remaining.end(),
                          e.items.begin(), e.items.end(),
                          std::back_inserter(next));
      remaining = std::move(next);
    }
  }
  CSPM_CHECK_MSG(remaining.empty(), "transaction not fully covered");
}

void CodeTable::CoverDb() {
  for (auto& e : entries_) {
    e.usage = 0;
    e.usage_tids.clear();
  }
  total_usage_ = 0;
  std::vector<size_t> used;
  for (uint32_t t = 0; t < db_->size(); ++t) {
    used.clear();
    CoverTransaction(db_->transaction(t), &used);
    for (size_t idx : used) {
      ++entries_[idx].usage;
      if (track_usage_tids_) entries_[idx].usage_tids.push_back(t);
    }
    total_usage_ += used.size();
  }
}

double CodeTable::CodeLength(size_t idx) const {
  CSPM_DCHECK(idx < entries_.size());
  return mdl::ShannonCodeLength(entries_[idx].usage, total_usage_);
}

double CodeTable::EncodedDbLength() const {
  double bits = 0.0;
  for (const auto& e : entries_) {
    if (e.usage == 0) continue;
    bits += static_cast<double>(e.usage) *
            mdl::ShannonCodeLength(e.usage, total_usage_);
  }
  return bits;
}

double CodeTable::CodeTableLength() const {
  // Left column: itemsets spelled in standard (item-frequency) codes;
  // right column: the pattern's own code. Zero-usage entries are omitted
  // (Krimp's convention).
  const uint64_t item_total = db_->total_occurrences();
  double bits = 0.0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.usage == 0) continue;
    for (Item item : e.items) {
      bits += mdl::ShannonCodeLength(db_->ItemFrequency(item), item_total);
    }
    bits += CodeLength(i);
  }
  return bits;
}

}  // namespace cspm::itemset
