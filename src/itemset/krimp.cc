#include "itemset/krimp.h"

#include <algorithm>

namespace cspm::itemset {

StatusOr<CompressionResult> RunKrimp(const TransactionDb& db,
                                     const KrimpOptions& options) {
  if (db.empty()) return Status::InvalidArgument("Krimp: empty database");

  EclatOptions eopts;
  eopts.min_support = options.min_support;
  eopts.max_size = options.max_size;
  eopts.max_patterns = options.max_candidates;
  CSPM_ASSIGN_OR_RETURN(std::vector<FrequentItemset> candidates,
                        MineFrequentItemsets(db, eopts));

  CompressionResult result;
  result.code_table = std::make_unique<CodeTable>(&db);
  CodeTable& ct = *result.code_table;
  ct.CoverDb();
  result.standard_length = ct.TotalLength();
  double best = result.standard_length;

  for (const auto& cand : candidates) {
    ++result.evaluated_candidates;
    ct.Insert(cand.items, cand.support);
    ct.CoverDb();
    double total = ct.TotalLength();
    if (total < best) {
      best = total;
      ++result.accepted_patterns;
      if (options.prune) {
        // Try dropping accepted non-singleton entries whose usage fell to a
        // low value; keep each removal only if it helps.
        for (;;) {
          bool improved = false;
          // Snapshot candidates for removal (non-singleton, usage small).
          std::vector<Itemset> removable;
          for (const auto& e : ct.entries()) {
            if (e.items.size() >= 2 && e.usage == 0) {
              removable.push_back(e.items);
            }
          }
          for (const auto& items : removable) {
            ct.Remove(items);
            ct.CoverDb();
            double t2 = ct.TotalLength();
            if (t2 <= best) {
              best = t2;
              improved = true;
              --result.accepted_patterns;
            } else {
              ct.Insert(items, 0);
              ct.CoverDb();
            }
          }
          if (!improved) break;
        }
      }
    } else {
      ct.Remove(cand.items);
    }
  }
  // Leave usages consistent with the final table.
  ct.CoverDb();
  result.final_length = ct.TotalLength();
  result.compression_ratio =
      result.standard_length > 0 ? result.final_length / result.standard_length
                                 : 1.0;
  return result;
}

}  // namespace cspm::itemset
