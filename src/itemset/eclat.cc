#include "itemset/eclat.h"

#include <algorithm>

namespace cspm::itemset {
namespace {

using TidList = std::vector<uint32_t>;

void IntersectInto(const TidList& a, const TidList& b, TidList* out) {
  out->clear();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

struct MineState {
  const EclatOptions* options;
  std::vector<FrequentItemset>* out;
  bool truncated = false;
};

// Depth-first extension of `prefix` with the extensions in `exts`
// (item, tidlist pairs), all already frequent.
void Extend(const Itemset& prefix, const TidList& prefix_tids,
            const std::vector<std::pair<Item, TidList>>& exts,
            MineState* state) {
  (void)prefix_tids;
  for (size_t i = 0; i < exts.size(); ++i) {
    if (state->options->max_patterns &&
        state->out->size() >= state->options->max_patterns) {
      state->truncated = true;
      return;
    }
    Itemset items = prefix;
    items.push_back(exts[i].first);
    if (items.size() >= 2) {
      state->out->push_back({items, exts[i].second.size()});
    }
    if (state->options->max_size && items.size() >= state->options->max_size) {
      continue;
    }
    std::vector<std::pair<Item, TidList>> next;
    TidList scratch;
    for (size_t j = i + 1; j < exts.size(); ++j) {
      IntersectInto(exts[i].second, exts[j].second, &scratch);
      if (scratch.size() >= state->options->min_support) {
        next.emplace_back(exts[j].first, scratch);
      }
    }
    if (!next.empty()) Extend(items, exts[i].second, next, state);
  }
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const TransactionDb& db, const EclatOptions& options) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  // Build vertical representation.
  std::vector<TidList> tids(db.num_items());
  for (uint32_t t = 0; t < db.size(); ++t) {
    for (Item i : db.transaction(t)) tids[i].push_back(t);
  }
  std::vector<std::pair<Item, TidList>> roots;
  for (Item i = 0; i < db.num_items(); ++i) {
    if (tids[i].size() >= options.min_support) {
      roots.emplace_back(i, std::move(tids[i]));
    }
  }
  std::vector<FrequentItemset> out;
  MineState state{&options, &out, false};
  Extend({}, {}, roots, &state);

  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() > b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace cspm::itemset
