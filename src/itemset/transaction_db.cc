#include "itemset/transaction_db.h"

#include <algorithm>

namespace cspm::itemset {

void TransactionDb::Add(Itemset t) {
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  for (Item i : t) {
    if (i >= item_freq_.size()) item_freq_.resize(i + 1, 0);
    ++item_freq_[i];
  }
  total_occurrences_ += t.size();
  transactions_.push_back(std::move(t));
}

TransactionDb TransactionDb::FromVertexAttributes(
    const graph::AttributedGraph& g) {
  TransactionDb db;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    auto attrs = g.Attributes(v);
    db.Add(Itemset(attrs.begin(), attrs.end()));
  }
  return db;
}

TransactionDb TransactionDb::FromStars(const graph::AttributedGraph& g) {
  TransactionDb db;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    auto attrs = g.Attributes(v);
    Itemset t(attrs.begin(), attrs.end());
    for (graph::VertexId w : g.Neighbors(v)) {
      auto na = g.Attributes(w);
      t.insert(t.end(), na.begin(), na.end());
    }
    db.Add(std::move(t));
  }
  return db;
}

bool IsSubset(const Itemset& sub, const Itemset& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

Itemset UnionOf(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace cspm::itemset
