#include "itemset/transaction_db.h"

#include <algorithm>

namespace cspm::itemset {

void TransactionDb::Add(Itemset t) {
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  for (Item i : t) {
    if (i >= item_freq_.size()) item_freq_.resize(i + 1, 0);
    ++item_freq_[i];
  }
  total_occurrences_ += t.size();
  transactions_.push_back(std::move(t));
}

TransactionDb TransactionDb::FromVertexAttributes(
    const graph::AttributedGraph& g) {
  TransactionDb db;
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    Itemset t;
    auto attrs = g.Attributes(v);
    t.reserve(attrs.size());
    for (graph::AttrId a : attrs) t.push_back(a.value());
    db.Add(std::move(t));
  }
  return db;
}

TransactionDb TransactionDb::FromStars(const graph::AttributedGraph& g) {
  TransactionDb db;
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    Itemset t;
    for (graph::AttrId a : g.Attributes(v)) t.push_back(a.value());
    for (graph::VertexId w : g.Neighbors(v)) {
      for (graph::AttrId a : g.Attributes(w)) t.push_back(a.value());
    }
    db.Add(std::move(t));
  }
  return db;
}

bool IsSubset(const Itemset& sub, const Itemset& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

Itemset UnionOf(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace cspm::itemset
