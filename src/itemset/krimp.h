// The Krimp algorithm (Vreeken et al., DMKD 2011): select a compressing
// subset of pre-mined frequent itemsets by greedy MDL filtering.
#ifndef CSPM_ITEMSET_KRIMP_H_
#define CSPM_ITEMSET_KRIMP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "itemset/code_table.h"
#include "itemset/eclat.h"
#include "itemset/transaction_db.h"
#include "util/status.h"

namespace cspm::itemset {

struct KrimpOptions {
  /// Absolute minimum support for the candidate miner.
  uint64_t min_support = 2;
  /// Candidate cap handed to Eclat (0 = unlimited).
  uint64_t max_candidates = 200000;
  /// Max candidate cardinality (0 = unlimited).
  uint32_t max_size = 8;
  /// Post-acceptance pruning of entries whose usage dropped.
  bool prune = true;
};

/// Result of a Krimp (or SLIM) run.
struct CompressionResult {
  /// Final code table (owns a copy of nothing; references the input db).
  std::unique_ptr<CodeTable> code_table;
  /// Baseline length with the standard code table only.
  double standard_length = 0.0;
  /// Final total length L(CT, D).
  double final_length = 0.0;
  /// final / standard (lower is better).
  double compression_ratio = 1.0;
  /// Number of non-singleton patterns accepted.
  uint64_t accepted_patterns = 0;
  /// Number of candidates evaluated.
  uint64_t evaluated_candidates = 0;
  /// True if a wall-clock budget stopped the search early (SLIM only).
  bool hit_time_budget = false;
};

/// Runs Krimp: mines candidates with Eclat, then greedily keeps those that
/// shrink the two-part MDL total. `db` must outlive the result.
StatusOr<CompressionResult> RunKrimp(const TransactionDb& db,
                                     const KrimpOptions& options);

}  // namespace cspm::itemset

#endif  // CSPM_ITEMSET_KRIMP_H_
