// The SLIM algorithm (Smets & Vreeken, SDM 2012): like Krimp but generates
// candidates on the fly by pairwise union of code table entries, ranked by
// estimated gain, keeping the first union that actually shrinks the MDL
// total. This is the runtime baseline of the paper's Table III and the
// multi-value coreset encoder of Section IV-F.
#ifndef CSPM_ITEMSET_SLIM_H_
#define CSPM_ITEMSET_SLIM_H_

#include <cstdint>

#include "itemset/krimp.h"  // CompressionResult
#include "itemset/transaction_db.h"
#include "util/status.h"

namespace cspm::itemset {

struct SlimOptions {
  /// Cap on exact evaluations per iteration (estimated-best first).
  uint32_t max_exact_evaluations_per_iteration = 24;
  /// Hard cap on accepted patterns (0 = unlimited).
  uint64_t max_patterns = 0;
  /// Stop when the best estimated gain is below this many bits.
  double min_estimated_gain_bits = 0.0;
  /// Wall-clock budget in seconds; 0 = unlimited. Sets
  /// CompressionResult::hit_time_budget when exceeded.
  double max_seconds = 0.0;
};

/// Runs SLIM. `db` must outlive the result.
StatusOr<CompressionResult> RunSlim(const TransactionDb& db,
                                    const SlimOptions& options);

}  // namespace cspm::itemset

#endif  // CSPM_ITEMSET_SLIM_H_
