// Eclat frequent-itemset mining over vertical tid-lists. Used to feed
// Krimp with candidates (Krimp is not parameter-free; this is the paper's
// point of contrast with CSPM).
#ifndef CSPM_ITEMSET_ECLAT_H_
#define CSPM_ITEMSET_ECLAT_H_

#include <cstdint>
#include <vector>

#include "itemset/transaction_db.h"
#include "util/status.h"

namespace cspm::itemset {

/// A frequent itemset with its absolute support.
struct FrequentItemset {
  Itemset items;
  uint64_t support = 0;
};

struct EclatOptions {
  /// Absolute minimum support (number of transactions).
  uint64_t min_support = 2;
  /// Maximum pattern cardinality (0 = unlimited).
  uint32_t max_size = 0;
  /// Hard cap on the number of patterns returned (0 = unlimited).
  uint64_t max_patterns = 0;
};

/// Mines all frequent itemsets of size >= 2 satisfying the options.
/// Results are sorted by the Krimp "standard candidate order":
/// support desc, then cardinality desc, then lexicographic.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const TransactionDb& db, const EclatOptions& options);

}  // namespace cspm::itemset

#endif  // CSPM_ITEMSET_ECLAT_H_
