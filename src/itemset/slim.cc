#include "itemset/slim.h"

#include <algorithm>

#include "mdl/codes.h"
#include "util/timer.h"

namespace cspm::itemset {
namespace {

uint64_t IntersectionSize(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  uint64_t n = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

struct PairCandidate {
  size_t x;
  size_t y;
  uint64_t co_usage;
  double estimated_gain;
};

// SLIM's gain estimate for replacing xy uses of X and Y with the union:
// the dominant data term is xy * (L(X) + L(Y) - L(XY_est)) where code
// lengths come from current usages; we use the simplified estimate
// xy * (Lx + Ly) - xy * log2(total/xy) which is exact up to the usage
// renormalization and the code-table delta.
double EstimateGain(uint64_t xy, uint64_t ux, uint64_t uy, uint64_t total) {
  if (xy == 0) return 0.0;
  const double lx = mdl::ShannonCodeLength(ux, total);
  const double ly = mdl::ShannonCodeLength(uy, total);
  const double lxy = mdl::ShannonCodeLength(xy, total);
  return static_cast<double>(xy) * (lx + ly - lxy);
}

}  // namespace

StatusOr<CompressionResult> RunSlim(const TransactionDb& db,
                                    const SlimOptions& options) {
  if (db.empty()) return Status::InvalidArgument("SLIM: empty database");

  CompressionResult result;
  result.code_table = std::make_unique<CodeTable>(&db, /*track_usage_tids=*/true);
  CodeTable& ct = *result.code_table;
  ct.CoverDb();
  result.standard_length = ct.TotalLength();
  double best = result.standard_length;

  WallTimer timer;
  for (;;) {
    if (options.max_patterns &&
        result.accepted_patterns >= options.max_patterns) {
      break;
    }
    if (options.max_seconds > 0.0 &&
        timer.ElapsedSeconds() >= options.max_seconds) {
      result.hit_time_budget = true;
      break;
    }
    // Rank all pairs of in-use entries by estimated gain.
    std::vector<size_t> active;
    for (size_t i = 0; i < ct.num_entries(); ++i) {
      if (ct.entries()[i].usage > 0) active.push_back(i);
    }
    std::vector<PairCandidate> pairs;
    for (size_t a = 0; a < active.size(); ++a) {
      for (size_t b = a + 1; b < active.size(); ++b) {
        const auto& ex = ct.entries()[active[a]];
        const auto& ey = ct.entries()[active[b]];
        uint64_t xy = IntersectionSize(ex.usage_tids, ey.usage_tids);
        if (xy == 0) continue;
        double est = EstimateGain(xy, ex.usage, ey.usage, ct.total_usage());
        if (est > options.min_estimated_gain_bits) {
          pairs.push_back({active[a], active[b], xy, est});
        }
      }
    }
    if (pairs.empty()) break;
    std::sort(pairs.begin(), pairs.end(),
              [](const PairCandidate& a, const PairCandidate& b) {
                return a.estimated_gain > b.estimated_gain;
              });

    bool accepted = false;
    uint32_t evaluated = 0;
    for (const auto& cand : pairs) {
      if (evaluated >= options.max_exact_evaluations_per_iteration) break;
      ++evaluated;
      ++result.evaluated_candidates;
      Itemset merged = UnionOf(ct.entries()[cand.x].items,
                               ct.entries()[cand.y].items);
      if (ct.Find(merged) != CodeTable::npos) continue;
      ct.Insert(merged, cand.co_usage);
      ct.CoverDb();
      double total = ct.TotalLength();
      if (total < best) {
        best = total;
        ++result.accepted_patterns;
        accepted = true;
        break;
      }
      ct.Remove(merged);
      ct.CoverDb();
    }
    if (!accepted) break;
  }

  ct.CoverDb();
  result.final_length = ct.TotalLength();
  result.compression_ratio =
      result.standard_length > 0 ? result.final_length / result.standard_length
                                 : 1.0;
  return result;
}

}  // namespace cspm::itemset
