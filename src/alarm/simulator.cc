#include "alarm/simulator.h"

#include <algorithm>

#include "graph/generators.h"

namespace cspm::alarm {

StatusOr<AlarmDataset> SimulateAlarms(const SimulationOptions& options,
                                      const RuleLibrary& rules) {
  if (options.num_devices < 2) {
    return Status::InvalidArgument("need at least 2 devices");
  }
  if (options.num_alarm_types == 0) {
    return Status::InvalidArgument("need at least 1 alarm type");
  }
  Rng rng(options.seed);
  AlarmDataset data;
  data.num_devices = options.num_devices;
  data.num_types = options.num_alarm_types;
  data.rules = rules;

  // Devices are plain indices here; unwrap the generator's vertex ids.
  for (auto [u, v] : graph::BarabasiAlbertEdges(
           options.num_devices, options.topology_attachment, &rng)) {
    data.topology_edges.emplace_back(u.value(), v.value());
  }
  data.adjacency.assign(options.num_devices, {});
  for (auto [u, v] : data.topology_edges) {
    data.adjacency[u].push_back(v);
    data.adjacency[v].push_back(u);
  }

  // Background noise: Poisson count per device, uniform time and type.
  for (uint32_t d = 0; d < options.num_devices; ++d) {
    const uint64_t count = rng.Poisson(options.background_alarms_per_device);
    for (uint64_t i = 0; i < count; ++i) {
      AlarmEvent ev;
      ev.device = d;
      ev.type = static_cast<AlarmType>(
          rng.Uniform(options.num_alarm_types));
      ev.time_minutes = rng.UniformDouble() * options.duration_minutes;
      data.events.push_back(ev);
    }
  }

  // Causal incidents: pick a rule and a device, emit the cause, then each
  // derivative with some delay on the same or a neighbouring device.
  if (!rules.rules.empty()) {
    const uint64_t incidents = rng.Poisson(options.cause_incidents);
    for (uint64_t i = 0; i < incidents; ++i) {
      const AlarmRule& rule =
          rules.rules[rng.Uniform(rules.rules.size())];
      const uint32_t device = static_cast<uint32_t>(
          rng.Uniform(options.num_devices));
      const double t =
          rng.UniformDouble() * (options.duration_minutes -
                                 options.max_delay_minutes);
      data.events.push_back({device, rule.cause, t});
      for (AlarmType derivative : rule.derivatives) {
        if (!rng.Bernoulli(options.derivative_probability)) continue;
        uint32_t target = device;
        if (!data.adjacency[device].empty() &&
            rng.Bernoulli(options.neighbour_probability)) {
          target = data.adjacency[device][rng.Uniform(
              data.adjacency[device].size())];
        }
        const double delay =
            rng.UniformDouble() * options.max_delay_minutes;
        data.events.push_back({target, derivative, t + delay});
      }
    }
  }

  std::sort(data.events.begin(), data.events.end(),
            [](const AlarmEvent& a, const AlarmEvent& b) {
              return a.time_minutes < b.time_minutes;
            });
  return data;
}

}  // namespace cspm::alarm
