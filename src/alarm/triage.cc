#include "alarm/triage.h"

#include <algorithm>

#include "alarm/window_graph.h"

namespace cspm::alarm {

StatusOr<std::vector<WindowTriage>> TriageWindows(
    const graph::AttributedGraph& window_graph, const core::CspmModel& model,
    const TriageOptions& options) {
  engine::ServingOptions serving;
  serving.num_threads = options.num_threads;
  serving.scoring = options.scoring;
  CSPM_ASSIGN_OR_RETURN(
      engine::ServingEngine engine,
      engine::ServingEngine::Create(window_graph, model, serving));
  const std::vector<core::AttributeScores> batch = engine.ScoreAll();

  // Attribute names of the window graph are "T<k>"; decode once.
  std::vector<AlarmType> attr_to_type(window_graph.num_attribute_values(), 0);
  std::vector<bool> decodes(window_graph.num_attribute_values(), false);
  for (graph::AttrId a(0); a.index() < window_graph.num_attribute_values();
       ++a) {
    auto type_or = DecodeAlarmName(window_graph.dict().Name(a));
    if (type_or.ok()) {
      attr_to_type[a.index()] = type_or.value();
      decodes[a.index()] = true;
    }
  }

  std::vector<WindowTriage> result;
  std::vector<graph::AttrId> candidates;
  for (graph::VertexId v(0); v < window_graph.num_vertices(); ++v) {
    const core::AttributeScores& scores = batch[v.index()];
    candidates.clear();
    for (graph::AttrId a(0); a.index() < scores.normalized.size(); ++a) {
      if (!decodes[a.index()]) continue;
      // No pattern evidence, or below the triage threshold.
      if (scores.normalized[a.index()] <= 0.0) continue;
      if (scores.normalized[a.index()] < options.min_score) continue;
      // Alarms already observed in the window are not "hidden causes".
      if (window_graph.HasAttribute(v, a)) continue;
      candidates.push_back(a);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](graph::AttrId x, graph::AttrId y) {
                return scores.normalized[x.index()] !=
                               scores.normalized[y.index()]
                           ? scores.normalized[x.index()] >
                                 scores.normalized[y.index()]
                           : attr_to_type[x.index()] < attr_to_type[y.index()];
              });
    if (candidates.size() > options.top_k) candidates.resize(options.top_k);
    // After truncation, so top_k=0 cannot emit suspect-less windows.
    if (candidates.empty()) continue;

    WindowTriage wt;
    wt.window = v;
    wt.suspected.reserve(candidates.size());
    for (graph::AttrId a : candidates) {
      wt.suspected.push_back(
          {attr_to_type[a.index()], scores.normalized[a.index()]});
    }
    result.push_back(std::move(wt));
  }
  return result;
}

}  // namespace cspm::alarm
