#include "alarm/rules.h"

#include <algorithm>

#include "util/check.h"

namespace cspm::alarm {

std::vector<PairRule> RuleLibrary::PairRules() const {
  std::vector<PairRule> pairs;
  for (const auto& rule : rules) {
    for (AlarmType d : rule.derivatives) {
      pairs.push_back({rule.cause, d});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

RuleLibrary RuleLibrary::Generate(uint32_t num_rules,
                                  uint32_t min_derivatives,
                                  uint32_t max_derivatives,
                                  uint32_t num_types, Rng* rng) {
  CSPM_CHECK(num_rules <= num_types);
  CSPM_CHECK(min_derivatives >= 1 && min_derivatives <= max_derivatives);
  RuleLibrary lib;
  // Disjoint cause types: the first num_rules type ids, shuffled.
  std::vector<AlarmType> causes(num_types);
  for (uint32_t t = 0; t < num_types; ++t) causes[t] = t;
  rng->Shuffle(&causes);
  causes.resize(num_rules);

  std::vector<bool> is_cause(num_types, false);
  for (AlarmType c : causes) is_cause[c] = true;
  std::vector<AlarmType> non_causes;
  for (uint32_t t = 0; t < num_types; ++t) {
    if (!is_cause[t]) non_causes.push_back(t);
  }
  CSPM_CHECK(!non_causes.empty());

  for (AlarmType c : causes) {
    AlarmRule rule;
    rule.cause = c;
    const uint32_t k = static_cast<uint32_t>(
        rng->UniformInt(min_derivatives, max_derivatives));
    const uint32_t kk =
        std::min<uint32_t>(k, static_cast<uint32_t>(non_causes.size()));
    auto picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(non_causes.size()), kk);
    for (uint32_t idx : picks) rule.derivatives.push_back(non_causes[idx]);
    std::sort(rule.derivatives.begin(), rule.derivatives.end());
    lib.rules.push_back(std::move(rule));
  }
  return lib;
}

}  // namespace cspm::alarm
