#include "alarm/window_graph.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/string_util.h"

namespace cspm::alarm {

std::string AlarmAttributeName(AlarmType t) { return StrFormat("T%u", t); }

StatusOr<AlarmType> DecodeAlarmName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'T') {
    return Status::InvalidArgument("not an alarm attribute: " + name);
  }
  char* end = nullptr;
  unsigned long v = std::strtoul(name.c_str() + 1, &end, 10);
  if (*end != '\0') {
    return Status::InvalidArgument("not an alarm attribute: " + name);
  }
  return static_cast<AlarmType>(v);
}

StatusOr<graph::AttributedGraph> BuildWindowGraph(const AlarmDataset& data,
                                                  double window_minutes) {
  if (window_minutes <= 0.0) {
    return Status::InvalidArgument("window_minutes must be positive");
  }
  // Collect alarm types per (window, device).
  std::map<std::pair<uint32_t, uint32_t>, std::vector<AlarmType>> buckets;
  for (const AlarmEvent& ev : data.events) {
    const uint32_t w =
        static_cast<uint32_t>(ev.time_minutes / window_minutes);
    buckets[{w, ev.device}].push_back(ev.type);
  }
  graph::GraphBuilder builder;
  // Intern all alarm types up front so attribute ids == alarm type ids.
  for (AlarmType t = 0; t < data.num_types; ++t) {
    builder.InternAttribute(AlarmAttributeName(t));
  }
  std::map<std::pair<uint32_t, uint32_t>, graph::VertexId> vertex_of;
  for (auto& [key, types] : buckets) {
    std::vector<graph::AttrId> attrs;
    attrs.reserve(types.size());
    for (AlarmType t : types) attrs.push_back(graph::AttrId(t));
    std::sort(attrs.begin(), attrs.end());
    attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
    vertex_of[key] = builder.AddVertexWithIds(std::move(attrs));
  }
  // Edges: within a window, connect replicas of topologically adjacent
  // devices (both raising alarms in that window).
  for (const auto& [key, v] : vertex_of) {
    const auto [w, device] = key;
    for (uint32_t nbr : data.adjacency[device]) {
      auto it = vertex_of.find({w, nbr});
      if (it != vertex_of.end() && it->second > v) {
        CSPM_RETURN_IF_ERROR(builder.AddEdge(v, it->second));
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace cspm::alarm
