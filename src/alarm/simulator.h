// Telecom alarm stream simulator: a device topology raises background
// alarms plus planted causal cascades following a rule library. Substitutes
// for the paper's proprietary 6M-alarm metropolitan dataset (Section VI-D);
// see DESIGN.md for the substitution rationale.
#ifndef CSPM_ALARM_SIMULATOR_H_
#define CSPM_ALARM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "alarm/rules.h"
#include "util/status.h"

namespace cspm::alarm {

/// One triggered alarm.
struct AlarmEvent {
  uint32_t device = 0;
  AlarmType type = 0;
  double time_minutes = 0.0;
};

struct SimulationOptions {
  uint32_t num_devices = 200;
  /// Barabasi-Albert attachment degree of the device topology.
  uint32_t topology_attachment = 2;
  uint32_t num_alarm_types = 300;
  double duration_minutes = 7200.0;  ///< five days, paper-style
  /// Expected background (noise) alarms per device over the whole run.
  double background_alarms_per_device = 20.0;
  /// Expected number of cause-alarm incidents over the whole run.
  double cause_incidents = 4000.0;
  /// Probability that each derivative of a firing rule is emitted.
  double derivative_probability = 0.85;
  /// Probability a derivative lands on a neighbouring device (else the
  /// same device).
  double neighbour_probability = 0.75;
  /// Max delay between cause and derivative (uniform).
  double max_delay_minutes = 4.0;
  uint64_t seed = 1;
};

/// The simulated dataset: the event log, the device topology and the
/// ground-truth rule library.
struct AlarmDataset {
  std::vector<AlarmEvent> events;  ///< sorted by time
  std::vector<std::pair<uint32_t, uint32_t>> topology_edges;
  std::vector<std::vector<uint32_t>> adjacency;  ///< per device
  uint32_t num_devices = 0;
  uint32_t num_types = 0;
  RuleLibrary rules;
};

/// Runs the simulation.
StatusOr<AlarmDataset> SimulateAlarms(const SimulationOptions& options,
                                      const RuleLibrary& rules);

}  // namespace cspm::alarm

#endif  // CSPM_ALARM_SIMULATOR_H_
