// Window-level alarm triage on the batch serving path: every (device,
// window) vertex of the window graph is scored in one ServingEngine batch
// against a mined a-star model, and the top-scoring alarm types NOT yet
// observed in the window are reported as suspected hidden causes. This is
// the serving-side companion of the Fig. 8 rule extraction: rules rank
// cause->derivative pairs offline, triage ranks likely culprit alarms per
// live window.
#ifndef CSPM_ALARM_TRIAGE_H_
#define CSPM_ALARM_TRIAGE_H_

#include <cstdint>
#include <vector>

#include "alarm/rules.h"
#include "cspm/model.h"
#include "engine/serving.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::alarm {

struct TriageOptions {
  /// Suspected alarm types reported per window (the best `top_k` by
  /// normalized score).
  size_t top_k = 3;
  /// Suspects scoring below this normalized threshold are dropped.
  double min_score = 0.0;
  /// Shards for the batch scoring (0 = one per hardware core). Output is
  /// identical at any thread count.
  uint32_t num_threads = 1;
  core::ScoringOptions scoring;
};

/// One suspected hidden alarm in a window.
struct SuspectedAlarm {
  AlarmType type = 0;
  double score = 0.0;  ///< normalized Algorithm 5 score, in (0, 1]
};

/// Triage result for one window-graph vertex.
struct WindowTriage {
  graph::VertexId window{};
  /// Ranked by descending score, ties by ascending alarm type.
  std::vector<SuspectedAlarm> suspected;
};

/// Scores every window vertex of `window_graph` in one batch through a
/// compiled plan of `model` and reports, per window, the top suspected
/// alarm types not already observed there. Windows with no suspect above
/// `min_score` are omitted; output is ordered by ascending window vertex.
StatusOr<std::vector<WindowTriage>> TriageWindows(
    const graph::AttributedGraph& window_graph, const core::CspmModel& model,
    const TriageOptions& options = {});

}  // namespace cspm::alarm

#endif  // CSPM_ALARM_TRIAGE_H_
