// ACOR-style pairwise alarm correlation baseline (Fournier-Viger et al.
// 2020) and the rule extraction / coverage evaluation shared with CSPM
// (Fig. 8). ACOR scores each alarm pair independently from windowed
// co-occurrence on identical or adjacent devices and infers the cause
// direction from conditional-probability asymmetry.
#ifndef CSPM_ALARM_ACOR_H_
#define CSPM_ALARM_ACOR_H_

#include <vector>

#include "alarm/simulator.h"
#include "alarm/window_graph.h"
#include "cspm/model.h"
#include "graph/attributed_graph.h"

namespace cspm::alarm {

/// A directed, scored alarm rule candidate.
struct RankedPair {
  AlarmType cause = 0;
  AlarmType derivative = 0;
  double score = 0.0;
};

struct AcorOptions {
  double window_minutes = 5.0;
  /// Pairs with fewer joint windowed co-occurrences are dropped.
  uint32_t min_co_occurrences = 2;
  /// Off by default: the published ACOR sees time-flattened window
  /// snapshots, the same information CSPM's window graph carries. Enabling
  /// this gives ACOR an event-timestamp oracle (used by an ablation bench).
  bool use_temporal_precedence = false;
};

/// Runs the ACOR baseline: returns pairs sorted by descending correlation.
std::vector<RankedPair> RunAcor(const AlarmDataset& data,
                                const AcorOptions& options);

struct AStarRuleOptions {
  /// A-stars with frequency below this are ignored: an interesting a-star
  /// "is supposed to be frequent to some extent" (Section IV-C) — and a
  /// frequency-1 line has a degenerate 0-bit conditional code.
  uint64_t min_frequency = 3;
  /// When both directions of an unordered pair are derivable from the
  /// model, emit only the one whose supporting a-star has the shorter
  /// code. Off by default: the paper splits every a-star into its pairs
  /// and lets the ranking arbitrate.
  bool single_direction_per_pair = false;
};

/// Splits the a-stars of a CSPM model mined on a window graph into directed
/// pair rules (core value -> leaf value). A pair inherits the best
/// (shortest) code length among the a-stars producing it; output is sorted
/// by ascending code length, i.e. descending informativeness. `dict` is the
/// window graph's attribute dictionary.
std::vector<RankedPair> SplitAStarsToPairs(
    const core::CspmModel& model, const graph::AttributeDictionary& dict,
    const AStarRuleOptions& options = {});

/// coverage@K = |valid ∩ topK(ranked)| / |valid| for each K in `ks`.
std::vector<double> CoverageAtK(const std::vector<RankedPair>& ranked,
                                const std::vector<PairRule>& valid,
                                const std::vector<size_t>& ks);

}  // namespace cspm::alarm

#endif  // CSPM_ALARM_ACOR_H_
