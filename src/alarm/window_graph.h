// Converts an alarm event log into an attributed graph: one vertex per
// (device, time window) that raised at least one alarm, carrying the alarm
// types of that window as attribute values, with edges between replicas of
// adjacent (or identical) devices within the same window. This is the
// dynamic-attributed-graph modelling the ACOR paper applies, flattened so
// CSPM can mine it.
#ifndef CSPM_ALARM_WINDOW_GRAPH_H_
#define CSPM_ALARM_WINDOW_GRAPH_H_

#include "alarm/simulator.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::alarm {

/// Alarm type ids are interned as attribute names "T<k>"; DecodeAlarmName
/// inverts the naming.
std::string AlarmAttributeName(AlarmType t);
StatusOr<AlarmType> DecodeAlarmName(const std::string& name);

/// Builds the windowed attributed graph.
StatusOr<graph::AttributedGraph> BuildWindowGraph(const AlarmDataset& data,
                                                  double window_minutes);

}  // namespace cspm::alarm

#endif  // CSPM_ALARM_WINDOW_GRAPH_H_
