// Alarm rule library in the AABD style (Wang et al. 2017): a rule maps a
// cause alarm type to the derivative alarm types it triggers. Rules are
// decomposed into directed pair rules for evaluation against ACOR (Fig. 8).
#ifndef CSPM_ALARM_RULES_H_
#define CSPM_ALARM_RULES_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cspm::alarm {

/// Alarm type id (dense, [0, num_types)).
using AlarmType = uint32_t;

/// One expert rule: `cause` triggers each of `derivatives`.
struct AlarmRule {
  AlarmType cause = 0;
  std::vector<AlarmType> derivatives;
};

/// Directed pair rule (cause -> derivative).
struct PairRule {
  AlarmType cause = 0;
  AlarmType derivative = 0;
  bool operator==(const PairRule& o) const {
    return cause == o.cause && derivative == o.derivative;
  }
  bool operator<(const PairRule& o) const {
    return cause != o.cause ? cause < o.cause : derivative < o.derivative;
  }
};

/// A rule library plus its pairwise decomposition.
struct RuleLibrary {
  std::vector<AlarmRule> rules;

  /// The directed pair rules (the paper's 11 rules -> 121 pair rules).
  std::vector<PairRule> PairRules() const;

  /// Generates `num_rules` rules over disjoint cause types, each with a
  /// uniform number of derivatives in [min_derivatives, max_derivatives].
  /// Derivative types are drawn from the non-cause types (may be shared
  /// between rules).
  static RuleLibrary Generate(uint32_t num_rules, uint32_t min_derivatives,
                              uint32_t max_derivatives, uint32_t num_types,
                              Rng* rng);
};

}  // namespace cspm::alarm

#endif  // CSPM_ALARM_RULES_H_
