#include "alarm/acor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

namespace cspm::alarm {
namespace {

uint64_t PairKey(AlarmType a, AlarmType b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<RankedPair> RunAcor(const AlarmDataset& data,
                                const AcorOptions& options) {
  // Windowed occurrences: for each (window, device), the earliest firing
  // time of each type. Co-occurrence pairs a type with types on the same
  // or adjacent devices within the window; the earliest times drive the
  // cause-direction vote (causes precede their derivatives).
  std::map<std::pair<uint32_t, uint32_t>, std::map<AlarmType, double>>
      buckets;
  for (const AlarmEvent& ev : data.events) {
    const uint32_t w =
        static_cast<uint32_t>(ev.time_minutes / options.window_minutes);
    auto& bucket = buckets[{w, ev.device}];
    auto it = bucket.find(ev.type);
    if (it == bucket.end() || ev.time_minutes < it->second) {
      bucket[ev.type] = ev.time_minutes;
    }
  }

  std::unordered_map<AlarmType, uint64_t> occurrences;
  std::unordered_map<uint64_t, uint64_t> co;       // unordered key (a<b)
  std::unordered_map<uint64_t, int64_t> precede;   // votes: a-first minus
                                                   // b-first

  for (const auto& [key, types] : buckets) {
    const auto [w, device] = key;
    for (const auto& [t, time] : types) {
      (void)time;
      ++occurrences[t];
    }
    // Neighbourhood: same device plus adjacent devices, earliest time per
    // type across the neighbourhood.
    std::map<AlarmType, double> nearby = types;
    for (uint32_t nbr : data.adjacency[device]) {
      auto it = buckets.find({w, nbr});
      if (it == buckets.end()) continue;
      for (const auto& [t, time] : it->second) {
        auto nit = nearby.find(t);
        if (nit == nearby.end() || time < nit->second) nearby[t] = time;
      }
    }
    for (const auto& [a, ta] : types) {
      for (const auto& [b, tb] : nearby) {
        if (b <= a) continue;  // count unordered once, from the lower side
        ++co[PairKey(a, b)];
        if (ta < tb) {
          ++precede[PairKey(a, b)];
        } else if (tb < ta) {
          --precede[PairKey(a, b)];
        }
      }
    }
  }

  std::vector<RankedPair> ranked;
  for (const auto& [key, n] : co) {
    if (n < options.min_co_occurrences) continue;
    const AlarmType a = static_cast<AlarmType>(key >> 32);
    const AlarmType b = static_cast<AlarmType>(key);
    const double fa = static_cast<double>(occurrences[a]);
    const double fb = static_cast<double>(occurrences[b]);
    const double nn = static_cast<double>(n);
    // Correlation: Jaccard over windowed occurrences.
    const double jaccard = nn / (fa + fb - std::min(nn, fa + fb - 1.0));
    // Direction (alarm importance): the published ACOR works on windowed
    // dynamic-attributed-graph snapshots where within-window order is
    // lost; the cause is taken as the more frequent alarm of the pair (a
    // cause fires with every incident of its rule, each derivative only
    // probabilistically). The optional temporal-precedence vote is an
    // event-timestamp oracle used by an ablation bench only.
    RankedPair p;
    bool a_is_cause;
    if (options.use_temporal_precedence) {
      const int64_t votes = precede[key];
      a_is_cause = votes != 0 ? votes > 0 : fa >= fb;
    } else {
      a_is_cause = fa >= fb;
    }
    if (a_is_cause) {
      p.cause = a;
      p.derivative = b;
    } else {
      p.cause = b;
      p.derivative = a;
    }
    p.score = jaccard;
    ranked.push_back(p);
    // The reverse direction is kept at reduced confidence so a wrong
    // importance call is recoverable at larger K (coverage must be able
    // to reach 1, as in the paper's Fig. 8).
    RankedPair reverse;
    reverse.cause = p.derivative;
    reverse.derivative = p.cause;
    reverse.score = jaccard * 0.5;
    ranked.push_back(reverse);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPair& x, const RankedPair& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.cause != y.cause) return x.cause < y.cause;
              return x.derivative < y.derivative;
            });
  return ranked;
}

std::vector<RankedPair> SplitAStarsToPairs(
    const core::CspmModel& model, const graph::AttributeDictionary& dict,
    const AStarRuleOptions& options) {
  // Best (smallest) code length per directed pair.
  std::unordered_map<uint64_t, double> best;
  for (const core::AStar& s : model.astars) {
    if (s.frequency < options.min_frequency) continue;
    for (graph::AttrId cv : s.core_values) {
      auto cause_or = DecodeAlarmName(dict.Name(cv));
      if (!cause_or.ok()) continue;
      for (graph::AttrId lv : s.leaf_values) {
        if (lv == cv) continue;
        auto deriv_or = DecodeAlarmName(dict.Name(lv));
        if (!deriv_or.ok()) continue;
        const uint64_t key = PairKey(cause_or.value(), deriv_or.value());
        auto it = best.find(key);
        if (it == best.end() || s.code_length_bits < it->second) {
          best[key] = s.code_length_bits;
        }
      }
    }
  }
  std::vector<RankedPair> ranked;
  ranked.reserve(best.size());
  for (const auto& [key, code_len] : best) {
    const AlarmType cause = static_cast<AlarmType>(key >> 32);
    const AlarmType derivative = static_cast<AlarmType>(key);
    if (options.single_direction_per_pair) {
      auto rit = best.find(PairKey(derivative, cause));
      if (rit != best.end()) {
        // Keep the more compressible direction; break exact ties towards
        // the lower type id so exactly one side survives.
        if (rit->second < code_len ||
            (rit->second == code_len && derivative < cause)) {
          continue;
        }
      }
    }
    RankedPair p;
    p.cause = cause;
    p.derivative = derivative;
    p.score = -code_len;  // shorter code = higher score
    ranked.push_back(p);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPair& x, const RankedPair& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.cause != y.cause) return x.cause < y.cause;
              return x.derivative < y.derivative;
            });
  return ranked;
}

std::vector<double> CoverageAtK(const std::vector<RankedPair>& ranked,
                                const std::vector<PairRule>& valid,
                                const std::vector<size_t>& ks) {
  std::set<std::pair<AlarmType, AlarmType>> valid_set;
  for (const PairRule& r : valid) valid_set.insert({r.cause, r.derivative});
  std::vector<double> coverage;
  coverage.reserve(ks.size());
  if (valid_set.empty()) {
    coverage.assign(ks.size(), 0.0);
    return coverage;
  }
  for (size_t k : ks) {
    size_t hits = 0;
    const size_t n = std::min(k, ranked.size());
    for (size_t i = 0; i < n; ++i) {
      if (valid_set.count({ranked[i].cause, ranked[i].derivative})) ++hits;
    }
    coverage.push_back(static_cast<double>(hits) /
                       static_cast<double>(valid_set.size()));
  }
  return coverage;
}

}  // namespace cspm::alarm
