// Invariant-check macros. CSPM_CHECK is always on (used for internal
// invariants whose violation means a library bug); CSPM_DCHECK compiles out
// in release builds.
#ifndef CSPM_UTIL_CHECK_H_
#define CSPM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CSPM_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CSPM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CSPM_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CSPM_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define CSPM_DCHECK(cond) \
  do {                    \
  } while (0)
#define CSPM_DCHECK_OK(expr) \
  do {                       \
  } while (0)
#else
#define CSPM_DCHECK(cond) CSPM_CHECK(cond)
// Debug-only validation of a Status-returning expression (typically a deep
// CheckInvariants call); prints the violation before aborting. The
// expression is not evaluated at all in release builds.
#define CSPM_DCHECK_OK(expr)                                               \
  do {                                                                     \
    const auto cspm_dcheck_status = (expr);                                \
    if (!cspm_dcheck_status.ok()) {                                        \
      std::fprintf(stderr, "CSPM_DCHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__,                                     \
                   cspm_dcheck_status.ToString().c_str());                 \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
#endif

#endif  // CSPM_UTIL_CHECK_H_
