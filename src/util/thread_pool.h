// Fixed-size worker pool with a blocking parallel-for. Workers are spawned
// once and reused across calls — the CSPM gain-evaluation loops dispatch
// many small batches, so per-call thread spawning would dominate.
#ifndef CSPM_UTIL_THREAD_POOL_H_
#define CSPM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cspm::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// workers (atomic index stealing; the caller blocks until all indices
  /// are done but does not execute fn itself). fn must be safe to call
  /// concurrently from multiple threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Threads to use when the caller asked for "auto" (0): the hardware
  /// concurrency, at least 1.
  static size_t AutoThreads();

 private:
  /// One ParallelFor dispatch. Each job owns its index counter, so a
  /// worker that raced past the end of an old job can never claim indices
  /// of (or run) a newer one — it only ever touches its own snapshot.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t size = 0;
    std::atomic<size_t> next{0};
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_; null when idle
  uint64_t generation_ = 0;
  size_t pending_ = 0;  // indices not yet completed in the current job
  bool shutdown_ = false;
};

}  // namespace cspm::util

#endif  // CSPM_UTIL_THREAD_POOL_H_
