// Small string helpers used by I/O, logging and table printers.
#ifndef CSPM_UTIL_STRING_UTIL_H_
#define CSPM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cspm {

/// Splits on a delimiter; empty tokens are dropped.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins tokens with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a base-10 uint32; the whole string must be digits and in range.
/// Returns false (leaving *out untouched) otherwise — callers get a real
/// error instead of strtoul's silent 0 for garbage input.
bool ParseUint32(std::string_view s, uint32_t* out);

/// Matches a "--name value" / "--name=value" CLI flag at argv[*i].
/// Returns 0 when argv[*i] is not this flag, 1 when matched with *value
/// set (*i advanced past a separate value argument), -1 when the flag is
/// present but its value is missing. Shared by the binaries that take
/// --threads, so the flag grammar cannot drift between them.
int MatchFlagWithValue(int argc, char** argv, int* i, std::string_view name,
                       std::string* value);

}  // namespace cspm

#endif  // CSPM_UTIL_STRING_UTIL_H_
