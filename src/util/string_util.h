// Small string helpers used by I/O, logging and table printers.
#ifndef CSPM_UTIL_STRING_UTIL_H_
#define CSPM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cspm {

/// Splits on a delimiter; empty tokens are dropped.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins tokens with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace cspm

#endif  // CSPM_UTIL_STRING_UTIL_H_
