#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace cspm {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int MatchFlagWithValue(int argc, char** argv, int* i,
                       std::string_view name, std::string* value) {
  const std::string_view arg = argv[*i];
  if (arg == name) {
    if (*i + 1 >= argc) return -1;
    *value = argv[++*i];
    return 1;
  }
  if (arg.size() > name.size() && StartsWith(arg, name) &&
      arg[name.size()] == '=') {
    *value = std::string(arg.substr(name.size() + 1));
    return 1;
  }
  return 0;
}

bool ParseUint32(std::string_view s, uint32_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xffffffffull) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace cspm
