// Strong ID wrapper: a distinct type per id space so that a LeafsetId can
// never be passed where a CoreId (or a vertex, or an attribute value) is
// expected — index mixups become compile errors instead of silent index
// corruption. The wrapper is a single 32-bit value with zero runtime cost:
// trivially copyable, standard layout, fully constexpr.
//
// Conventions (see DESIGN.md §10):
//  - construction from a raw integer is explicit: `VertexId(7)`, never `7`;
//  - `value()` returns the raw representation (for serialization and
//    arithmetic that genuinely lives in integer space);
//  - `index()` returns it widened to size_t for container subscripts;
//  - ids order and hash like their representation, so sorted id vectors,
//    binary search and unordered_map keys work unchanged.
#ifndef CSPM_UTIL_STRONG_ID_H_
#define CSPM_UTIL_STRONG_ID_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <type_traits>

namespace cspm::util {

template <typename Tag, typename RepT = uint32_t>
class StrongId {
 public:
  using Rep = RepT;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  /// Raw representation (serialization, integer arithmetic).
  constexpr Rep value() const { return value_; }
  /// Raw representation widened for container subscripts.
  constexpr size_t index() const { return static_cast<size_t>(value_); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  /// Dense ids iterate: `for (VertexId v(0); v < n; ++v)`.
  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    StrongId old = *this;
    ++value_;
    return old;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = Rep{};
};

template <typename Tag, typename Rep>
std::string ToString(StrongId<Tag, Rep> id) {
  return std::to_string(id.value());
}

}  // namespace cspm::util

template <typename Tag, typename Rep>
struct std::hash<cspm::util::StrongId<Tag, Rep>> {
  size_t operator()(cspm::util::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

#endif  // CSPM_UTIL_STRONG_ID_H_
