// Status / StatusOr error model (RocksDB / Arrow idiom: no exceptions on
// library paths). A Status is cheap to copy in the OK case.
#ifndef CSPM_UTIL_STATUS_H_
#define CSPM_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace cspm {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kIOError = 6,
};

/// Result of an operation: either OK or an error code plus message.
/// [[nodiscard]]: silently dropping a Status hides failures, so an unused
/// return is a compiler warning (-Werror in CI); discard explicitly with
/// `(void)` where best-effort semantics are intended.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::make_shared<std::string>(std::move(msg))) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Human-readable message ("" for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return msg_ ? *msg_ : kEmpty;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message();
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIOError: return "IOError";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::shared_ptr<std::string> msg_;  // null for OK
};

/// Either a value of type T or an error Status. Access to value() requires
/// ok(); violated access aborts in debug builds.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status (OK when holding a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace cspm

/// Propagates a non-OK Status from an expression.
#define CSPM_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::cspm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#define CSPM_INTERNAL_CONCAT2(a, b) a##b
#define CSPM_INTERNAL_CONCAT(a, b) CSPM_INTERNAL_CONCAT2(a, b)

/// Assigns the value of a StatusOr expression or propagates its error.
#define CSPM_ASSIGN_OR_RETURN(lhs, expr)                             \
  CSPM_ASSIGN_OR_RETURN_IMPL(                                        \
      CSPM_INTERNAL_CONCAT(_status_or_, __LINE__), lhs, expr)

#define CSPM_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value();

#endif  // CSPM_UTIL_STATUS_H_
