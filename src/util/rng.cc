#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cspm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CSPM_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CSPM_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  double v = mean + std::sqrt(mean) * Gaussian() + 0.5;
  if (v < 0.0) v = 0.0;
  return static_cast<uint64_t>(v);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  CSPM_DCHECK(n > 0);
  if (n == 1) return 0;
  // Rejection-inversion (Devroye) — no O(n) precomputation.
  const double b = std::pow(2.0, 1.0 - s);
  for (;;) {
    const double u = UniformDouble();
    const double v = UniformDouble();
    const double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      uint64_t r = static_cast<uint64_t>(x) - 1;
      if (r >= n) r = n - 1;
      return r;
    }
  }
}

double Rng::Exponential(double rate) {
  CSPM_DCHECK(rate > 0.0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  CSPM_DCHECK(k <= n);
  // Floyd's algorithm; result shuffled afterwards for random order.
  std::vector<uint32_t> out;
  out.reserve(k);
  std::vector<bool> chosen(n, false);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(Uniform(j + 1));
    if (chosen[t]) t = j;
    chosen[t] = true;
    out.push_back(t);
  }
  Shuffle(&out);
  return out;
}

}  // namespace cspm
