#include "util/pos_list_pool.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace cspm::util {

uint32_t PosListPool::ClassOf(uint32_t n) {
  if (n <= 1) return 0;
  return 32u - static_cast<uint32_t>(std::countl_zero(n - 1));
}

PosListPool::Value* PosListPool::AllocateExtent(uint32_t cls) {
  if (cls < free_extents_.size() && !free_extents_[cls].empty()) {
    Value* extent = free_extents_[cls].back();
    free_extents_[cls].pop_back();
    return extent;
  }
  const size_t need = size_t{1} << cls;
  if (slabs_.empty() || slabs_.back().capacity - slabs_.back().used < need) {
    Slab slab;
    slab.capacity = std::max(need, kSlabValues);
    slab.data = std::make_unique<Value[]>(slab.capacity);
    reserved_values_ += slab.capacity;
    slabs_.push_back(std::move(slab));
  }
  Slab& slab = slabs_.back();
  Value* extent = slab.data.get() + slab.used;
  slab.used += need;
  return extent;
}

void PosListPool::RecycleExtent(Value* extent, uint32_t capacity) {
  const uint32_t cls = ClassOf(capacity);
  if (cls >= free_extents_.size()) free_extents_.resize(cls + 1);
  free_extents_[cls].push_back(extent);
}

PosListPool::Ref PosListPool::Allocate(std::span<const Value> values) {
  const uint32_t cls = ClassOf(static_cast<uint32_t>(values.size()));
  Slot slot;
  slot.data = AllocateExtent(cls);
  slot.size = static_cast<uint32_t>(values.size());
  slot.capacity = 1u << cls;
  if (!values.empty()) {
    std::memcpy(slot.data, values.data(), values.size() * sizeof(Value));
  }
  ++num_live_;
  if (!free_slots_.empty()) {
    const Ref ref = free_slots_.back();
    free_slots_.pop_back();
    slots_[ref] = slot;
    return ref;
  }
  slots_.push_back(slot);
  return static_cast<Ref>(slots_.size() - 1);
}

void PosListPool::Assign(Ref ref, std::span<const Value> values) {
  Slot& slot = slots_[ref];
  if (values.size() > slot.capacity) {
    RecycleExtent(slot.data, slot.capacity);
    const uint32_t cls = ClassOf(static_cast<uint32_t>(values.size()));
    slot.data = AllocateExtent(cls);
    slot.capacity = 1u << cls;
  }
  CSPM_DCHECK(values.data() == nullptr || values.data() < slot.data ||
              values.data() >= slot.data + slot.capacity);
  if (!values.empty()) {
    std::memcpy(slot.data, values.data(), values.size() * sizeof(Value));
  }
  slot.size = static_cast<uint32_t>(values.size());
}

void PosListPool::Free(Ref ref) {
  Slot& slot = slots_[ref];
  CSPM_DCHECK(slot.data != nullptr);
  RecycleExtent(slot.data, slot.capacity);
  slot = Slot{};
  free_slots_.push_back(ref);
  --num_live_;
}

}  // namespace cspm::util
