#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace cspm {
namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// folds a byte that is k positions ahead, so eight bytes fold per loop
// iteration instead of one.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeCrcTables();

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  // The 8-byte fold assumes little-endian word loads.
  while (std::endian::native == std::endian::little && len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cspm
