// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// Used by the store pager for per-page and header checksums.
#ifndef CSPM_UTIL_CRC32_H_
#define CSPM_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cspm {

/// CRC-32 of `len` bytes. Pass a previous result as `seed` to checksum
/// data in chunks: Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace cspm

#endif  // CSPM_UTIL_CRC32_H_
