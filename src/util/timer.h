// Wall-clock timing for experiment harnesses.
#ifndef CSPM_UTIL_TIMER_H_
#define CSPM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cspm {

/// Monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole nanoseconds — the unit of every obs/ histogram, so all
  /// instrumentation timing funnels through this one clock.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cspm

#endif  // CSPM_UTIL_TIMER_H_
