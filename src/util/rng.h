// Deterministic pseudo-random number generation. All stochastic components
// of the library (generators, simulators, model init) take an explicit Rng
// so every experiment is reproducible from a seed.
#ifndef CSPM_UTIL_RNG_H_
#define CSPM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cspm {

/// xoshiro256** PRNG seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// normal approximation for large mean).
  uint64_t Poisson(double mean);

  /// Zipf-distributed value in [0, n) with exponent s (rejection-free
  /// inverse-CDF over precomputation would be heavy; uses simple CDF walk
  /// for small n and rejection sampling for large n).
  uint64_t Zipf(uint64_t n, double s);

  /// Exponential inter-arrival sample with the given rate (> 0).
  double Exponential(double rate);

  /// Samples k distinct values from [0, n) (k <= n), in random order.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace cspm

#endif  // CSPM_UTIL_RNG_H_
