// Flat pooled storage for sorted position lists. All lists live in a small
// number of large slabs; a list is addressed by a stable 32-bit Ref whose
// extent is resized in place (power-of-two capacity classes with free-list
// recycling). This replaces per-line heap std::vector storage on the CSPM
// merge path: views are contiguous, allocation is a bump pointer or a
// free-list pop, and freeing never returns memory to the OS mid-run.
//
// Stability contract: Refs stay valid until Free(); the extent behind a Ref
// moves only on an Assign() that outgrows its capacity. Views obtained
// before such an Assign (or before Free) dangle — re-fetch after mutation.
#ifndef CSPM_UTIL_POS_LIST_POOL_H_
#define CSPM_UTIL_POS_LIST_POOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/ids.h"

namespace cspm::util {

class PosListPool {
 public:
  /// Position lists hold vertices — typed so a view can never be indexed
  /// with (or confused for) an attribute/leafset id.
  using Value = ::cspm::VertexId;
  using Ref = uint32_t;
  static constexpr Ref kInvalidRef = static_cast<Ref>(-1);

  PosListPool() = default;
  PosListPool(PosListPool&&) = default;
  PosListPool& operator=(PosListPool&&) = default;
  PosListPool(const PosListPool&) = delete;
  PosListPool& operator=(const PosListPool&) = delete;

  /// Allocates a list holding a copy of `values`.
  Ref Allocate(std::span<const Value> values);

  /// Replaces the contents of `ref`; the ref itself stays valid. The extent
  /// is reused when the new size fits its capacity, reallocated otherwise.
  void Assign(Ref ref, std::span<const Value> values);

  /// Returns the list's extent to the pool and retires the ref.
  void Free(Ref ref);

  std::span<const Value> View(Ref ref) const {
    const Slot& s = slots_[ref];
    return {s.data, s.size};
  }
  uint32_t Size(Ref ref) const { return slots_[ref].size; }

  /// Number of live lists.
  size_t num_lists() const { return num_live_; }
  /// Total values currently reserved across all slabs.
  size_t reserved_values() const { return reserved_values_; }

 private:
  struct Slot {
    Value* data = nullptr;
    uint32_t size = 0;
    uint32_t capacity = 0;
  };
  struct Slab {
    std::unique_ptr<Value[]> data;
    size_t used = 0;
    size_t capacity = 0;
  };

  /// Values per standard slab; lists larger than this get a dedicated slab.
  static constexpr size_t kSlabValues = size_t{1} << 16;

  /// Capacity class: smallest k with (1 << k) >= max(n, 1).
  static uint32_t ClassOf(uint32_t n);

  Value* AllocateExtent(uint32_t cls);
  void RecycleExtent(Value* extent, uint32_t capacity);

  std::vector<Slot> slots_;
  std::vector<Ref> free_slots_;
  /// Per capacity class: extents returned by Free/Assign, ready for reuse.
  std::vector<std::vector<Value*>> free_extents_;
  std::vector<Slab> slabs_;
  size_t num_live_ = 0;
  size_t reserved_values_ = 0;
};

}  // namespace cspm::util

#endif  // CSPM_UTIL_POS_LIST_POOL_H_
