#include "util/thread_pool.h"

#include <algorithm>

namespace cspm::util {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::AutoThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->size = n;
  job_ = job;
  pending_ = n;
  ++generation_;
  work_cv_.notify_all();
  // pending_ reaches 0 only once every index has been executed and
  // flushed, and each index is claimed exactly once from this job's own
  // counter — so returning here is safe even if a worker is still parked
  // on a (fully drained) snapshot of the job.
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_.reset();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    size_t completed = 0;
    for (;;) {
      const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->size) break;
      (*job->fn)(i);
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ -= completed;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cspm::util
