// The four id spaces of the engine, as distinct strong types. Defined here
// (below the graph/cspm layers) so low-level utilities like PosListPool can
// store typed position lists without a layering inversion; graph/ and
// cspm/ re-export these under their historical names.
//
//  - VertexId:    a vertex of the attributed graph (CSR row).
//  - AttrValueId: an interned nominal attribute value ("rock", "ICDM").
//  - LeafsetId:   an interned leafset (set of leaf attribute values).
//  - CoreId:      a coreset (a single core value in single-core mode —
//                 numerically equal to its AttrValueId, but a different
//                 axis of the inverted database; conversions are explicit).
#ifndef CSPM_UTIL_IDS_H_
#define CSPM_UTIL_IDS_H_

#include "util/strong_id.h"

namespace cspm {

struct VertexIdTag {};
struct AttrValueIdTag {};
struct LeafsetIdTag {};
struct CoreIdTag {};

using VertexId = util::StrongId<VertexIdTag>;
using AttrValueId = util::StrongId<AttrValueIdTag>;
using LeafsetId = util::StrongId<LeafsetIdTag>;
using CoreId = util::StrongId<CoreIdTag>;

}  // namespace cspm

#endif  // CSPM_UTIL_IDS_H_
