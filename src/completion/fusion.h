// CSPM score fusion (Fig. 7): the model's probability vector and the CSPM
// scoring module's vector are normalized separately and multiplied.
#ifndef CSPM_COMPLETION_FUSION_H_
#define CSPM_COMPLETION_FUSION_H_

#include "completion/task.h"
#include "cspm/model.h"
#include "engine/serving.h"

namespace cspm::completion {

struct FusionOptions {
  /// Floor added to the normalized CSPM multiplier. The paper normalizes
  /// the two vectors and multiplies but does not specify the no-evidence
  /// case; with floor 1.0 the multiplier lies in [1, 2], so pattern
  /// evidence boosts a value and its absence never demotes one.
  double evidence_floor = 1.0;
  engine::ScoringOptions scoring;
  /// Shards for the batch CSPM scoring of the test nodes (0 = one per
  /// hardware core). Results are identical at any thread count.
  uint32_t num_threads = 1;
};

/// Returns a copy of `model_scores` where every test-node row has been
/// multiplied by (evidence_floor + normalized CSPM score); observed rows
/// are left untouched. `cspm_model` must have been mined on
/// `data.masked_graph`. The CSPM scores come from one batch over the test
/// nodes through a compiled ScoringPlan (engine::ServingEngine), not a
/// per-vertex model walk. This overload compiles a plan per call; fusing
/// repeatedly, prefer the engine overload with e.g.
/// MiningSession::Serve().
nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const core::CspmModel& cspm_model,
                        const FusionOptions& options = {});

/// Same, over a prebuilt engine (compile-once/fuse-many). The engine must
/// serve `data.masked_graph`; its own ScoringOptions and thread count
/// apply (FusionOptions::scoring / num_threads are ignored).
nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const engine::ServingEngine& cspm_engine,
                        const FusionOptions& options = {});

}  // namespace cspm::completion

#endif  // CSPM_COMPLETION_FUSION_H_
