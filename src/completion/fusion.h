// CSPM score fusion (Fig. 7): the model's probability vector and the CSPM
// scoring module's vector are normalized separately and multiplied.
#ifndef CSPM_COMPLETION_FUSION_H_
#define CSPM_COMPLETION_FUSION_H_

#include "completion/task.h"
#include "cspm/model.h"
#include "engine/scoring.h"

namespace cspm::completion {

struct FusionOptions {
  /// Floor added to the normalized CSPM multiplier. The paper normalizes
  /// the two vectors and multiplies but does not specify the no-evidence
  /// case; with floor 1.0 the multiplier lies in [1, 2], so pattern
  /// evidence boosts a value and its absence never demotes one.
  double evidence_floor = 1.0;
  engine::ScoringOptions scoring;
};

/// Returns a copy of `model_scores` where every test-node row has been
/// multiplied by (evidence_floor + normalized CSPM score); observed rows
/// are left untouched. `cspm_model` must have been mined on
/// `data.masked_graph`.
nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const core::CspmModel& cspm_model,
                        const FusionOptions& options = {});

}  // namespace cspm::completion

#endif  // CSPM_COMPLETION_FUSION_H_
