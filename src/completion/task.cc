#include "completion/task.h"

#include <algorithm>

#include "nn/metrics.h"
#include "util/rng.h"

namespace cspm::completion {

StatusOr<CompletionDataset> MakeCompletionTask(
    const graph::AttributedGraph& g, double missing_fraction, uint64_t seed) {
  if (missing_fraction <= 0.0 || missing_fraction >= 1.0) {
    return Status::InvalidArgument(
        "missing_fraction must be in (0, 1)");
  }
  const uint32_t n = g.num_vertices().value();
  const uint32_t n_missing = std::max<uint32_t>(
      1, static_cast<uint32_t>(missing_fraction * static_cast<double>(n)));
  Rng rng(seed);
  auto missing = rng.SampleWithoutReplacement(n, n_missing);
  std::sort(missing.begin(), missing.end());

  CompletionDataset data;
  data.observed.assign(n, true);
  for (uint32_t v : missing) data.observed[v] = false;
  data.test_nodes.clear();
  data.test_nodes.reserve(missing.size());
  for (uint32_t v : missing) data.test_nodes.push_back(graph::VertexId(v));

  // Masked graph: same topology and same attribute dictionary; empty
  // attribute sets on test vertices. We keep the dictionary identical by
  // re-interning every original name.
  graph::GraphBuilder builder;
  for (graph::AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    builder.InternAttribute(g.dict().Name(a));
  }
  for (graph::VertexId v(0); v.value() < n; ++v) {
    if (data.observed[v.index()]) {
      auto attrs = g.Attributes(v);
      builder.AddVertexWithIds({attrs.begin(), attrs.end()});
    } else {
      builder.AddVertexWithIds({});
    }
  }
  for (graph::VertexId v(0); v.value() < n; ++v) {
    for (graph::VertexId w : g.Neighbors(v)) {
      if (w > v) CSPM_RETURN_IF_ERROR(builder.AddEdge(v, w));
    }
  }
  CSPM_ASSIGN_OR_RETURN(data.masked_graph, std::move(builder).Build());

  const size_t num_attrs = g.num_attribute_values();
  data.x = nn::Matrix(n, num_attrs);
  data.truth = nn::Matrix(n, num_attrs);
  for (graph::VertexId v(0); v.value() < n; ++v) {
    for (graph::AttrId a : g.Attributes(v)) {
      data.truth(v.index(), a.index()) = 1.0;
      if (data.observed[v.index()]) data.x(v.index(), a.index()) = 1.0;
    }
  }
  return data;
}

CompletionMetrics EvaluateScores(const CompletionDataset& data,
                                 const nn::Matrix& scores,
                                 const std::vector<size_t>& ks) {
  CompletionMetrics metrics;
  metrics.ks = ks;
  metrics.recall.assign(ks.size(), 0.0);
  metrics.ndcg.assign(ks.size(), 0.0);
  size_t counted = 0;
  std::vector<double> row_scores(data.num_attributes());
  std::vector<bool> row_truth(data.num_attributes());
  for (graph::VertexId v : data.test_nodes) {
    bool any_truth = false;
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      row_scores[a] = scores(v.index(), a);
      row_truth[a] = data.truth(v.index(), a) > 0.5;
      any_truth = any_truth || row_truth[a];
    }
    if (!any_truth) continue;
    ++counted;
    for (size_t i = 0; i < ks.size(); ++i) {
      metrics.recall[i] += nn::RecallAtK(row_scores, row_truth, ks[i]);
      metrics.ndcg[i] += nn::NdcgAtK(row_scores, row_truth, ks[i]);
    }
  }
  if (counted > 0) {
    for (size_t i = 0; i < ks.size(); ++i) {
      metrics.recall[i] /= static_cast<double>(counted);
      metrics.ndcg[i] /= static_cast<double>(counted);
    }
  }
  return metrics;
}

}  // namespace cspm::completion
