#include "completion/fusion.h"

#include <algorithm>

#include "util/check.h"

namespace cspm::completion {

nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const engine::ServingEngine& cspm_engine,
                        const FusionOptions& options) {
  nn::Matrix fused = model_scores;
  const size_t num_attrs = data.num_attributes();

  // The engine must score the same attribute space the dataset's truth
  // matrix is indexed by, or the per-row reads below run out of bounds.
  CSPM_CHECK_MSG(
      cspm_engine.plan().num_attribute_values() == data.num_attributes(),
      "engine attribute space does not match the completion dataset");

  // One batch over every test node; slot i of the batch is test_nodes[i]
  // at any thread count.
  auto batch_or = cspm_engine.ScoreBatch(data.test_nodes);
  CSPM_CHECK_MSG(batch_or.ok(), "test_nodes outside the engine's graph");
  const std::vector<engine::AttributeScores>& cspm_batch = batch_or.value();

  for (size_t t = 0; t < data.test_nodes.size(); ++t) {
    const graph::VertexId v = data.test_nodes[t];
    const engine::AttributeScores& cspm_scores = cspm_batch[t];

    // Min-max normalize the model row (per-row, like the paper's "the two
    // vectors are normalized separately").
    double lo = model_scores(v.index(), 0);
    double hi = lo;
    for (size_t a = 1; a < num_attrs; ++a) {
      lo = std::min(lo, model_scores(v.index(), a));
      hi = std::max(hi, model_scores(v.index(), a));
    }
    const double span = hi - lo;
    for (size_t a = 0; a < num_attrs; ++a) {
      const double model_norm =
          span > 0 ? (model_scores(v.index(), a) - lo) / span : 1.0;
      const double multiplier =
          options.evidence_floor + cspm_scores.normalized[a];
      fused(v.index(), a) = model_norm * multiplier;
    }
  }
  return fused;
}

nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const core::CspmModel& cspm_model,
                        const FusionOptions& options) {
  engine::ServingOptions serving;
  serving.num_threads = options.num_threads;
  serving.scoring = options.scoring;
  // Cannot fail: the plan is compiled against this graph's own attribute
  // space. Whether cspm_model was actually mined on data.masked_graph is
  // the caller's contract (a CspmModel carries no dictionary to check).
  auto engine_or =
      engine::ServingEngine::Create(data.masked_graph, cspm_model, serving);
  CSPM_CHECK(engine_or.ok());
  return FuseWithCspm(model_scores, data, engine_or.value(), options);
}

}  // namespace cspm::completion
