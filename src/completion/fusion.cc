#include "completion/fusion.h"

#include <algorithm>

namespace cspm::completion {

nn::Matrix FuseWithCspm(const nn::Matrix& model_scores,
                        const CompletionDataset& data,
                        const core::CspmModel& cspm_model,
                        const FusionOptions& options) {
  nn::Matrix fused = model_scores;
  const size_t num_attrs = data.num_attributes();
  for (graph::VertexId v : data.test_nodes) {
    engine::AttributeScores cspm_scores = engine::ScoreAttributes(
        data.masked_graph, cspm_model, v, options.scoring);

    // Min-max normalize the model row (per-row, like the paper's "the two
    // vectors are normalized separately").
    double lo = model_scores(v, 0);
    double hi = lo;
    for (size_t a = 1; a < num_attrs; ++a) {
      lo = std::min(lo, model_scores(v, a));
      hi = std::max(hi, model_scores(v, a));
    }
    const double span = hi - lo;
    for (size_t a = 0; a < num_attrs; ++a) {
      const double model_norm =
          span > 0 ? (model_scores(v, a) - lo) / span : 1.0;
      const double multiplier =
          options.evidence_floor + cspm_scores.normalized[a];
      fused(v, a) = model_norm * multiplier;
    }
  }
  return fused;
}

}  // namespace cspm::completion
