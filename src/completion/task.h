// The node-attribute-completion task of Section VI-C: a fraction of
// vertices have ALL their attribute values hidden; models rank attribute
// values for those vertices, and are scored with Recall@K / NDCG@K.
#ifndef CSPM_COMPLETION_TASK_H_
#define CSPM_COMPLETION_TASK_H_

#include <cstdint>
#include <vector>

#include "graph/attributed_graph.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace cspm::completion {

/// A completion instance derived from a fully attributed graph.
struct CompletionDataset {
  /// The attribute-missing graph: test vertices have empty attribute sets
  /// (this is what both CSPM and the neural models see).
  graph::AttributedGraph masked_graph;
  /// True for vertices whose attributes are visible.
  std::vector<bool> observed;
  /// The hidden vertices, in ascending order.
  std::vector<graph::VertexId> test_nodes;
  /// N x A binary input matrix; zero rows for test vertices.
  nn::Matrix x;
  /// N x A ground-truth matrix (full attributes).
  nn::Matrix truth;

  size_t num_nodes() const { return x.rows(); }
  size_t num_attributes() const { return x.cols(); }
};

/// Hides `missing_fraction` of the vertices (uniformly at random,
/// deterministic in `seed`).
StatusOr<CompletionDataset> MakeCompletionTask(
    const graph::AttributedGraph& g, double missing_fraction, uint64_t seed);

/// Metric bundle at a set of cutoffs.
struct CompletionMetrics {
  std::vector<size_t> ks;
  std::vector<double> recall;  ///< mean Recall@ks[i] over test nodes
  std::vector<double> ndcg;    ///< mean NDCG@ks[i] over test nodes
};

/// Averages Recall@K and NDCG@K over the test vertices with non-empty
/// ground truth.
CompletionMetrics EvaluateScores(const CompletionDataset& data,
                                 const nn::Matrix& scores,
                                 const std::vector<size_t>& ks);

}  // namespace cspm::completion

#endif  // CSPM_COMPLETION_TASK_H_
