// The completion baselines of Table IV: NeighAggre, VAE, GCN, GAT,
// GraphSage and a SAT-style dual-encoder model. Each returns an N x A score
// matrix (higher = more likely attribute).
#ifndef CSPM_COMPLETION_MODELS_H_
#define CSPM_COMPLETION_MODELS_H_

#include <memory>
#include <string>

#include "completion/task.h"
#include "nn/vae.h"

namespace cspm::completion {

/// Common hyperparameters for the trained models.
struct ModelOptions {
  size_t hidden = 64;
  uint32_t epochs = 120;
  double learning_rate = 1e-2;
  uint64_t seed = 7;
  /// SAT only: weight of the latent-alignment loss.
  double align_weight = 0.5;
  /// VAE options (VAE model only).
  nn::VaeOptions vae;
};

/// Interface of a completion model.
class CompletionModel {
 public:
  virtual ~CompletionModel() = default;
  virtual std::string name() const = 0;
  /// Trains (if applicable) and predicts scores for every node.
  virtual nn::Matrix PredictScores(const CompletionDataset& data) = 0;
};

std::unique_ptr<CompletionModel> MakeNeighAggre();
std::unique_ptr<CompletionModel> MakeVaeModel(const ModelOptions& options);
std::unique_ptr<CompletionModel> MakeGcn(const ModelOptions& options);
std::unique_ptr<CompletionModel> MakeGat(const ModelOptions& options);
std::unique_ptr<CompletionModel> MakeGraphSage(const ModelOptions& options);
std::unique_ptr<CompletionModel> MakeSat(const ModelOptions& options);

/// All six baselines in the paper's Table IV order.
std::vector<std::unique_ptr<CompletionModel>> MakeAllModels(
    const ModelOptions& options);

}  // namespace cspm::completion

#endif  // CSPM_COMPLETION_MODELS_H_
