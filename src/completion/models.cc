#include "completion/models.h"

#include <cmath>

#include "nn/adjacency.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace cspm::completion {
namespace {

using nn::AttentionGraph;
using nn::Matrix;
using nn::ParamRefs;
using nn::SparseMatrix;

// ---------------------------------------------------------------------------
// NeighAggre (Simsek & Jensen 2008): non-parametric neighbour aggregation.
class NeighAggreModel : public CompletionModel {
 public:
  std::string name() const override { return "NeighAggre"; }

  Matrix PredictScores(const CompletionDataset& data) override {
    const auto& g = data.masked_graph;
    Matrix scores(data.num_nodes(), data.num_attributes());
    for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
      uint32_t observed_neighbours = 0;
      for (graph::VertexId w : g.Neighbors(v)) {
        if (!data.observed[w.index()]) continue;
        ++observed_neighbours;
        const double* row = data.x.Row(w.index());
        double* out = scores.Row(v.index());
        for (size_t a = 0; a < data.num_attributes(); ++a) out[a] += row[a];
      }
      if (observed_neighbours > 0) {
        double* out = scores.Row(v.index());
        for (size_t a = 0; a < data.num_attributes(); ++a) {
          out[a] /= observed_neighbours;
        }
      }
    }
    return scores;
  }
};

// ---------------------------------------------------------------------------
// VAE baseline: train on observed rows, impute test rows by decoding the
// mean latent of observed neighbours.
class VaeModel : public CompletionModel {
 public:
  explicit VaeModel(const ModelOptions& options) : options_(options) {}
  std::string name() const override { return "VAE"; }

  Matrix PredictScores(const CompletionDataset& data) override {
    nn::Vae vae(data.num_attributes(), options_.vae);
    vae.Train(data.x, data.observed);
    Matrix mu = vae.EncodeMean(data.x);

    const auto& g = data.masked_graph;
    Matrix z(data.num_nodes(), mu.cols());
    for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
      if (data.observed[v.index()]) {
        for (size_t j = 0; j < mu.cols(); ++j) z(v.index(), j) = mu(v.index(), j);
        continue;
      }
      uint32_t count = 0;
      for (graph::VertexId w : g.Neighbors(v)) {
        if (!data.observed[w.index()]) continue;
        ++count;
        for (size_t j = 0; j < mu.cols(); ++j) z(v.index(), j) += mu(w.index(), j);
      }
      if (count > 0) {
        for (size_t j = 0; j < mu.cols(); ++j) z(v.index(), j) /= count;
      }
    }
    return vae.DecodeProbabilities(z);
  }

 private:
  ModelOptions options_;
};

// ---------------------------------------------------------------------------
// Two-layer GNN trained with BCE on observed rows; template over the conv
// layer type.
template <typename ConvT, typename OperatorT>
class TwoLayerGnn : public CompletionModel {
 public:
  TwoLayerGnn(std::string name, const ModelOptions& options)
      : name_(std::move(name)), options_(options) {}
  std::string name() const override { return name_; }

  Matrix PredictScores(const CompletionDataset& data) override {
    Rng rng(options_.seed);
    typename OperatorT::Type op = OperatorT::Build(data.masked_graph);
    ConvT conv1(&op, data.num_attributes(), options_.hidden, &rng);
    nn::ReluLayer relu;
    ConvT conv2(&op, options_.hidden, data.num_attributes(), &rng);

    ParamRefs refs;
    conv1.CollectParams(&refs);
    conv2.CollectParams(&refs);
    nn::AdamOptimizer adam(refs, options_.learning_rate);

    Matrix logits;
    for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
      logits = conv2.Forward(relu.Forward(conv1.Forward(data.x)));
      Matrix grad;
      nn::BceWithLogits(logits, data.truth, data.observed, &grad);
      conv1.Backward(relu.Backward(conv2.Backward(grad)));
      adam.Step();
    }
    logits = conv2.Forward(relu.Forward(conv1.Forward(data.x)));
    return nn::Sigmoid(logits);
  }

 private:
  std::string name_;
  ModelOptions options_;
};

struct GcnOperator {
  using Type = SparseMatrix;
  static Type Build(const graph::AttributedGraph& g) {
    return SparseMatrix::NormalizedAdjacency(g);
  }
};
struct SageOperator {
  using Type = SparseMatrix;
  static Type Build(const graph::AttributedGraph& g) {
    return SparseMatrix::MeanNeighbors(g);
  }
};
struct GatOperator {
  using Type = AttentionGraph;
  static Type Build(const graph::AttributedGraph& g) {
    return AttentionGraph::FromGraph(g);
  }
};

// ---------------------------------------------------------------------------
// SAT-style dual encoder (Chen et al., TPAMI 2020, simplified): an
// attribute encoder and a structure encoder (on propagated observed
// attributes) share a decoder; latents are aligned with an MSE term. Test
// rows are decoded from the structure path.
class SatModel : public CompletionModel {
 public:
  explicit SatModel(const ModelOptions& options) : options_(options) {}
  std::string name() const override { return "SAT"; }

  Matrix PredictScores(const CompletionDataset& data) override {
    Rng rng(options_.seed);
    const size_t in = data.num_attributes();
    const size_t hidden = options_.hidden;

    SparseMatrix adj = SparseMatrix::NormalizedAdjacency(data.masked_graph);
    // Structure features: two-hop propagation of observed attributes.
    Matrix s_features = adj.Multiply(adj.Multiply(data.x));

    nn::DenseLayer enc_a(in, hidden, &rng);
    nn::DenseLayer enc_s(in, hidden, &rng);
    nn::ReluLayer relu_a, relu_s, relu_d_a, relu_d_s;
    nn::DenseLayer dec1(hidden, hidden, &rng);
    nn::DenseLayer dec2(hidden, in, &rng);

    ParamRefs refs;
    enc_a.CollectParams(&refs);
    enc_s.CollectParams(&refs);
    dec1.CollectParams(&refs);
    dec2.CollectParams(&refs);
    nn::AdamOptimizer adam(refs, options_.learning_rate);

    size_t observed_count = 0;
    for (bool o : data.observed) observed_count += o ? 1 : 0;
    const double align_scale =
        options_.align_weight /
        std::max<double>(1.0, static_cast<double>(observed_count * hidden));

    for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
      Matrix ha = relu_a.Forward(enc_a.Forward(data.x));
      Matrix hs = relu_s.Forward(enc_s.Forward(s_features));

      // Attribute path reconstruction.
      Matrix logits_a = dec2.Forward(relu_d_a.Forward(dec1.Forward(ha)));
      Matrix grad_a;
      nn::BceWithLogits(logits_a, data.truth, data.observed, &grad_a);
      Matrix gha = dec1.Backward(relu_d_a.Backward(dec2.Backward(grad_a)));

      // Structure path reconstruction.
      Matrix logits_s = dec2.Forward(relu_d_s.Forward(dec1.Forward(hs)));
      Matrix grad_s;
      nn::BceWithLogits(logits_s, data.truth, data.observed, &grad_s);
      Matrix ghs = dec1.Backward(relu_d_s.Backward(dec2.Backward(grad_s)));

      // Latent alignment on observed rows: ||ha - hs||^2.
      for (size_t i = 0; i < ha.rows(); ++i) {
        if (!data.observed[i]) continue;
        for (size_t j = 0; j < hidden; ++j) {
          const double diff = ha(i, j) - hs(i, j);
          gha(i, j) += 2.0 * align_scale * diff;
          ghs(i, j) -= 2.0 * align_scale * diff;
        }
      }
      enc_a.Backward(relu_a.Backward(gha));
      enc_s.Backward(relu_s.Backward(ghs));
      adam.Step();
    }

    // Predict: attribute path for observed rows, structure path for test
    // rows (their own attributes are empty).
    Matrix hs = relu_s.Forward(enc_s.Forward(s_features));
    Matrix probs = nn::Sigmoid(dec2.Forward(relu_d_s.Forward(dec1.Forward(hs))));
    return probs;
  }

 private:
  ModelOptions options_;
};

}  // namespace

std::unique_ptr<CompletionModel> MakeNeighAggre() {
  return std::make_unique<NeighAggreModel>();
}
std::unique_ptr<CompletionModel> MakeVaeModel(const ModelOptions& options) {
  return std::make_unique<VaeModel>(options);
}
std::unique_ptr<CompletionModel> MakeGcn(const ModelOptions& options) {
  return std::make_unique<TwoLayerGnn<nn::GcnConvLayer, GcnOperator>>(
      "GCN", options);
}
std::unique_ptr<CompletionModel> MakeGat(const ModelOptions& options) {
  return std::make_unique<TwoLayerGnn<nn::GatConvLayer, GatOperator>>(
      "GAT", options);
}
std::unique_ptr<CompletionModel> MakeGraphSage(const ModelOptions& options) {
  return std::make_unique<TwoLayerGnn<nn::SageConvLayer, SageOperator>>(
      "GraphSage", options);
}
std::unique_ptr<CompletionModel> MakeSat(const ModelOptions& options) {
  return std::make_unique<SatModel>(options);
}

std::vector<std::unique_ptr<CompletionModel>> MakeAllModels(
    const ModelOptions& options) {
  std::vector<std::unique_ptr<CompletionModel>> models;
  models.push_back(MakeNeighAggre());
  models.push_back(MakeVaeModel(options));
  models.push_back(MakeGcn(options));
  models.push_back(MakeGat(options));
  models.push_back(MakeGraphSage(options));
  models.push_back(MakeSat(options));
  return models;
}

}  // namespace cspm::completion
