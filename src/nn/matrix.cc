#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cspm::nn {

Matrix Matrix::Glorot(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Gaussian() * scale;
  return m;
}

void Matrix::Add(const Matrix& other) {
  CSPM_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  CSPM_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CSPM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  CSPM_CHECK(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  CSPM_CHECK(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.Row(i);
    double* crow = c.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.Row(j);
      double s = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
  return c;
}

Matrix Relu(const Matrix& x) {
  Matrix y = x;
  for (double& v : y.data()) v = v > 0.0 ? v : 0.0;
  return y;
}

Matrix ReluBackward(const Matrix& grad, const Matrix& x) {
  CSPM_DCHECK(grad.rows() == x.rows() && grad.cols() == x.cols());
  Matrix g = grad;
  for (size_t i = 0; i < g.data().size(); ++i) {
    if (x.data()[i] <= 0.0) g.data()[i] = 0.0;
  }
  return g;
}

Matrix Sigmoid(const Matrix& x) {
  Matrix y = x;
  for (double& v : y.data()) v = 1.0 / (1.0 + std::exp(-v));
  return y;
}

void AddRowVector(Matrix* x, const Matrix& bias) {
  CSPM_DCHECK(bias.rows() == 1 && bias.cols() == x->cols());
  for (size_t i = 0; i < x->rows(); ++i) {
    double* row = x->Row(i);
    const double* b = bias.Row(0);
    for (size_t j = 0; j < x->cols(); ++j) row[j] += b[j];
  }
}

Matrix SumRows(const Matrix& x) {
  Matrix s(1, x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (size_t j = 0; j < x.cols(); ++j) s(0, j) += row[j];
  }
  return s;
}

}  // namespace cspm::nn
