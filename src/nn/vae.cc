#include "nn/vae.h"

#include <cmath>

namespace cspm::nn {

Vae::Vae(size_t input_dim, const VaeOptions& options)
    : options_(options),
      rng_(options.seed),
      enc1_(input_dim, options.hidden, &rng_),
      enc_mu_(options.hidden, options.latent, &rng_),
      enc_logvar_(options.hidden, options.latent, &rng_),
      dec1_(options.latent, options.hidden, &rng_),
      dec2_(options.hidden, input_dim, &rng_),
      optimizer_(CollectAll(), options.learning_rate) {}

ParamRefs Vae::CollectAll() {
  ParamRefs refs;
  enc1_.CollectParams(&refs);
  enc_mu_.CollectParams(&refs);
  enc_logvar_.CollectParams(&refs);
  dec1_.CollectParams(&refs);
  dec2_.CollectParams(&refs);
  return refs;
}

double Vae::TrainStep(const Matrix& x, const std::vector<bool>& row_mask,
                      Rng* rng) {
  const size_t n = x.rows();
  const size_t latent = options_.latent;

  // Forward.
  Matrix h = enc_relu_.Forward(enc1_.Forward(x));
  Matrix mu = enc_mu_.Forward(h);
  Matrix logvar = enc_logvar_.Forward(h);
  Matrix eps(n, latent);
  for (double& v : eps.data()) v = rng->Gaussian();
  Matrix z = mu;
  for (size_t i = 0; i < z.data().size(); ++i) {
    z.data()[i] += std::exp(0.5 * logvar.data()[i]) * eps.data()[i];
  }
  Matrix hd = dec_relu_.Forward(dec1_.Forward(z));
  Matrix logits = dec2_.Forward(hd);

  // Losses.
  Matrix grad_logits;
  double loss = BceWithLogits(logits, x, row_mask, &grad_logits);

  size_t active_rows = 0;
  for (bool m : row_mask) active_rows += m ? 1 : 0;
  if (active_rows == 0) return 0.0;
  const double kl_scale =
      options_.kl_weight / (static_cast<double>(active_rows) *
                            static_cast<double>(latent));
  Matrix grad_mu(n, latent);
  Matrix grad_logvar(n, latent);
  for (size_t i = 0; i < n; ++i) {
    if (!row_mask[i]) continue;
    for (size_t j = 0; j < latent; ++j) {
      const double m = mu(i, j);
      const double lv = logvar(i, j);
      // KL(N(mu, sigma) || N(0,1)) = 0.5 (mu^2 + e^lv - lv - 1).
      loss += 0.5 * (m * m + std::exp(lv) - lv - 1.0) * kl_scale;
      grad_mu(i, j) = m * kl_scale;
      grad_logvar(i, j) = 0.5 * (std::exp(lv) - 1.0) * kl_scale;
    }
  }

  // Backward through decoder.
  Matrix g = dec2_.Backward(grad_logits);
  g = dec_relu_.Backward(g);
  Matrix grad_z = dec1_.Backward(g);

  // Reparameterization: dz/dmu = 1; dz/dlogvar = 0.5 e^{lv/2} eps.
  for (size_t i = 0; i < grad_z.data().size(); ++i) {
    grad_mu.data()[i] += grad_z.data()[i];
    grad_logvar.data()[i] += grad_z.data()[i] * 0.5 *
                             std::exp(0.5 * logvar.data()[i]) *
                             eps.data()[i];
  }
  Matrix gh = enc_mu_.Backward(grad_mu);
  gh.Add(enc_logvar_.Backward(grad_logvar));
  gh = enc_relu_.Backward(gh);
  enc1_.Backward(gh);

  optimizer_.Step();
  return loss;
}

double Vae::Train(const Matrix& x, const std::vector<bool>& row_mask) {
  double loss = 0.0;
  for (uint32_t e = 0; e < options_.epochs; ++e) {
    loss = TrainStep(x, row_mask, &rng_);
  }
  return loss;
}

Matrix Vae::EncodeMean(const Matrix& x) {
  Matrix h = enc_relu_.Forward(enc1_.Forward(x));
  return enc_mu_.Forward(h);
}

Matrix Vae::DecodeProbabilities(const Matrix& z) {
  Matrix hd = dec_relu_.Forward(dec1_.Forward(z));
  return Sigmoid(dec2_.Forward(hd));
}

}  // namespace cspm::nn
