// Dense row-major matrix with the small set of operations the completion
// models need. Laptop-scale (thousands of rows); plain loops, no BLAS.
#ifndef CSPM_NN_MATRIX_H_
#define CSPM_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace cspm::nn {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot-scaled Gaussian init.
  static Matrix Glorot(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this += alpha * other.
  void Axpy(double alpha, const Matrix& other);
  /// this *= alpha.
  void Scale(double alpha);

  /// Frobenius-squared norm.
  double SquaredNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// Elementwise ReLU (returns mask-applied copy).
Matrix Relu(const Matrix& x);
/// Gradient pass-through of ReLU: grad * 1[x > 0].
Matrix ReluBackward(const Matrix& grad, const Matrix& x);

/// Elementwise logistic sigmoid.
Matrix Sigmoid(const Matrix& x);

/// Adds a row vector (1 x C bias) to every row.
void AddRowVector(Matrix* x, const Matrix& bias);

/// Sums rows into a 1 x C matrix (bias gradient).
Matrix SumRows(const Matrix& x);

}  // namespace cspm::nn

#endif  // CSPM_NN_MATRIX_H_
