// Variational autoencoder over binary attribute vectors (the Table IV VAE
// baseline, Kingma & Welling 2014). Trained on observed rows; missing nodes
// are imputed by decoding the average latent mean of their neighbours.
#ifndef CSPM_NN_VAE_H_
#define CSPM_NN_VAE_H_

#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"

namespace cspm::nn {

struct VaeOptions {
  size_t hidden = 64;
  size_t latent = 32;
  double kl_weight = 0.05;
  double learning_rate = 5e-3;
  uint32_t epochs = 120;
  uint64_t seed = 1;
};

/// Dense VAE: x -> h -> (mu, logvar) -> z -> h' -> logits.
class Vae {
 public:
  Vae(size_t input_dim, const VaeOptions& options);

  /// One full-batch training step on the rows selected by `row_mask`.
  /// Returns the total loss (reconstruction + KL).
  double TrainStep(const Matrix& x, const std::vector<bool>& row_mask,
                   Rng* rng);

  /// Trains for options.epochs steps; returns the final loss.
  double Train(const Matrix& x, const std::vector<bool>& row_mask);

  /// Encodes rows to latent means (no sampling).
  Matrix EncodeMean(const Matrix& x);

  /// Decodes latent vectors to attribute probabilities.
  Matrix DecodeProbabilities(const Matrix& z);

 private:
  VaeOptions options_;
  Rng rng_;
  DenseLayer enc1_;
  ReluLayer enc_relu_;
  DenseLayer enc_mu_;
  DenseLayer enc_logvar_;
  DenseLayer dec1_;
  ReluLayer dec_relu_;
  DenseLayer dec2_;
  AdamOptimizer optimizer_;

  ParamRefs CollectAll();
};

}  // namespace cspm::nn

#endif  // CSPM_NN_VAE_H_
