// First-order optimizers over ParamRefs.
#ifndef CSPM_NN_OPTIMIZER_H_
#define CSPM_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"

namespace cspm::nn {

/// Adam (Kingma & Ba, 2015).
class AdamOptimizer {
 public:
  explicit AdamOptimizer(ParamRefs refs, double lr = 1e-2,
                         double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8);

  /// Applies one update from the current gradients, then zeroes them.
  void Step();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  ParamRefs refs_;
  double lr_, beta1_, beta2_, eps_;
  uint64_t t_ = 0;
  std::vector<Matrix> m_, v_;
};

/// Plain SGD (used by gradient-check tests and ablations).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(ParamRefs refs, double lr = 1e-2);
  void Step();

 private:
  ParamRefs refs_;
  double lr_;
};

}  // namespace cspm::nn

#endif  // CSPM_NN_OPTIMIZER_H_
