// Neural layers with explicit manual backprop. Each layer caches what its
// backward pass needs; Backward() returns the gradient w.r.t. the input and
// accumulates parameter gradients (zeroed by ZeroGrad()).
#ifndef CSPM_NN_LAYERS_H_
#define CSPM_NN_LAYERS_H_

#include <vector>

#include "nn/adjacency.h"
#include "nn/matrix.h"

namespace cspm::nn {

/// Pointers to a layer's parameters and their gradients, for the optimizer.
struct ParamRefs {
  std::vector<Matrix*> params;
  std::vector<Matrix*> grads;
};

/// Fully connected layer y = x W + b.
class DenseLayer {
 public:
  DenseLayer(size_t in, size_t out, Rng* rng);
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void CollectParams(ParamRefs* refs);
  void ZeroGrad();

  Matrix w, b, dw, db;

 private:
  Matrix x_cache_;
};

/// ReLU activation.
class ReluLayer {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);

 private:
  Matrix x_cache_;
};

/// Graph convolution y = Â (x W) with fixed normalized adjacency Â
/// (Kipf & Welling).
class GcnConvLayer {
 public:
  GcnConvLayer(const SparseMatrix* adj, size_t in, size_t out, Rng* rng);
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void CollectParams(ParamRefs* refs);
  void ZeroGrad();

  Matrix w, dw;

 private:
  const SparseMatrix* adj_;
  Matrix ax_cache_;  // Â x
};

/// GraphSAGE mean aggregator: y = x W_self + mean_N(x) W_nbr + b.
class SageConvLayer {
 public:
  SageConvLayer(const SparseMatrix* mean_adj, size_t in, size_t out,
                Rng* rng);
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void CollectParams(ParamRefs* refs);
  void ZeroGrad();

  Matrix w_self, w_nbr, b, dw_self, dw_nbr, db;

 private:
  const SparseMatrix* mean_adj_;
  Matrix x_cache_;
  Matrix mx_cache_;  // mean_N(x)
};

/// Single-head graph attention (Velickovic et al., simplified):
///   p = x W;  e_ij = LeakyReLU(p_i·a_src + p_j·a_dst) over j in N(i)∪{i};
///   α = softmax_j(e_ij);  y_i = Σ_j α_ij p_j.
class GatConvLayer {
 public:
  GatConvLayer(const AttentionGraph* graph, size_t in, size_t out, Rng* rng,
               double leaky_slope = 0.2);
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void CollectParams(ParamRefs* refs);
  void ZeroGrad();

  Matrix w, a_src, a_dst, dw, da_src, da_dst;

 private:
  const AttentionGraph* graph_;
  double leaky_slope_;
  Matrix x_cache_, p_cache_;
  std::vector<double> alpha_;   // per edge
  std::vector<double> escore_;  // pre-activation per edge
};

/// Multi-label binary cross-entropy with logits, averaged over the rows
/// selected by `row_mask` (true = contributes). Returns the loss; fills
/// `grad` with d(loss)/d(logits).
double BceWithLogits(const Matrix& logits, const Matrix& targets,
                     const std::vector<bool>& row_mask, Matrix* grad);

}  // namespace cspm::nn

#endif  // CSPM_NN_LAYERS_H_
