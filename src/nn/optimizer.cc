#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace cspm::nn {

AdamOptimizer::AdamOptimizer(ParamRefs refs, double lr, double beta1,
                             double beta2, double eps)
    : refs_(std::move(refs)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  CSPM_CHECK(refs_.params.size() == refs_.grads.size());
  for (Matrix* p : refs_.params) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < refs_.params.size(); ++k) {
    Matrix& p = *refs_.params[k];
    Matrix& g = *refs_.grads[k];
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (size_t i = 0; i < p.data().size(); ++i) {
      const double gi = g.data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.0 - beta1_) * gi;
      v.data()[i] = beta2_ * v.data()[i] + (1.0 - beta2_) * gi * gi;
      const double mhat = m.data()[i] / bc1;
      const double vhat = v.data()[i] / bc2;
      p.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    g.Fill(0.0);
  }
}

SgdOptimizer::SgdOptimizer(ParamRefs refs, double lr)
    : refs_(std::move(refs)), lr_(lr) {
  CSPM_CHECK(refs_.params.size() == refs_.grads.size());
}

void SgdOptimizer::Step() {
  for (size_t k = 0; k < refs_.params.size(); ++k) {
    refs_.params[k]->Axpy(-lr_, *refs_.grads[k]);
    refs_.grads[k]->Fill(0.0);
  }
}

}  // namespace cspm::nn
