#include "nn/adjacency.h"

#include <cmath>

#include "util/check.h"

namespace cspm::nn {

SparseMatrix SparseMatrix::NormalizedAdjacency(
    const graph::AttributedGraph& g) {
  const size_t n = g.num_vertices().index();
  SparseMatrix m;
  m.offsets_.assign(n + 1, 0);
  // Hold degrees with self loop.
  std::vector<double> inv_sqrt_deg(n);
  for (size_t v = 0; v < n; ++v) {
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.Degree(
                                          graph::VertexId(static_cast<uint32_t>(v)))) +
                                      1.0);
  }
  for (size_t v = 0; v < n; ++v) {
    m.offsets_[v + 1] = m.offsets_[v] + g.Degree(graph::VertexId(static_cast<uint32_t>(v))) + 1;
  }
  m.cols_.resize(m.offsets_[n]);
  m.values_.resize(m.offsets_[n]);
  for (size_t v = 0; v < n; ++v) {
    uint64_t idx = m.offsets_[v];
    // Self loop first (cols unsorted is fine for SpMM).
    m.cols_[idx] = static_cast<uint32_t>(v);
    m.values_[idx] = inv_sqrt_deg[v] * inv_sqrt_deg[v];
    ++idx;
    for (graph::VertexId w :
         g.Neighbors(graph::VertexId(static_cast<uint32_t>(v)))) {
      m.cols_[idx] = w.value();
      m.values_[idx] = inv_sqrt_deg[v] * inv_sqrt_deg[w.index()];
      ++idx;
    }
  }
  return m;
}

SparseMatrix SparseMatrix::MeanNeighbors(const graph::AttributedGraph& g) {
  const size_t n = g.num_vertices().index();
  SparseMatrix m;
  m.offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    m.offsets_[v + 1] = m.offsets_[v] + g.Degree(graph::VertexId(static_cast<uint32_t>(v)));
  }
  m.cols_.resize(m.offsets_[n]);
  m.values_.resize(m.offsets_[n]);
  for (size_t v = 0; v < n; ++v) {
    const uint32_t deg = g.Degree(graph::VertexId(static_cast<uint32_t>(v)));
    if (deg == 0) continue;
    uint64_t idx = m.offsets_[v];
    const double w = 1.0 / static_cast<double>(deg);
    for (graph::VertexId nbr :
         g.Neighbors(graph::VertexId(static_cast<uint32_t>(v)))) {
      m.cols_[idx] = nbr.value();
      m.values_[idx] = w;
      ++idx;
    }
  }
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  CSPM_CHECK(x.rows() == rows());
  Matrix y(rows(), x.cols());
  for (size_t i = 0; i < rows(); ++i) {
    double* yrow = y.Row(i);
    for (uint64_t e = offsets_[i]; e < offsets_[i + 1]; ++e) {
      const double w = values_[e];
      const double* xrow = x.Row(cols_[e]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += w * xrow[j];
    }
  }
  return y;
}

Matrix SparseMatrix::MultiplyTranspose(const Matrix& x) const {
  CSPM_CHECK(x.rows() == rows());
  Matrix y(rows(), x.cols());
  for (size_t i = 0; i < rows(); ++i) {
    const double* xrow = x.Row(i);
    for (uint64_t e = offsets_[i]; e < offsets_[i + 1]; ++e) {
      const double w = values_[e];
      double* yrow = y.Row(cols_[e]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += w * xrow[j];
    }
  }
  return y;
}

AttentionGraph AttentionGraph::FromGraph(const graph::AttributedGraph& g) {
  const size_t n = g.num_vertices().index();
  AttentionGraph ag;
  ag.offsets.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    ag.offsets[v + 1] = ag.offsets[v] + g.Degree(graph::VertexId(static_cast<uint32_t>(v))) + 1;
  }
  ag.targets.resize(ag.offsets[n]);
  for (size_t v = 0; v < n; ++v) {
    uint64_t idx = ag.offsets[v];
    ag.targets[idx++] = static_cast<uint32_t>(v);  // self loop
    for (graph::VertexId w :
         g.Neighbors(graph::VertexId(static_cast<uint32_t>(v)))) {
      ag.targets[idx++] = w.value();
    }
  }
  return ag;
}

}  // namespace cspm::nn
