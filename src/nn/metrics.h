// Ranking metrics of the node-attribute-completion evaluation (Table IV):
// Recall@K and NDCG@K over multi-label ground truth.
#ifndef CSPM_NN_METRICS_H_
#define CSPM_NN_METRICS_H_

#include <cstddef>
#include <vector>

namespace cspm::nn {

/// Indices of the top-k largest scores (ties broken by lower index).
std::vector<size_t> TopK(const std::vector<double>& scores, size_t k);

/// |top-k(scores) ∩ truth| / |truth|. Returns 0 when truth is empty.
double RecallAtK(const std::vector<double>& scores,
                 const std::vector<bool>& truth, size_t k);

/// NDCG@K with binary relevance: DCG = Σ rel_i / log2(i+2) over the ranked
/// list, normalized by the ideal DCG.
double NdcgAtK(const std::vector<double>& scores,
               const std::vector<bool>& truth, size_t k);

}  // namespace cspm::nn

#endif  // CSPM_NN_METRICS_H_
