#include "nn/layers.h"

#include <cmath>

#include "util/check.h"

namespace cspm::nn {

DenseLayer::DenseLayer(size_t in, size_t out, Rng* rng)
    : w(Matrix::Glorot(in, out, rng)),
      b(1, out),
      dw(in, out),
      db(1, out) {}

Matrix DenseLayer::Forward(const Matrix& x) {
  x_cache_ = x;
  Matrix y = MatMul(x, w);
  AddRowVector(&y, b);
  return y;
}

Matrix DenseLayer::Backward(const Matrix& grad_out) {
  dw.Add(MatMulTransposeA(x_cache_, grad_out));
  db.Add(SumRows(grad_out));
  return MatMulTransposeB(grad_out, w);
}

void DenseLayer::CollectParams(ParamRefs* refs) {
  refs->params.push_back(&w);
  refs->grads.push_back(&dw);
  refs->params.push_back(&b);
  refs->grads.push_back(&db);
}

void DenseLayer::ZeroGrad() {
  dw.Fill(0.0);
  db.Fill(0.0);
}

Matrix ReluLayer::Forward(const Matrix& x) {
  x_cache_ = x;
  return Relu(x);
}

Matrix ReluLayer::Backward(const Matrix& grad_out) {
  return ReluBackward(grad_out, x_cache_);
}

GcnConvLayer::GcnConvLayer(const SparseMatrix* adj, size_t in, size_t out,
                           Rng* rng)
    : w(Matrix::Glorot(in, out, rng)), dw(in, out), adj_(adj) {}

Matrix GcnConvLayer::Forward(const Matrix& x) {
  ax_cache_ = adj_->Multiply(x);
  return MatMul(ax_cache_, w);
}

Matrix GcnConvLayer::Backward(const Matrix& grad_out) {
  dw.Add(MatMulTransposeA(ax_cache_, grad_out));
  // d/dx [ Â x W ] applied to G: Â^T G W^T (Â symmetric, use Multiply).
  Matrix gw = MatMulTransposeB(grad_out, w);
  return adj_->Multiply(gw);
}

void GcnConvLayer::CollectParams(ParamRefs* refs) {
  refs->params.push_back(&w);
  refs->grads.push_back(&dw);
}

void GcnConvLayer::ZeroGrad() { dw.Fill(0.0); }

SageConvLayer::SageConvLayer(const SparseMatrix* mean_adj, size_t in,
                             size_t out, Rng* rng)
    : w_self(Matrix::Glorot(in, out, rng)),
      w_nbr(Matrix::Glorot(in, out, rng)),
      b(1, out),
      dw_self(in, out),
      dw_nbr(in, out),
      db(1, out),
      mean_adj_(mean_adj) {}

Matrix SageConvLayer::Forward(const Matrix& x) {
  x_cache_ = x;
  mx_cache_ = mean_adj_->Multiply(x);
  Matrix y = MatMul(x, w_self);
  y.Add(MatMul(mx_cache_, w_nbr));
  AddRowVector(&y, b);
  return y;
}

Matrix SageConvLayer::Backward(const Matrix& grad_out) {
  dw_self.Add(MatMulTransposeA(x_cache_, grad_out));
  dw_nbr.Add(MatMulTransposeA(mx_cache_, grad_out));
  db.Add(SumRows(grad_out));
  Matrix gx = MatMulTransposeB(grad_out, w_self);
  Matrix g_nbr = MatMulTransposeB(grad_out, w_nbr);
  gx.Add(mean_adj_->MultiplyTranspose(g_nbr));
  return gx;
}

void SageConvLayer::CollectParams(ParamRefs* refs) {
  refs->params.push_back(&w_self);
  refs->grads.push_back(&dw_self);
  refs->params.push_back(&w_nbr);
  refs->grads.push_back(&dw_nbr);
  refs->params.push_back(&b);
  refs->grads.push_back(&db);
}

void SageConvLayer::ZeroGrad() {
  dw_self.Fill(0.0);
  dw_nbr.Fill(0.0);
  db.Fill(0.0);
}

GatConvLayer::GatConvLayer(const AttentionGraph* graph, size_t in,
                           size_t out, Rng* rng, double leaky_slope)
    : w(Matrix::Glorot(in, out, rng)),
      a_src(1, out),
      a_dst(1, out),
      dw(in, out),
      da_src(1, out),
      da_dst(1, out),
      graph_(graph),
      leaky_slope_(leaky_slope) {
  // Small random attention vectors (zero init would kill gradients of a).
  for (size_t j = 0; j < out; ++j) {
    a_src(0, j) = rng->Gaussian() * 0.1;
    a_dst(0, j) = rng->Gaussian() * 0.1;
  }
}

Matrix GatConvLayer::Forward(const Matrix& x) {
  const size_t n = graph_->num_nodes();
  const size_t f = w.cols();
  CSPM_CHECK(x.rows() == n);
  x_cache_ = x;
  p_cache_ = MatMul(x, w);

  // Per-node scores.
  std::vector<double> s_src(n, 0.0);
  std::vector<double> s_dst(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* p = p_cache_.Row(i);
    double ss = 0.0;
    double sd = 0.0;
    for (size_t j = 0; j < f; ++j) {
      ss += p[j] * a_src(0, j);
      sd += p[j] * a_dst(0, j);
    }
    s_src[i] = ss;
    s_dst[i] = sd;
  }

  escore_.assign(graph_->num_edges(), 0.0);
  alpha_.assign(graph_->num_edges(), 0.0);
  Matrix y(n, f);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t begin = graph_->offsets[i];
    const uint64_t end = graph_->offsets[i + 1];
    // LeakyReLU scores, stabilized softmax.
    double max_e = -1e300;
    for (uint64_t e = begin; e < end; ++e) {
      const double z = s_src[i] + s_dst[graph_->targets[e]];
      escore_[e] = z;
      const double act = z > 0 ? z : leaky_slope_ * z;
      alpha_[e] = act;
      if (act > max_e) max_e = act;
    }
    double denom = 0.0;
    for (uint64_t e = begin; e < end; ++e) {
      alpha_[e] = std::exp(alpha_[e] - max_e);
      denom += alpha_[e];
    }
    double* yrow = y.Row(i);
    for (uint64_t e = begin; e < end; ++e) {
      alpha_[e] /= denom;
      const double* prow = p_cache_.Row(graph_->targets[e]);
      for (size_t j = 0; j < f; ++j) yrow[j] += alpha_[e] * prow[j];
    }
  }
  return y;
}

Matrix GatConvLayer::Backward(const Matrix& grad_out) {
  const size_t n = graph_->num_nodes();
  const size_t f = w.cols();
  Matrix dp(n, f);
  std::vector<double> ds_src(n, 0.0);
  std::vector<double> ds_dst(n, 0.0);

  for (size_t i = 0; i < n; ++i) {
    const uint64_t begin = graph_->offsets[i];
    const uint64_t end = graph_->offsets[i + 1];
    const double* grow = grad_out.Row(i);

    // dα_ij = G_i · p_j ; softmax backward needs Σ_k α_ik dα_ik.
    double weighted_sum = 0.0;
    for (uint64_t e = begin; e < end; ++e) {
      const double* prow = p_cache_.Row(graph_->targets[e]);
      double dalpha = 0.0;
      for (size_t j = 0; j < f; ++j) dalpha += grow[j] * prow[j];
      // Reuse escore_ slot? Keep separate small buffer via two passes:
      // store dalpha temporarily in a stack vector.
      weighted_sum += alpha_[e] * dalpha;
    }
    for (uint64_t e = begin; e < end; ++e) {
      const uint32_t t = graph_->targets[e];
      const double* prow = p_cache_.Row(t);
      double dalpha = 0.0;
      for (size_t j = 0; j < f; ++j) dalpha += grow[j] * prow[j];
      const double de = alpha_[e] * (dalpha - weighted_sum);
      const double dz = escore_[e] > 0 ? de : leaky_slope_ * de;
      ds_src[i] += dz;
      ds_dst[t] += dz;
      // Output term: dp_j += α_ij * G_i.
      double* dprow = dp.Row(t);
      for (size_t j = 0; j < f; ++j) dprow[j] += alpha_[e] * grow[j];
    }
  }
  // Score terms: dp_i += ds_src_i * a_src + ds_dst_i * a_dst, and attention
  // vector gradients.
  for (size_t i = 0; i < n; ++i) {
    double* dprow = dp.Row(i);
    const double* prow = p_cache_.Row(i);
    for (size_t j = 0; j < f; ++j) {
      dprow[j] += ds_src[i] * a_src(0, j) + ds_dst[i] * a_dst(0, j);
      da_src(0, j) += ds_src[i] * prow[j];
      da_dst(0, j) += ds_dst[i] * prow[j];
    }
  }
  dw.Add(MatMulTransposeA(x_cache_, dp));
  return MatMulTransposeB(dp, w);
}

void GatConvLayer::CollectParams(ParamRefs* refs) {
  refs->params.push_back(&w);
  refs->grads.push_back(&dw);
  refs->params.push_back(&a_src);
  refs->grads.push_back(&da_src);
  refs->params.push_back(&a_dst);
  refs->grads.push_back(&da_dst);
}

void GatConvLayer::ZeroGrad() {
  dw.Fill(0.0);
  da_src.Fill(0.0);
  da_dst.Fill(0.0);
}

double BceWithLogits(const Matrix& logits, const Matrix& targets,
                     const std::vector<bool>& row_mask, Matrix* grad) {
  CSPM_CHECK(logits.rows() == targets.rows() &&
             logits.cols() == targets.cols());
  CSPM_CHECK(row_mask.size() == logits.rows());
  *grad = Matrix(logits.rows(), logits.cols());
  size_t active_rows = 0;
  for (bool m : row_mask) active_rows += m ? 1 : 0;
  if (active_rows == 0) return 0.0;
  const double scale =
      1.0 / (static_cast<double>(active_rows) *
             static_cast<double>(logits.cols()));
  double loss = 0.0;
  for (size_t i = 0; i < logits.rows(); ++i) {
    if (!row_mask[i]) continue;
    const double* z = logits.Row(i);
    const double* y = targets.Row(i);
    double* g = grad->Row(i);
    for (size_t j = 0; j < logits.cols(); ++j) {
      // Numerically stable: log(1+e^z) = max(z,0) + log(1+e^{-|z|}).
      const double zij = z[j];
      const double softplus =
          std::max(zij, 0.0) + std::log1p(std::exp(-std::fabs(zij)));
      loss += (softplus - y[j] * zij) * scale;
      const double s = 1.0 / (1.0 + std::exp(-zij));
      g[j] = (s - y[j]) * scale;
    }
  }
  return loss;
}

}  // namespace cspm::nn
