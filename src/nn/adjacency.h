// Sparse graph operators for the GNN layers: symmetric-normalized
// adjacency (GCN), neighbour mean aggregation (GraphSAGE) and the edge
// structure used by attention (GAT).
#ifndef CSPM_NN_ADJACENCY_H_
#define CSPM_NN_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "graph/attributed_graph.h"
#include "nn/matrix.h"

namespace cspm::nn {

/// CSR sparse matrix with double values; symmetric in all our uses.
class SparseMatrix {
 public:
  /// GCN operator D^{-1/2} (A + I) D^{-1/2}.
  static SparseMatrix NormalizedAdjacency(const graph::AttributedGraph& g);

  /// Row-stochastic neighbour averaging WITHOUT self loops (GraphSAGE mean
  /// aggregator). Rows of isolated vertices are empty (zero).
  static SparseMatrix MeanNeighbors(const graph::AttributedGraph& g);

  size_t rows() const { return offsets_.size() - 1; }

  /// Dense product: this * x.
  Matrix Multiply(const Matrix& x) const;

  /// Dense product with the transpose: this^T * x.
  Matrix MultiplyTranspose(const Matrix& x) const;

 private:
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> cols_;
  std::vector<double> values_;
};

/// Directed edge list with self loops, grouped by source: the softmax
/// neighbourhoods of GAT.
struct AttentionGraph {
  /// offsets[i]..offsets[i+1] index into `targets` = N(i) ∪ {i}.
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> targets;

  static AttentionGraph FromGraph(const graph::AttributedGraph& g);
  size_t num_nodes() const { return offsets.size() - 1; }
  size_t num_edges() const { return targets.size(); }
};

}  // namespace cspm::nn

#endif  // CSPM_NN_ADJACENCY_H_
