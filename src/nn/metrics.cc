#include "nn/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cspm::nn {

std::vector<size_t> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, scores.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                    idx.end(), [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double RecallAtK(const std::vector<double>& scores,
                 const std::vector<bool>& truth, size_t k) {
  size_t total_true = 0;
  for (bool t : truth) total_true += t ? 1 : 0;
  if (total_true == 0) return 0.0;
  size_t hit = 0;
  for (size_t i : TopK(scores, k)) {
    if (i < truth.size() && truth[i]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(total_true);
}

double NdcgAtK(const std::vector<double>& scores,
               const std::vector<bool>& truth, size_t k) {
  size_t total_true = 0;
  for (bool t : truth) total_true += t ? 1 : 0;
  if (total_true == 0) return 0.0;
  double dcg = 0.0;
  const auto ranked = TopK(scores, k);
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    if (ranked[pos] < truth.size() && truth[ranked[pos]]) {
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  double ideal = 0.0;
  const size_t ideal_hits = std::min(total_true, std::min(k, scores.size()));
  for (size_t pos = 0; pos < ideal_hits; ++pos) {
    ideal += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

}  // namespace cspm::nn
