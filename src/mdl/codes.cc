#include "mdl/codes.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace cspm::mdl {

double Log2(double x) {
  if (x <= 0.0) return 0.0;
  return std::log2(x);
}

double XLog2X(double x) {
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

double ShannonCodeLength(uint64_t count, uint64_t total) {
  CSPM_DCHECK(total > 0);
  if (count == 0) return std::numeric_limits<double>::infinity();
  return -std::log2(static_cast<double>(count) / static_cast<double>(total));
}

double ConditionalCodeLength(uint64_t joint, uint64_t marginal) {
  CSPM_DCHECK(marginal > 0);
  CSPM_DCHECK(joint <= marginal);
  if (joint == 0) return std::numeric_limits<double>::infinity();
  return -std::log2(static_cast<double>(joint) /
                    static_cast<double>(marginal));
}

double UniversalCodeLength(uint64_t n) {
  CSPM_DCHECK(n >= 1);
  // log2*(n) = log2(n) + log2 log2(n) + ... over positive terms.
  double total = std::log2(2.865064);
  double v = std::log2(static_cast<double>(n));
  while (v > 0.0) {
    total += v;
    v = std::log2(v);
  }
  return total;
}

double EntropyBits(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double ConditionalEntropyBits(
    const std::vector<std::vector<uint64_t>>& joint) {
  // H(Y|X) = -sum_j sum_i (l_ij / s) log2(l_ij / c_j), s = sum of all l_ij.
  double s = 0.0;
  for (const auto& row : joint) {
    for (uint64_t l : row) s += static_cast<double>(l);
  }
  if (s == 0.0) return 0.0;
  double h = 0.0;
  for (const auto& row : joint) {
    double cj = 0.0;
    for (uint64_t l : row) cj += static_cast<double>(l);
    if (cj == 0.0) continue;
    for (uint64_t l : row) {
      if (l == 0) continue;
      const double lij = static_cast<double>(l);
      h -= (lij / s) * std::log2(lij / cj);
    }
  }
  return h;
}

double InvertedDbCostBits(const std::vector<std::vector<uint64_t>>& joint) {
  double cost = 0.0;
  for (const auto& row : joint) {
    double cj = 0.0;
    for (uint64_t l : row) cj += static_cast<double>(l);
    cost += XLog2X(cj);
    for (uint64_t l : row) cost -= XLog2X(static_cast<double>(l));
  }
  return cost;
}

}  // namespace cspm::mdl
