// Code-length primitives for MDL computations (Sections III-IV of the
// paper). All lengths are in bits (log base 2).
#ifndef CSPM_MDL_CODES_H_
#define CSPM_MDL_CODES_H_

#include <cstdint>
#include <vector>

namespace cspm::mdl {

/// log2(x) for x > 0; returns 0 for x <= 0 (so that callers can use the
/// x·log2 x convention without special cases).
double Log2(double x);

/// x * log2(x) with the information-theoretic convention 0·log2 0 = 0.
double XLog2X(double x);

/// Shannon optimal code length -log2(count / total) in bits.
/// Returns +inf-like large value if count == 0; asserts total > 0.
double ShannonCodeLength(uint64_t count, uint64_t total);

/// Conditional code length -log2(joint / marginal) in bits (Eq. 6):
/// the cost of a leafset given its coreset, with fL = joint, fc = marginal.
double ConditionalCodeLength(uint64_t joint, uint64_t marginal);

/// Rissanen's universal code length L_N(n) for positive integers:
/// log2*(n) + log2(c0), c0 = 2.865064. Defined for n >= 1.
double UniversalCodeLength(uint64_t n);

/// Entropy H(p) in bits of a count vector (ignores zero counts).
double EntropyBits(const std::vector<uint64_t>& counts);

/// Conditional entropy H(Y|X) in bits from a joint count table, where
/// joint[j] is the list of per-leafset counts l_ij for coreset j (Eq. 7).
/// Returns 0 for an empty table.
double ConditionalEntropyBits(const std::vector<std::vector<uint64_t>>& joint);

/// Total encoding cost of an inverted database per Eq. 8:
/// sum_j c_j log2 c_j - sum_ij l_ij log2 l_ij, with c_j = sum_i l_ij.
double InvertedDbCostBits(const std::vector<std::vector<uint64_t>>& joint);

}  // namespace cspm::mdl

#endif  // CSPM_MDL_CODES_H_
