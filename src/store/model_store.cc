#include "store/model_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "graph/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/codec.h"
#include "store/plan_section.h"
#include "util/string_util.h"

namespace cspm::store {
namespace {

// Record layout: version byte, flags byte (bit 0: graph snapshot present),
// then dictionary, model, and optionally the graph.
constexpr uint8_t kRecordVersion = 1;
constexpr uint8_t kFlagHasGraph = 0x01;

// WAL record layout: version byte, then (v2+) a WalDeltaMode byte, then
// one encoded graph delta. v1 records have no mode byte and replay as
// kExact.
constexpr uint8_t kWalRecordVersion = 2;

// Catalog index node kinds (first payload byte of every index page).
constexpr uint8_t kIndexLeaf = 0x01;
constexpr uint8_t kIndexInterior = 0x02;
// An index descent can never legitimately be deeper than this (fan-out is
// in the hundreds, so 8 levels already covers ~10^16 entries); used as
// the cycle guard on corrupted trees.
constexpr uint32_t kMaxIndexDepth = 8;

std::string EncodeRecord(const StoredModel& stored) {
  Encoder enc;
  enc.PutU8(kRecordVersion);
  enc.PutU8(stored.graph.has_value() ? kFlagHasGraph : 0);
  EncodeDictionary(stored.dict, &enc);
  EncodeModel(stored.model, &enc);
  if (stored.graph.has_value()) EncodeGraph(*stored.graph, &enc);
  return enc.Release();
}

StatusOr<StoredModel> DecodeRecord(const std::string& bytes) {
  Decoder dec(bytes);
  CSPM_ASSIGN_OR_RETURN(uint8_t version, dec.ReadU8());
  if (version > kRecordVersion) {
    return Status::IOError(
        StrFormat("model record version %u from the future (this build "
                  "reads <= %u)",
                  version, kRecordVersion));
  }
  CSPM_ASSIGN_OR_RETURN(uint8_t flags, dec.ReadU8());
  StoredModel stored;
  CSPM_ASSIGN_OR_RETURN(stored.dict, DecodeDictionary(&dec));
  CSPM_ASSIGN_OR_RETURN(stored.model, DecodeModel(&dec));
  if ((flags & kFlagHasGraph) != 0) {
    CSPM_ASSIGN_OR_RETURN(auto graph, DecodeGraph(&dec, stored.dict));
    stored.graph.emplace(std::move(graph));
  }
  if (!dec.AtEnd()) {
    return Status::IOError("model record has trailing bytes (corrupt store)");
  }
  return stored;
}

}  // namespace

StatusOr<ModelStore> ModelStore::Create(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(Pager pager, Pager::Create(path));
  ModelStore store(std::move(pager));
  store.catalog_loaded_ = true;
  store.disk_catalog_is_index_ = true;
  return store;
}

StatusOr<ModelStore> ModelStore::Open(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(Pager pager, Pager::Open(path));
  ModelStore store(std::move(pager));
  CSPM_RETURN_IF_ERROR(store.LoadCatalog());
  return store;
}

StatusOr<ModelStore> ModelStore::OpenOrCreate(const std::string& path) {
  // Create only when nothing is at `path`. An existing file that is not a
  // healthy store (wrong magic, truncated, corrupt) surfaces as Open's
  // error instead of being silently destroyed.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Create(path);
  return Open(path);
}

Status ModelStore::LoadCatalog() {
  catalog_.clear();
  lookup_cache_.clear();
  catalog_loaded_ = false;
  catalog_count_ = 0;
  disk_catalog_is_index_ = pager_.format_version() >= 3;
  if (pager_.catalog_head() == Pager::kNoPage) {
    catalog_loaded_ = true;
    return Status::OK();
  }

  if (!disk_catalog_is_index_) {
    // v2: one linear catalog chain, decoded eagerly (such files are small
    // by construction — the format predates many-thousand-model stores).
    CSPM_ASSIGN_OR_RETURN(std::string bytes,
                          pager_.ReadChain(pager_.catalog_head()));
    Decoder dec(bytes);
    CSPM_ASSIGN_OR_RETURN(uint64_t count, dec.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      CSPM_ASSIGN_OR_RETURN(std::string_view name, dec.ReadString());
      Entry entry;
      CSPM_ASSIGN_OR_RETURN(uint64_t head, dec.ReadVarint());
      if (head == Pager::kNoPage || head >= pager_.num_pages()) {
        return Status::IOError("catalog entry points outside the store");
      }
      entry.head = static_cast<uint32_t>(head);
      CSPM_ASSIGN_OR_RETURN(entry.bytes, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(entry.num_astars, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(uint8_t flags, dec.ReadU8());
      entry.has_graph = (flags & kFlagHasGraph) != 0;
      CSPM_ASSIGN_OR_RETURN(uint64_t wal_count, dec.ReadVarint());
      // Bound by the bytes left: a corrupt count must fail on decode, not
      // abort on allocation.
      entry.wal.reserve(std::min<uint64_t>(wal_count, dec.remaining() / 2));
      for (uint64_t w = 0; w < wal_count; ++w) {
        WalRecord rec;
        CSPM_ASSIGN_OR_RETURN(uint64_t wal_head, dec.ReadVarint());
        if (wal_head == Pager::kNoPage || wal_head >= pager_.num_pages()) {
          return Status::IOError("WAL record points outside the store");
        }
        rec.head = static_cast<uint32_t>(wal_head);
        CSPM_ASSIGN_OR_RETURN(rec.bytes, dec.ReadVarint());
        entry.wal.push_back(rec);
      }
      if (!catalog_.emplace(std::string(name), std::move(entry)).second) {
        return Status::IOError("duplicate catalog entry: " +
                               std::string(name));
      }
    }
    if (!dec.AtEnd()) {
      return Status::IOError("catalog has trailing bytes (corrupt store)");
    }
    catalog_loaded_ = true;
    catalog_count_ = catalog_.size();
    return Status::OK();
  }

  // v3: read the index root only — the open cost is O(1) regardless of
  // how many models the file holds.
  CSPM_ASSIGN_OR_RETURN(IndexNode root, ReadIndexNode(pager_.catalog_head()));
  if (root.leaf) {
    if (root.next != Pager::kNoPage) {
      return Status::IOError(
          "catalog index root is a leaf with a level link (corrupt store)");
    }
    // A single-leaf catalog is fully decoded already; keep it.
    for (auto& [name, entry] : root.entries) {
      if (!catalog_.emplace(name, std::move(entry)).second) {
        return Status::IOError("duplicate catalog entry: " + name);
      }
    }
    catalog_loaded_ = true;
    catalog_count_ = catalog_.size();
  } else {
    catalog_count_ = root.count;
  }
  return Status::OK();
}

StatusOr<ModelStore::IndexNode> ModelStore::ReadIndexNode(uint32_t page_id) {
  static auto* const index_reads =
      obs::GetCounter("store.catalog.index_page_reads");
  index_reads->Add(1);
  CSPM_ASSIGN_OR_RETURN(Pager::DataPage page, pager_.ReadDataPage(page_id));
  Decoder dec(page.payload);
  CSPM_ASSIGN_OR_RETURN(uint8_t kind, dec.ReadU8());
  IndexNode node;
  node.next = page.next;
  if (kind == kIndexLeaf) {
    node.leaf = true;
    CSPM_ASSIGN_OR_RETURN(uint64_t n, dec.ReadVarint());
    node.entries.reserve(std::min<uint64_t>(n, dec.remaining()));
    for (uint64_t i = 0; i < n; ++i) {
      CSPM_ASSIGN_OR_RETURN(std::string_view name, dec.ReadString());
      Entry entry;
      CSPM_ASSIGN_OR_RETURN(uint64_t head, dec.ReadVarint());
      if (head == Pager::kNoPage || head >= pager_.num_pages()) {
        return Status::IOError("catalog entry points outside the store");
      }
      entry.head = static_cast<uint32_t>(head);
      CSPM_ASSIGN_OR_RETURN(entry.bytes, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(entry.num_astars, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(uint8_t flags, dec.ReadU8());
      entry.has_graph = (flags & kFlagHasGraph) != 0;
      CSPM_ASSIGN_OR_RETURN(uint64_t plan_first, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(uint64_t plan_pages, dec.ReadVarint());
      CSPM_ASSIGN_OR_RETURN(entry.plan_bytes, dec.ReadVarint());
      if (plan_pages > 0) {
        if (plan_first == Pager::kNoPage ||
            plan_first >= pager_.num_pages() ||
            pager_.num_pages() - plan_first < plan_pages) {
          return Status::IOError(
              "catalog plan extent points outside the store");
        }
        entry.plan_extent.first_page = static_cast<uint32_t>(plan_first);
        entry.plan_extent.num_pages = static_cast<uint32_t>(plan_pages);
      } else if (entry.plan_bytes != 0) {
        return Status::IOError(
            "catalog entry declares plan bytes without a plan extent");
      }
      CSPM_ASSIGN_OR_RETURN(uint64_t wal_count, dec.ReadVarint());
      entry.wal.reserve(std::min<uint64_t>(wal_count, dec.remaining() / 2));
      for (uint64_t w = 0; w < wal_count; ++w) {
        WalRecord rec;
        CSPM_ASSIGN_OR_RETURN(uint64_t wal_head, dec.ReadVarint());
        if (wal_head == Pager::kNoPage || wal_head >= pager_.num_pages()) {
          return Status::IOError("WAL record points outside the store");
        }
        rec.head = static_cast<uint32_t>(wal_head);
        CSPM_ASSIGN_OR_RETURN(rec.bytes, dec.ReadVarint());
        entry.wal.push_back(rec);
      }
      node.entries.emplace_back(std::string(name), std::move(entry));
    }
    node.count = node.entries.size();
  } else if (kind == kIndexInterior) {
    if (page.next != Pager::kNoPage) {
      return Status::IOError(
          StrFormat("catalog index interior page %u has a level link "
                    "(corrupt store)",
                    page_id));
    }
    CSPM_ASSIGN_OR_RETURN(node.count, dec.ReadVarint());
    CSPM_ASSIGN_OR_RETURN(uint64_t n_children, dec.ReadVarint());
    if (n_children == 0) {
      return Status::IOError(
          StrFormat("catalog index page %u has no children", page_id));
    }
    node.children.reserve(std::min<uint64_t>(n_children, dec.remaining()));
    for (uint64_t i = 0; i < n_children; ++i) {
      CSPM_ASSIGN_OR_RETURN(std::string_view sep, dec.ReadString());
      CSPM_ASSIGN_OR_RETURN(uint64_t child, dec.ReadVarint());
      if (child == Pager::kNoPage || child >= pager_.num_pages()) {
        return Status::IOError(
            StrFormat("catalog index page %u child points outside the store",
                      page_id));
      }
      node.children.emplace_back(std::string(sep),
                                 static_cast<uint32_t>(child));
    }
  } else {
    return Status::IOError(StrFormat(
        "page %u is not a catalog index node (kind byte %u)", page_id, kind));
  }
  if (!dec.AtEnd()) {
    return Status::IOError(StrFormat(
        "catalog index page %u has trailing bytes (corrupt store)", page_id));
  }
  return node;
}

StatusOr<const ModelStore::Entry*> ModelStore::LookupEntry(
    const std::string& name) {
  auto not_found = [&]() {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  };
  if (catalog_loaded_) {
    auto it = catalog_.find(name);
    if (it == catalog_.end()) return not_found();
    return &it->second;
  }
  auto cached = lookup_cache_.find(name);
  if (cached != lookup_cache_.end()) return &cached->second;

  uint32_t id = pager_.catalog_head();
  for (uint32_t depth = 0; depth < kMaxIndexDepth; ++depth) {
    CSPM_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(id));
    if (node.leaf) {
      for (auto& [entry_name, entry] : node.entries) {
        if (entry_name == name) {
          return &lookup_cache_.emplace(name, std::move(entry))
                      .first->second;
        }
      }
      return not_found();
    }
    // Last child whose separator <= name; children[0]'s separator is the
    // subtree's first name, so a smaller `name` can only live (or rather
    // fail to live) under it.
    size_t pick = 0;
    for (size_t i = 1; i < node.children.size(); ++i) {
      if (node.children[i].first <= name) pick = i;
      else break;
    }
    id = node.children[pick].second;
  }
  return Status::IOError(StrFormat(
      "catalog index deeper than %u levels in %s (corrupt store)",
      kMaxIndexDepth, pager_.path().c_str()));
}

Status ModelStore::EnsureLoaded() {
  if (catalog_loaded_) return Status::OK();
  // Descend to the leftmost leaf, then sweep the leaf level through the
  // page-header links.
  uint32_t id = pager_.catalog_head();
  for (uint32_t depth = 0; depth < kMaxIndexDepth; ++depth) {
    CSPM_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(id));
    if (node.leaf) break;
    id = node.children.front().second;
    if (depth + 1 == kMaxIndexDepth) {
      return Status::IOError(StrFormat(
          "catalog index deeper than %u levels in %s (corrupt store)",
          kMaxIndexDepth, pager_.path().c_str()));
    }
  }
  uint32_t visited = 0;
  while (id != Pager::kNoPage) {
    if (++visited > pager_.num_pages()) {
      return Status::IOError("catalog index leaf level cycles in " +
                             pager_.path());
    }
    CSPM_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(id));
    if (!node.leaf) {
      return Status::IOError(
          "catalog index leaf level links to a non-leaf page in " +
          pager_.path());
    }
    for (auto& [name, entry] : node.entries) {
      if (!catalog_.emplace(name, std::move(entry)).second) {
        return Status::IOError("duplicate catalog entry: " + name);
      }
    }
    id = node.next;
  }
  if (catalog_.size() != catalog_count_) {
    return Status::IOError(StrFormat(
        "catalog index root promises %llu entries, the leaf level holds "
        "%zu (corrupt store)",
        static_cast<unsigned long long>(catalog_count_), catalog_.size()));
  }
  catalog_loaded_ = true;
  lookup_cache_.clear();
  return Status::OK();
}

Status ModelStore::CollectIndexPages(uint32_t root,
                                     std::vector<uint32_t>* pages) {
  struct Frame {
    uint32_t id;
    uint32_t depth;
  };
  std::vector<Frame> stack{{root, 0}};
  uint32_t visited = 0;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (++visited > pager_.num_pages() || frame.depth >= kMaxIndexDepth) {
      return Status::IOError("catalog index cycles in " + pager_.path());
    }
    pages->push_back(frame.id);
    CSPM_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(frame.id));
    if (!node.leaf) {
      for (const auto& [sep, child] : node.children) {
        stack.push_back({child, frame.depth + 1});
      }
    }
  }
  return Status::OK();
}

void ModelStore::FreeDiskCatalog() {
  const uint32_t head = pager_.catalog_head();
  if (head == Pager::kNoPage) return;
  if (!disk_catalog_is_index_) {
    // Best-effort, like record chains: a damaged catalog must not block
    // the rewrite that repairs it.
    (void)pager_.FreeChain(head);
  } else {
    std::vector<uint32_t> pages;
    (void)CollectIndexPages(head, &pages);
    for (uint32_t id : pages) (void)pager_.FreeSinglePage(id);
  }
  pager_.set_catalog_head(Pager::kNoPage);
}

Status ModelStore::SaveCatalogAndCommit() {
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  FreeDiskCatalog();

  if (!catalog_.empty()) {
    // Encode every entry, then bulk-load the static tree bottom-up:
    // greedy-pack sorted entries into leaves, then (separator, child)
    // fans into interiors until one root remains.
    struct NodeRef {
      std::string first_name;  ///< first entry name in the subtree
      uint32_t page = Pager::kNoPage;
      uint64_t count = 0;  ///< entries in the subtree
    };

    std::vector<std::string> leaf_payloads;
    std::vector<std::string> leaf_first_names;
    std::vector<uint64_t> leaf_counts;
    {
      std::string current;
      uint64_t current_count = 0;
      auto flush = [&]() {
        if (current_count == 0) return;
        Encoder header;
        header.PutU8(kIndexLeaf);
        header.PutVarint(current_count);
        leaf_payloads.push_back(header.Release() + current);
        leaf_counts.push_back(current_count);
        current.clear();
        current_count = 0;
      };
      for (const auto& [name, entry] : catalog_) {
        Encoder enc;
        enc.PutString(name);
        enc.PutVarint(entry.head);
        enc.PutVarint(entry.bytes);
        enc.PutVarint(entry.num_astars);
        enc.PutU8(entry.has_graph ? kFlagHasGraph : 0);
        enc.PutVarint(entry.plan_extent.first_page);
        enc.PutVarint(entry.plan_extent.num_pages);
        enc.PutVarint(entry.plan_bytes);
        enc.PutVarint(entry.wal.size());
        for (const WalRecord& rec : entry.wal) {
          enc.PutVarint(rec.head);
          enc.PutVarint(rec.bytes);
        }
        // Leaf header worst case: kind byte + 5-byte count varint.
        if (enc.data().size() + 6 > Pager::kPagePayload) {
          return Status::InvalidArgument(StrFormat(
              "catalog entry for '%s' is %zu bytes and exceeds one index "
              "page — compact its WAL (Put or ClearWal) first",
              name.c_str(), enc.data().size()));
        }
        if (current.size() + enc.data().size() + 6 > Pager::kPagePayload) {
          flush();
        }
        if (current_count == 0) leaf_first_names.push_back(name);
        current += enc.data();
        ++current_count;
      }
      flush();
    }

    // Leaves are written right-to-left so each knows its level link.
    std::vector<NodeRef> level(leaf_payloads.size());
    uint32_t next = Pager::kNoPage;
    for (size_t i = leaf_payloads.size(); i-- > 0;) {
      CSPM_ASSIGN_OR_RETURN(uint32_t page,
                            pager_.WriteDataPage(leaf_payloads[i], next));
      level[i] = {leaf_first_names[i], page, leaf_counts[i]};
      next = page;
    }

    while (level.size() > 1) {
      std::vector<NodeRef> parents;
      size_t i = 0;
      while (i < level.size()) {
        // Greedy fan: children until the payload would overflow (each
        // child costs its separator string + ~10 bytes of varints).
        Encoder body;
        uint64_t count = 0;
        const size_t first = i;
        size_t body_bytes = 16;  // kind + count + n_children headroom
        while (i < level.size()) {
          const size_t child_bytes = level[i].first_name.size() + 10;
          if (i > first && body_bytes + child_bytes > Pager::kPagePayload) {
            break;
          }
          body.PutString(level[i].first_name);
          body.PutVarint(level[i].page);
          body_bytes += child_bytes;
          count += level[i].count;
          ++i;
        }
        Encoder node;
        node.PutU8(kIndexInterior);
        node.PutVarint(count);
        node.PutVarint(i - first);
        CSPM_ASSIGN_OR_RETURN(
            uint32_t page,
            pager_.WriteDataPage(node.Release() + body.data(),
                                 Pager::kNoPage));
        parents.push_back({level[first].first_name, page, count});
      }
      level = std::move(parents);
    }
    pager_.set_catalog_head(level.front().page);
  }

  catalog_count_ = catalog_.size();
  disk_catalog_is_index_ = true;
  return pager_.Commit();
}

Status ModelStore::WriteModelRecord(const StoredModel& stored, Entry* entry) {
  // The mmap-native serving form: compile once at save time, so every
  // future open of this model costs a mapping instead of a compile. The
  // extent is written before the record chain — it needs a *contiguous*
  // free run, which page-at-a-time chain allocation would fragment.
  const core::ScoringPlan plan =
      core::ScoringPlan::Compile(stored.model, stored.dict.size());
  const std::string section = EncodePlanSection(plan);
  CSPM_ASSIGN_OR_RETURN(entry->plan_extent, pager_.WriteExtent(section));
  entry->plan_bytes = section.size();
  const std::string bytes = EncodeRecord(stored);
  CSPM_ASSIGN_OR_RETURN(entry->head, pager_.WriteChain(bytes));
  entry->bytes = bytes.size();
  entry->num_astars = stored.model.astars.size();
  entry->has_graph = stored.graph.has_value();
  return Status::OK();
}

Status ModelStore::Put(const std::string& name, const StoredModel& stored) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  // Write the replacement chain before touching the old record: a failure
  // anywhere short of Commit leaves the in-memory catalog — and the
  // durable file — still holding the previous version of `name`.
  Entry entry;
  CSPM_RETURN_IF_ERROR(WriteModelRecord(stored, &entry));
  auto it = catalog_.find(name);
  if (it != catalog_.end()) {
    // Best-effort free: if the old chain has a corrupt page the walk stops
    // and its tail leaks, but the replacement must still go through — a
    // damaged record would otherwise be impossible to repair with a Put.
    // The catalog drops the old head either way, so no later allocation
    // can cross-link into a still-referenced chain.
    (void)pager_.FreeChain(it->second.head);
    if (it->second.plan_extent.num_pages > 0) {
      (void)pager_.FreeExtent(it->second.plan_extent);
    }
    // Compaction: the fresh record reflects whatever the pending deltas
    // described, so the WAL restarts empty.
    DropWalChains(&it->second);
    it->second = entry;
  } else {
    catalog_.emplace(name, entry);
  }
  return SaveCatalogAndCommit();
}

Status ModelStore::PutMany(
    const std::vector<std::pair<std::string, StoredModel>>& models) {
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  // Stage everything first; the catalog map is only touched once every
  // record wrote cleanly, so an error cannot leave `catalog_` promising
  // chains a later mutation would commit half-made.
  std::vector<std::pair<std::string, Entry>> staged;
  staged.reserve(models.size());
  for (const auto& [name, stored] : models) {
    if (name.empty()) {
      return Status::InvalidArgument("model name must not be empty");
    }
    Entry entry;
    CSPM_RETURN_IF_ERROR(WriteModelRecord(stored, &entry));
    staged.emplace_back(name, entry);
  }
  for (auto& [name, entry] : staged) {
    auto it = catalog_.find(name);
    if (it != catalog_.end()) {
      (void)pager_.FreeChain(it->second.head);
      if (it->second.plan_extent.num_pages > 0) {
        (void)pager_.FreeExtent(it->second.plan_extent);
      }
      DropWalChains(&it->second);
      it->second = entry;
    } else {
      catalog_.emplace(name, entry);
    }
  }
  return SaveCatalogAndCommit();
}

void ModelStore::DropWalChains(Entry* entry) {
  for (const WalRecord& rec : entry->wal) {
    // Best-effort, like record chains: a damaged WAL chain leaks its tail
    // but must never block compaction.
    (void)pager_.FreeChain(rec.head);
  }
  entry->wal.clear();
}

Status ModelStore::AppendDelta(const std::string& name,
                               const graph::GraphDelta& delta,
                               WalDeltaMode mode) {
  static auto* const append_hist =
      obs::GetHistogram("phase.store.wal_append");
  obs::ScopedPhaseTimer append_timer(append_hist);
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  Encoder enc;
  enc.PutU8(kWalRecordVersion);
  enc.PutU8(static_cast<uint8_t>(mode));
  EncodeGraphDelta(delta, &enc);
  WalRecord rec;
  CSPM_ASSIGN_OR_RETURN(rec.head, pager_.WriteChain(enc.data()));
  rec.bytes = enc.data().size();
  it->second.wal.push_back(rec);
  Status committed = SaveCatalogAndCommit();
  if (!committed.ok()) {
    it->second.wal.pop_back();
    // Roll the orphaned chain back into the free list (best-effort, like
    // Put): otherwise every failed append permanently bloats the file.
    (void)pager_.FreeChain(rec.head);
  } else {
    obs::GetCounter("store.wal_appends")->Add(1);
    obs::GetGauge("store.wal_chain_len")
        ->Set(static_cast<double>(it->second.wal.size()));
  }
  return committed;
}

StatusOr<ModelStore::WalReplay> ModelStore::ReadWal(const std::string& name) {
  CSPM_ASSIGN_OR_RETURN(const Entry* entry, LookupEntry(name));
  static auto* const replay_hist =
      obs::GetHistogram("phase.store.wal_replay");
  obs::ScopedPhaseTimer replay_timer(replay_hist);
  WalReplay replay;
  const std::vector<WalRecord>& wal = entry->wal;
  for (size_t i = 0; i < wal.size(); ++i) {
    // A record that cannot be read or decoded ends the replay: everything
    // after it was written later, so the valid prefix is still a
    // consistent history (the crash-recovery contract).
    StatusOr<std::string> bytes_or = pager_.ReadChain(wal[i].head);
    if (!bytes_or.ok() || bytes_or->size() != wal[i].bytes) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    Decoder dec(*bytes_or);
    StatusOr<uint8_t> version_or = dec.ReadU8();
    if (!version_or.ok() || *version_or > kWalRecordVersion) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    WalDeltaMode mode = WalDeltaMode::kExact;  // v1: no mode byte
    if (*version_or >= 2) {
      StatusOr<uint8_t> mode_or = dec.ReadU8();
      if (!mode_or.ok() ||
          *mode_or > static_cast<uint8_t>(WalDeltaMode::kFast)) {
        replay.truncated = true;
        replay.dropped = wal.size() - i;
        break;
      }
      mode = static_cast<WalDeltaMode>(*mode_or);
    }
    StatusOr<graph::GraphDelta> delta_or = DecodeGraphDelta(&dec);
    if (!delta_or.ok() || !dec.AtEnd()) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    replay.deltas.push_back(std::move(delta_or).value());
    replay.modes.push_back(mode);
  }
  obs::GetCounter("store.wal_replayed_records")->Add(replay.deltas.size());
  return replay;
}

Status ModelStore::ClearWal(const std::string& name) {
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  if (it->second.wal.empty()) return Status::OK();
  DropWalChains(&it->second);
  return SaveCatalogAndCommit();
}

StatusOr<StoredModel> ModelStore::Get(const std::string& name) {
  CSPM_ASSIGN_OR_RETURN(const Entry* entry, LookupEntry(name));
  CSPM_ASSIGN_OR_RETURN(std::string bytes, pager_.ReadChain(entry->head));
  if (bytes.size() != entry->bytes) {
    return Status::IOError(
        StrFormat("model '%s' record is %zu bytes, catalog expects %llu "
                  "(corrupt store)",
                  name.c_str(), bytes.size(),
                  static_cast<unsigned long long>(entry->bytes)));
  }
  return DecodeRecord(bytes);
}

StatusOr<std::shared_ptr<const core::ScoringPlan>> ModelStore::OpenPlan(
    const std::string& name) {
  CSPM_ASSIGN_OR_RETURN(const Entry* entry, LookupEntry(name));
  if (entry->plan_extent.num_pages == 0) {
    return Status::NotFound(
        StrFormat("model '%s' has no plan section (saved by a v2 binary; "
                  "re-save to upgrade)",
                  name.c_str()));
  }
  return MmapPlanView::Open(
      pager_.path(), Pager::ExtentFileOffset(entry->plan_extent.first_page),
      entry->plan_bytes);
}

Status ModelStore::Delete(const std::string& name) {
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  // Best-effort free (see Put): deleting a record whose chain has a
  // corrupt page must still remove it from the catalog — leaking its
  // unreachable pages beats a store that can never drop the entry.
  (void)pager_.FreeChain(it->second.head);
  if (it->second.plan_extent.num_pages > 0) {
    (void)pager_.FreeExtent(it->second.plan_extent);
  }
  DropWalChains(&it->second);
  catalog_.erase(it);
  return SaveCatalogAndCommit();
}

bool ModelStore::Contains(const std::string& name) {
  if (catalog_loaded_) return catalog_.count(name) > 0;
  return LookupEntry(name).ok();
}

Status ModelStore::CheckInvariants() {
  CSPM_RETURN_IF_ERROR(EnsureLoaded());
  const uint32_t num_pages = pager_.num_pages();
  // Owner label per page; empty = unclaimed so far. Every data page of a
  // healthy store is claimed by exactly one chain.
  std::vector<std::string> owner(num_pages);
  auto claim = [&](uint32_t id, const std::string& label) -> Status {
    if (id >= num_pages) {
      return Status::Internal(
          StrFormat("%s references page %u outside the store (%u pages)",
                    label.c_str(), id, num_pages));
    }
    if (!owner[id].empty()) {
      if (owner[id] == label) {
        return Status::Internal(
            StrFormat("%s cycles back to page %u", label.c_str(), id));
      }
      return Status::Internal(StrFormat("page %u is claimed by both %s and %s",
                                        id, owner[id].c_str(),
                                        label.c_str()));
    }
    owner[id] = label;
    return Status::OK();
  };
  auto claim_chain = [&](uint32_t head, const std::string& label,
                         uint64_t* payload_sum) -> Status {
    uint32_t id = head;
    while (id != Pager::kNoPage) {
      CSPM_RETURN_IF_ERROR(claim(id, label));
      CSPM_ASSIGN_OR_RETURN(Pager::PageHeader header,
                            pager_.ReadPageHeader(id));
      if (payload_sum != nullptr) *payload_sum += header.payload_len;
      id = header.next;
    }
    return Status::OK();
  };

  // --- catalog index: claim every node, validate separators and the
  // leaf level links ------------------------------------------------------
  if (pager_.catalog_head() != Pager::kNoPage) {
    if (!disk_catalog_is_index_) {
      CSPM_RETURN_IF_ERROR(
          claim_chain(pager_.catalog_head(), "the catalog chain", nullptr));
    } else {
      // Depth-first tree walk collecting the leaf sequence in key order.
      struct LeafRef {
        uint32_t id;
        uint32_t next;
        std::string first_name;
      };
      std::vector<LeafRef> leaves;
      uint64_t entries_seen = 0;
      std::string prev_name;
      auto walk = [&](auto&& self, uint32_t id, uint32_t depth) -> Status {
        if (depth >= kMaxIndexDepth) {
          return Status::Internal("the catalog index is deeper than any "
                                  "bulk load produces (corrupt tree)");
        }
        CSPM_RETURN_IF_ERROR(claim(id, "the catalog index"));
        CSPM_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(id));
        if (node.leaf) {
          if (node.entries.empty()) {
            return Status::Internal(
                StrFormat("catalog index leaf %u is empty", id));
          }
          for (const auto& [name, entry] : node.entries) {
            if (entries_seen > 0 && name <= prev_name) {
              return Status::Internal(StrFormat(
                  "catalog index entries out of order at '%s'",
                  name.c_str()));
            }
            prev_name = name;
            ++entries_seen;
          }
          leaves.push_back({id, node.next, node.entries.front().first});
          return Status::OK();
        }
        for (const auto& [sep, child] : node.children) {
          // The separator must be the first name of the child's subtree —
          // the bulk loader guarantees it, and descent correctness
          // depends on it.
          const size_t before = leaves.size();
          CSPM_RETURN_IF_ERROR(self(self, child, depth + 1));
          if (leaves.size() > before && leaves[before].first_name != sep) {
            return Status::Internal(StrFormat(
                "catalog index separator '%s' disagrees with its subtree's "
                "first entry '%s'",
                sep.c_str(), leaves[before].first_name.c_str()));
          }
        }
        return Status::OK();
      };
      CSPM_RETURN_IF_ERROR(walk(walk, pager_.catalog_head(), 0));
      // The leaf level links must thread the leaves exactly in key order.
      for (size_t i = 0; i < leaves.size(); ++i) {
        const uint32_t expected_next =
            i + 1 < leaves.size() ? leaves[i + 1].id : Pager::kNoPage;
        if (leaves[i].next != expected_next) {
          return Status::Internal(StrFormat(
              "catalog index leaf %u links to page %u, expected %u (bent "
              "leaf level)",
              leaves[i].id, leaves[i].next, expected_next));
        }
      }
      if (entries_seen != catalog_.size()) {
        return Status::Internal(StrFormat(
            "catalog index holds %llu entries, the loaded catalog %zu",
            static_cast<unsigned long long>(entries_seen), catalog_.size()));
      }
    }
  }

  CSPM_RETURN_IF_ERROR(
      claim_chain(pager_.free_head(), "the free list", nullptr));
  for (const auto& [name, entry] : catalog_) {
    uint64_t record_bytes = 0;
    CSPM_RETURN_IF_ERROR(claim_chain(
        entry.head, "the record chain of '" + name + "'", &record_bytes));
    if (record_bytes != entry.bytes) {
      return Status::Internal(StrFormat(
          "record chain of '%s' holds %llu payload bytes, catalog promises "
          "%llu (chain truncated or spliced)",
          name.c_str(), static_cast<unsigned long long>(record_bytes),
          static_cast<unsigned long long>(entry.bytes)));
    }
    // Plan extents are raw pages — claimed whole, never header-validated
    // (they carry no page header; the section checksums itself).
    if (entry.plan_extent.num_pages > 0) {
      const uint64_t extent_bytes =
          static_cast<uint64_t>(entry.plan_extent.num_pages) *
          Pager::kPageSize;
      if (entry.plan_bytes > extent_bytes ||
          extent_bytes - entry.plan_bytes >= Pager::kPageSize) {
        return Status::Internal(StrFormat(
            "plan section of '%s' is %llu bytes but its extent spans %u "
            "pages",
            name.c_str(), static_cast<unsigned long long>(entry.plan_bytes),
            entry.plan_extent.num_pages));
      }
      for (uint32_t i = 0; i < entry.plan_extent.num_pages; ++i) {
        CSPM_RETURN_IF_ERROR(claim(entry.plan_extent.first_page + i,
                                   "the plan section of '" + name + "'"));
      }
    }
    for (size_t w = 0; w < entry.wal.size(); ++w) {
      uint64_t wal_bytes = 0;
      CSPM_RETURN_IF_ERROR(claim_chain(
          entry.wal[w].head,
          StrFormat("WAL record %zu of '%s'", w, name.c_str()), &wal_bytes));
      if (wal_bytes != entry.wal[w].bytes) {
        return Status::Internal(StrFormat(
            "WAL record %zu of '%s' holds %llu payload bytes, catalog "
            "promises %llu",
            w, name.c_str(), static_cast<unsigned long long>(wal_bytes),
            static_cast<unsigned long long>(entry.wal[w].bytes)));
      }
    }
  }

  // Page 0 is the header; every other page must belong to some chain.
  // (Best-effort frees of damaged chains can legitimately leak pages, but
  // such a store is exactly what this audit exists to flag.)
  for (uint32_t id = 1; id < num_pages; ++id) {
    if (owner[id].empty()) {
      return Status::Internal(StrFormat(
          "page %u is unreachable from every chain (leaked or orphaned)",
          id));
    }
  }
  return Status::OK();
}

Status ModelStore::Fsck() {
  CSPM_RETURN_IF_ERROR(CheckInvariants());
  for (const auto& [name, entry] : catalog_) {
    CSPM_ASSIGN_OR_RETURN(StoredModel stored, Get(name));
    if (stored.model.astars.size() != entry.num_astars) {
      return Status::Internal(StrFormat(
          "model '%s' decodes to %zu a-stars, catalog promises %llu",
          name.c_str(), stored.model.astars.size(),
          static_cast<unsigned long long>(entry.num_astars)));
    }
    if (stored.graph.has_value() != entry.has_graph) {
      return Status::Internal(StrFormat(
          "model '%s' graph-snapshot flag disagrees with its catalog entry",
          name.c_str()));
    }
    const size_t num_attrs = stored.dict.size();
    for (size_t s = 0; s < stored.model.astars.size(); ++s) {
      const core::AStar& star = stored.model.astars[s];
      for (core::AttrId a : star.core_values) {
        if (a.index() >= num_attrs) {
          return Status::Internal(StrFormat(
              "model '%s' a-star %zu core value %u outside its dictionary "
              "(%zu names)",
              name.c_str(), s, a.value(), num_attrs));
        }
      }
      for (core::AttrId a : star.leaf_values) {
        if (a.index() >= num_attrs) {
          return Status::Internal(StrFormat(
              "model '%s' a-star %zu leaf value %u outside its dictionary "
              "(%zu names)",
              name.c_str(), s, a.value(), num_attrs));
        }
      }
    }
    if (stored.graph.has_value()) {
      Status graph_ok = graph::CheckInvariants(*stored.graph);
      if (!graph_ok.ok()) {
        return Status::Internal(StrFormat(
            "graph snapshot of '%s' fails validation: %s", name.c_str(),
            graph_ok.message().c_str()));
      }
    }
    // Plan section sweep: full per-slab CRCs (the tier serving skips),
    // the deep plan invariants, and the on-disk bit-identity contract —
    // the stored slabs must equal a recompile of the decoded model, byte
    // for byte.
    if (entry.plan_extent.num_pages > 0) {
      CSPM_ASSIGN_OR_RETURN(std::string extent,
                            pager_.ReadExtent(entry.plan_extent));
      if (entry.plan_bytes > extent.size()) {
        return Status::Internal(StrFormat(
            "plan section of '%s' escapes its extent", name.c_str()));
      }
      const std::string_view section(extent.data(), entry.plan_bytes);
      Status section_ok =
          ValidatePlanSection(section, /*verify_slab_crcs=*/true);
      if (!section_ok.ok()) {
        return Status::Internal(
            StrFormat("plan section of '%s': %s", name.c_str(),
                      section_ok.message().c_str()));
      }
      CSPM_ASSIGN_OR_RETURN(
          auto plan, PlanFromSectionBytes(section.data(), section.size(),
                                          /*storage=*/nullptr));
      Status plan_ok = plan->CheckInvariants();
      if (!plan_ok.ok()) {
        return Status::Internal(
            StrFormat("plan section of '%s' fails plan validation: %s",
                      name.c_str(), plan_ok.message().c_str()));
      }
      const std::string recompiled = EncodePlanSection(
          core::ScoringPlan::Compile(stored.model, stored.dict.size()));
      if (recompiled != section) {
        return Status::Internal(StrFormat(
            "plan section of '%s' does not match a recompile of its record "
            "(stale or corrupt section)",
            name.c_str()));
      }
      // The extent's tail padding is written as zeros; anything else means
      // the extent was scribbled on (slab CRCs cannot see past the
      // section, so this closes the only unchecksummed byte range).
      for (size_t i = entry.plan_bytes; i < extent.size(); ++i) {
        if (extent[i] != '\0') {
          return Status::Internal(StrFormat(
              "plan extent of '%s' has nonzero padding at byte %zu",
              name.c_str(), i));
        }
      }
    }
    CSPM_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(name));
    if (replay.truncated) {
      return Status::Internal(StrFormat(
          "WAL of '%s' has %zu undecodable trailing record(s)", name.c_str(),
          replay.dropped));
    }
  }
  return Status::OK();
}

std::vector<ModelStore::Info> ModelStore::List() {
  std::vector<Info> out;
  if (!EnsureLoaded().ok()) return out;
  out.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) {
    out.push_back({name, entry.bytes, entry.num_astars, entry.wal.size(),
                   entry.plan_bytes, entry.has_graph});
  }
  return out;
}

}  // namespace cspm::store
