#include "store/model_store.h"

#include <filesystem>
#include <utility>

#include "graph/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/codec.h"
#include "util/string_util.h"

namespace cspm::store {
namespace {

// Record layout: version byte, flags byte (bit 0: graph snapshot present),
// then dictionary, model, and optionally the graph.
constexpr uint8_t kRecordVersion = 1;
constexpr uint8_t kFlagHasGraph = 0x01;

// WAL record layout: version byte, then (v2+) a WalDeltaMode byte, then
// one encoded graph delta. v1 records have no mode byte and replay as
// kExact.
constexpr uint8_t kWalRecordVersion = 2;

std::string EncodeRecord(const StoredModel& stored) {
  Encoder enc;
  enc.PutU8(kRecordVersion);
  enc.PutU8(stored.graph.has_value() ? kFlagHasGraph : 0);
  EncodeDictionary(stored.dict, &enc);
  EncodeModel(stored.model, &enc);
  if (stored.graph.has_value()) EncodeGraph(*stored.graph, &enc);
  return enc.Release();
}

StatusOr<StoredModel> DecodeRecord(const std::string& bytes) {
  Decoder dec(bytes);
  CSPM_ASSIGN_OR_RETURN(uint8_t version, dec.ReadU8());
  if (version > kRecordVersion) {
    return Status::IOError(
        StrFormat("model record version %u from the future (this build "
                  "reads <= %u)",
                  version, kRecordVersion));
  }
  CSPM_ASSIGN_OR_RETURN(uint8_t flags, dec.ReadU8());
  StoredModel stored;
  CSPM_ASSIGN_OR_RETURN(stored.dict, DecodeDictionary(&dec));
  CSPM_ASSIGN_OR_RETURN(stored.model, DecodeModel(&dec));
  if ((flags & kFlagHasGraph) != 0) {
    CSPM_ASSIGN_OR_RETURN(auto graph, DecodeGraph(&dec, stored.dict));
    stored.graph.emplace(std::move(graph));
  }
  if (!dec.AtEnd()) {
    return Status::IOError("model record has trailing bytes (corrupt store)");
  }
  return stored;
}

}  // namespace

StatusOr<ModelStore> ModelStore::Create(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(Pager pager, Pager::Create(path));
  return ModelStore(std::move(pager));
}

StatusOr<ModelStore> ModelStore::Open(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(Pager pager, Pager::Open(path));
  ModelStore store(std::move(pager));
  CSPM_RETURN_IF_ERROR(store.LoadCatalog());
  return store;
}

StatusOr<ModelStore> ModelStore::OpenOrCreate(const std::string& path) {
  // Create only when nothing is at `path`. An existing file that is not a
  // healthy store (wrong magic, truncated, corrupt) surfaces as Open's
  // error instead of being silently destroyed.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Create(path);
  return Open(path);
}

Status ModelStore::LoadCatalog() {
  catalog_.clear();
  if (pager_.catalog_head() == Pager::kNoPage) return Status::OK();
  CSPM_ASSIGN_OR_RETURN(std::string bytes,
                        pager_.ReadChain(pager_.catalog_head()));
  Decoder dec(bytes);
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec.ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    CSPM_ASSIGN_OR_RETURN(std::string_view name, dec.ReadString());
    Entry entry;
    CSPM_ASSIGN_OR_RETURN(uint64_t head, dec.ReadVarint());
    if (head == Pager::kNoPage || head >= pager_.num_pages()) {
      return Status::IOError("catalog entry points outside the store");
    }
    entry.head = static_cast<uint32_t>(head);
    CSPM_ASSIGN_OR_RETURN(entry.bytes, dec.ReadVarint());
    CSPM_ASSIGN_OR_RETURN(entry.num_astars, dec.ReadVarint());
    CSPM_ASSIGN_OR_RETURN(uint8_t flags, dec.ReadU8());
    entry.has_graph = (flags & kFlagHasGraph) != 0;
    CSPM_ASSIGN_OR_RETURN(uint64_t wal_count, dec.ReadVarint());
    // Bound by the bytes left: a corrupt count must fail on decode, not
    // abort on allocation.
    entry.wal.reserve(std::min<uint64_t>(wal_count, dec.remaining() / 2));
    for (uint64_t w = 0; w < wal_count; ++w) {
      WalRecord rec;
      CSPM_ASSIGN_OR_RETURN(uint64_t wal_head, dec.ReadVarint());
      if (wal_head == Pager::kNoPage || wal_head >= pager_.num_pages()) {
        return Status::IOError("WAL record points outside the store");
      }
      rec.head = static_cast<uint32_t>(wal_head);
      CSPM_ASSIGN_OR_RETURN(rec.bytes, dec.ReadVarint());
      entry.wal.push_back(rec);
    }
    if (!catalog_.emplace(std::string(name), std::move(entry)).second) {
      return Status::IOError("duplicate catalog entry: " + std::string(name));
    }
  }
  if (!dec.AtEnd()) {
    return Status::IOError("catalog has trailing bytes (corrupt store)");
  }
  return Status::OK();
}

Status ModelStore::SaveCatalogAndCommit() {
  if (pager_.catalog_head() != Pager::kNoPage) {
    CSPM_RETURN_IF_ERROR(pager_.FreeChain(pager_.catalog_head()));
    pager_.set_catalog_head(Pager::kNoPage);
  }
  Encoder enc;
  enc.PutVarint(catalog_.size());
  for (const auto& [name, entry] : catalog_) {
    enc.PutString(name);
    enc.PutVarint(entry.head);
    enc.PutVarint(entry.bytes);
    enc.PutVarint(entry.num_astars);
    enc.PutU8(entry.has_graph ? kFlagHasGraph : 0);
    enc.PutVarint(entry.wal.size());
    for (const WalRecord& rec : entry.wal) {
      enc.PutVarint(rec.head);
      enc.PutVarint(rec.bytes);
    }
  }
  CSPM_ASSIGN_OR_RETURN(uint32_t head, pager_.WriteChain(enc.data()));
  pager_.set_catalog_head(head);
  return pager_.Commit();
}

Status ModelStore::Put(const std::string& name, const StoredModel& stored) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  const std::string bytes = EncodeRecord(stored);
  // Write the replacement chain before touching the old record: a failure
  // anywhere short of Commit leaves the in-memory catalog — and the
  // durable file — still holding the previous version of `name`.
  Entry entry;
  CSPM_ASSIGN_OR_RETURN(entry.head, pager_.WriteChain(bytes));
  entry.bytes = bytes.size();
  entry.num_astars = stored.model.astars.size();
  entry.has_graph = stored.graph.has_value();
  auto it = catalog_.find(name);
  if (it != catalog_.end()) {
    // Best-effort free: if the old chain has a corrupt page the walk stops
    // and its tail leaks, but the replacement must still go through — a
    // damaged record would otherwise be impossible to repair with a Put.
    // The catalog drops the old head either way, so no later allocation
    // can cross-link into a still-referenced chain.
    (void)pager_.FreeChain(it->second.head);
    // Compaction: the fresh record reflects whatever the pending deltas
    // described, so the WAL restarts empty.
    DropWalChains(&it->second);
    it->second = entry;
  } else {
    catalog_.emplace(name, entry);
  }
  return SaveCatalogAndCommit();
}

void ModelStore::DropWalChains(Entry* entry) {
  for (const WalRecord& rec : entry->wal) {
    // Best-effort, like record chains: a damaged WAL chain leaks its tail
    // but must never block compaction.
    (void)pager_.FreeChain(rec.head);
  }
  entry->wal.clear();
}

Status ModelStore::AppendDelta(const std::string& name,
                               const graph::GraphDelta& delta,
                               WalDeltaMode mode) {
  static auto* const append_hist =
      obs::GetHistogram("phase.store.wal_append");
  obs::ScopedPhaseTimer append_timer(append_hist);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  Encoder enc;
  enc.PutU8(kWalRecordVersion);
  enc.PutU8(static_cast<uint8_t>(mode));
  EncodeGraphDelta(delta, &enc);
  WalRecord rec;
  CSPM_ASSIGN_OR_RETURN(rec.head, pager_.WriteChain(enc.data()));
  rec.bytes = enc.data().size();
  it->second.wal.push_back(rec);
  Status committed = SaveCatalogAndCommit();
  if (!committed.ok()) {
    it->second.wal.pop_back();
    // Roll the orphaned chain back into the free list (best-effort, like
    // Put): otherwise every failed append permanently bloats the file.
    (void)pager_.FreeChain(rec.head);
  } else {
    obs::GetCounter("store.wal_appends")->Add(1);
    obs::GetGauge("store.wal_chain_len")
        ->Set(static_cast<double>(it->second.wal.size()));
  }
  return committed;
}

StatusOr<ModelStore::WalReplay> ModelStore::ReadWal(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  static auto* const replay_hist =
      obs::GetHistogram("phase.store.wal_replay");
  obs::ScopedPhaseTimer replay_timer(replay_hist);
  WalReplay replay;
  const std::vector<WalRecord>& wal = it->second.wal;
  for (size_t i = 0; i < wal.size(); ++i) {
    // A record that cannot be read or decoded ends the replay: everything
    // after it was written later, so the valid prefix is still a
    // consistent history (the crash-recovery contract).
    StatusOr<std::string> bytes_or = pager_.ReadChain(wal[i].head);
    if (!bytes_or.ok() || bytes_or->size() != wal[i].bytes) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    Decoder dec(*bytes_or);
    StatusOr<uint8_t> version_or = dec.ReadU8();
    if (!version_or.ok() || *version_or > kWalRecordVersion) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    WalDeltaMode mode = WalDeltaMode::kExact;  // v1: no mode byte
    if (*version_or >= 2) {
      StatusOr<uint8_t> mode_or = dec.ReadU8();
      if (!mode_or.ok() ||
          *mode_or > static_cast<uint8_t>(WalDeltaMode::kFast)) {
        replay.truncated = true;
        replay.dropped = wal.size() - i;
        break;
      }
      mode = static_cast<WalDeltaMode>(*mode_or);
    }
    StatusOr<graph::GraphDelta> delta_or = DecodeGraphDelta(&dec);
    if (!delta_or.ok() || !dec.AtEnd()) {
      replay.truncated = true;
      replay.dropped = wal.size() - i;
      break;
    }
    replay.deltas.push_back(std::move(delta_or).value());
    replay.modes.push_back(mode);
  }
  obs::GetCounter("store.wal_replayed_records")->Add(replay.deltas.size());
  return replay;
}

Status ModelStore::ClearWal(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  if (it->second.wal.empty()) return Status::OK();
  DropWalChains(&it->second);
  return SaveCatalogAndCommit();
}

StatusOr<StoredModel> ModelStore::Get(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  CSPM_ASSIGN_OR_RETURN(std::string bytes, pager_.ReadChain(it->second.head));
  if (bytes.size() != it->second.bytes) {
    return Status::IOError(
        StrFormat("model '%s' record is %zu bytes, catalog expects %llu "
                  "(corrupt store)",
                  name.c_str(), bytes.size(),
                  static_cast<unsigned long long>(it->second.bytes)));
  }
  return DecodeRecord(bytes);
}

Status ModelStore::Delete(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no model named '" + name + "' in " +
                            pager_.path());
  }
  // Best-effort free (see Put): deleting a record whose chain has a
  // corrupt page must still remove it from the catalog — leaking its
  // unreachable pages beats a store that can never drop the entry.
  (void)pager_.FreeChain(it->second.head);
  DropWalChains(&it->second);
  catalog_.erase(it);
  return SaveCatalogAndCommit();
}

Status ModelStore::CheckInvariants() {
  const uint32_t num_pages = pager_.num_pages();
  // Owner label per page; empty = unclaimed so far. Every data page of a
  // healthy store is claimed by exactly one chain.
  std::vector<std::string> owner(num_pages);
  auto claim_chain = [&](uint32_t head, const std::string& label,
                         uint64_t* payload_sum) -> Status {
    uint32_t id = head;
    while (id != Pager::kNoPage) {
      if (id >= num_pages) {
        return Status::Internal(
            StrFormat("%s references page %u outside the store (%u pages)",
                      label.c_str(), id, num_pages));
      }
      if (!owner[id].empty()) {
        if (owner[id] == label) {
          return Status::Internal(
              StrFormat("%s cycles back to page %u", label.c_str(), id));
        }
        return Status::Internal(
            StrFormat("page %u is claimed by both %s and %s", id,
                      owner[id].c_str(), label.c_str()));
      }
      owner[id] = label;
      CSPM_ASSIGN_OR_RETURN(Pager::PageHeader header,
                            pager_.ReadPageHeader(id));
      if (payload_sum != nullptr) *payload_sum += header.payload_len;
      id = header.next;
    }
    return Status::OK();
  };

  if (pager_.catalog_head() != Pager::kNoPage) {
    CSPM_RETURN_IF_ERROR(
        claim_chain(pager_.catalog_head(), "the catalog chain", nullptr));
  }
  CSPM_RETURN_IF_ERROR(
      claim_chain(pager_.free_head(), "the free list", nullptr));
  for (const auto& [name, entry] : catalog_) {
    uint64_t record_bytes = 0;
    CSPM_RETURN_IF_ERROR(claim_chain(
        entry.head, "the record chain of '" + name + "'", &record_bytes));
    if (record_bytes != entry.bytes) {
      return Status::Internal(StrFormat(
          "record chain of '%s' holds %llu payload bytes, catalog promises "
          "%llu (chain truncated or spliced)",
          name.c_str(), static_cast<unsigned long long>(record_bytes),
          static_cast<unsigned long long>(entry.bytes)));
    }
    for (size_t w = 0; w < entry.wal.size(); ++w) {
      uint64_t wal_bytes = 0;
      CSPM_RETURN_IF_ERROR(claim_chain(
          entry.wal[w].head,
          StrFormat("WAL record %zu of '%s'", w, name.c_str()), &wal_bytes));
      if (wal_bytes != entry.wal[w].bytes) {
        return Status::Internal(StrFormat(
            "WAL record %zu of '%s' holds %llu payload bytes, catalog "
            "promises %llu",
            w, name.c_str(), static_cast<unsigned long long>(wal_bytes),
            static_cast<unsigned long long>(entry.wal[w].bytes)));
      }
    }
  }

  // Page 0 is the header; every other page must belong to some chain.
  // (Best-effort frees of damaged chains can legitimately leak pages, but
  // such a store is exactly what this audit exists to flag.)
  for (uint32_t id = 1; id < num_pages; ++id) {
    if (owner[id].empty()) {
      return Status::Internal(StrFormat(
          "page %u is unreachable from every chain (leaked or orphaned)",
          id));
    }
  }
  return Status::OK();
}

Status ModelStore::Fsck() {
  CSPM_RETURN_IF_ERROR(CheckInvariants());
  for (const auto& [name, entry] : catalog_) {
    CSPM_ASSIGN_OR_RETURN(StoredModel stored, Get(name));
    if (stored.model.astars.size() != entry.num_astars) {
      return Status::Internal(StrFormat(
          "model '%s' decodes to %zu a-stars, catalog promises %llu",
          name.c_str(), stored.model.astars.size(),
          static_cast<unsigned long long>(entry.num_astars)));
    }
    if (stored.graph.has_value() != entry.has_graph) {
      return Status::Internal(StrFormat(
          "model '%s' graph-snapshot flag disagrees with its catalog entry",
          name.c_str()));
    }
    const size_t num_attrs = stored.dict.size();
    for (size_t s = 0; s < stored.model.astars.size(); ++s) {
      const core::AStar& star = stored.model.astars[s];
      for (core::AttrId a : star.core_values) {
        if (a.index() >= num_attrs) {
          return Status::Internal(StrFormat(
              "model '%s' a-star %zu core value %u outside its dictionary "
              "(%zu names)",
              name.c_str(), s, a.value(), num_attrs));
        }
      }
      for (core::AttrId a : star.leaf_values) {
        if (a.index() >= num_attrs) {
          return Status::Internal(StrFormat(
              "model '%s' a-star %zu leaf value %u outside its dictionary "
              "(%zu names)",
              name.c_str(), s, a.value(), num_attrs));
        }
      }
    }
    if (stored.graph.has_value()) {
      Status graph_ok = graph::CheckInvariants(*stored.graph);
      if (!graph_ok.ok()) {
        return Status::Internal(StrFormat(
            "graph snapshot of '%s' fails validation: %s", name.c_str(),
            graph_ok.message().c_str()));
      }
    }
    CSPM_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(name));
    if (replay.truncated) {
      return Status::Internal(StrFormat(
          "WAL of '%s' has %zu undecodable trailing record(s)", name.c_str(),
          replay.dropped));
    }
  }
  return Status::OK();
}

std::vector<ModelStore::Info> ModelStore::List() const {
  std::vector<Info> out;
  out.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) {
    out.push_back({name, entry.bytes, entry.num_astars, entry.wal.size(),
                   entry.has_graph});
  }
  return out;
}

}  // namespace cspm::store
