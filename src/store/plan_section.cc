#include "store/plan_section.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <type_traits>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace cspm::store {
namespace {

using core::AttrId;
using core::ScoringPlan;

// The slab bytes are reinterpreted in place from the mapping; AttrId must
// be layout-identical to its raw u32 representation for that to be sound.
static_assert(std::is_trivially_copyable_v<AttrId> && sizeof(AttrId) == 4,
              "AttrId must be a trivially copyable 4-byte value type to be "
              "mmap-viewed");
static_assert(sizeof(double) == 8, "plan section assumes 8-byte doubles");

constexpr size_t kNumSlabs = 6;
constexpr size_t kSlabTableOffset = 32;
constexpr size_t kHeaderCrcOffset = 104;

const char* const kSlabNames[kNumSlabs] = {
    "leaf_size",       "code_length_bits", "core_offsets",
    "cores",           "posting_offsets",  "postings"};

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

size_t AlignUp(size_t n) {
  return (n + kPlanSlabAlignment - 1) & ~(kPlanSlabAlignment - 1);
}

/// Byte length of slab `i` implied by the header counts — the geometry
/// the validator enforces and the encoder produces.
size_t ExpectedSlabBytes(size_t i, uint32_t num_attrs, uint32_t num_stars,
                         uint32_t num_cores, uint32_t num_postings) {
  switch (i) {
    case 0: return static_cast<size_t>(num_stars) * 4;
    case 1: return static_cast<size_t>(num_stars) * 8;
    case 2: return (static_cast<size_t>(num_stars) + 1) * 4;
    case 3: return static_cast<size_t>(num_cores) * 4;
    case 4: return (static_cast<size_t>(num_attrs) + 1) * 4;
    case 5: return static_cast<size_t>(num_postings) * 4;
    default: return 0;
  }
}

/// POSIX mapping owner: unmaps on destruction. Held behind the plan's
/// type-erased storage pointer.
class MappedRegion {
 public:
  MappedRegion(void* base, size_t length) : base_(base), length_(length) {}
  ~MappedRegion() { ::munmap(base_, length_); }
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

 private:
  void* base_;
  size_t length_;
};

}  // namespace

std::string EncodePlanSection(const ScoringPlan& plan) {
  const ScoringPlan::Slabs& sb = plan.slabs();
  const void* slab_data[kNumSlabs] = {
      sb.leaf_size.data(),       sb.code_length_bits.data(),
      sb.core_offsets.data(),    sb.cores.data(),
      sb.posting_offsets.data(), sb.postings.data()};
  size_t slab_bytes[kNumSlabs] = {
      sb.leaf_size.size_bytes(),       sb.code_length_bits.size_bytes(),
      sb.core_offsets.size_bytes(),    sb.cores.size_bytes(),
      sb.posting_offsets.size_bytes(), sb.postings.size_bytes()};

  size_t slab_offset[kNumSlabs];
  size_t end = kPlanSectionHeaderBytes;
  for (size_t i = 0; i < kNumSlabs; ++i) {
    slab_offset[i] = AlignUp(end);
    end = slab_offset[i] + slab_bytes[i];
  }

  std::string section(end, '\0');
  char* base = section.data();
  std::memcpy(base, kPlanSectionMagic.data(), kPlanSectionMagic.size());
  PutU32(base + 8, kPlanSectionVersion);
  PutU32(base + 12, static_cast<uint32_t>(plan.num_attribute_values()));
  PutU32(base + 16, static_cast<uint32_t>(plan.num_stars()));
  PutU32(base + 20, static_cast<uint32_t>(sb.cores.size()));
  PutU32(base + 24, static_cast<uint32_t>(sb.postings.size()));
  PutU32(base + 28, static_cast<uint32_t>(end));
  for (size_t i = 0; i < kNumSlabs; ++i) {
    if (slab_bytes[i] != 0) {
      std::memcpy(base + slab_offset[i], slab_data[i], slab_bytes[i]);
    }
    char* row = base + kSlabTableOffset + i * 12;
    PutU32(row, static_cast<uint32_t>(slab_offset[i]));
    PutU32(row + 4, static_cast<uint32_t>(slab_bytes[i]));
    PutU32(row + 8, Crc32(base + slab_offset[i], slab_bytes[i]));
  }
  PutU32(base + kHeaderCrcOffset, Crc32(base, kHeaderCrcOffset));
  return section;
}

Status ValidatePlanSection(std::string_view section, bool verify_slab_crcs) {
  if (section.size() < kPlanSectionHeaderBytes) {
    return Status::IOError(
        StrFormat("plan section truncated: %zu bytes, the header alone is "
                  "%zu",
                  section.size(), kPlanSectionHeaderBytes));
  }
  const char* base = section.data();
  if (std::string_view(base, kPlanSectionMagic.size()) != kPlanSectionMagic) {
    return Status::IOError("plan section has bad magic");
  }
  const uint32_t version = GetU32(base + 8);
  if (version != kPlanSectionVersion) {
    return Status::IOError(
        StrFormat("plan section version %u, this build reads exactly %u",
                  version, kPlanSectionVersion));
  }
  if (GetU32(base + kHeaderCrcOffset) != Crc32(base, kHeaderCrcOffset)) {
    return Status::IOError("plan section header checksum mismatch");
  }
  // Header CRC now vouches for the counts and the slab table; geometry
  // checks below defend against a header that is internally inconsistent
  // (which a CRC over corrupt-at-write bytes would not catch).
  const uint32_t num_attrs = GetU32(base + 12);
  const uint32_t num_stars = GetU32(base + 16);
  const uint32_t num_cores = GetU32(base + 20);
  const uint32_t num_postings = GetU32(base + 24);
  const uint32_t section_bytes = GetU32(base + 28);
  if (section_bytes > section.size()) {
    return Status::IOError(
        StrFormat("plan section truncated: header declares %u bytes, %zu "
                  "present",
                  section_bytes, section.size()));
  }
  size_t prev_end = kPlanSectionHeaderBytes;
  for (size_t i = 0; i < kNumSlabs; ++i) {
    const char* row = base + kSlabTableOffset + i * 12;
    const uint32_t offset = GetU32(row);
    const uint32_t length = GetU32(row + 4);
    const size_t expected =
        ExpectedSlabBytes(i, num_attrs, num_stars, num_cores, num_postings);
    if (length != expected) {
      return Status::IOError(StrFormat(
          "plan section slab %s is %u bytes, counts imply %zu",
          kSlabNames[i], length, expected));
    }
    if (offset % kPlanSlabAlignment != 0) {
      return Status::IOError(
          StrFormat("plan section slab %s offset %u is not %zu-byte aligned",
                    kSlabNames[i], offset, kPlanSlabAlignment));
    }
    if (offset < prev_end) {
      return Status::IOError(StrFormat(
          "plan section slab %s at offset %u overlaps the bytes before it",
          kSlabNames[i], offset));
    }
    if (static_cast<uint64_t>(offset) + length > section_bytes) {
      return Status::IOError(StrFormat(
          "plan section slab %s [%u, +%u) escapes the %u-byte section",
          kSlabNames[i], offset, length, section_bytes));
    }
    prev_end = static_cast<size_t>(offset) + length;
    if (verify_slab_crcs &&
        GetU32(row + 8) != Crc32(base + offset, length)) {
      return Status::IOError(StrFormat(
          "plan section slab %s checksum mismatch (corrupt section)",
          kSlabNames[i]));
    }
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ScoringPlan>> PlanFromSectionBytes(
    const void* data, size_t size, std::shared_ptr<const void> storage) {
  const char* base = static_cast<const char*>(data);
  CSPM_RETURN_IF_ERROR(ValidatePlanSection({base, size},
                                           /*verify_slab_crcs=*/false));
  const uint32_t num_attrs = GetU32(base + 12);
  const uint32_t num_stars = GetU32(base + 16);
  const uint32_t num_cores = GetU32(base + 20);
  const uint32_t num_postings = GetU32(base + 24);
  auto slab = [&](size_t i) {
    return base + GetU32(base + kSlabTableOffset + i * 12);
  };
  ScoringPlan::Slabs slabs;
  slabs.leaf_size = {reinterpret_cast<const uint32_t*>(slab(0)), num_stars};
  slabs.code_length_bits = {reinterpret_cast<const double*>(slab(1)),
                            num_stars};
  slabs.core_offsets = {reinterpret_cast<const uint32_t*>(slab(2)),
                        static_cast<size_t>(num_stars) + 1};
  slabs.cores = {reinterpret_cast<const AttrId*>(slab(3)), num_cores};
  slabs.posting_offsets = {reinterpret_cast<const uint32_t*>(slab(4)),
                           static_cast<size_t>(num_attrs) + 1};
  slabs.postings = {reinterpret_cast<const uint32_t*>(slab(5)), num_postings};
  CSPM_ASSIGN_OR_RETURN(
      ScoringPlan plan,
      ScoringPlan::FromSlabs(num_attrs, slabs, std::move(storage)));
  return std::make_shared<const ScoringPlan>(std::move(plan));
}

StatusOr<std::shared_ptr<const ScoringPlan>> MmapPlanView::Open(
    const std::string& path, uint64_t offset, size_t section_bytes) {
  static auto* const mmap_opens = obs::GetCounter("store.plan_mmap_opens");
  if (section_bytes < kPlanSectionHeaderBytes) {
    return Status::IOError(
        StrFormat("plan section of %zu bytes is smaller than its header",
                  section_bytes));
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for mapping: " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError("cannot stat " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (static_cast<uint64_t>(st.st_size) < offset + section_bytes) {
    ::close(fd);
    return Status::IOError(StrFormat(
        "plan section [%llu, +%zu) escapes %s (%llu bytes)",
        static_cast<unsigned long long>(offset), section_bytes, path.c_str(),
        static_cast<unsigned long long>(st.st_size)));
  }
  // mmap offsets must be OS-page aligned; the store's 4 KiB extents are,
  // but round down anyway so the contract does not depend on it.
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t map_offset = (offset / page) * page;
  const size_t delta = static_cast<size_t>(offset - map_offset);
  const size_t map_length = delta + section_bytes;
  void* mapped = ::mmap(nullptr, map_length, PROT_READ, MAP_PRIVATE, fd,
                        static_cast<off_t>(map_offset));
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapped == MAP_FAILED) {
    return Status::IOError("mmap of " + path + " failed: " +
                           std::strerror(errno));
  }
  auto region = std::make_shared<MappedRegion>(mapped, map_length);
  mmap_opens->Add(1);
  return PlanFromSectionBytes(static_cast<const char*>(mapped) + delta,
                              section_bytes, std::move(region));
}

}  // namespace cspm::store
