// Multi-model store file: a catalog of named model records on top of the
// Pager. Each record is a self-contained blob (embedded attribute
// dictionary, model, optional graph snapshot) living in its own page
// chain; the catalog (name -> chain head) is itself one chain referenced
// from the header page. Opening a store reads the header and the catalog
// only — cost independent of how large the model payloads are; record
// bytes are read (and CRC-checked) on Get.
//
// Each model additionally carries a write-ahead log of graph deltas: the
// mutations applied since its record was Put. AppendDelta writes one
// small WAL record chain per delta (the multi-MB model record is not
// rewritten); ReadWal hands the pending deltas back for replay on open,
// salvaging the valid prefix when the tail record is corrupt or
// truncated; Put compacts — the fresh record reflects the deltas, so the
// log is cleared (see DESIGN.md §9).
//
// Mutations (Put / Delete / AppendDelta / ClearWal) rewrite the catalog
// chain and commit the pager atomically, so a crash never leaves a
// half-updated store and concurrent readers of the old file image are
// unaffected.
#ifndef CSPM_STORE_MODEL_STORE_H_
#define CSPM_STORE_MODEL_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cspm/model.h"
#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"
#include "graph/graph_delta.h"
#include "store/pager.h"
#include "util/status.h"

namespace cspm::store {

/// A model as persisted: the pattern model plus everything needed to use
/// it without the miner — the dictionary its attribute ids refer to, and
/// optionally the graph it was mined on (for vertex-level scoring).
struct StoredModel {
  core::CspmModel model;
  graph::AttributeDictionary dict;
  std::optional<graph::AttributedGraph> graph;
};

/// How the session re-mined when a WAL delta was appended, so replay can
/// roll forward the same way (the store cannot see the engine layer; the
/// shell maps this onto engine::UpdateMode). On-disk values — do not
/// renumber.
enum class WalDeltaMode : uint8_t {
  kExact = 0,  ///< bit-identical warm (or cold) re-mine
  kFast = 1,   ///< continue-from-final-model re-mine (DL-ε contract)
};

class ModelStore {
 public:
  /// Starts an empty store at `path`, replacing any existing file.
  static StatusOr<ModelStore> Create(const std::string& path);
  /// Opens an existing store (header + catalog reads only).
  static StatusOr<ModelStore> Open(const std::string& path);
  /// Open if anything exists at `path`, Create otherwise. An existing
  /// file that is not a healthy store fails with Open's error — it is
  /// never overwritten.
  static StatusOr<ModelStore> OpenOrCreate(const std::string& path);

  /// True if `path` looks like a store file (magic sniff).
  static bool IsStoreFile(const std::string& path) {
    return Pager::FileHasMagic(path);
  }

  ModelStore(ModelStore&&) noexcept = default;
  ModelStore& operator=(ModelStore&&) noexcept = default;

  /// Inserts or replaces `name`, committing atomically.
  Status Put(const std::string& name, const StoredModel& stored);

  /// Decodes the named record.
  StatusOr<StoredModel> Get(const std::string& name);

  /// Removes `name` (record and WAL) and recycles its pages, committing
  /// atomically.
  Status Delete(const std::string& name);

  // --- write-ahead log of graph deltas ------------------------------------

  /// Appends one graph delta to the model's WAL, committing atomically.
  /// Cost is proportional to the delta, not the model record. `mode`
  /// records how the live session re-mined, so replay can honour it.
  Status AppendDelta(const std::string& name, const graph::GraphDelta& delta,
                     WalDeltaMode mode = WalDeltaMode::kExact);

  struct WalReplay {
    std::vector<graph::GraphDelta> deltas;  ///< oldest first
    /// modes[i] is how deltas[i] was re-mined when appended (kExact for
    /// records written before the mode byte existed).
    std::vector<WalDeltaMode> modes;
    /// True when a corrupt or truncated tail record stopped the walk; the
    /// valid prefix is still returned, `dropped` counts the lost records.
    bool truncated = false;
    size_t dropped = 0;
  };
  /// Decodes the model's pending deltas (replay-on-open path).
  StatusOr<WalReplay> ReadWal(const std::string& name);

  /// Drops the model's pending deltas (compaction), committing. Also run
  /// implicitly by Put: a fresh record already reflects its deltas.
  Status ClearWal(const std::string& name);

  struct Info {
    std::string name;
    uint64_t bytes = 0;      ///< encoded record size
    uint64_t num_astars = 0;
    uint64_t wal_records = 0;  ///< pending deltas in the WAL
    bool has_graph = false;
  };
  /// Catalog listing, sorted by name.
  std::vector<Info> List() const;

  /// Deep structural audit of the page graph: walks the catalog chain,
  /// every record and WAL chain and the free list, checking that each
  /// page of the file is claimed by exactly one owner, that no chain
  /// cycles or escapes the file, and that every chain's payload size
  /// matches what the catalog promises. Catches pointer-level corruption
  /// that the per-page CRCs cannot see — a well-formed page spliced into
  /// the wrong chain, a truncated chain, a leaked or doubly-linked page.
  Status CheckInvariants();

  /// Everything CheckInvariants does, plus a decode pass: every record is
  /// decoded, cross-checked against its catalog entry, its model values
  /// bounds-checked against its dictionary, its graph snapshot run
  /// through the deep graph validator, and its WAL fully replayable.
  /// Backs `cspm_shell fsck <file>`.
  Status Fsck();

  bool Contains(const std::string& name) const {
    return catalog_.count(name) > 0;
  }
  size_t size() const { return catalog_.size(); }
  const std::string& path() const { return pager_.path(); }

 private:
  /// One pending WAL record: its chain head and encoded size.
  struct WalRecord {
    uint32_t head = Pager::kNoPage;
    uint64_t bytes = 0;
  };
  struct Entry {
    uint32_t head = Pager::kNoPage;
    uint64_t bytes = 0;
    uint64_t num_astars = 0;
    bool has_graph = false;
    std::vector<WalRecord> wal;  ///< oldest first
  };

  explicit ModelStore(Pager pager) : pager_(std::move(pager)) {}

  Status LoadCatalog();
  /// Rewrites the catalog chain from `catalog_` and commits the pager.
  Status SaveCatalogAndCommit();
  /// Frees every WAL chain of `entry` (best-effort) and clears the list.
  void DropWalChains(Entry* entry);

  Pager pager_;
  std::map<std::string, Entry> catalog_;
};

}  // namespace cspm::store

#endif  // CSPM_STORE_MODEL_STORE_H_
