// Multi-model store file: a catalog of named model records on top of the
// Pager. Each record is a self-contained blob (embedded attribute
// dictionary, model, optional graph snapshot) living in its own page
// chain, and — format v3 — each model additionally carries an
// mmap-native plan section (see plan_section.h) in a raw page extent, so
// serving can open a model in microseconds without decoding the record.
//
// The catalog itself (v3) is a bulk-loaded static B-tree over the pager:
// sorted leaf pages chained left-to-right through the page-header `next`
// link, interior pages holding (separator, child) fans, the root page id
// in the store header. Opening a store reads the header and the root
// page only; looking a model up descends O(log n) index pages (counted
// by `store.catalog.index_page_reads`) instead of decoding a linear
// catalog chain — the difference between "open one of 10k tenant models"
// and "decode 10k entries to find one". Mutations load the full catalog
// once, rebuild the index wholesale (it is small: entries are tens of
// bytes) and commit atomically. v2 files (linear catalog chain, no plan
// sections) still open read-only; the first mutation upgrades the file
// to v3 in place through the same atomic-rename commit.
//
// Each model also carries a write-ahead log of graph deltas: the
// mutations applied since its record was Put. AppendDelta writes one
// small WAL record chain per delta (the multi-MB model record is not
// rewritten); ReadWal hands the pending deltas back for replay on open,
// salvaging the valid prefix when the tail record is corrupt or
// truncated; Put compacts — the fresh record reflects the deltas, so the
// log is cleared (see DESIGN.md §9).
//
// Mutations (Put / Delete / AppendDelta / ClearWal) rewrite the catalog
// index and commit the pager atomically, so a crash never leaves a
// half-updated store and concurrent readers of the old file image are
// unaffected.
#ifndef CSPM_STORE_MODEL_STORE_H_
#define CSPM_STORE_MODEL_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cspm/model.h"
#include "cspm/scoring_plan.h"
#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"
#include "graph/graph_delta.h"
#include "store/pager.h"
#include "util/status.h"

namespace cspm::store {

/// A model as persisted: the pattern model plus everything needed to use
/// it without the miner — the dictionary its attribute ids refer to, and
/// optionally the graph it was mined on (for vertex-level scoring).
struct StoredModel {
  core::CspmModel model;
  graph::AttributeDictionary dict;
  std::optional<graph::AttributedGraph> graph;
};

/// How the session re-mined when a WAL delta was appended, so replay can
/// roll forward the same way (the store cannot see the engine layer; the
/// shell maps this onto engine::UpdateMode). On-disk values — do not
/// renumber.
enum class WalDeltaMode : uint8_t {
  kExact = 0,  ///< bit-identical warm (or cold) re-mine
  kFast = 1,   ///< continue-from-final-model re-mine (DL-ε contract)
};

class ModelStore {
 public:
  /// Starts an empty store at `path`, replacing any existing file.
  static StatusOr<ModelStore> Create(const std::string& path);
  /// Opens an existing store (header + index root reads only).
  static StatusOr<ModelStore> Open(const std::string& path);
  /// Open if anything exists at `path`, Create otherwise. An existing
  /// file that is not a healthy store fails with Open's error — it is
  /// never overwritten.
  static StatusOr<ModelStore> OpenOrCreate(const std::string& path);

  /// True if `path` looks like a store file (magic sniff).
  static bool IsStoreFile(const std::string& path) {
    return Pager::FileHasMagic(path);
  }

  ModelStore(ModelStore&&) noexcept = default;
  ModelStore& operator=(ModelStore&&) noexcept = default;

  /// Inserts or replaces `name`, committing atomically. Compiles and
  /// persists the model's mmap-native plan section alongside the record.
  Status Put(const std::string& name, const StoredModel& stored);

  /// Put for a batch: all records and plan sections are written, then the
  /// catalog index is rebuilt and committed once — the way to populate a
  /// many-thousand-model store without paying one full commit per model.
  /// All-or-nothing: on error the durable file is untouched.
  Status PutMany(
      const std::vector<std::pair<std::string, StoredModel>>& models);

  /// Decodes the named record.
  StatusOr<StoredModel> Get(const std::string& name);

  /// Opens the model's plan section as a ready-to-serve mmap view: zero
  /// decode, zero allocation beyond the mapping itself, scores
  /// bit-identical to a freshly compiled plan. NotFound when the entry
  /// predates v3 (record saved by a v2 binary and not yet re-Put) — the
  /// caller falls back to Get + Compile.
  StatusOr<std::shared_ptr<const core::ScoringPlan>> OpenPlan(
      const std::string& name);

  /// Removes `name` (record, plan section and WAL) and recycles its
  /// pages, committing atomically.
  Status Delete(const std::string& name);

  // --- write-ahead log of graph deltas ------------------------------------

  /// Appends one graph delta to the model's WAL, committing atomically.
  /// Cost is proportional to the delta, not the model record. `mode`
  /// records how the live session re-mined, so replay can honour it.
  Status AppendDelta(const std::string& name, const graph::GraphDelta& delta,
                     WalDeltaMode mode = WalDeltaMode::kExact);

  struct WalReplay {
    std::vector<graph::GraphDelta> deltas;  ///< oldest first
    /// modes[i] is how deltas[i] was re-mined when appended (kExact for
    /// records written before the mode byte existed).
    std::vector<WalDeltaMode> modes;
    /// True when a corrupt or truncated tail record stopped the walk; the
    /// valid prefix is still returned, `dropped` counts the lost records.
    bool truncated = false;
    size_t dropped = 0;
  };
  /// Decodes the model's pending deltas (replay-on-open path).
  StatusOr<WalReplay> ReadWal(const std::string& name);

  /// Drops the model's pending deltas (compaction), committing. Also run
  /// implicitly by Put: a fresh record already reflects its deltas.
  Status ClearWal(const std::string& name);

  struct Info {
    std::string name;
    uint64_t bytes = 0;      ///< encoded record size
    uint64_t num_astars = 0;
    uint64_t wal_records = 0;  ///< pending deltas in the WAL
    uint64_t plan_bytes = 0;   ///< plan section size (0: v2 entry, none)
    bool has_graph = false;
  };
  /// Catalog listing, sorted by name. Loads the full catalog.
  std::vector<Info> List();

  /// Deep structural audit of the page graph: walks the catalog index
  /// (validating separator/leaf ordering and the leaf level links),
  /// every record, WAL chain and plan extent and the free list, checking
  /// that each page of the file is claimed by exactly one owner, that no
  /// chain cycles or escapes the file, and that every chain's payload
  /// size matches what the catalog promises. Catches pointer-level
  /// corruption that the per-page CRCs cannot see — a well-formed page
  /// spliced into the wrong chain, a truncated chain, a leaked or
  /// doubly-linked page, a bent index leaf link.
  Status CheckInvariants();

  /// Everything CheckInvariants does, plus a decode pass: every record is
  /// decoded, cross-checked against its catalog entry, its model values
  /// bounds-checked against its dictionary, its graph snapshot run
  /// through the deep graph validator, its WAL fully replayable, and its
  /// plan section swept (per-slab CRCs, deep plan invariants, and a
  /// byte-for-byte match against a recompile of the decoded model — the
  /// on-disk bit-identity contract). Backs `cspm_shell fsck <file>`.
  Status Fsck();

  /// True when `name` exists. May descend the index (O(log n) page
  /// reads) on a lazily opened store.
  bool Contains(const std::string& name);
  /// Number of models. O(1): the index root carries the total count.
  size_t size() const { return catalog_loaded_ ? catalog_.size()
                                               : catalog_count_; }
  const std::string& path() const { return pager_.path(); }

 private:
  /// One pending WAL record: its chain head and encoded size.
  struct WalRecord {
    uint32_t head = Pager::kNoPage;
    uint64_t bytes = 0;
  };
  struct Entry {
    uint32_t head = Pager::kNoPage;
    uint64_t bytes = 0;
    uint64_t num_astars = 0;
    bool has_graph = false;
    /// Raw extent holding the mmap-native plan section; num_pages == 0
    /// for entries written by v2 binaries (no section).
    Pager::Extent plan_extent;
    /// Exact encoded section size (the extent is zero-padded to pages).
    uint64_t plan_bytes = 0;
    std::vector<WalRecord> wal;  ///< oldest first
  };

  /// One parsed catalog index node.
  struct IndexNode {
    bool leaf = false;
    uint64_t count = 0;  ///< entries in this subtree
    uint32_t next = Pager::kNoPage;  ///< leaf level link (leaves only)
    std::vector<std::pair<std::string, Entry>> entries;  ///< leaves
    /// (separator, child page). children[0].first is the subtree's first
    /// name — also used as this node's separator one level up.
    std::vector<std::pair<std::string, uint32_t>> children;
  };

  explicit ModelStore(Pager pager) : pager_(std::move(pager)) {}

  Status LoadCatalog();
  /// Loads every entry into catalog_ (mutations and List need the full
  /// map; lookups do not).
  Status EnsureLoaded();
  /// Finds one entry: the in-memory map when loaded, otherwise an
  /// O(log n) index descent (result cached). NotFound when absent.
  StatusOr<const Entry*> LookupEntry(const std::string& name);
  /// Reads and parses one index node, counting the page read.
  StatusOr<IndexNode> ReadIndexNode(uint32_t page_id);
  /// Frees the on-disk catalog representation (chain or index),
  /// best-effort, and clears the header reference.
  void FreeDiskCatalog();
  /// Collects every page of the index rooted at `root` (interior nodes
  /// and leaves; cycle-guarded). Pages found before an error are kept.
  Status CollectIndexPages(uint32_t root, std::vector<uint32_t>* pages);
  /// Rebuilds the catalog index from `catalog_` and commits the pager.
  Status SaveCatalogAndCommit();
  /// Writes `stored`'s record chain and plan section; fills `entry`.
  Status WriteModelRecord(const StoredModel& stored, Entry* entry);
  /// Frees every WAL chain of `entry` (best-effort) and clears the list.
  void DropWalChains(Entry* entry);

  Pager pager_;
  /// All entries when catalog_loaded_; otherwise empty (see
  /// lookup_cache_ for the descent results).
  std::map<std::string, Entry> catalog_;
  /// Entries found by index descent on a lazily opened store.
  std::map<std::string, Entry> lookup_cache_;
  bool catalog_loaded_ = false;
  /// Total entries, from the index root (meaningful when not loaded).
  uint64_t catalog_count_ = 0;
  /// Whether the committed file's catalog is a v3 index (vs. v2 chain).
  bool disk_catalog_is_index_ = false;
};

}  // namespace cspm::store

#endif  // CSPM_STORE_MODEL_STORE_H_
