#include "store/pager.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace cspm::store {
namespace {

constexpr size_t kHeaderCrcOffset = Pager::kPageSize - 4;

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

std::string ErrnoText() { return std::strerror(errno); }

}  // namespace

bool Pager::FileHasMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[8] = {};
  in.read(head, sizeof(head));
  return in.gcount() == sizeof(head) &&
         std::string_view(head, sizeof(head)) == kMagic;
}

StatusOr<Pager> Pager::Create(const std::string& path) {
  Pager pager;
  pager.path_ = path;
  pager.num_pages_ = 1;
  CSPM_RETURN_IF_ERROR(pager.Commit());
  return pager;
}

StatusOr<Pager> Pager::Open(const std::string& path) {
  Pager pager;
  pager.path_ = path;
  pager.file_.open(path, std::ios::binary);
  if (!pager.file_) {
    return Status::IOError("cannot open store file " + path + ": " +
                           ErrnoText());
  }
  pager.file_.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(pager.file_.tellg());
  if (file_bytes < kPageSize) {
    return Status::IOError(
        StrFormat("truncated store file %s: %llu bytes, need at least one "
                  "%u-byte page",
                  path.c_str(), static_cast<unsigned long long>(file_bytes),
                  kPageSize));
  }

  char header[kPageSize];
  pager.file_.seekg(0);
  pager.file_.read(header, kPageSize);
  if (pager.file_.gcount() != kPageSize) {
    return Status::IOError("short read of store header in " + path);
  }
  if (std::string_view(header, kMagic.size()) != kMagic) {
    return Status::IOError("not a cspm store file (bad magic): " + path);
  }
  const uint32_t version = GetU32(header + 8);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    // v2 changed the catalog layout (per-model WAL lists), so v1 files
    // are rejected here with a format error rather than misparsed below.
    return Status::IOError(
        StrFormat("store file %s has format version %u, this build reads "
                  "%u..%u",
                  path.c_str(), version, kMinFormatVersion, kFormatVersion));
  }
  pager.version_ = version;
  const uint32_t page_size = GetU32(header + 12);
  if (page_size != kPageSize) {
    return Status::IOError(StrFormat("store file %s declares page size %u, "
                                     "expected %u",
                                     path.c_str(), page_size, kPageSize));
  }
  const uint32_t stored_crc = GetU32(header + kHeaderCrcOffset);
  const uint32_t actual_crc = Crc32(header, kHeaderCrcOffset);
  if (stored_crc != actual_crc) {
    return Status::IOError("store header checksum mismatch in " + path);
  }
  pager.num_pages_ = GetU32(header + 16);
  pager.free_head_ = GetU32(header + 20);
  pager.catalog_head_ = GetU32(header + 24);
  if (pager.num_pages_ == 0 || pager.free_head_ >= pager.num_pages_ ||
      pager.catalog_head_ >= pager.num_pages_) {
    return Status::IOError("store header page references out of range in " +
                           path);
  }
  const uint64_t expected_bytes =
      static_cast<uint64_t>(pager.num_pages_) * kPageSize;
  if (file_bytes != expected_bytes) {
    return Status::IOError(StrFormat(
        "truncated store file %s: header declares %u pages (%llu bytes) but "
        "file has %llu bytes",
        path.c_str(), pager.num_pages_,
        static_cast<unsigned long long>(expected_bytes),
        static_cast<unsigned long long>(file_bytes)));
  }
  return pager;
}

Status Pager::ReadRawPage(uint32_t page_id, char* out) {
  static auto* const page_reads = obs::GetCounter("store.page_reads");
  page_reads->Add(1);
  if (!file_.is_open()) {
    return Status::Internal(
        StrFormat("page %u requested but store %s has no committed image",
                  page_id, path_.c_str()));
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.read(out, kPageSize);
  if (file_.gcount() != kPageSize) {
    return Status::IOError(
        StrFormat("short read of page %u in %s", page_id, path_.c_str()));
  }
  return Status::OK();
}

Status Pager::ValidateRawPage(uint32_t page_id, const char* raw,
                              uint32_t* next, uint32_t* payload_len) const {
  const uint32_t stored_crc = GetU32(raw);
  const uint32_t actual_crc = Crc32(raw + 4, kPageSize - 4);
  if (stored_crc != actual_crc) {
    obs::GetCounter("store.crc_failures")->Add(1);
    return Status::IOError(StrFormat("page %u checksum mismatch in %s "
                                     "(corrupt store file)",
                                     page_id, path_.c_str()));
  }
  *next = GetU32(raw + 4);
  *payload_len = GetU32(raw + 8);
  if (*payload_len > kPagePayload || *next >= num_pages_) {
    return Status::IOError(
        StrFormat("page %u has corrupt header fields in %s", page_id,
                  path_.c_str()));
  }
  return Status::OK();
}

StatusOr<Pager::PageHeader> Pager::ReadPageHeader(uint32_t page_id) {
  if (page_id == kNoPage || page_id >= num_pages_) {
    return Status::IOError(StrFormat("page %u out of range in %s (%u pages)",
                                     page_id, path_.c_str(), num_pages_));
  }
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    return PageHeader{it->second.next, it->second.payload_len};
  }
  char raw[kPageSize];
  CSPM_RETURN_IF_ERROR(ReadRawPage(page_id, raw));
  PageHeader header;
  CSPM_RETURN_IF_ERROR(
      ValidateRawPage(page_id, raw, &header.next, &header.payload_len));
  return header;
}

StatusOr<Pager::Page*> Pager::FetchPage(uint32_t page_id) {
  if (page_id == kNoPage || page_id >= num_pages_) {
    return Status::IOError(StrFormat("page %u out of range in %s (%u pages)",
                                     page_id, path_.c_str(), num_pages_));
  }
  auto it = cache_.find(page_id);
  if (it != cache_.end()) return &it->second;

  char raw[kPageSize];
  CSPM_RETURN_IF_ERROR(ReadRawPage(page_id, raw));
  Page page;
  CSPM_RETURN_IF_ERROR(
      ValidateRawPage(page_id, raw, &page.next, &page.payload_len));
  std::memcpy(page.payload.data(), raw + kPageHeaderBytes, kPagePayload);
  return &cache_.emplace(page_id, page).first->second;
}

StatusOr<uint32_t> Pager::AllocatePage() {
  if (free_head_ != kNoPage) {
    const uint32_t id = free_head_;
    CSPM_ASSIGN_OR_RETURN(Page * page, FetchPage(id));
    free_head_ = page->next;
    *page = Page{};
    page->dirty = true;
    return id;
  }
  const uint32_t id = num_pages_++;
  Page& page = cache_[id];
  page = Page{};
  page.dirty = true;
  return id;
}

void Pager::FreePage(uint32_t page_id) {
  Page& page = cache_[page_id];
  page = Page{};
  page.next = free_head_;
  page.dirty = true;
  free_head_ = page_id;
}

StatusOr<Pager::DataPage> Pager::ReadDataPage(uint32_t page_id) {
  if (page_id == kNoPage || page_id >= num_pages_) {
    return Status::IOError(StrFormat("page %u out of range in %s (%u pages)",
                                     page_id, path_.c_str(), num_pages_));
  }
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    DataPage out;
    out.payload.assign(
        reinterpret_cast<const char*>(it->second.payload.data()),
        it->second.payload_len);
    out.next = it->second.next;
    return out;
  }
  char raw[kPageSize];
  CSPM_RETURN_IF_ERROR(ReadRawPage(page_id, raw));
  DataPage out;
  uint32_t payload_len = 0;
  CSPM_RETURN_IF_ERROR(
      ValidateRawPage(page_id, raw, &out.next, &payload_len));
  out.payload.assign(raw + kPageHeaderBytes, payload_len);
  return out;
}

StatusOr<uint32_t> Pager::WriteDataPage(std::string_view payload,
                                        uint32_t next) {
  if (payload.size() > kPagePayload) {
    return Status::InvalidArgument(
        StrFormat("single-page payload of %zu bytes exceeds the %u-byte "
                  "page payload",
                  payload.size(), kPagePayload));
  }
  CSPM_ASSIGN_OR_RETURN(uint32_t id, AllocatePage());
  Page& page = cache_.at(id);
  if (!payload.empty()) {
    std::memcpy(page.payload.data(), payload.data(), payload.size());
  }
  page.payload_len = static_cast<uint32_t>(payload.size());
  page.next = next;
  return id;
}

Status Pager::FreeSinglePage(uint32_t page_id) {
  if (page_id == kNoPage || page_id >= num_pages_) {
    return Status::IOError(StrFormat("page %u out of range in %s (%u pages)",
                                     page_id, path_.c_str(), num_pages_));
  }
  FreePage(page_id);
  return Status::OK();
}

StatusOr<uint32_t> Pager::AllocateExtentRun(uint32_t n) {
  if (free_head_ == kNoPage) return kNoPage;
  // Materialize the free list (it is short: freed chains and sections of
  // this store, not a global heap) and look for n consecutive ids.
  std::vector<uint32_t> free_ids;
  uint32_t id = free_head_;
  uint32_t visited = 0;
  while (id != kNoPage) {
    if (++visited > num_pages_) {
      return Status::IOError("free list cycles in " + path_);
    }
    CSPM_ASSIGN_OR_RETURN(Page * page, FetchPage(id));
    free_ids.push_back(id);
    id = page->next;
  }
  std::sort(free_ids.begin(), free_ids.end());
  uint32_t run_start = kNoPage;
  for (size_t i = 0, run = 1; i < free_ids.size(); ++i, ++run) {
    if (i > 0 && free_ids[i] != free_ids[i - 1] + 1) run = 1;
    if (run >= n) {
      run_start = free_ids[i] - (n - 1);
      break;
    }
  }
  if (run_start == kNoPage) return kNoPage;
  // Rebuild the free list without the claimed run; the run's pages leave
  // the header-carrying world entirely (their cache entries go away — as
  // raw extent pages they must not be committed with a page header).
  free_head_ = kNoPage;
  for (auto it = free_ids.rbegin(); it != free_ids.rend(); ++it) {
    if (*it >= run_start && *it < run_start + n) {
      cache_.erase(*it);
      continue;
    }
    Page& page = cache_.at(*it);
    page.next = free_head_;
    page.dirty = true;
    free_head_ = *it;
  }
  return run_start;
}

StatusOr<Pager::Extent> Pager::WriteExtent(std::string_view bytes) {
  if (bytes.empty()) {
    return Status::InvalidArgument("an extent must carry at least one byte");
  }
  Extent extent;
  extent.num_pages =
      static_cast<uint32_t>((bytes.size() + kPageSize - 1) / kPageSize);
  CSPM_ASSIGN_OR_RETURN(extent.first_page,
                        AllocateExtentRun(extent.num_pages));
  if (extent.first_page == kNoPage) {
    extent.first_page = num_pages_;
    num_pages_ += extent.num_pages;
  }
  size_t offset = 0;
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    auto raw = std::make_unique<std::array<char, kPageSize>>();
    raw->fill(0);
    const size_t n = std::min<size_t>(kPageSize, bytes.size() - offset);
    std::memcpy(raw->data(), bytes.data() + offset, n);
    offset += n;
    raw_pages_[extent.first_page + i] = std::move(raw);
  }
  return extent;
}

StatusOr<std::string> Pager::ReadExtent(Extent extent) {
  if (extent.first_page == kNoPage || extent.num_pages == 0 ||
      extent.first_page >= num_pages_ ||
      num_pages_ - extent.first_page < extent.num_pages) {
    return Status::IOError(
        StrFormat("extent [%u, +%u) out of range in %s (%u pages)",
                  extent.first_page, extent.num_pages, path_.c_str(),
                  num_pages_));
  }
  std::string out;
  out.resize(static_cast<size_t>(extent.num_pages) * kPageSize);
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    const uint32_t id = extent.first_page + i;
    char* dst = out.data() + static_cast<size_t>(i) * kPageSize;
    auto it = raw_pages_.find(id);
    if (it != raw_pages_.end()) {
      std::memcpy(dst, it->second->data(), kPageSize);
    } else {
      CSPM_RETURN_IF_ERROR(ReadRawPage(id, dst));
    }
  }
  return out;
}

Status Pager::FreeExtent(Extent extent) {
  if (extent.first_page == kNoPage || extent.num_pages == 0 ||
      extent.first_page >= num_pages_ ||
      num_pages_ - extent.first_page < extent.num_pages) {
    return Status::IOError(
        StrFormat("extent [%u, +%u) out of range in %s (%u pages)",
                  extent.first_page, extent.num_pages, path_.c_str(),
                  num_pages_));
  }
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    const uint32_t id = extent.first_page + i;
    raw_pages_.erase(id);
    FreePage(id);
  }
  return Status::OK();
}

StatusOr<uint32_t> Pager::WriteChain(std::string_view bytes) {
  static auto* const write_hist =
      obs::GetHistogram("phase.store.write_chain");
  obs::ScopedPhaseTimer write_timer(write_hist);
  uint32_t head = kNoPage;
  Page* prev = nullptr;
  size_t offset = 0;
  do {
    CSPM_ASSIGN_OR_RETURN(uint32_t id, AllocatePage());
    if (prev != nullptr) {
      prev->next = id;
    } else {
      head = id;
    }
    Page& page = cache_.at(id);
    const size_t n = std::min<size_t>(kPagePayload, bytes.size() - offset);
    std::memcpy(page.payload.data(), bytes.data() + offset, n);
    page.payload_len = static_cast<uint32_t>(n);
    offset += n;
    prev = &page;
  } while (offset < bytes.size());
  return head;
}

StatusOr<std::string> Pager::ReadChain(uint32_t head) {
  static auto* const read_hist = obs::GetHistogram("phase.store.read_chain");
  obs::ScopedPhaseTimer read_timer(read_hist);
  std::string out;
  uint32_t id = head;
  uint32_t visited = 0;
  char raw[kPageSize];
  while (id != kNoPage) {
    if (++visited > num_pages_) {
      return Status::IOError(
          StrFormat("page chain starting at %u cycles in %s", head,
                    path_.c_str()));
    }
    if (id >= num_pages_) {
      return Status::IOError(StrFormat("page %u out of range in %s (%u pages)",
                                       id, path_.c_str(), num_pages_));
    }
    // Fast path: untouched pages stream straight from the file, validated
    // but never copied into the cache — a chain is typically decoded once
    // per Get and caching megabytes of record pages would be pure waste.
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      out.append(reinterpret_cast<const char*>(it->second.payload.data()),
                 it->second.payload_len);
      id = it->second.next;
      continue;
    }
    CSPM_RETURN_IF_ERROR(ReadRawPage(id, raw));
    uint32_t next = 0;
    uint32_t payload_len = 0;
    CSPM_RETURN_IF_ERROR(ValidateRawPage(id, raw, &next, &payload_len));
    out.append(raw + kPageHeaderBytes, payload_len);
    id = next;
  }
  return out;
}

Status Pager::FreeChain(uint32_t head) {
  uint32_t id = head;
  uint32_t visited = 0;
  while (id != kNoPage) {
    if (++visited > num_pages_) {
      return Status::IOError(
          StrFormat("page chain starting at %u cycles in %s", head,
                    path_.c_str()));
    }
    CSPM_ASSIGN_OR_RETURN(Page * page, FetchPage(id));
    const uint32_t next = page->next;
    FreePage(id);
    id = next;
  }
  return Status::OK();
}

Status Pager::Commit() {
  static auto* const commit_hist = obs::GetHistogram("phase.store.commit");
  static auto* const pages_written = obs::GetCounter("store.pages_written");
  obs::ScopedPhaseTimer commit_timer(commit_hist);
  pages_written->Add(num_pages_);
  const std::string tmp_path = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot open " + tmp_path + " for writing: " +
                           ErrnoText());
  }
  auto fail = [&](std::string msg) {
    std::fclose(out);
    std::remove(tmp_path.c_str());
    return Status::IOError(std::move(msg));
  };

  char raw[kPageSize];
  // Header page.
  std::memset(raw, 0, kPageSize);
  std::memcpy(raw, kMagic.data(), kMagic.size());
  PutU32(raw + 8, kFormatVersion);
  PutU32(raw + 12, kPageSize);
  PutU32(raw + 16, num_pages_);
  PutU32(raw + 20, free_head_);
  PutU32(raw + 24, catalog_head_);
  PutU32(raw + kHeaderCrcOffset, Crc32(raw, kHeaderCrcOffset));
  if (std::fwrite(raw, 1, kPageSize, out) != kPageSize) {
    return fail("write failed for " + tmp_path + ": " + ErrnoText());
  }

  for (uint32_t id = 1; id < num_pages_; ++id) {
    auto rit = raw_pages_.find(id);
    if (rit != raw_pages_.end()) {
      // Dirty raw-extent page: its bytes go to disk exactly as given —
      // no header, no per-page CRC (the plan section checksums itself).
      if (std::fwrite(rit->second->data(), 1, kPageSize, out) != kPageSize) {
        return fail("write failed for " + tmp_path + ": " + ErrnoText());
      }
      continue;
    }
    auto it = cache_.find(id);
    if (it == cache_.end()) {
      // Untouched page: copy the committed bytes through verbatim.
      Status st = ReadRawPage(id, raw);
      if (!st.ok()) return fail(st.message());
    } else {
      const Page& page = it->second;
      PutU32(raw + 4, page.next);
      PutU32(raw + 8, page.payload_len);
      std::memcpy(raw + kPageHeaderBytes, page.payload.data(), kPagePayload);
      PutU32(raw, Crc32(raw + 4, kPageSize - 4));
    }
    if (std::fwrite(raw, 1, kPageSize, out) != kPageSize) {
      return fail("write failed for " + tmp_path + ": " + ErrnoText());
    }
  }

  if (std::fflush(out) != 0 || ::fsync(::fileno(out)) != 0) {
    return fail("flush failed for " + tmp_path + ": " + ErrnoText());
  }
  if (std::fclose(out) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("close failed for " + tmp_path + ": " +
                           ErrnoText());
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path_, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::IOError("rename " + tmp_path + " -> " + path_ +
                           " failed: " + ec.message());
  }

  for (auto& [id, page] : cache_) page.dirty = false;
  // Raw extent pages are durable now; drop the in-memory images (plan
  // sections can be large) — ReadExtent streams from the file again.
  raw_pages_.clear();
  version_ = kFormatVersion;  // Commit always writes the current format
  // Re-point the read handle at the newly committed image.
  if (file_.is_open()) file_.close();
  file_.clear();
  file_.open(path_, std::ios::binary);
  if (!file_) {
    return Status::IOError("cannot reopen committed store " + path_ + ": " +
                           ErrnoText());
  }
  return Status::OK();
}

}  // namespace cspm::store
