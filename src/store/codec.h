// Binary codec for store records: LEB128 varints, delta-encoded sorted id
// lists, and raw little-endian doubles (bit-exact round trips, unlike the
// text format's printed decimals). A store record is fully self-contained:
// it embeds the attribute dictionary (and optionally a graph snapshot), so
// a model can be decoded in a process that never saw the source graph.
#ifndef CSPM_STORE_CODEC_H_
#define CSPM_STORE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cspm/model.h"
#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"
#include "graph/graph_delta.h"
#include "util/status.h"

namespace cspm::store {

/// Append-only encoder over a byte buffer.
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  /// Raw IEEE-754 bits, little-endian — decodes bit-identically.
  void PutDouble(double v);
  /// Varint length prefix + raw bytes.
  void PutString(std::string_view s);
  /// Sorted id list: count, first value, then deltas (all varints).
  void PutDeltaIds(const std::vector<uint32_t>& sorted_ids);
  /// Strong-id overload; encodes the underlying values.
  void PutDeltaIds(const std::vector<graph::AttrId>& sorted_ids);

  const std::string& data() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader; every method fails cleanly on truncated or
/// malformed input instead of reading past the buffer.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint64_t> ReadVarint();
  StatusOr<double> ReadDouble();
  StatusOr<std::string_view> ReadString();
  Status ReadDeltaIds(std::vector<uint32_t>* out);
  /// Strong-id overload; decodes into explicitly constructed ids.
  Status ReadDeltaIds(std::vector<graph::AttrId>* out);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- domain encodings -----------------------------------------------------

void EncodeDictionary(const graph::AttributeDictionary& dict, Encoder* enc);
StatusOr<graph::AttributeDictionary> DecodeDictionary(Decoder* dec);

void EncodeModel(const core::CspmModel& model, Encoder* enc);
StatusOr<core::CspmModel> DecodeModel(Decoder* dec);

/// Graph snapshot: vertex attribute lists + adjacency, delta-varint
/// encoded. Attribute ids refer to the record's embedded dictionary.
void EncodeGraph(const graph::AttributedGraph& g, Encoder* enc);
/// Rebuilds the graph; `dict` must be the dictionary decoded from the same
/// record (its names are re-interned in id order).
StatusOr<graph::AttributedGraph> DecodeGraph(
    Decoder* dec, const graph::AttributeDictionary& dict);

/// Graph delta, the WAL record payload: attribute names travel as strings
/// (a delta may introduce values unknown to the stored dictionary).
void EncodeGraphDelta(const graph::GraphDelta& delta, Encoder* enc);
StatusOr<graph::GraphDelta> DecodeGraphDelta(Decoder* dec);

/// Rewrites a model's attribute ids from the dictionary it was stored with
/// to a target dictionary (by name), e.g. when loading a store record into
/// a session bound to a live graph. Fails if a name is missing from `to`.
StatusOr<core::CspmModel> RemapModelAttributes(
    const core::CspmModel& model, const graph::AttributeDictionary& from,
    const graph::AttributeDictionary& to);

}  // namespace cspm::store

#endif  // CSPM_STORE_CODEC_H_
