// Paged store file, following the classic database pager idiom: the file
// is an array of fixed 4 KiB pages, page 0 is the header, every page
// carries a CRC-32, freed pages are recycled through an on-disk free list,
// and Commit() is atomic via write-to-temp + fsync + rename (readers of
// the old file are never exposed to a half-written state).
//
// File layout (see DESIGN.md §6 for the full table):
//
//   page 0 (header):
//     [0..7]     magic "CSPMSTR1"
//     [8..11]    format version        (u32 LE)
//     [12..15]   page size             (u32 LE, 4096)
//     [16..19]   num_pages             (u32 LE, header included)
//     [20..23]   free-list head page   (u32 LE, 0 = empty)
//     [24..27]   catalog head page     (u32 LE, 0 = none)
//     [28..4091] reserved (zero)
//     [4092..]   CRC-32 of bytes [0, 4092)
//
//   page k > 0 (data / free):
//     [0..3]     CRC-32 of bytes [4, 4096)
//     [4..7]     next page in chain    (u32 LE, 0 = end)
//     [8..11]    payload length        (u32 LE, <= 4084)
//     [12..]     payload
//
//   raw extent pages (v3): runs of whole pages carrying verbatim bytes —
//     no page header, no per-page CRC. Used for the mmap-native plan
//     sections, whose file bytes must be exactly the bytes ScoreInto
//     reads (the section carries its own header + per-slab CRCs, see
//     plan_section.h). Which pages are extents is recorded by the owner
//     (the ModelStore catalog), never guessed by the pager.
//
// v3 keeps the v2 page geometry; it adds raw extents and switches the
// catalog to a paged index. v2 files open fine (version recorded on the
// pager); Commit always writes v3, so the first mutation upgrades in
// place through the usual atomic rename.
//
// The pager is a single-writer structure: concurrent *readers* open their
// own Pager over the same path (pages are read lazily and validated on
// first touch); concurrent writers are not supported.
#ifndef CSPM_STORE_PAGER_H_
#define CSPM_STORE_PAGER_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace cspm::store {

class Pager {
 public:
  static constexpr uint32_t kPageSize = 4096;
  static constexpr uint32_t kPageHeaderBytes = 12;
  static constexpr uint32_t kPagePayload = kPageSize - kPageHeaderBytes;
  static constexpr uint32_t kNoPage = 0;
  /// v3: raw extents (mmap-native plan sections) + paged catalog index.
  static constexpr uint32_t kFormatVersion = 3;
  /// Oldest version Open still reads (v2: per-model WAL catalog lists).
  static constexpr uint32_t kMinFormatVersion = 2;
  static constexpr std::string_view kMagic = "CSPMSTR1";  // 8 bytes

  /// Starts a fresh store at `path` (header page only) and commits it,
  /// replacing any existing file.
  static StatusOr<Pager> Create(const std::string& path);

  /// Opens an existing store: validates magic, version, page size, header
  /// CRC and file length. Cost is one page read regardless of store size;
  /// data pages are read (and CRC-checked) lazily.
  static StatusOr<Pager> Open(const std::string& path);

  /// True if the file starts with the store magic (cheap format sniff; a
  /// missing or short file is simply "not a store file").
  static bool FileHasMagic(const std::string& path);

  Pager(Pager&&) noexcept = default;
  Pager& operator=(Pager&&) noexcept = default;

  const std::string& path() const { return path_; }
  uint32_t num_pages() const { return num_pages_; }
  /// Format version of the file this pager was opened over (Create()d
  /// stores are current). Commit always writes kFormatVersion.
  uint32_t format_version() const { return version_; }

  uint32_t catalog_head() const { return catalog_head_; }
  void set_catalog_head(uint32_t page_id) { catalog_head_ = page_id; }

  uint32_t free_head() const { return free_head_; }

  /// Validated header fields of one data page.
  struct PageHeader {
    uint32_t next = kNoPage;
    uint32_t payload_len = 0;
  };
  /// Reads and CRC-validates one page, returning only its header fields
  /// without caching the payload. The audit surface used by
  /// ModelStore::CheckInvariants to walk every chain of the file without
  /// decoding (or retaining) any record bytes.
  StatusOr<PageHeader> ReadPageHeader(uint32_t page_id);

  // --- single-page API (catalog index nodes) -----------------------------

  /// One validated data page: its payload bytes and next link.
  struct DataPage {
    std::string payload;
    uint32_t next = kNoPage;
  };
  /// Reads and CRC-validates exactly one page — never follows `next`.
  /// Index nodes are read this way (an index leaf's `next` links the leaf
  /// level, not a byte stream, so ReadChain would misparse it).
  StatusOr<DataPage> ReadDataPage(uint32_t page_id);

  /// Writes one fully formed data page with an explicit next link;
  /// `payload` must fit a single page. The building block for index
  /// nodes, whose links are page-level rather than chain-level.
  StatusOr<uint32_t> WriteDataPage(std::string_view payload, uint32_t next);

  /// Returns exactly one page to the free list (index nodes are freed
  /// per page; FreeChain would walk a leaf's level link as a chain).
  Status FreeSinglePage(uint32_t page_id);

  // --- raw extent API (mmap-native plan sections) ------------------------

  /// A run of contiguous whole pages carrying verbatim bytes.
  struct Extent {
    uint32_t first_page = kNoPage;
    uint32_t num_pages = 0;
  };

  /// Writes `bytes` as a fresh extent (zero-padded to whole pages),
  /// reusing a contiguous run of free pages when one is long enough and
  /// growing the file at the tail otherwise — so replacing a model's
  /// section steadily recycles the old one's pages instead of bloating
  /// the file. Durable after the next Commit.
  StatusOr<Extent> WriteExtent(std::string_view bytes);

  /// Reads an extent back verbatim (num_pages * kPageSize bytes, padding
  /// included). The fsck path; serving maps the committed file instead.
  StatusOr<std::string> ReadExtent(Extent extent);

  /// Returns an extent's pages to the free list, where chain allocation
  /// can recycle them (future extents still append; contiguity would be
  /// lost otherwise).
  Status FreeExtent(Extent extent);

  /// Byte offset of an extent's first page in the committed file — the
  /// mmap offset. Page-aligned by construction (kPageSize multiple).
  static uint64_t ExtentFileOffset(uint32_t first_page) {
    return static_cast<uint64_t>(first_page) * kPageSize;
  }

  // --- chain API (what ModelStore uses) ----------------------------------

  /// Writes `bytes` into a freshly allocated page chain; returns its head.
  StatusOr<uint32_t> WriteChain(std::string_view bytes);

  /// Reads a whole chain back as the concatenation of its page payloads.
  StatusOr<std::string> ReadChain(uint32_t head);

  /// Returns the pages of the chain to the free list. If a page fails
  /// validation the walk stops there (its `next` cannot be trusted) and
  /// an error describes the corrupt page; pages freed before the stop
  /// stay freed, the unreachable tail leaks. Callers removing a record
  /// ignore the error — dropping the catalog reference matters more than
  /// reclaiming a damaged chain.
  Status FreeChain(uint32_t head);

  /// Flushes all dirty state atomically: the full page image is written to
  /// `path + ".tmp"`, fsynced, and renamed over `path`.
  Status Commit();

 private:
  struct Page {
    uint32_t next = kNoPage;
    uint32_t payload_len = 0;
    std::array<uint8_t, kPagePayload> payload{};
    bool dirty = false;
  };

  Pager() = default;

  /// CRC-checks a raw page image and extracts its header fields.
  Status ValidateRawPage(uint32_t page_id, const char* raw, uint32_t* next,
                         uint32_t* payload_len) const;
  /// Returns the cached page, reading + CRC-validating it on first touch.
  StatusOr<Page*> FetchPage(uint32_t page_id);
  /// Allocates a page from the free list (or grows the file).
  StatusOr<uint32_t> AllocatePage();
  /// Claims `n` *contiguous* pages from the free list for an extent,
  /// relinking the remainder; kNoPage when no run is long enough.
  StatusOr<uint32_t> AllocateExtentRun(uint32_t n);
  /// Pushes a page onto the free list.
  void FreePage(uint32_t page_id);
  Status ReadRawPage(uint32_t page_id, char* out);

  std::string path_;
  uint32_t version_ = kFormatVersion;
  uint32_t num_pages_ = 1;
  uint32_t free_head_ = kNoPage;
  uint32_t catalog_head_ = kNoPage;
  /// Lazily populated page cache; page 0 (the header) is never cached —
  /// its fields live directly on the Pager and are re-serialized on
  /// Commit().
  std::unordered_map<uint32_t, Page> cache_;
  /// Dirty raw-extent pages: full verbatim page images awaiting Commit.
  /// Disjoint from cache_ by construction (WriteExtent only uses fresh
  /// tail pages; FreeExtent erases here before the page re-enters the
  /// header-carrying world).
  std::unordered_map<uint32_t, std::unique_ptr<std::array<char, kPageSize>>>
      raw_pages_;
  /// Read handle on the last committed file image; absent for a Create()d
  /// store that was never committed (then every page is cached).
  mutable std::ifstream file_;
};

}  // namespace cspm::store

#endif  // CSPM_STORE_PAGER_H_
