#include "store/codec.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/string_util.h"

namespace cspm::store {
namespace {

Status Corrupt(const char* what) {
  return Status::IOError(std::string("codec: ") + what);
}

}  // namespace

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void Encoder::PutDouble(double v) {
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  out_.append(s);
}

void Encoder::PutDeltaIds(const std::vector<uint32_t>& sorted_ids) {
  PutVarint(sorted_ids.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    PutVarint(i == 0 ? sorted_ids[0] : sorted_ids[i] - prev);
    prev = sorted_ids[i];
  }
}

void Encoder::PutDeltaIds(const std::vector<graph::AttrId>& sorted_ids) {
  PutVarint(sorted_ids.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    const uint32_t v = sorted_ids[i].value();
    PutVarint(i == 0 ? v : v - prev);
    prev = v;
  }
}

StatusOr<uint8_t> Decoder::ReadU8() {
  if (pos_ >= data_.size()) return Corrupt("truncated (u8)");
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint64_t> Decoder::ReadVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return Corrupt("truncated (varint)");
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Corrupt("varint longer than 10 bytes");
}

StatusOr<double> Decoder::ReadDouble() {
  if (data_.size() - pos_ < 8) return Corrupt("truncated (double)");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

StatusOr<std::string_view> Decoder::ReadString() {
  CSPM_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (len > data_.size() - pos_) return Corrupt("truncated (string)");
  std::string_view s = data_.substr(pos_, len);
  pos_ += len;
  return s;
}

Status Decoder::ReadDeltaIds(std::vector<graph::AttrId>* out) {
  std::vector<uint32_t> raw;
  CSPM_RETURN_IF_ERROR(ReadDeltaIds(&raw));
  out->clear();
  out->reserve(raw.size());
  for (uint32_t v : raw) out->push_back(graph::AttrId(v));
  return Status::OK();
}

Status Decoder::ReadDeltaIds(std::vector<uint32_t>* out) {
  CSPM_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
  // A delta id costs at least one byte; bound count by the bytes left so a
  // corrupt count cannot trigger a huge allocation.
  if (count > remaining()) return Corrupt("id list longer than record");
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    CSPM_ASSIGN_OR_RETURN(uint64_t delta, ReadVarint());
    const uint64_t v = (i == 0) ? delta : prev + delta;
    if (v > UINT32_MAX) return Corrupt("id overflows 32 bits");
    out->push_back(static_cast<uint32_t>(v));
    prev = v;
  }
  return Status::OK();
}

// --- dictionary -----------------------------------------------------------

void EncodeDictionary(const graph::AttributeDictionary& dict, Encoder* enc) {
  enc->PutVarint(dict.size());
  for (graph::AttrId id(0); id.index() < dict.size(); ++id) {
    enc->PutString(dict.Name(id));
  }
}

StatusOr<graph::AttributeDictionary> DecodeDictionary(Decoder* dec) {
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec->ReadVarint());
  if (count > dec->remaining()) return Corrupt("dictionary longer than record");
  graph::AttributeDictionary dict;
  for (uint64_t i = 0; i < count; ++i) {
    CSPM_ASSIGN_OR_RETURN(std::string_view name, dec->ReadString());
    if (dict.Intern(name).value() != i) {
      return Corrupt("duplicate name in stored dictionary");
    }
  }
  return dict;
}

// --- model ----------------------------------------------------------------

namespace {

void EncodeStats(const core::MiningStats& stats, Encoder* enc) {
  enc->PutDouble(stats.initial_dl_bits);
  enc->PutDouble(stats.final_dl_bits);
  enc->PutVarint(stats.iterations);
  enc->PutVarint(stats.total_gain_computations);
  enc->PutVarint(stats.initial_leafsets);
  enc->PutVarint(stats.final_leafsets);
  enc->PutVarint(stats.initial_lines);
  enc->PutVarint(stats.final_lines);
  enc->PutDouble(stats.runtime_seconds);
  enc->PutU8(stats.hit_time_budget ? 1 : 0);
  enc->PutVarint(stats.per_iteration.size());
  for (const core::IterationStats& it : stats.per_iteration) {
    enc->PutVarint(it.iteration);
    enc->PutVarint(it.gain_computations);
    enc->PutVarint(it.possible_pairs);
    enc->PutDouble(it.accepted_gain_bits);
    enc->PutVarint(it.active_leafsets);
    enc->PutVarint(it.num_lines);
  }
}

Status DecodeStats(Decoder* dec, core::MiningStats* stats) {
  CSPM_ASSIGN_OR_RETURN(stats->initial_dl_bits, dec->ReadDouble());
  CSPM_ASSIGN_OR_RETURN(stats->final_dl_bits, dec->ReadDouble());
  CSPM_ASSIGN_OR_RETURN(stats->iterations, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->total_gain_computations, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->initial_leafsets, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->final_leafsets, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->initial_lines, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->final_lines, dec->ReadVarint());
  CSPM_ASSIGN_OR_RETURN(stats->runtime_seconds, dec->ReadDouble());
  CSPM_ASSIGN_OR_RETURN(uint8_t budget, dec->ReadU8());
  stats->hit_time_budget = budget != 0;
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec->ReadVarint());
  if (count > dec->remaining()) {
    return Corrupt("iteration stats longer than record");
  }
  stats->per_iteration.clear();
  stats->per_iteration.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::IterationStats it;
    CSPM_ASSIGN_OR_RETURN(it.iteration, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(it.gain_computations, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(it.possible_pairs, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(it.accepted_gain_bits, dec->ReadDouble());
    CSPM_ASSIGN_OR_RETURN(it.active_leafsets, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(it.num_lines, dec->ReadVarint());
    stats->per_iteration.push_back(it);
  }
  return Status::OK();
}

}  // namespace

void EncodeModel(const core::CspmModel& model, Encoder* enc) {
  enc->PutVarint(model.astars.size());
  for (const core::AStar& s : model.astars) {
    enc->PutDeltaIds(s.core_values);
    enc->PutDeltaIds(s.leaf_values);
    enc->PutVarint(s.frequency);
    enc->PutVarint(s.core_total);
    enc->PutVarint(s.coreset_frequency);
    enc->PutDouble(s.code_length_bits);
  }
  EncodeStats(model.stats, enc);
}

StatusOr<core::CspmModel> DecodeModel(Decoder* dec) {
  core::CspmModel model;
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec->ReadVarint());
  if (count > dec->remaining()) return Corrupt("a-star list longer than record");
  model.astars.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    core::AStar s;
    CSPM_RETURN_IF_ERROR(dec->ReadDeltaIds(&s.core_values));
    CSPM_RETURN_IF_ERROR(dec->ReadDeltaIds(&s.leaf_values));
    CSPM_ASSIGN_OR_RETURN(s.frequency, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(s.core_total, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(s.coreset_frequency, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(s.code_length_bits, dec->ReadDouble());
    if (s.core_values.empty() || s.leaf_values.empty()) {
      return Corrupt("a-star with empty core or leaf set");
    }
    model.astars.push_back(std::move(s));
  }
  CSPM_RETURN_IF_ERROR(DecodeStats(dec, &model.stats));
  return model;
}

// --- graph snapshot -------------------------------------------------------

void EncodeGraph(const graph::AttributedGraph& g, Encoder* enc) {
  const graph::VertexId n = g.num_vertices();
  enc->PutVarint(n.value());
  std::vector<uint32_t> scratch;
  for (graph::VertexId v(0); v < n; ++v) {
    scratch.clear();
    for (graph::AttrId a : g.Attributes(v)) scratch.push_back(a.value());
    enc->PutDeltaIds(scratch);
  }
  // Adjacency as per-vertex forward-neighbour lists (u > v), so each
  // undirected edge is encoded once, delta-compressed within its list.
  for (graph::VertexId v(0); v < n; ++v) {
    scratch.clear();
    for (graph::VertexId u : g.Neighbors(v)) {
      if (u > v) scratch.push_back(u.value());
    }
    enc->PutDeltaIds(scratch);
  }
}

StatusOr<graph::AttributedGraph> DecodeGraph(
    Decoder* dec, const graph::AttributeDictionary& dict) {
  CSPM_ASSIGN_OR_RETURN(uint64_t n, dec->ReadVarint());
  if (n > dec->remaining()) return Corrupt("graph larger than record");
  graph::GraphBuilder builder;
  // Re-intern the record's dictionary so attribute ids line up.
  for (graph::AttrId id(0); id.index() < dict.size(); ++id) {
    builder.InternAttribute(dict.Name(id));
  }
  std::vector<uint32_t> ids;
  for (uint64_t v = 0; v < n; ++v) {
    CSPM_RETURN_IF_ERROR(dec->ReadDeltaIds(&ids));
    for (uint32_t a : ids) {
      if (a >= dict.size()) return Corrupt("vertex attribute id out of range");
    }
    std::vector<graph::AttrId> attr_ids;
    attr_ids.reserve(ids.size());
    for (uint32_t a : ids) attr_ids.push_back(graph::AttrId(a));
    builder.AddVertexWithIds(std::move(attr_ids));
  }
  for (uint64_t v = 0; v < n; ++v) {
    CSPM_RETURN_IF_ERROR(dec->ReadDeltaIds(&ids));
    for (uint32_t u : ids) {
      if (u >= n) return Corrupt("edge endpoint out of range");
      CSPM_RETURN_IF_ERROR(
          builder.AddEdge(graph::VertexId(static_cast<uint32_t>(v)),
                          graph::VertexId(u)));
    }
  }
  return std::move(builder).Build(/*require_connected=*/false);
}

// --- graph delta ----------------------------------------------------------

namespace {

void EncodeAttrOps(const std::vector<graph::GraphDelta::AttrOp>& ops,
                   Encoder* enc) {
  enc->PutVarint(ops.size());
  for (const auto& op : ops) {
    enc->PutVarint(op.vertex.value());
    enc->PutString(op.attribute);
  }
}

Status DecodeAttrOps(Decoder* dec,
                     std::vector<graph::GraphDelta::AttrOp>* ops) {
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec->ReadVarint());
  // Bound by the bytes left so a corrupt count cannot trigger a huge
  // allocation (each op is at least two bytes).
  ops->reserve(std::min<uint64_t>(count, dec->remaining() / 2));
  for (uint64_t i = 0; i < count; ++i) {
    graph::GraphDelta::AttrOp op;
    CSPM_ASSIGN_OR_RETURN(uint64_t v, dec->ReadVarint());
    op.vertex = graph::VertexId(static_cast<uint32_t>(v));
    CSPM_ASSIGN_OR_RETURN(std::string_view name, dec->ReadString());
    op.attribute = std::string(name);
    ops->push_back(std::move(op));
  }
  return Status::OK();
}

void EncodeEdgeOps(const std::vector<graph::GraphDelta::EdgeOp>& ops,
                   Encoder* enc) {
  enc->PutVarint(ops.size());
  for (const auto& op : ops) {
    enc->PutVarint(op.u.value());
    enc->PutVarint(op.v.value());
  }
}

Status DecodeEdgeOps(Decoder* dec,
                     std::vector<graph::GraphDelta::EdgeOp>* ops) {
  CSPM_ASSIGN_OR_RETURN(uint64_t count, dec->ReadVarint());
  ops->reserve(std::min<uint64_t>(count, dec->remaining() / 2));
  for (uint64_t i = 0; i < count; ++i) {
    graph::GraphDelta::EdgeOp op;
    CSPM_ASSIGN_OR_RETURN(uint64_t u, dec->ReadVarint());
    CSPM_ASSIGN_OR_RETURN(uint64_t v, dec->ReadVarint());
    op.u = graph::VertexId(static_cast<uint32_t>(u));
    op.v = graph::VertexId(static_cast<uint32_t>(v));
    ops->push_back(op);
  }
  return Status::OK();
}

}  // namespace

void EncodeGraphDelta(const graph::GraphDelta& delta, Encoder* enc) {
  enc->PutVarint(delta.added_vertices.size());
  for (const auto& spec : delta.added_vertices) {
    enc->PutVarint(spec.attributes.size());
    for (const std::string& name : spec.attributes) enc->PutString(name);
  }
  EncodeAttrOps(delta.set_attributes, enc);
  EncodeAttrOps(delta.cleared_attributes, enc);
  EncodeEdgeOps(delta.removed_edges, enc);
  EncodeEdgeOps(delta.added_edges, enc);
}

StatusOr<graph::GraphDelta> DecodeGraphDelta(Decoder* dec) {
  graph::GraphDelta delta;
  CSPM_ASSIGN_OR_RETURN(uint64_t vertices, dec->ReadVarint());
  delta.added_vertices.reserve(
      std::min<uint64_t>(vertices, dec->remaining()));
  for (uint64_t i = 0; i < vertices; ++i) {
    graph::GraphDelta::VertexSpec spec;
    CSPM_ASSIGN_OR_RETURN(uint64_t attrs, dec->ReadVarint());
    spec.attributes.reserve(std::min<uint64_t>(attrs, dec->remaining()));
    for (uint64_t j = 0; j < attrs; ++j) {
      CSPM_ASSIGN_OR_RETURN(std::string_view name, dec->ReadString());
      spec.attributes.emplace_back(name);
    }
    delta.added_vertices.push_back(std::move(spec));
  }
  CSPM_RETURN_IF_ERROR(DecodeAttrOps(dec, &delta.set_attributes));
  CSPM_RETURN_IF_ERROR(DecodeAttrOps(dec, &delta.cleared_attributes));
  CSPM_RETURN_IF_ERROR(DecodeEdgeOps(dec, &delta.removed_edges));
  CSPM_RETURN_IF_ERROR(DecodeEdgeOps(dec, &delta.added_edges));
  return delta;
}

// --- remap ----------------------------------------------------------------

namespace {

Status RemapIds(std::vector<graph::AttrId>* ids,
                const graph::AttributeDictionary& from,
                const graph::AttributeDictionary& to) {
  for (graph::AttrId& id : *ids) {
    if (id.index() >= from.size()) {
      return Corrupt("stored attribute id outside stored dictionary");
    }
    const std::string& name = from.Name(id);
    const graph::AttrId mapped = to.Find(name);
    if (mapped == graph::AttributeDictionary::kNotFound) {
      return Status::NotFound("unknown attribute value: " + name);
    }
    id = mapped;
  }
  std::sort(ids->begin(), ids->end());
  return Status::OK();
}

}  // namespace

StatusOr<core::CspmModel> RemapModelAttributes(
    const core::CspmModel& model, const graph::AttributeDictionary& from,
    const graph::AttributeDictionary& to) {
  core::CspmModel out = model;
  for (core::AStar& s : out.astars) {
    CSPM_RETURN_IF_ERROR(RemapIds(&s.core_values, from, to));
    CSPM_RETURN_IF_ERROR(RemapIds(&s.leaf_values, from, to));
  }
  return out;
}

}  // namespace cspm::store
