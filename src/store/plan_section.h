// The mmap-native plan section (store format v3, DESIGN.md §12): a
// ScoringPlan's six slabs written fixed-width, little-endian, 64-byte
// aligned and offset-based, so the bytes on disk are exactly the bytes
// ScoreInto reads. Opening a model for serving is then mmap + O(1)
// header validation — no LEB128 decode, no plan compile, no allocation —
// and the scores are bit-identical to a compiled plan because they *are*
// the compiled plan's bytes (Put encodes the freshly compiled slabs).
//
// Section layout (all integers u32 LE unless noted):
//
//   [0..8)     magic "CSPMPLN3"
//   [8..12)    section format version (1)
//   [12..16)   num_attribute_values
//   [16..20)   num_stars
//   [20..24)   num_cores          (flat core-value slab length)
//   [24..28)   num_postings       (flat posting slab length)
//   [28..32)   section_bytes      (header + padding + slabs)
//   [32..104)  slab table: 6 x { offset, length_bytes, crc32 } in Slabs
//              order (leaf_size, code_length_bits, core_offsets, cores,
//              posting_offsets, postings)
//   [104..108) CRC-32 of bytes [0, 104)
//   [108..128) zero padding
//   [128..)    slabs; every offset is 64-byte aligned (covers the
//              8-byte doubles of code_length_bits with room for wider
//              vector loads later)
//
// Validation is two-tier by design: ValidatePlanSection's default mode
// checks the header CRC and the slab geometry only — O(1), cheap enough
// for every serving open — while fsck passes verify_slab_crcs to sweep
// the full section. A flipped bit in a slab therefore never fails an
// open, but it cannot survive an fsck.
#ifndef CSPM_STORE_PLAN_SECTION_H_
#define CSPM_STORE_PLAN_SECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "cspm/scoring_plan.h"
#include "util/status.h"

namespace cspm::store {

/// Fixed prologue-plus-table size; slabs start here.
inline constexpr size_t kPlanSectionHeaderBytes = 128;
inline constexpr std::string_view kPlanSectionMagic = "CSPMPLN3";  // 8 bytes
inline constexpr uint32_t kPlanSectionVersion = 1;
/// Alignment of every slab offset (and of the section itself in the
/// store file, where extents start on 4 KiB page boundaries).
inline constexpr size_t kPlanSlabAlignment = 64;

/// Serializes a plan's slabs into a self-contained section. The inverse
/// of PlanFromSectionBytes; encoding a compiled plan and viewing the
/// result yields bit-identical scores to the plan itself.
std::string EncodePlanSection(const core::ScoringPlan& plan);

/// Validates a section image. Always checks magic, version, header CRC
/// and the slab geometry (expected lengths from the counts, 64-byte
/// alignment, ascending non-overlapping offsets, containment in
/// `section.size()`); with `verify_slab_crcs` it additionally sweeps all
/// six slab CRCs (the fsck tier — deliberately not paid on open).
Status ValidatePlanSection(std::string_view section, bool verify_slab_crcs);

/// Wraps a validated section image as a ScoringPlan view. `data` must
/// stay alive and unchanged for as long as `storage` is retained; the
/// returned plan (and every copy of it) holds `storage`. Runs the O(1)
/// validation tier only.
StatusOr<std::shared_ptr<const core::ScoringPlan>> PlanFromSectionBytes(
    const void* data, size_t size, std::shared_ptr<const void> storage);

/// Zero-copy open path: maps `section_bytes` at `offset` of `path`
/// read-only and returns a plan view whose slabs alias the mapping. The
/// mapping is owned by the plan's storage pointer and unmapped when the
/// last plan copy (or engine pinning it) goes away — evicting from a
/// cache while a ServingEngine still scores through the plan is safe.
/// `offset` need not be page-aligned (the mapping rounds down).
class MmapPlanView {
 public:
  static StatusOr<std::shared_ptr<const core::ScoringPlan>> Open(
      const std::string& path, uint64_t offset, size_t section_bytes);
};

}  // namespace cspm::store

#endif  // CSPM_STORE_PLAN_SECTION_H_
