// The engine facade: the single entry point application layers use to run
// CSPM. Consumers (examples, benches, the completion and alarm apps) build
// a MiningSession from a graph, mine, score, and serialize through it, and
// never see the storage (InvertedDatabase / PosListPool) or search
// (CspmMiner / candidates) layers — so those can be reworked, swapped, or
// sharded without touching any consumer (see DESIGN.md §2).
//
// Result types (CspmModel, AStar, MiningStats, AttributeScores) are the
// stable model-level vocabulary and are re-exported here.
#ifndef CSPM_ENGINE_SESSION_H_
#define CSPM_ENGINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cspm/model.h"
#include "cspm/scoring.h"
#include "cspm/scoring_plan.h"
#include "engine/model_registry.h"
#include "engine/serving.h"
#include "graph/attributed_graph.h"
#include "graph/graph_delta.h"
#include "itemset/slim.h"
#include "util/status.h"

namespace cspm::engine {

// Model-level result vocabulary, re-exported for consumers.
using core::AStar;
using core::AttributeScores;
using core::CspmModel;
using core::IterationStats;
using core::MiningStats;
using core::ScoringOptions;

/// Search strategy (mirrors the paper's two algorithms).
enum class Search {
  kBasic,    ///< Algorithms 1-2: regenerate all candidate gains per merge.
  kPartial,  ///< Algorithms 3-4: incremental updates through the rdict.
};

/// Which terms the merge-acceptance test uses.
enum class Gain {
  kDataOnly,       ///< pure data gain ΔL (Algorithm 2's check)
  kDataPlusModel,  ///< ΔL minus the model-cost delta (MDL-faithful default)
};

/// On-disk format for SaveModel. Loading always auto-detects by magic.
enum class ModelFileFormat {
  kAuto,         ///< ".cspm" extension → binary store, anything else → text
  kText,         ///< line-oriented text (cspm/serialization.h)
  kBinaryStore,  ///< paged binary store (store/model_store.h)
};

/// Knobs for MiningSession::SaveModel when writing a binary store.
struct SaveModelOptions {
  ModelFileFormat format = ModelFileFormat::kAuto;
  /// Catalog name of the record (stores hold many models per file).
  std::string model_name = "default";
  /// Embed a snapshot of the session's graph so the record can serve
  /// vertex-level scoring with no external data at all.
  bool include_graph = false;
};

/// Mining knobs. A deliberate copy of the core options rather than an
/// alias: the facade contract must not move when internals do.
struct MiningOptions {
  Search strategy = Search::kPartial;
  Gain gain_policy = Gain::kDataPlusModel;

  /// When true, Step 1 mines multi-value coresets from the vertex-attribute
  /// transactions with SLIM (Section IV-F); otherwise every attribute value
  /// is its own coreset.
  bool multi_value_coresets = false;
  itemset::SlimOptions slim;

  /// Safety valve; 0 = run to convergence (the parameter-free default).
  uint64_t max_iterations = 0;

  /// Wall-clock budget in seconds; 0 = unlimited. When exceeded the search
  /// stops early and MiningStats::hit_time_budget is set.
  double max_seconds = 0.0;

  /// A merge must improve the DL by strictly more than this (bits).
  double min_gain_bits = 1e-9;

  /// Record per-iteration stats (Fig. 5 instrumentation).
  bool record_iteration_stats = true;

  /// Partial only: recompute the popped pair's gain before merging (guards
  /// against f_e drift making a stored gain stale; see DESIGN.md §5).
  bool revalidate_on_pop = true;

  /// Keep single-leaf-value a-stars in the returned model.
  bool include_singleton_leafsets = true;

  /// Threads for the gain-evaluation fan-outs. 1 = serial (default),
  /// 0 = one per hardware core. Parallel runs are bit-identical to serial.
  uint32_t num_threads = 1;

  /// Retain the final inverted database so VerifyLossless() can run. Off by
  /// default: the database can dwarf the model.
  bool keep_database = false;

  /// Retain warm-start state (the pre-merge inverted database plus the
  /// initial candidate gains) so ApplyUpdates can re-mine incrementally
  /// instead of cold. Costs roughly one extra copy of the initial
  /// database. Ignored under multi_value_coresets (SLIM covers are not
  /// incrementally maintainable — updates fall back to a cold re-mine).
  bool enable_updates = false;
};

/// How ApplyUpdates re-mines after patching the graph.
enum class UpdateMode {
  /// Replay from the pre-merge database: the resulting model is
  /// bit-identical to a cold re-mine of the mutated graph (the default,
  /// and the PR 5 contract).
  kExact,
  /// Continue from the *final* mined model: patch its merged database,
  /// undo merges whose gain went negative, re-evaluate only dirty-core
  /// pairs, and merge from there. Path-dependent — the description length
  /// tracks a cold mine within a small ε but the bits may differ. Falls
  /// back to kExact behaviour when warm state is missing or the strategy
  /// is not kPartial.
  kFast,
};

/// What one ApplyUpdates call did (observability for benches / the shell).
struct UpdateStats {
  /// Vertices whose inverted-database contribution was recomputed.
  size_t dirty_vertices = 0;
  /// Candidate pairs invalidated by the delta (0 when every pair was —
  /// an attribute delta moves the whole code model).
  size_t dirty_pairs = 0;
  /// Gain computations spent on the warm re-seed (vs ~m²/2 cold); under
  /// kFast, the dirty-core pairs seeded into the candidate store.
  uint64_t reseeded_pairs = 0;
  /// False when the update fell back to a cold re-mine (warm state
  /// disabled, or multi-value coresets).
  bool warm_path = false;
  /// True when the continue-from-final-model path actually ran (kFast
  /// requested and eligible).
  bool fast_path = false;
  /// kFast only: merged lines undone because the delta flipped their gain.
  uint64_t split_undos = 0;
  /// Total description length of the model before / after the update, in
  /// bits (the shell's DL-delta report).
  double dl_before_bits = 0.0;
  double dl_after_bits = 0.0;
  /// End-to-end wall time of the update: graph patch + database patch +
  /// re-mine + plan recompile.
  double apply_seconds = 0.0;
};

/// One mining run over one graph: build from the graph, mine, then score
/// vertices and serialize the model. The graph must outlive the session.
/// Move-only.
class MiningSession {
 public:
  static StatusOr<MiningSession> Create(const graph::AttributedGraph& g,
                                        MiningOptions options = {});

  /// Shared-ownership variant: the session co-owns the graph, so
  /// Publish() shares it with registry handles instead of snapshotting a
  /// copy, and the caller's scope no longer bounds the session's.
  static StatusOr<MiningSession> Create(
      std::shared_ptr<const graph::AttributedGraph> g,
      MiningOptions options = {});

  MiningSession(MiningSession&&) noexcept;
  MiningSession& operator=(MiningSession&&) noexcept;
  ~MiningSession();

  /// Runs CSPM. Replaces any previously mined or loaded model.
  Status Mine();

  /// Applies a graph delta transactionally and re-mines. With
  /// MiningOptions::enable_updates the re-mine is warm: under
  /// UpdateMode::kExact (the default) the pre-merge inverted database is
  /// patched in place of the 3-pass rebuild and only candidate pairs
  /// involving dirty leafsets are re-evaluated — the resulting model is
  /// bit-identical to a cold re-mine of the mutated graph; under
  /// UpdateMode::kFast the re-mine continues from the final mined model
  /// instead (see UpdateMode). The session then owns the mutated graph;
  /// previously built ServingEngines keep scoring the old
  /// graph+model+plan triple until they are dropped, while new
  /// Serve()/Score calls see the update (hot swap). On error nothing
  /// changes (though the warm state may be dropped, downgrading later
  /// updates to cold re-mines).
  Status ApplyUpdates(const graph::GraphDelta& delta,
                      UpdateStats* stats = nullptr);
  Status ApplyUpdates(const graph::GraphDelta& delta, UpdateMode mode,
                      UpdateStats* stats = nullptr);

  /// True once Mine() succeeded or a model was loaded.
  bool has_model() const;
  /// The mined (or loaded) model. Requires has_model().
  const CspmModel& model() const;
  /// Statistics of the last Mine() run. Requires has_model().
  const MiningStats& stats() const;

  const graph::AttributedGraph& graph() const;

  /// Shared ownership of the session's current graph. After ApplyUpdates
  /// the session points at the mutated graph; holders of the old pointer
  /// (e.g. in-flight serving engines) keep the old graph alive.
  std::shared_ptr<const graph::AttributedGraph> shared_graph() const;

  // --- scoring (Algorithm 5) ----------------------------------------------
  //
  // All scoring goes through a ScoringPlan compiled whenever the model is
  // mined or loaded, bit-identical to the legacy per-vertex
  // core::ScoreAttributes path.

  /// Per-attribute-value scores for vertex v from its neighbourhood.
  AttributeScores Score(graph::VertexId v,
                        const ScoringOptions& options = {}) const;

  /// Same, against an explicit neighbour-attribute set (used when the
  /// graph's own attributes are partially masked).
  AttributeScores ScoreWithNeighbourhood(
      const std::vector<graph::AttrId>& neighbourhood_attrs,
      const ScoringOptions& options = {}) const;

  /// Batch scoring through a one-shot ServingEngine. Output slot i holds
  /// the scores of vertices[i] at any thread count. Callers scoring many
  /// batches should hold a Serve() engine instead: this spawns (and
  /// joins) the shard pool per call.
  StatusOr<std::vector<AttributeScores>> ScoreBatch(
      std::span<const graph::VertexId> vertices,
      const ServingOptions& options = {}) const;

  /// A ServingEngine sharing this session's compiled plan (the session's
  /// graph and plan must outlive the engine; re-mining compiles a fresh
  /// plan and does not disturb engines already built).
  StatusOr<ServingEngine> Serve(ServingOptions options = {}) const;

  /// The compiled plan of the current model (null before Mine/LoadModel).
  std::shared_ptr<const core::ScoringPlan> plan() const;

  /// Publishes the current model to a registry under `name` (the serving
  /// hot-swap path): the handle shares this session's graph and compiled
  /// plan — no graph copy, no plan recompile. In-flight batches on a
  /// previously published handle finish against the old triple; new
  /// Get()s see this one.
  StatusOr<ModelRegistry::Handle> Publish(ModelRegistry& registry,
                                          const std::string& name) const;

  // --- model persistence --------------------------------------------------

  std::string SerializeModel() const;
  Status DeserializeModel(const std::string& text);

  /// Saves the model. With the default options, a path ending in ".cspm"
  /// writes (or updates) a binary store file; anything else writes the v1
  /// text format.
  Status SaveModel(const std::string& path,
                   const SaveModelOptions& options = {}) const;

  /// Loads a model, auto-detecting the format by magic: a binary store is
  /// read through its embedded dictionary and remapped onto this session's
  /// graph; anything else is parsed as text. A store file must hold
  /// exactly one model or one named "default" — use the two-argument
  /// overload otherwise.
  Status LoadModel(const std::string& path);
  /// Loads the named record from a binary store file.
  Status LoadModel(const std::string& path, const std::string& model_name);

  // --- verification -------------------------------------------------------

  /// Checks the losslessness invariant of the final database against the
  /// graph. Requires MiningOptions::keep_database and a mined model.
  Status VerifyLossless() const;

 private:
  struct Impl;
  explicit MiningSession(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: Create + Mine, returning the model.
StatusOr<CspmModel> MineModel(const graph::AttributedGraph& g,
                              const MiningOptions& options = {});

}  // namespace cspm::engine

#endif  // CSPM_ENGINE_SESSION_H_
