// Concurrent registry of servable models, the in-memory face of the store
// layer: serving paths (completion, alarm triage, the shell) look models
// up by name and score against an immutable snapshot while loads/reloads
// happen behind a shared_mutex.
//
// Concurrency contract (see DESIGN.md §6):
//  - A ServableModel is immutable once registered; Get() hands out a
//    shared_ptr<const ServableModel> (a copy-on-write handle). Replacing a
//    name swaps the pointer — readers holding the old handle keep scoring
//    against a consistent model for as long as they like.
//  - Lookups take a shared lock; Put/Remove/Load take an exclusive lock
//    only for the map mutation (record decoding happens outside the lock).
//  - The registry also runs the process-wide plan cache: OpenPlan() hands
//    out mmap-backed ScoringPlan views keyed by (store path, model name),
//    LRU-bounded by SetPlanCacheCapacity(). Evicting an entry only drops
//    the cache's reference — in-flight ServableModels and ServingEngines
//    hold their own shared_ptr, so the mapping stays valid until the last
//    user is done (eviction-while-serving is safe by construction).
#ifndef CSPM_ENGINE_MODEL_REGISTRY_H_
#define CSPM_ENGINE_MODEL_REGISTRY_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cspm/model.h"
#include "cspm/scoring.h"
#include "cspm/scoring_plan.h"
#include "engine/serving.h"
#include "graph/attribute_dictionary.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace cspm::store {
class ModelStore;
}  // namespace cspm::store

namespace cspm::engine {

/// A self-contained, immutable model ready to serve scoring traffic: the
/// pattern model, the dictionary its attribute ids refer to, the scoring
/// plan compiled from them, and (when the store record carried a
/// snapshot) the graph it was mined on. Registering a model compiles its
/// plan, so a hot reload swaps plan + model together: handles always see
/// a matching pair.
struct ServableModel : std::enable_shared_from_this<ServableModel> {
  core::CspmModel model;
  graph::AttributeDictionary dict;
  /// Graph snapshot for vertex-level scoring; shared so a hot swap from a
  /// live session costs no copy and in-flight engines keep the old graph
  /// alive on their own. Null when the model has no snapshot.
  std::shared_ptr<const graph::AttributedGraph> graph;
  /// Compiled from `model` against `dict`; built by CompilePlan() (the
  /// registry calls it on Put/Load). Scoring falls back to the legacy
  /// per-vertex path when null — results are bit-identical either way.
  std::shared_ptr<const core::ScoringPlan> plan;

  /// Compiles `plan` from the current model + dict (no-op when already
  /// compiled).
  void CompilePlan();

  /// Algorithm 5 against an explicit neighbour-attribute set (ids in this
  /// model's dictionary). Works without a graph snapshot.
  core::AttributeScores ScoreWithNeighbourhood(
      const std::vector<graph::AttrId>& neighbourhood_attrs,
      const core::ScoringOptions& options = {}) const;

  /// Scores vertex `v` of the embedded graph snapshot. Clean Status (not
  /// a crash) for a missing snapshot, an out-of-range vertex, or a
  /// dictionary that does not cover the snapshot's attribute space.
  StatusOr<core::AttributeScores> ScoreVertex(
      graph::VertexId v, const core::ScoringOptions& options = {}) const;

  /// A batch engine over the embedded graph snapshot, sharing this
  /// model's plan. A shared-owned ServableModel (every registry Handle)
  /// is retained by the engine itself, so the engine stays valid across
  /// hot reloads and removals even if the Handle is dropped; only a
  /// stack-allocated ServableModel must outlive its engines.
  StatusOr<ServingEngine> Serve(ServingOptions options = {}) const;
};

class ModelRegistry {
 public:
  using Handle = std::shared_ptr<const ServableModel>;

  /// Loads every model of a store file into the registry (names taken from
  /// the store catalog; existing entries with the same name are replaced).
  Status LoadStore(const std::string& path);

  /// Loads one named model from a store file.
  Status LoadModel(const std::string& path, const std::string& name);

  /// Registers (or replaces) a model under `name`. Handles previously
  /// returned by Get() are unaffected.
  Handle Put(const std::string& name, ServableModel model);

  /// Put() for the hot-swap path: trusts an already-compiled plan instead
  /// of recompiling (compiles only when `model.plan` is null). Use only
  /// when the plan is guaranteed in sync with the model — e.g.
  /// MiningSession::Publish, whose session compiled both together.
  Handle PutPrecompiled(const std::string& name, ServableModel model);

  /// The current handle for `name`, or nullptr if absent.
  Handle Get(const std::string& name) const;

  /// Removes `name`; returns false if it was absent.
  bool Remove(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> List() const;

  size_t size() const;

  // --- plan cache ---------------------------------------------------------

  /// The plan for a store-resident model, through the LRU plan cache.
  /// Cache miss: the model's mmap-native plan section is opened (zero
  /// decode, microseconds); a v2 entry without a section falls back to
  /// decode + compile — either way the result is cached. Scores are
  /// bit-identical across both paths. NotFound when the store has no such
  /// model.
  StatusOr<std::shared_ptr<const core::ScoringPlan>> OpenPlan(
      store::ModelStore& store, const std::string& name);

  /// Caps the plan cache's resident bytes (sum of ApproxBytes over cached
  /// plans), evicting least-recently-used entries immediately if the new
  /// cap is already exceeded. Default: 256 MiB.
  void SetPlanCacheCapacity(size_t bytes);

  /// Drops the cached plan for (store path, name) if present — call after
  /// re-saving a model so the next OpenPlan maps the fresh section.
  /// Handles already served keep the old plan alive; new opens see the
  /// new bytes.
  void InvalidateCachedPlan(const std::string& store_path,
                            const std::string& name);

  /// Bytes currently resident in the plan cache (the gauge
  /// `registry.plan_cache.resident_bytes` tracks the same value).
  size_t plan_cache_resident_bytes() const;

 private:
  struct CachedPlan {
    std::shared_ptr<const core::ScoringPlan> plan;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  static constexpr size_t kDefaultPlanCacheBytes = size_t{256} << 20;

  /// Evicts LRU entries until resident bytes fit the capacity. Requires
  /// plan_mu_ held.
  void EvictPlansLocked();

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Handle> models_;

  mutable std::mutex plan_mu_;
  /// Most-recently-used at the front; values are plan cache keys.
  std::list<std::string> plan_lru_;
  std::unordered_map<std::string, CachedPlan> plan_cache_;
  size_t plan_cache_capacity_ = kDefaultPlanCacheBytes;
  size_t plan_cache_bytes_ = 0;
};

}  // namespace cspm::engine

#endif  // CSPM_ENGINE_MODEL_REGISTRY_H_
