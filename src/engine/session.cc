#include "engine/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "cspm/miner.h"
#include "cspm/serialization.h"
#include "cspm/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/codec.h"
#include "store/model_store.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cspm::engine {
namespace {

core::CspmOptions ToCoreOptions(const MiningOptions& o) {
  core::CspmOptions c;
  c.strategy = o.strategy == Search::kBasic
                   ? core::SearchStrategy::kBasic
                   : core::SearchStrategy::kPartial;
  c.gain_policy = o.gain_policy == Gain::kDataOnly
                      ? core::GainPolicy::kDataOnly
                      : core::GainPolicy::kDataPlusModel;
  c.multi_value_coresets = o.multi_value_coresets;
  c.slim = o.slim;
  c.max_iterations = o.max_iterations;
  c.max_seconds = o.max_seconds;
  c.min_gain_bits = o.min_gain_bits;
  c.record_iteration_stats = o.record_iteration_stats;
  c.revalidate_on_pop = o.revalidate_on_pop;
  c.include_singleton_leafsets = o.include_singleton_leafsets;
  c.num_threads = o.num_threads;
  return c;
}

}  // namespace

struct MiningSession::Impl {
  /// The session's current graph. Create() aliases the caller's graph
  /// (non-owning); ApplyUpdates replaces it with an owned mutated graph.
  /// Shared so serving engines built before an update keep the graph they
  /// were scoring alive.
  std::shared_ptr<const graph::AttributedGraph> graph;
  MiningOptions options;
  CspmModel model;
  bool has_model = false;
  /// Compiled scoring plan of `model`; rebuilt whenever the model changes.
  /// Shared so ServingEngines and registry handles can outlive a re-mine.
  std::shared_ptr<const core::ScoringPlan> plan;
  /// Final inverted database, kept only under options.keep_database.
  std::optional<core::InvertedDatabase> database;
  /// Warm-start state for ApplyUpdates, under options.enable_updates.
  std::unique_ptr<core::WarmState> warm;
  /// Set when a kFast update skipped patching warm->initial_db (the fast
  /// path touches only final_db). The next kExact update rebuilds the
  /// pristine initial database from the graph and re-seeds everything,
  /// which keeps the exact path's bit-identity contract intact.
  bool exact_warm_stale = false;

  /// Installs `m` as the current model and compiles its plan.
  void SetModel(CspmModel m) {
    model = std::move(m);
    {
      // Nested under whatever phase is active ("phase.update.plan_recompile"
      // during ApplyUpdates); the flat compile histogram is recorded inside
      // ScoringPlan::Compile itself.
      obs::TraceSpan recompile_span("plan_recompile");
      plan = core::CompileSharedPlan(model, graph->num_attribute_values());
    }
    obs::GetGauge("mdl.current_dl_bits")->Set(model.stats.final_dl_bits);
    has_model = true;
    database.reset();
  }

  bool wants_warm_state() const {
    return options.enable_updates && !options.multi_value_coresets;
  }

  /// Installs a full mining result (model + optional database artifacts).
  void SetArtifacts(core::CspmMiner::MineArtifacts artifacts) {
    SetModel(std::move(artifacts.model));
    if (options.keep_database) {
      database.emplace(std::move(artifacts.inverted_db));
    }
  }
};

MiningSession::MiningSession(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
MiningSession::MiningSession(MiningSession&&) noexcept = default;
MiningSession& MiningSession::operator=(MiningSession&&) noexcept = default;
MiningSession::~MiningSession() = default;

StatusOr<MiningSession> MiningSession::Create(const graph::AttributedGraph& g,
                                              MiningOptions options) {
  // Aliasing handle: the caller owns the graph (and must keep it alive),
  // exactly as before — shared ownership starts at the first ApplyUpdates.
  return Create(std::shared_ptr<const graph::AttributedGraph>(
                    std::shared_ptr<const void>(), &g),
                std::move(options));
}

StatusOr<MiningSession> MiningSession::Create(
    std::shared_ptr<const graph::AttributedGraph> g, MiningOptions options) {
  if (g == nullptr) {
    return Status::InvalidArgument("MiningSession needs a non-null graph");
  }
  auto impl = std::make_unique<Impl>();
  impl->graph = std::move(g);
  impl->options = std::move(options);
  return MiningSession(std::move(impl));
}

Status MiningSession::Mine() {
  core::CspmMiner miner(ToCoreOptions(impl_->options));
  if (impl_->wants_warm_state()) {
    if (impl_->warm == nullptr) {
      impl_->warm = std::make_unique<core::WarmState>();
    }
    auto artifacts_or = miner.MineWithWarmState(*impl_->graph,
                                                impl_->warm.get());
    if (!artifacts_or.ok()) return artifacts_or.status();
    impl_->exact_warm_stale = false;  // freshly captured from this graph
    impl_->SetArtifacts(std::move(artifacts_or).value());
  } else if (impl_->options.keep_database) {
    impl_->warm.reset();
    auto artifacts_or = miner.MineWithArtifacts(*impl_->graph);
    if (!artifacts_or.ok()) return artifacts_or.status();
    impl_->SetArtifacts(std::move(artifacts_or).value());
  } else {
    impl_->warm.reset();
    auto model_or = miner.Mine(*impl_->graph);
    if (!model_or.ok()) return model_or.status();
    impl_->SetModel(std::move(model_or).value());
  }
  return Status::OK();
}

Status MiningSession::ApplyUpdates(const graph::GraphDelta& delta,
                                   UpdateStats* stats) {
  return ApplyUpdates(delta, UpdateMode::kExact, stats);
}

Status MiningSession::ApplyUpdates(const graph::GraphDelta& delta,
                                   UpdateMode mode, UpdateStats* stats) {
  WallTimer timer;
  obs::TraceSpan update_span("update");
  obs::GetCounter("update.deltas")->Add(1);
  // DL delta per update: the drift signal the streaming ROADMAP item
  // watches (encoded-length trajectory under live deltas).
  const auto record_dl_delta = [](const UpdateStats& s) {
    obs::GetGauge("mdl.last_update_dl_delta_bits")
        ->Set(s.dl_after_bits - s.dl_before_bits);
  };
  UpdateStats local;
  UpdateStats& out = stats != nullptr ? *stats : local;
  out = {};
  if (!impl_->has_model) {
    return Status::FailedPrecondition(
        "ApplyUpdates needs a mined model: Mine() first");
  }
  out.dl_before_bits = impl_->model.stats.final_dl_bits;
  auto applied_or = [&] {
    obs::TraceSpan graph_patch_span("graph_patch");
    return graph::ApplyDelta(*impl_->graph, delta);
  }();
  if (!applied_or.ok()) return applied_or.status();
  graph::DeltaApplication applied = std::move(applied_or).value();
  out.dirty_vertices = applied.dirty_vertices.size();
  obs::GetCounter("update.dirty_vertices")->Add(applied.dirty_vertices.size());
  auto new_graph = std::make_shared<const graph::AttributedGraph>(
      std::move(applied.graph));

  const bool warm = impl_->warm != nullptr && impl_->wants_warm_state();
  if (!warm) {
    // Cold fallback: swap the graph and re-mine from scratch. Serving
    // engines built earlier hold the old shared graph + plan.
    std::shared_ptr<const graph::AttributedGraph> old_graph = impl_->graph;
    impl_->graph = std::move(new_graph);
    Status mined = Mine();
    if (!mined.ok()) {
      impl_->graph = std::move(old_graph);
      return mined;
    }
    out.dl_after_bits = impl_->model.stats.final_dl_bits;
    out.apply_seconds = timer.ElapsedSeconds();
    record_dl_delta(out);
    return Status::OK();
  }

  core::CspmMiner miner(ToCoreOptions(impl_->options));

  // The continue-from-final-model path (DESIGN.md §9). Eligibility is
  // checked before any state is mutated: the fast contract only covers
  // kPartial (its convergence argument needs the drained store).
  if (mode == UpdateMode::kFast &&
      impl_->options.strategy == Search::kPartial &&
      impl_->warm->final_db.num_coresets() > 0) {
    core::DeltaPatchStats patch;
    Status patched = [&] {
      obs::TraceSpan db_patch_span("db_patch");
      return impl_->warm->final_db.ApplyDeltaMerged(
          *impl_->graph, *new_graph, applied.dirty_vertices, &patch);
    }();
    if (!patched.ok()) {
      impl_->warm.reset();
      return patched;
    }
    core::FastResumeStats fast;
    auto artifacts_or = [&] {
      obs::TraceSpan resume_span("resume");
      return miner.ResumeFast(
          *new_graph, impl_->warm.get(), patch,
          /*all_dirty=*/applied.attributes_changed,
          /*want_database=*/impl_->options.keep_database, &fast);
    }();
    if (!artifacts_or.ok()) {
      // final_db was already patched (and possibly half-repaired); drop
      // the warm state so a later ApplyUpdates takes the cold path.
      impl_->warm.reset();
      impl_->exact_warm_stale = false;
      return artifacts_or.status();
    }
    // initial_db still describes the pre-delta graph: the skipped patch
    // is most of what the fast path saves. A later kExact update rebuilds
    // it from scratch (see exact_warm_stale).
    impl_->exact_warm_stale = true;
    out.warm_path = true;
    out.fast_path = true;
    out.split_undos = fast.splits;
    out.reseeded_pairs = fast.seeded_pairs;
    obs::GetCounter("update.unmerge_splits")->Add(fast.splits);
    obs::GetCounter("update.reseeded_pairs")->Add(fast.seeded_pairs);
    impl_->graph = std::move(new_graph);
    impl_->SetArtifacts(std::move(artifacts_or).value());
    out.dl_after_bits = impl_->model.stats.final_dl_bits;
    out.apply_seconds = timer.ElapsedSeconds();
    record_dl_delta(out);
    return Status::OK();
  }

  core::DirtyCandidates dirty;
  {
    obs::TraceSpan db_patch_span("db_patch");
    if (impl_->exact_warm_stale) {
      // Fast updates left initial_db describing an older graph. Rebuild it
      // pristine for the new graph and re-seed every candidate: the exact
      // path is then in exactly the state a cold MineWithWarmState would
      // produce, so its bit-identity contract holds unconditionally.
      auto rebuilt_or = core::InvertedDatabase::FromGraph(*new_graph);
      if (!rebuilt_or.ok()) {
        impl_->warm.reset();
        impl_->exact_warm_stale = false;
        return rebuilt_or.status();
      }
      impl_->warm->initial_db = std::move(rebuilt_or).value();
      impl_->warm->initial_gains.clear();
      impl_->exact_warm_stale = false;
      dirty.all_dirty = true;
    } else {
      core::DeltaPatchStats patch;
      CSPM_RETURN_IF_ERROR(impl_->warm->initial_db.ApplyDelta(
          *impl_->graph, *new_graph, applied.dirty_vertices, &patch));
      dirty.all_dirty = applied.attributes_changed;
      if (!dirty.all_dirty) {
        dirty.pair_keys = core::CollectDirtyCandidatePairs(
            *impl_->graph, *new_graph, applied.dirty_vertices,
            patch.dirty_cores);
        out.dirty_pairs = dirty.pair_keys.size();
        obs::GetCounter("update.dirty_pairs")->Add(dirty.pair_keys.size());
      }
    }
  }

  uint64_t reseeded = 0;
  auto artifacts_or = [&] {
    obs::TraceSpan resume_span("resume");
    return miner.ResumeWarm(*new_graph, impl_->warm.get(), dirty, &reseeded);
  }();
  if (!artifacts_or.ok()) {
    // The warm database was already patched; drop it so a later
    // ApplyUpdates takes the cold path instead of compounding on a state
    // that no longer matches the session graph.
    impl_->warm.reset();
    impl_->exact_warm_stale = false;
    return artifacts_or.status();
  }
  out.reseeded_pairs = reseeded;
  obs::GetCounter("update.reseeded_pairs")->Add(reseeded);
  out.warm_path = true;
  // Swap the graph before SetModel: the plan compiles against the new
  // attribute space.
  impl_->graph = std::move(new_graph);
  impl_->SetArtifacts(std::move(artifacts_or).value());
  out.dl_after_bits = impl_->model.stats.final_dl_bits;
  out.apply_seconds = timer.ElapsedSeconds();
  record_dl_delta(out);
  return Status::OK();
}

bool MiningSession::has_model() const { return impl_->has_model; }

const CspmModel& MiningSession::model() const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  return impl_->model;
}

const MiningStats& MiningSession::stats() const { return model().stats; }

const graph::AttributedGraph& MiningSession::graph() const {
  return *impl_->graph;
}

std::shared_ptr<const graph::AttributedGraph> MiningSession::shared_graph()
    const {
  return impl_->graph;
}

AttributeScores MiningSession::Score(graph::VertexId v,
                                     const ScoringOptions& options) const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  std::vector<graph::AttrId> neighbourhood;
  core::GatherNeighbourhoodAttrs(*impl_->graph, v, &neighbourhood);
  return impl_->plan->Score(neighbourhood, options);
}

AttributeScores MiningSession::ScoreWithNeighbourhood(
    const std::vector<graph::AttrId>& neighbourhood_attrs,
    const ScoringOptions& options) const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  return impl_->plan->Score(neighbourhood_attrs, options);
}

StatusOr<std::vector<AttributeScores>> MiningSession::ScoreBatch(
    std::span<const graph::VertexId> vertices,
    const ServingOptions& options) const {
  CSPM_ASSIGN_OR_RETURN(ServingEngine engine, Serve(options));
  return engine.ScoreBatch(vertices);
}

StatusOr<ServingEngine> MiningSession::Serve(ServingOptions options) const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no model: Mine() or LoadModel() first");
  }
  // The engine retains the session's current graph: after an
  // ApplyUpdates hot swap it keeps scoring the graph it was built on.
  return ServingEngine::Create(*impl_->graph, impl_->plan, options,
                               impl_->graph);
}

std::shared_ptr<const core::ScoringPlan> MiningSession::plan() const {
  return impl_->plan;
}

StatusOr<ModelRegistry::Handle> MiningSession::Publish(
    ModelRegistry& registry, const std::string& name) const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no model: Mine() or LoadModel() first");
  }
  ServableModel servable;
  servable.model = impl_->model;
  servable.dict = impl_->graph->dict();
  servable.graph = impl_->graph;
  if (servable.graph.use_count() == 0) {
    // Pre-update sessions alias the caller's graph without owning it; the
    // registry handle can outlive that scope, so snapshot-copy the graph
    // rather than handing out a pointer that dangles with the caller.
    servable.graph =
        std::make_shared<const graph::AttributedGraph>(*impl_->graph);
  }
  servable.plan = impl_->plan;
  return registry.PutPrecompiled(name, std::move(servable));
}

std::string MiningSession::SerializeModel() const {
  return core::ModelToText(model(), impl_->graph->dict());
}

Status MiningSession::DeserializeModel(const std::string& text) {
  auto model_or = core::ModelFromText(text, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

namespace {

bool WantsBinaryStore(const std::string& path, ModelFileFormat format) {
  if (format == ModelFileFormat::kBinaryStore) return true;
  if (format == ModelFileFormat::kText) return false;
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".cspm") == 0;
}

}  // namespace

Status MiningSession::SaveModel(const std::string& path,
                                const SaveModelOptions& options) const {
  if (!WantsBinaryStore(path, options.format)) {
    return core::SaveModelToFile(model(), impl_->graph->dict(), path);
  }
  auto store_or = store::ModelStore::OpenOrCreate(path);
  if (!store_or.ok()) return store_or.status();
  store::StoredModel stored;
  stored.model = model();
  stored.dict = impl_->graph->dict();
  if (options.include_graph) stored.graph = *impl_->graph;
  return store_or->Put(options.model_name, stored);
}

namespace {

// A store record carries its own dictionary; rewrite the attribute ids
// onto the session graph's (exactly what the text loader does by name).
StatusOr<core::CspmModel> GetRemapped(store::ModelStore& store,
                                      const std::string& model_name,
                                      const graph::AttributeDictionary& dict) {
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(model_name));
  return store::RemapModelAttributes(stored.model, stored.dict, dict);
}

}  // namespace

Status MiningSession::LoadModel(const std::string& path) {
  if (!store::ModelStore::IsStoreFile(path)) {
    auto model_or = core::LoadModelFromFile(path, impl_->graph->dict());
    if (!model_or.ok()) return model_or.status();
    impl_->SetModel(std::move(model_or).value());
    return Status::OK();
  }
  auto store_or = store::ModelStore::Open(path);
  if (!store_or.ok()) return store_or.status();
  std::string name = "default";
  if (!store_or->Contains(name)) {
    if (store_or->size() != 1) {
      return Status::InvalidArgument(StrFormat(
          "store %s holds %zu models and none named 'default'; pick one "
          "with LoadModel(path, model_name)",
          path.c_str(), store_or->size()));
    }
    name = store_or->List().front().name;
  }
  auto model_or = GetRemapped(*store_or, name, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

Status MiningSession::LoadModel(const std::string& path,
                                const std::string& model_name) {
  auto store_or = store::ModelStore::Open(path);
  if (!store_or.ok()) return store_or.status();
  auto model_or = GetRemapped(*store_or, model_name, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

Status MiningSession::VerifyLossless() const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no mined model to verify");
  }
  if (!impl_->database.has_value()) {
    return Status::FailedPrecondition(
        "VerifyLossless requires MiningOptions::keep_database");
  }
  return core::VerifyLossless(*impl_->graph, *impl_->database);
}

StatusOr<CspmModel> MineModel(const graph::AttributedGraph& g,
                              const MiningOptions& options) {
  // Runs the miner directly rather than through a session: the model moves
  // straight out instead of being copied from session state.
  return core::CspmMiner(ToCoreOptions(options)).Mine(g);
}

}  // namespace cspm::engine
