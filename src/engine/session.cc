#include "engine/session.h"

#include <optional>
#include <utility>

#include "cspm/miner.h"
#include "cspm/serialization.h"
#include "cspm/verify.h"
#include "util/check.h"

namespace cspm::engine {
namespace {

core::CspmOptions ToCoreOptions(const MiningOptions& o) {
  core::CspmOptions c;
  c.strategy = o.strategy == Search::kBasic
                   ? core::SearchStrategy::kBasic
                   : core::SearchStrategy::kPartial;
  c.gain_policy = o.gain_policy == Gain::kDataOnly
                      ? core::GainPolicy::kDataOnly
                      : core::GainPolicy::kDataPlusModel;
  c.multi_value_coresets = o.multi_value_coresets;
  c.slim = o.slim;
  c.max_iterations = o.max_iterations;
  c.max_seconds = o.max_seconds;
  c.min_gain_bits = o.min_gain_bits;
  c.record_iteration_stats = o.record_iteration_stats;
  c.revalidate_on_pop = o.revalidate_on_pop;
  c.include_singleton_leafsets = o.include_singleton_leafsets;
  c.num_threads = o.num_threads;
  return c;
}

}  // namespace

struct MiningSession::Impl {
  const graph::AttributedGraph* graph = nullptr;
  MiningOptions options;
  CspmModel model;
  bool has_model = false;
  /// Final inverted database, kept only under options.keep_database.
  std::optional<core::InvertedDatabase> database;
};

MiningSession::MiningSession(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
MiningSession::MiningSession(MiningSession&&) noexcept = default;
MiningSession& MiningSession::operator=(MiningSession&&) noexcept = default;
MiningSession::~MiningSession() = default;

StatusOr<MiningSession> MiningSession::Create(const graph::AttributedGraph& g,
                                              MiningOptions options) {
  auto impl = std::make_unique<Impl>();
  impl->graph = &g;
  impl->options = std::move(options);
  return MiningSession(std::move(impl));
}

Status MiningSession::Mine() {
  core::CspmMiner miner(ToCoreOptions(impl_->options));
  if (impl_->options.keep_database) {
    auto artifacts_or = miner.MineWithArtifacts(*impl_->graph);
    if (!artifacts_or.ok()) return artifacts_or.status();
    impl_->model = std::move(artifacts_or.value().model);
    impl_->database.emplace(std::move(artifacts_or.value().inverted_db));
  } else {
    auto model_or = miner.Mine(*impl_->graph);
    if (!model_or.ok()) return model_or.status();
    impl_->model = std::move(model_or).value();
    impl_->database.reset();
  }
  impl_->has_model = true;
  return Status::OK();
}

bool MiningSession::has_model() const { return impl_->has_model; }

const CspmModel& MiningSession::model() const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  return impl_->model;
}

const MiningStats& MiningSession::stats() const { return model().stats; }

const graph::AttributedGraph& MiningSession::graph() const {
  return *impl_->graph;
}

AttributeScores MiningSession::Score(graph::VertexId v,
                                     const ScoringOptions& options) const {
  return core::ScoreAttributes(*impl_->graph, model(), v, options);
}

AttributeScores MiningSession::ScoreWithNeighbourhood(
    const std::vector<graph::AttrId>& neighbourhood_attrs,
    const ScoringOptions& options) const {
  return core::ScoreAttributesWithNeighbourhood(
      impl_->graph->num_attribute_values(), model(), neighbourhood_attrs,
      options);
}

std::string MiningSession::SerializeModel() const {
  return core::ModelToText(model(), impl_->graph->dict());
}

Status MiningSession::DeserializeModel(const std::string& text) {
  auto model_or = core::ModelFromText(text, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->model = std::move(model_or).value();
  impl_->has_model = true;
  impl_->database.reset();
  return Status::OK();
}

Status MiningSession::SaveModel(const std::string& path) const {
  return core::SaveModelToFile(model(), impl_->graph->dict(), path);
}

Status MiningSession::LoadModel(const std::string& path) {
  auto model_or = core::LoadModelFromFile(path, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->model = std::move(model_or).value();
  impl_->has_model = true;
  impl_->database.reset();
  return Status::OK();
}

Status MiningSession::VerifyLossless() const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no mined model to verify");
  }
  if (!impl_->database.has_value()) {
    return Status::FailedPrecondition(
        "VerifyLossless requires MiningOptions::keep_database");
  }
  return core::VerifyLossless(*impl_->graph, *impl_->database);
}

StatusOr<CspmModel> MineModel(const graph::AttributedGraph& g,
                              const MiningOptions& options) {
  // Runs the miner directly rather than through a session: the model moves
  // straight out instead of being copied from session state.
  return core::CspmMiner(ToCoreOptions(options)).Mine(g);
}

}  // namespace cspm::engine
