#include "engine/session.h"

#include <optional>
#include <utility>

#include "cspm/miner.h"
#include "cspm/serialization.h"
#include "cspm/verify.h"
#include "store/codec.h"
#include "store/model_store.h"
#include "util/check.h"
#include "util/string_util.h"

namespace cspm::engine {
namespace {

core::CspmOptions ToCoreOptions(const MiningOptions& o) {
  core::CspmOptions c;
  c.strategy = o.strategy == Search::kBasic
                   ? core::SearchStrategy::kBasic
                   : core::SearchStrategy::kPartial;
  c.gain_policy = o.gain_policy == Gain::kDataOnly
                      ? core::GainPolicy::kDataOnly
                      : core::GainPolicy::kDataPlusModel;
  c.multi_value_coresets = o.multi_value_coresets;
  c.slim = o.slim;
  c.max_iterations = o.max_iterations;
  c.max_seconds = o.max_seconds;
  c.min_gain_bits = o.min_gain_bits;
  c.record_iteration_stats = o.record_iteration_stats;
  c.revalidate_on_pop = o.revalidate_on_pop;
  c.include_singleton_leafsets = o.include_singleton_leafsets;
  c.num_threads = o.num_threads;
  return c;
}

}  // namespace

struct MiningSession::Impl {
  const graph::AttributedGraph* graph = nullptr;
  MiningOptions options;
  CspmModel model;
  bool has_model = false;
  /// Compiled scoring plan of `model`; rebuilt whenever the model changes.
  /// Shared so ServingEngines and registry handles can outlive a re-mine.
  std::shared_ptr<const core::ScoringPlan> plan;
  /// Final inverted database, kept only under options.keep_database.
  std::optional<core::InvertedDatabase> database;

  /// Installs `m` as the current model and compiles its plan.
  void SetModel(CspmModel m) {
    model = std::move(m);
    plan = core::CompileSharedPlan(model, graph->num_attribute_values());
    has_model = true;
    database.reset();
  }
};

MiningSession::MiningSession(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
MiningSession::MiningSession(MiningSession&&) noexcept = default;
MiningSession& MiningSession::operator=(MiningSession&&) noexcept = default;
MiningSession::~MiningSession() = default;

StatusOr<MiningSession> MiningSession::Create(const graph::AttributedGraph& g,
                                              MiningOptions options) {
  auto impl = std::make_unique<Impl>();
  impl->graph = &g;
  impl->options = std::move(options);
  return MiningSession(std::move(impl));
}

Status MiningSession::Mine() {
  core::CspmMiner miner(ToCoreOptions(impl_->options));
  if (impl_->options.keep_database) {
    auto artifacts_or = miner.MineWithArtifacts(*impl_->graph);
    if (!artifacts_or.ok()) return artifacts_or.status();
    impl_->SetModel(std::move(artifacts_or.value().model));
    impl_->database.emplace(std::move(artifacts_or.value().inverted_db));
  } else {
    auto model_or = miner.Mine(*impl_->graph);
    if (!model_or.ok()) return model_or.status();
    impl_->SetModel(std::move(model_or).value());
  }
  return Status::OK();
}

bool MiningSession::has_model() const { return impl_->has_model; }

const CspmModel& MiningSession::model() const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  return impl_->model;
}

const MiningStats& MiningSession::stats() const { return model().stats; }

const graph::AttributedGraph& MiningSession::graph() const {
  return *impl_->graph;
}

AttributeScores MiningSession::Score(graph::VertexId v,
                                     const ScoringOptions& options) const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  std::vector<graph::AttrId> neighbourhood;
  core::GatherNeighbourhoodAttrs(*impl_->graph, v, &neighbourhood);
  return impl_->plan->Score(neighbourhood, options);
}

AttributeScores MiningSession::ScoreWithNeighbourhood(
    const std::vector<graph::AttrId>& neighbourhood_attrs,
    const ScoringOptions& options) const {
  CSPM_CHECK_MSG(impl_->has_model, "Mine() or LoadModel() first");
  return impl_->plan->Score(neighbourhood_attrs, options);
}

StatusOr<std::vector<AttributeScores>> MiningSession::ScoreBatch(
    std::span<const graph::VertexId> vertices,
    const ServingOptions& options) const {
  CSPM_ASSIGN_OR_RETURN(ServingEngine engine, Serve(options));
  return engine.ScoreBatch(vertices);
}

StatusOr<ServingEngine> MiningSession::Serve(ServingOptions options) const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no model: Mine() or LoadModel() first");
  }
  return ServingEngine::Create(*impl_->graph, impl_->plan, options);
}

std::shared_ptr<const core::ScoringPlan> MiningSession::plan() const {
  return impl_->plan;
}

std::string MiningSession::SerializeModel() const {
  return core::ModelToText(model(), impl_->graph->dict());
}

Status MiningSession::DeserializeModel(const std::string& text) {
  auto model_or = core::ModelFromText(text, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

namespace {

bool WantsBinaryStore(const std::string& path, ModelFileFormat format) {
  if (format == ModelFileFormat::kBinaryStore) return true;
  if (format == ModelFileFormat::kText) return false;
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".cspm") == 0;
}

}  // namespace

Status MiningSession::SaveModel(const std::string& path,
                                const SaveModelOptions& options) const {
  if (!WantsBinaryStore(path, options.format)) {
    return core::SaveModelToFile(model(), impl_->graph->dict(), path);
  }
  auto store_or = store::ModelStore::OpenOrCreate(path);
  if (!store_or.ok()) return store_or.status();
  store::StoredModel stored;
  stored.model = model();
  stored.dict = impl_->graph->dict();
  if (options.include_graph) stored.graph = *impl_->graph;
  return store_or->Put(options.model_name, stored);
}

namespace {

// A store record carries its own dictionary; rewrite the attribute ids
// onto the session graph's (exactly what the text loader does by name).
StatusOr<core::CspmModel> GetRemapped(store::ModelStore& store,
                                      const std::string& model_name,
                                      const graph::AttributeDictionary& dict) {
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(model_name));
  return store::RemapModelAttributes(stored.model, stored.dict, dict);
}

}  // namespace

Status MiningSession::LoadModel(const std::string& path) {
  if (!store::ModelStore::IsStoreFile(path)) {
    auto model_or = core::LoadModelFromFile(path, impl_->graph->dict());
    if (!model_or.ok()) return model_or.status();
    impl_->SetModel(std::move(model_or).value());
    return Status::OK();
  }
  auto store_or = store::ModelStore::Open(path);
  if (!store_or.ok()) return store_or.status();
  std::string name = "default";
  if (!store_or->Contains(name)) {
    if (store_or->size() != 1) {
      return Status::InvalidArgument(StrFormat(
          "store %s holds %zu models and none named 'default'; pick one "
          "with LoadModel(path, model_name)",
          path.c_str(), store_or->size()));
    }
    name = store_or->List().front().name;
  }
  auto model_or = GetRemapped(*store_or, name, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

Status MiningSession::LoadModel(const std::string& path,
                                const std::string& model_name) {
  auto store_or = store::ModelStore::Open(path);
  if (!store_or.ok()) return store_or.status();
  auto model_or = GetRemapped(*store_or, model_name, impl_->graph->dict());
  if (!model_or.ok()) return model_or.status();
  impl_->SetModel(std::move(model_or).value());
  return Status::OK();
}

Status MiningSession::VerifyLossless() const {
  if (!impl_->has_model) {
    return Status::FailedPrecondition("no mined model to verify");
  }
  if (!impl_->database.has_value()) {
    return Status::FailedPrecondition(
        "VerifyLossless requires MiningOptions::keep_database");
  }
  return core::VerifyLossless(*impl_->graph, *impl_->database);
}

StatusOr<CspmModel> MineModel(const graph::AttributedGraph& g,
                              const MiningOptions& options) {
  // Runs the miner directly rather than through a session: the model moves
  // straight out instead of being copied from session state.
  return core::CspmMiner(ToCoreOptions(options)).Mine(g);
}

}  // namespace cspm::engine
