#include "engine/model_registry.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/model_store.h"
#include "util/string_util.h"

namespace cspm::engine {
namespace {

/// Builds a ServableModel from a decoded record. `plan` is the mapped (or
/// cached) plan when the caller already opened one — then no compile
/// happens; null falls back to compiling here.
ServableModel FromStored(store::StoredModel stored,
                         std::shared_ptr<const core::ScoringPlan> plan) {
  ServableModel m;
  m.model = std::move(stored.model);
  m.dict = std::move(stored.dict);
  if (stored.graph.has_value()) {
    m.graph = std::make_shared<const graph::AttributedGraph>(
        std::move(*stored.graph));
  }
  m.plan = std::move(plan);
  m.CompilePlan();  // no-op when a plan was supplied
  return m;
}

/// Plan cache key: store path and model name, NUL-joined (page paths
/// cannot contain NUL, so the pair is unambiguous).
std::string PlanCacheKey(const std::string& store_path,
                         const std::string& name) {
  std::string key;
  key.reserve(store_path.size() + 1 + name.size());
  key += store_path;
  key += '\0';
  key += name;
  return key;
}

}  // namespace

void ServableModel::CompilePlan() {
  if (plan != nullptr) return;
  plan = core::CompileSharedPlan(model, dict.size());
}

core::AttributeScores ServableModel::ScoreWithNeighbourhood(
    const std::vector<graph::AttrId>& neighbourhood_attrs,
    const core::ScoringOptions& options) const {
  if (plan != nullptr) return plan->Score(neighbourhood_attrs, options);
  return core::ScoreAttributesWithNeighbourhood(dict.size(), model,
                                                neighbourhood_attrs, options);
}

StatusOr<core::AttributeScores> ServableModel::ScoreVertex(
    graph::VertexId v, const core::ScoringOptions& options) const {
  if (graph == nullptr) {
    return Status::FailedPrecondition(
        "model has no graph snapshot; use ScoreWithNeighbourhood");
  }
  if (v >= graph->num_vertices()) {
    return Status::OutOfRange(
        StrFormat("vertex %u out of range (%u vertices)", v.value(),
                  graph->num_vertices().value()));
  }
  if (graph->num_attribute_values() != dict.size()) {
    return Status::FailedPrecondition(StrFormat(
        "model dictionary does not cover the graph snapshot: %zu attribute "
        "values vs %zu in the graph",
        dict.size(), graph->num_attribute_values()));
  }
  if (plan != nullptr) {
    std::vector<graph::AttrId> neighbourhood;
    core::GatherNeighbourhoodAttrs(*graph, v, &neighbourhood);
    return plan->Score(neighbourhood, options);
  }
  return core::ScoreAttributes(*graph, model, v, options);
}

StatusOr<ServingEngine> ServableModel::Serve(ServingOptions options) const {
  if (graph == nullptr) {
    return Status::FailedPrecondition(
        "model has no graph snapshot; batch serving needs one");
  }
  auto p = plan;
  if (p == nullptr) p = core::CompileSharedPlan(model, dict.size());
  // Shared-owned instances (registry handles) are retained by the engine;
  // lock() is null for stack instances, whose graph shared_ptr keeps the
  // snapshot alive on its own.
  std::shared_ptr<const void> keep_alive = weak_from_this().lock();
  if (keep_alive == nullptr) keep_alive = graph;
  return ServingEngine::Create(*graph, std::move(p), options,
                               std::move(keep_alive));
}

Status ModelRegistry::LoadStore(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store, store::ModelStore::Open(path));
  // Decode every record before touching the map, so a corrupt store never
  // leaves the registry partially updated. Plans come through the plan
  // cache — v3 entries map their on-disk section instead of compiling.
  std::vector<std::pair<std::string, Handle>> loaded;
  for (const store::ModelStore::Info& info : store.List()) {
    CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(info.name));
    CSPM_ASSIGN_OR_RETURN(auto plan, OpenPlan(store, info.name));
    loaded.emplace_back(info.name,
                        std::make_shared<const ServableModel>(FromStored(
                            std::move(stored), std::move(plan))));
  }
  std::unique_lock lock(mu_);
  for (auto& [name, handle] : loaded) {
    models_[name] = std::move(handle);
  }
  obs::GetGauge("registry.models")->Set(static_cast<double>(models_.size()));
  return Status::OK();
}

Status ModelRegistry::LoadModel(const std::string& path,
                                const std::string& name) {
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store, store::ModelStore::Open(path));
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(name));
  CSPM_ASSIGN_OR_RETURN(auto plan, OpenPlan(store, name));
  auto handle = std::make_shared<const ServableModel>(
      FromStored(std::move(stored), std::move(plan)));
  std::unique_lock lock(mu_);
  models_[name] = std::move(handle);
  obs::GetGauge("registry.models")->Set(static_cast<double>(models_.size()));
  return Status::OK();
}

ModelRegistry::Handle ModelRegistry::Put(const std::string& name,
                                         ServableModel model) {
  // Registration compiles the plan (outside the lock), so every handle
  // serves batch traffic without a per-request compile and a replacement
  // swaps plan + model atomically with the pointer. Always recompiled:
  // the caller may have mutated `model`/`dict` after an earlier compile,
  // and a stale plan would silently serve the old model's scores.
  model.plan = nullptr;
  obs::ScopedPhaseTimer swap_timer(
      obs::GetHistogram("phase.registry.hot_swap"));
  model.CompilePlan();
  auto handle = std::make_shared<const ServableModel>(std::move(model));
  std::unique_lock lock(mu_);
  models_[name] = handle;
  obs::GetGauge("registry.models")->Set(static_cast<double>(models_.size()));
  return handle;
}

ModelRegistry::Handle ModelRegistry::PutPrecompiled(const std::string& name,
                                                    ServableModel model) {
  obs::ScopedPhaseTimer swap_timer(
      obs::GetHistogram("phase.registry.hot_swap"));
  model.CompilePlan();  // no-op when the caller supplied a plan
  auto handle = std::make_shared<const ServableModel>(std::move(model));
  std::unique_lock lock(mu_);
  models_[name] = handle;
  obs::GetGauge("registry.models")->Set(static_cast<double>(models_.size()));
  return handle;
}

ModelRegistry::Handle ModelRegistry::Get(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  const bool removed = models_.erase(name) > 0;
  obs::GetGauge("registry.models")->Set(static_cast<double>(models_.size()));
  return removed;
}

std::vector<std::string> ModelRegistry::List() const {
  std::vector<std::string> names;
  {
    std::shared_lock lock(mu_);
    names.reserve(models_.size());
    for (const auto& [name, handle] : models_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::size() const {
  std::shared_lock lock(mu_);
  return models_.size();
}

StatusOr<std::shared_ptr<const core::ScoringPlan>> ModelRegistry::OpenPlan(
    store::ModelStore& store, const std::string& name) {
  const std::string key = PlanCacheKey(store.path(), name);
  {
    std::lock_guard lock(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_it);
      obs::GetCounter("registry.plan_cache.hits")->Add();
      return it->second.plan;
    }
  }
  obs::GetCounter("registry.plan_cache.misses")->Add();

  // Open (or build) outside the cache lock: mapping is cheap, but the v2
  // fallback decodes a record, and either way there is no reason to hold
  // other lookups up.
  std::shared_ptr<const core::ScoringPlan> plan;
  auto mapped = store.OpenPlan(name);
  if (mapped.ok()) {
    plan = *std::move(mapped);
  } else if (mapped.status().code() == StatusCode::kNotFound) {
    // Either the model does not exist (then Get fails the same way) or the
    // entry predates v3 — decode + compile, and cache the result so the
    // fallback also pays once.
    CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(name));
    plan = core::CompileSharedPlan(stored.model, stored.dict.size());
  } else {
    return mapped.status();
  }

  std::lock_guard lock(plan_mu_);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    // Raced with a concurrent opener; keep the incumbent (any handles
    // already holding our copy stay valid on their own).
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_it);
    return it->second.plan;
  }
  const size_t bytes = plan->ApproxBytes();
  plan_lru_.push_front(key);
  plan_cache_[key] = CachedPlan{plan, bytes, plan_lru_.begin()};
  plan_cache_bytes_ += bytes;
  EvictPlansLocked();
  obs::GetGauge("registry.plan_cache.resident_bytes")
      ->Set(static_cast<double>(plan_cache_bytes_));
  return plan;
}

void ModelRegistry::SetPlanCacheCapacity(size_t bytes) {
  std::lock_guard lock(plan_mu_);
  plan_cache_capacity_ = bytes;
  EvictPlansLocked();
  obs::GetGauge("registry.plan_cache.resident_bytes")
      ->Set(static_cast<double>(plan_cache_bytes_));
}

void ModelRegistry::InvalidateCachedPlan(const std::string& store_path,
                                         const std::string& name) {
  std::lock_guard lock(plan_mu_);
  auto it = plan_cache_.find(PlanCacheKey(store_path, name));
  if (it == plan_cache_.end()) return;
  plan_cache_bytes_ -= it->second.bytes;
  plan_lru_.erase(it->second.lru_it);
  plan_cache_.erase(it);
  obs::GetGauge("registry.plan_cache.resident_bytes")
      ->Set(static_cast<double>(plan_cache_bytes_));
}

size_t ModelRegistry::plan_cache_resident_bytes() const {
  std::lock_guard lock(plan_mu_);
  return plan_cache_bytes_;
}

void ModelRegistry::EvictPlansLocked() {
  while (plan_cache_bytes_ > plan_cache_capacity_ && !plan_lru_.empty()) {
    auto it = plan_cache_.find(plan_lru_.back());
    plan_cache_bytes_ -= it->second.bytes;
    plan_cache_.erase(it);
    plan_lru_.pop_back();
    obs::GetCounter("registry.plan_cache.evictions")->Add();
  }
}

}  // namespace cspm::engine
