#include "engine/model_registry.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "store/model_store.h"
#include "util/string_util.h"

namespace cspm::engine {
namespace {

ServableModel FromStored(store::StoredModel stored) {
  ServableModel m;
  m.model = std::move(stored.model);
  m.dict = std::move(stored.dict);
  m.graph = std::move(stored.graph);
  return m;
}

}  // namespace

StatusOr<core::AttributeScores> ServableModel::ScoreVertex(
    graph::VertexId v, const core::ScoringOptions& options) const {
  if (!graph.has_value()) {
    return Status::FailedPrecondition(
        "model has no graph snapshot; use ScoreWithNeighbourhood");
  }
  if (v >= graph->num_vertices()) {
    return Status::OutOfRange(StrFormat("vertex %u out of range (%u vertices)",
                                        v, graph->num_vertices()));
  }
  return core::ScoreAttributes(*graph, model, v, options);
}

Status ModelRegistry::LoadStore(const std::string& path) {
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store, store::ModelStore::Open(path));
  // Decode every record before touching the map, so a corrupt store never
  // leaves the registry partially updated.
  std::vector<std::pair<std::string, Handle>> loaded;
  for (const store::ModelStore::Info& info : store.List()) {
    CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(info.name));
    loaded.emplace_back(
        info.name,
        std::make_shared<const ServableModel>(FromStored(std::move(stored))));
  }
  std::unique_lock lock(mu_);
  for (auto& [name, handle] : loaded) {
    models_[name] = std::move(handle);
  }
  return Status::OK();
}

Status ModelRegistry::LoadModel(const std::string& path,
                                const std::string& name) {
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store, store::ModelStore::Open(path));
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored, store.Get(name));
  auto handle =
      std::make_shared<const ServableModel>(FromStored(std::move(stored)));
  std::unique_lock lock(mu_);
  models_[name] = std::move(handle);
  return Status::OK();
}

ModelRegistry::Handle ModelRegistry::Put(const std::string& name,
                                         ServableModel model) {
  auto handle = std::make_shared<const ServableModel>(std::move(model));
  std::unique_lock lock(mu_);
  models_[name] = handle;
  return handle;
}

ModelRegistry::Handle ModelRegistry::Get(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::Remove(const std::string& name) {
  std::unique_lock lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::List() const {
  std::vector<std::string> names;
  {
    std::shared_lock lock(mu_);
    names.reserve(models_.size());
    for (const auto& [name, handle] : models_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::size() const {
  std::shared_lock lock(mu_);
  return models_.size();
}

}  // namespace cspm::engine
