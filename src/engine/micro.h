// Microbenchmark hooks over the storage/search core. bench_micro_core
// times the hot paths (database build, gain computation, merge
// application) through this pimpl harness, so the bench layer compiles
// against the engine facade only while the loops still run directly on the
// core primitives.
#ifndef CSPM_ENGINE_MICRO_H_
#define CSPM_ENGINE_MICRO_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "graph/attributed_graph.h"

namespace cspm::engine::micro {

class CoreHarness {
 public:
  /// Builds the initial inverted database + code model for g. The graph
  /// must outlive the harness.
  explicit CoreHarness(const graph::AttributedGraph& g);
  CoreHarness(CoreHarness&&) noexcept;
  CoreHarness& operator=(CoreHarness&&) noexcept;
  ~CoreHarness();

  /// Rebuilds the inverted database from scratch; returns its line count.
  size_t RebuildDatabase();

  size_t num_lines() const;
  size_t num_active_leafsets() const;

  /// Computes `count` merge gains, advancing an internal round-robin
  /// cursor over the active-pair space; returns how many were feasible.
  size_t GainSweep(size_t count);

  /// Computes the gain of every active pair, thread-pooled when
  /// num_threads > 1 (0 = one per hardware core); returns the feasible
  /// count. Identical result regardless of thread count.
  size_t GainSweepAllPairs(uint32_t num_threads);

  /// Finds the first feasible pair in active order and stages it. Returns
  /// false when no pair is feasible.
  bool StageFirstFeasibleMerge();

  /// Applies the staged merge to the database; returns moved positions.
  /// Requires a successful StageFirstFeasibleMerge() since the last merge.
  uint64_t ApplyStagedMerge();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cspm::engine::micro

#endif  // CSPM_ENGINE_MICRO_H_
