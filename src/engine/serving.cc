#include "engine/serving.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace cspm::engine {
namespace {

size_t ResolveThreads(uint32_t requested) {
  return requested == 0 ? util::ThreadPool::AutoThreads()
                        : static_cast<size_t>(requested);
}

}  // namespace

ServingEngine::ServingEngine(const graph::AttributedGraph& graph,
                             std::shared_ptr<const core::ScoringPlan> plan,
                             ServingOptions options,
                             std::shared_ptr<const void> keep_alive)
    : graph_(&graph),
      plan_(std::move(plan)),
      keep_alive_(std::move(keep_alive)),
      options_(options) {
  const size_t threads = ResolveThreads(options_.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
    pool_mu_ = std::make_unique<std::mutex>();
  }
}

StatusOr<ServingEngine> ServingEngine::Create(
    const graph::AttributedGraph& graph,
    std::shared_ptr<const core::ScoringPlan> plan, ServingOptions options,
    std::shared_ptr<const void> keep_alive) {
  if (plan == nullptr) {
    return Status::InvalidArgument("ServingEngine needs a non-null plan");
  }
  if (plan->num_attribute_values() != graph.num_attribute_values()) {
    return Status::FailedPrecondition(StrFormat(
        "model dictionary does not cover the graph: plan compiled for %zu "
        "attribute values, graph has %zu",
        plan->num_attribute_values(), graph.num_attribute_values()));
  }
  return ServingEngine(graph, std::move(plan), options,
                       std::move(keep_alive));
}

StatusOr<ServingEngine> ServingEngine::Create(
    const graph::AttributedGraph& graph, const core::CspmModel& model,
    ServingOptions options) {
  return Create(graph,
                core::CompileSharedPlan(model, graph.num_attribute_values()),
                options);
}

size_t ServingEngine::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

void ServingEngine::ScoreRange(std::span<const graph::VertexId> vertices,
                               size_t begin, size_t end,
                               core::ScoringScratch* scratch,
                               std::vector<core::AttributeScores>* results)
    const {
  for (size_t i = begin; i < end; ++i) {
    core::GatherNeighbourhoodAttrs(*graph_, vertices[i],
                                   &scratch->neighbourhood);
    plan_->ScoreInto(scratch->neighbourhood, options_.scoring, scratch,
                     &(*results)[i]);
  }
}

std::vector<core::AttributeScores> ServingEngine::ScoreValidated(
    std::span<const graph::VertexId> vertices) const {
  // Pre-resolved handles: the whole obs cost per batch is one scoped timer
  // plus two relaxed adds (plus one timer per shard on the pooled path).
  static auto* const batch_hist =
      obs::GetHistogram("phase.serving.score_batch");
  static auto* const shard_hist =
      obs::GetHistogram("phase.serving.score_shard");
  static auto* const batches = obs::GetCounter("serving.batches");
  static auto* const scored = obs::GetCounter("serving.vertices_scored");
  obs::ScopedPhaseTimer batch_timer(batch_hist);
  batches->Add(1);
  scored->Add(vertices.size());
  std::vector<core::AttributeScores> results(vertices.size());
  const size_t threads = num_threads();
  if (pool_ == nullptr || threads <= 1 || vertices.size() <= 1) {
    core::ScoringScratch scratch;
    plan_->PrepareScratch(&scratch);
    ScoreRange(vertices, 0, vertices.size(), &scratch, &results);
    return results;
  }
  // One contiguous shard per worker; output slot i is written only by the
  // shard owning i, so the result ordering is deterministic regardless of
  // which worker runs which shard.
  const size_t num_shards = std::min(threads, vertices.size());
  std::vector<core::ScoringScratch> scratches(num_shards);
  for (auto& s : scratches) plan_->PrepareScratch(&s);
  // One dispatcher at a time: concurrent const callers queue here.
  std::lock_guard<std::mutex> lock(*pool_mu_);
  pool_->ParallelFor(num_shards, [&](size_t shard) {
    obs::ScopedPhaseTimer shard_timer(shard_hist);
    const size_t begin = vertices.size() * shard / num_shards;
    const size_t end = vertices.size() * (shard + 1) / num_shards;
    ScoreRange(vertices, begin, end, &scratches[shard], &results);
  });
  return results;
}

StatusOr<std::vector<core::AttributeScores>> ServingEngine::ScoreBatch(
    std::span<const graph::VertexId> vertices) const {
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i] >= graph_->num_vertices()) {
      return Status::OutOfRange(
          StrFormat("batch slot %zu: vertex %u out of range (%u vertices)", i,
                    vertices[i].value(), graph_->num_vertices().value()));
    }
  }
  return ScoreValidated(vertices);
}

std::vector<core::AttributeScores> ServingEngine::ScoreAll() const {
  std::vector<graph::VertexId> vertices;
  vertices.reserve(graph_->num_vertices().index());
  for (graph::VertexId v(0); v < graph_->num_vertices(); ++v) {
    vertices.push_back(v);
  }
  return ScoreValidated(vertices);
}

StatusOr<core::AttributeScores> ServingEngine::ScoreVertex(
    graph::VertexId v) const {
  if (v >= graph_->num_vertices()) {
    return Status::OutOfRange(StrFormat("vertex %u out of range (%u vertices)",
                                        v.value(),
                                        graph_->num_vertices().value()));
  }
  // A batch of one: single-element batches take the serial path.
  std::vector<core::AttributeScores> results = ScoreValidated({&v, 1});
  return std::move(results.front());
}

}  // namespace cspm::engine
