// Batch-first serving over a compiled ScoringPlan: the execution layer the
// ROADMAP's serving traffic goes through. A ServingEngine binds one
// immutable plan to one graph and scores vertex batches, optionally
// sharded across a util::ThreadPool.
//
// Determinism contract: ScoreBatch(vertices)[i] depends only on
// vertices[i], the plan and the options — never on the shard layout or
// thread count — so results are bit-identical at 1, 4 and auto threads
// and identical to the legacy per-vertex ScoreAttributes path (see
// DESIGN.md §7).
//
// Thread safety: the const scoring calls are safe to invoke from
// multiple caller threads. A serial engine shares nothing between calls;
// a sharded engine serializes dispatches onto its worker pool (the pool
// runs one ParallelFor at a time), so concurrent batches queue rather
// than corrupt each other.
//
// Lifetime: the engine holds a reference to the graph and a shared_ptr to
// the plan. The plan is kept alive by the engine itself, and engines
// built through ServableModel::Serve also retain the ServableModel that
// owns the graph snapshot — so registry hot-reloads or removals never
// invalidate a live engine, even if the caller dropped its Handle. For
// the raw Create(graph, ...) entry points the graph must outlive the
// engine (or be passed as `keep_alive`).
#ifndef CSPM_ENGINE_SERVING_H_
#define CSPM_ENGINE_SERVING_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cspm/model.h"
#include "cspm/scoring.h"
#include "cspm/scoring_plan.h"
#include "graph/attributed_graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cspm::engine {

// Result vocabulary, re-exported for consumers that only see the batch
// facade (mirrors engine/session.h).
using core::AttributeScores;
using core::ScoringOptions;

struct ServingOptions {
  /// Shards for ScoreBatch / ScoreAll: 1 = serial (default), 0 = one per
  /// hardware core. Results are bit-identical at any thread count.
  uint32_t num_threads = 1;
  core::ScoringOptions scoring;
};

class ServingEngine {
 public:
  /// Builds an engine over an already compiled plan (the registry path:
  /// handles share one immutable plan per registered model). `keep_alive`
  /// is an optional owner of the graph (e.g. the ServableModel handle the
  /// plan came from) retained for the engine's lifetime, so callers need
  /// not hold it themselves.
  static StatusOr<ServingEngine> Create(
      const graph::AttributedGraph& graph,
      std::shared_ptr<const core::ScoringPlan> plan,
      ServingOptions options = {},
      std::shared_ptr<const void> keep_alive = nullptr);

  /// Compiles a fresh plan from the model against the graph's dictionary.
  static StatusOr<ServingEngine> Create(const graph::AttributedGraph& graph,
                                        const core::CspmModel& model,
                                        ServingOptions options = {});

  ServingEngine(ServingEngine&&) noexcept = default;
  ServingEngine& operator=(ServingEngine&&) noexcept = default;

  /// Scores every vertex of `vertices` (duplicates allowed, any order).
  /// Output slot i holds the scores of vertices[i]. Fails with OutOfRange
  /// if any id is not a vertex of the graph; on failure nothing is scored.
  StatusOr<std::vector<core::AttributeScores>> ScoreBatch(
      std::span<const graph::VertexId> vertices) const;

  /// Scores all vertices of the graph, in vertex-id order.
  std::vector<core::AttributeScores> ScoreAll() const;

  /// Single-vertex convenience with the same validation as ScoreBatch.
  StatusOr<core::AttributeScores> ScoreVertex(graph::VertexId v) const;

  const core::ScoringPlan& plan() const { return *plan_; }
  const std::shared_ptr<const core::ScoringPlan>& shared_plan() const {
    return plan_;
  }
  /// Resolved shard count (auto already expanded).
  size_t num_threads() const;
  const ServingOptions& options() const { return options_; }

 private:
  ServingEngine(const graph::AttributedGraph& graph,
                std::shared_ptr<const core::ScoringPlan> plan,
                ServingOptions options,
                std::shared_ptr<const void> keep_alive);

  /// Scores vertices[begin, end) of `vertices` into results[begin, end).
  void ScoreRange(std::span<const graph::VertexId> vertices, size_t begin,
                  size_t end, core::ScoringScratch* scratch,
                  std::vector<core::AttributeScores>* results) const;

  std::vector<core::AttributeScores> ScoreValidated(
      std::span<const graph::VertexId> vertices) const;

  const graph::AttributedGraph* graph_;
  std::shared_ptr<const core::ScoringPlan> plan_;
  /// Optional owner of `*graph_` (e.g. the ServableModel behind a
  /// registry handle), held so the graph cannot be freed under the engine.
  std::shared_ptr<const void> keep_alive_;
  ServingOptions options_;
  /// Spawned at Create when num_threads > 1; null for a serial engine.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Serializes ParallelFor dispatches from concurrent const callers
  /// (ThreadPool supports one dispatcher at a time). Null iff pool_ is.
  mutable std::unique_ptr<std::mutex> pool_mu_;
};

}  // namespace cspm::engine

#endif  // CSPM_ENGINE_SERVING_H_
