// Facade re-export of the Algorithm 5 scoring module, for consumers that
// score against an already-materialized model (e.g. the completion fusion
// path) without holding a MiningSession.
#ifndef CSPM_ENGINE_SCORING_H_
#define CSPM_ENGINE_SCORING_H_

#include <vector>

#include "cspm/scoring.h"
#include "graph/attributed_graph.h"

namespace cspm::engine {

using core::AttributeScores;
using core::ScoringOptions;

/// Scores every attribute value for vertex v given the model M (see
/// cspm/scoring.h for the w / similarity semantics).
inline AttributeScores ScoreAttributes(const graph::AttributedGraph& g,
                                       const core::CspmModel& model,
                                       graph::VertexId v,
                                       const ScoringOptions& options = {}) {
  return core::ScoreAttributes(g, model, v, options);
}

/// Same, against an explicit neighbour-attribute set.
inline AttributeScores ScoreAttributesWithNeighbourhood(
    size_t num_attribute_values, const core::CspmModel& model,
    const std::vector<graph::AttrId>& neighbourhood_attrs,
    const ScoringOptions& options = {}) {
  return core::ScoreAttributesWithNeighbourhood(
      num_attribute_values, model, neighbourhood_attrs, options);
}

}  // namespace cspm::engine

#endif  // CSPM_ENGINE_SCORING_H_
