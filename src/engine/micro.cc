#include "engine/micro.h"

#include <utility>

#include "cspm/code_model.h"
#include "cspm/gain.h"
#include "cspm/inverted_database.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cspm::engine::micro {

struct CoreHarness::Impl {
  const graph::AttributedGraph* graph;
  core::InvertedDatabase idb;
  core::CodeModel cm;
  // Round-robin cursor over active pairs for GainSweep.
  size_t cursor_i = 0;
  size_t cursor_j = 1;
  // Staged merge pair.
  core::LeafsetId staged_x{};
  core::LeafsetId staged_y{};
  bool staged = false;
  // Cached across GainSweepAllPairs calls so benchmark loops measure the
  // sweep, not thread spawn/join.
  std::unique_ptr<util::ThreadPool> pool;

  Impl(const graph::AttributedGraph& g, core::InvertedDatabase db)
      : graph(&g), idb(std::move(db)), cm(g, idb) {}

  util::ThreadPool* PoolWith(uint32_t threads) {
    if (pool == nullptr || pool->num_threads() != threads) {
      pool = std::make_unique<util::ThreadPool>(threads);
    }
    return pool.get();
  }
};

CoreHarness::CoreHarness(const graph::AttributedGraph& g) {
  auto idb_or = core::InvertedDatabase::FromGraph(g);
  CSPM_CHECK_MSG(idb_or.ok(), "inverted database build failed");
  impl_ = std::make_unique<Impl>(g, std::move(idb_or).value());
}

CoreHarness::CoreHarness(CoreHarness&&) noexcept = default;
CoreHarness& CoreHarness::operator=(CoreHarness&&) noexcept = default;
CoreHarness::~CoreHarness() = default;

size_t CoreHarness::RebuildDatabase() {
  auto idb_or = core::InvertedDatabase::FromGraph(*impl_->graph);
  CSPM_CHECK_MSG(idb_or.ok(), "inverted database build failed");
  impl_->idb = std::move(idb_or).value();
  impl_->cursor_i = 0;
  impl_->cursor_j = 1;
  impl_->staged = false;
  return impl_->idb.num_lines();
}

size_t CoreHarness::num_lines() const { return impl_->idb.num_lines(); }

size_t CoreHarness::num_active_leafsets() const {
  return impl_->idb.num_active_leafsets();
}

size_t CoreHarness::GainSweep(size_t count) {
  Impl& s = *impl_;
  const auto& actives = s.idb.active_leafsets();
  if (actives.size() < 2) return 0;
  size_t feasible = 0;
  for (size_t n = 0; n < count; ++n) {
    auto gain = core::ComputeMergeGain(s.idb, s.cm, actives[s.cursor_i],
                                       actives[s.cursor_j]);
    if (gain.feasible) ++feasible;
    s.cursor_j = (s.cursor_j + 1) % actives.size();
    if (s.cursor_j == s.cursor_i) s.cursor_j = (s.cursor_j + 1) % actives.size();
    if (s.cursor_j == 0) s.cursor_i = (s.cursor_i + 1) % (actives.size() - 1);
  }
  return feasible;
}

size_t CoreHarness::GainSweepAllPairs(uint32_t num_threads) {
  Impl& s = *impl_;
  const auto& actives = s.idb.active_leafsets();
  const size_t m = actives.size();
  if (m < 2) return 0;
  const uint32_t threads =
      num_threads == 0 ? static_cast<uint32_t>(util::ThreadPool::AutoThreads())
                       : num_threads;
  if (threads <= 1) {
    size_t feasible = 0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        if (core::ComputeMergeGain(s.idb, s.cm, actives[i], actives[j])
                .feasible) {
          ++feasible;
        }
      }
    }
    return feasible;
  }
  util::ThreadPool& pool = *s.PoolWith(threads);
  std::vector<size_t> row_feasible(m - 1, 0);
  pool.ParallelFor(m - 1, [&](size_t i) {
    for (size_t j = i + 1; j < m; ++j) {
      if (core::ComputeMergeGain(s.idb, s.cm, actives[i], actives[j])
              .feasible) {
        ++row_feasible[i];
      }
    }
  });
  size_t feasible = 0;
  for (size_t f : row_feasible) feasible += f;
  return feasible;
}

bool CoreHarness::StageFirstFeasibleMerge() {
  Impl& s = *impl_;
  const auto& actives = s.idb.active_leafsets();
  for (size_t a = 0; a < actives.size(); ++a) {
    for (size_t b = a + 1; b < actives.size(); ++b) {
      auto gain = core::ComputeMergeGain(s.idb, s.cm, actives[a], actives[b]);
      if (gain.feasible) {
        s.staged_x = actives[a];
        s.staged_y = actives[b];
        s.staged = true;
        return true;
      }
    }
  }
  s.staged = false;
  return false;
}

uint64_t CoreHarness::ApplyStagedMerge() {
  Impl& s = *impl_;
  CSPM_CHECK_MSG(s.staged, "StageFirstFeasibleMerge() first");
  s.staged = false;
  return s.idb.MergeLeafsets(s.staged_x, s.staged_y).moved_positions;
}

}  // namespace cspm::engine::micro
