// Reproduces Fig. 5: gain update ratio per iteration for CSPM-Basic vs
// CSPM-Partial on the four datasets.
//
// The update ratio of an iteration is the number of gain computations
// performed divided by C(#active leafsets, 2) — the paper's "ratio of gain
// values that are added or updated out of the total number of possible
// calculations". CSPM-Basic recomputes everything (ratio ~= 1); Partial
// only touches related pairs, so its ratio collapses after the first
// iterations.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "engine/session.h"

namespace {

double BudgetSeconds() {
  if (const char* env = std::getenv("CSPM_BENCH_BUDGET_SECONDS")) {
    return std::strtod(env, nullptr);
  }
  return 90.0;
}

void PrintSeries(const char* label,
                 const std::vector<cspm::engine::IterationStats>& stats) {
  // Downsample to at most 12 sample points.
  std::printf("  %-12s", label);
  if (stats.empty()) {
    std::printf(" (no iterations)\n");
    return;
  }
  const size_t n = stats.size();
  const size_t step = std::max<size_t>(1, n / 12);
  for (size_t i = 0; i < n; i += step) {
    std::printf(" %5.1f%%", 100.0 * stats[i].UpdateRatio());
  }
  std::printf("  (%zu iterations)\n", n);
}

}  // namespace

int main() {
  using namespace cspm;
  const double budget = BudgetSeconds();
  std::printf("=== Fig. 5: gain update ratio per iteration "
              "(sampled; cap %.0fs per run) ===\n", budget);
  for (const auto& item : bench::MakeTable2Datasets()) {
    std::printf("%s:\n", item.name.c_str());
    for (auto strategy : {engine::Search::kBasic, engine::Search::kPartial}) {
      if (strategy == engine::Search::kBasic &&
          item.graph.num_vertices().value() > 5000) {
        std::printf("  %-12s (skipped: dataset too large for Basic)\n",
                    "CSPM-Basic");
        continue;
      }
      engine::MiningOptions options;
      options.strategy = strategy;
      options.record_iteration_stats = true;
      options.max_seconds = budget;
      auto model = engine::MineModel(item.graph, options).value();
      PrintSeries(strategy == engine::Search::kBasic ? "CSPM-Basic"
                                                     : "CSPM-Partial",
                  model.stats.per_iteration);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper shape: Basic stays near 100%%; Partial drops to a "
              "few percent after the initial generation\n");
  return 0;
}
