// Live-update benchmark: the delta engine vs cold rebuilds across update
// ratios on the n=8000 pokec stand-in (CSPM_BENCH_UPDATE_VERTICES
// overrides). Update ratio is expressed in edge rewires; one op dirties
// two vertices, so 4 / 40 / 200 ops = 0.1% / 1% / 5% dirty vertices.
//
// Two layers are measured:
//
//  - BM_DeltaApply/<ops> vs BM_FullRebuild: the data-structure delta path
//    (transactional CSR graph patch + InvertedDatabase::ApplyDelta over
//    the dirty vertices only) against the cold equivalent (rebuild the
//    graph from scratch, 3-pass FromGraph). This is the Fig. 5 update
//    story at the storage layer and the ratio the CI gate holds to >= 5x
//    at <= 1% dirty vertices.
//
//  - BM_WarmRemine/<ops> (exact) and BM_FastRemine/<ops> vs
//    BM_ColdRemine/<ops>: end-to-end MiningSession::ApplyUpdates against
//    a cold session re-mine of the mutated graph. The exact mode must
//    stay bit-identical to cold, which forces a full merge-loop replay —
//    honest numbers: ~1.0-1.5x, bounded by the clean-seed share (see
//    DESIGN.md §9). The fast mode continues from the final mined model
//    (patch the merged database, undo flipped merges, re-evaluate only
//    dirty-core pairs), trading bit-identity for a DL-within-ε contract —
//    this is the ratio the CI gate holds to >= 5x at 1% dirty, alongside
//    the dl_ratio_vs_cold quality counter it holds to <= 1.01.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <utility>

#include "bench_common.h"
#include "cspm/inverted_database.h"
#include "engine/session.h"
#include "graph/graph_delta.h"
#include "util/check.h"
#include "util/rng.h"

namespace cspm::bench {
namespace {

uint32_t UpdateBenchVertices() {
  if (const char* env = std::getenv("CSPM_BENCH_UPDATE_VERTICES")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 8000;
}

/// The shared update workload (graph::MakeRandomEdgeRewires), asserted
/// to sample every op so "k ops" really is k rewires.
graph::GraphDelta MakeEdgeDelta(const graph::AttributedGraph& g, uint32_t ops,
                                uint64_t seed) {
  auto delta = graph::MakeRandomEdgeRewires(g, ops, seed);
  CSPM_CHECK(delta.ok());
  return std::move(delta).value();
}

struct UpdateFixture {
  graph::AttributedGraph base;
  core::InvertedDatabase initial_db;

  static const UpdateFixture& Get() {
    static UpdateFixture* fixture = [] {
      // Leaky singleton: benches share one mined fixture and never
      // destroy it (destruction order vs static bench registration).
      auto* f = new UpdateFixture();  // lint:allow naked-new
      f->base = datasets::MakePokecLike(1, UpdateBenchVertices()).value();
      f->initial_db = core::InvertedDatabase::FromGraph(f->base).value();
      return f;
    }();
    return *fixture;
  }
};

/// Delta path: transactional graph patch + inverted-database patch over
/// the dirty vertices only.
void BM_DeltaApply(benchmark::State& state) {
  const UpdateFixture& f = UpdateFixture::Get();
  const auto ops = static_cast<uint32_t>(state.range(0));
  const graph::GraphDelta delta = MakeEdgeDelta(f.base, ops, 1234 + ops);
  size_t dirty_vertices = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::InvertedDatabase idb = f.initial_db.Clone();
    state.ResumeTiming();
    auto applied = graph::ApplyDelta(f.base, delta);
    CSPM_CHECK(applied.ok());
    core::DeltaPatchStats patch;
    CSPM_CHECK(idb.ApplyDelta(f.base, applied->graph,
                              applied->dirty_vertices, &patch)
                   .ok());
    dirty_vertices = applied->dirty_vertices.size();
    benchmark::DoNotOptimize(idb.num_lines());
  }
  state.counters["dirty_vertices"] = static_cast<double>(dirty_vertices);
}
BENCHMARK(BM_DeltaApply)->Arg(4)->Arg(40)->Arg(200)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Cold equivalent of the delta path: rebuild the CSR graph from scratch
/// and run the 3-pass inverted-database construction.
void BM_FullRebuild(benchmark::State& state) {
  const UpdateFixture& f = UpdateFixture::Get();
  // The mutated graph's raw data, as a loader would re-read it.
  const graph::GraphDelta delta = MakeEdgeDelta(f.base, 40, 1234 + 40);
  const graph::AttributedGraph mutated =
      std::move(graph::ApplyDelta(f.base, delta).value().graph);
  for (auto _ : state) {
    graph::GraphBuilder builder;
    for (graph::AttrId a(0); a.index() < mutated.num_attribute_values(); ++a) {
      builder.InternAttribute(mutated.dict().Name(a));
    }
    for (graph::VertexId v(0); v < mutated.num_vertices(); ++v) {
      auto attrs = mutated.Attributes(v);
      builder.AddVertexWithIds({attrs.begin(), attrs.end()});
    }
    for (graph::VertexId v(0); v < mutated.num_vertices(); ++v) {
      for (graph::VertexId w : mutated.Neighbors(v)) {
        if (v < w) CSPM_CHECK(builder.AddEdge(v, w).ok());
      }
    }
    auto rebuilt = std::move(builder).Build();
    CSPM_CHECK(rebuilt.ok());
    auto idb = core::InvertedDatabase::FromGraph(*rebuilt);
    CSPM_CHECK(idb.ok());
    benchmark::DoNotOptimize(idb->num_lines());
  }
}
BENCHMARK(BM_FullRebuild)->Unit(benchmark::kMillisecond)->UseRealTime();

engine::MiningOptions UpdateMiningOptions() {
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  return opts;
}

/// End-to-end incremental update: ApplyUpdates on a warm session.
void BM_WarmRemine(benchmark::State& state) {
  const UpdateFixture& f = UpdateFixture::Get();
  const auto ops = static_cast<uint32_t>(state.range(0));
  const graph::GraphDelta delta = MakeEdgeDelta(f.base, ops, 1234 + ops);
  engine::UpdateStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    auto session =
        std::move(engine::MiningSession::Create(f.base, UpdateMiningOptions()))
            .value();
    CSPM_CHECK(session.Mine().ok());
    state.ResumeTiming();
    CSPM_CHECK(session.ApplyUpdates(delta, &stats).ok());
    benchmark::DoNotOptimize(session.stats().final_dl_bits);
  }
  CSPM_CHECK(stats.warm_path);
  state.counters["dirty_pairs"] = static_cast<double>(stats.dirty_pairs);
  state.counters["reseeded"] = static_cast<double>(stats.reseeded_pairs);
}
BENCHMARK(BM_WarmRemine)->Arg(4)->Arg(40)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// End-to-end continue-from-final-model update: ApplyUpdates(kFast) on a
/// warm session. The dl_ratio_vs_cold counter is the quality side of the
/// fast contract (fast model DL / cold model DL on the same mutated
/// graph); splits and seeded expose what the repair actually did.
void BM_FastRemine(benchmark::State& state) {
  const UpdateFixture& f = UpdateFixture::Get();
  const auto ops = static_cast<uint32_t>(state.range(0));
  const graph::GraphDelta delta = MakeEdgeDelta(f.base, ops, 1234 + ops);
  // The cold-mine DL of the mutated graph, computed once: the quality
  // denominator, not part of the timed region.
  const double cold_dl = [&] {
    const graph::AttributedGraph mutated =
        std::move(graph::ApplyDelta(f.base, delta).value().graph);
    auto session =
        std::move(engine::MiningSession::Create(mutated, UpdateMiningOptions()))
            .value();
    CSPM_CHECK(session.Mine().ok());
    return session.stats().final_dl_bits;
  }();
  engine::UpdateStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    auto session =
        std::move(engine::MiningSession::Create(f.base, UpdateMiningOptions()))
            .value();
    CSPM_CHECK(session.Mine().ok());
    state.ResumeTiming();
    CSPM_CHECK(
        session.ApplyUpdates(delta, engine::UpdateMode::kFast, &stats).ok());
    benchmark::DoNotOptimize(session.stats().final_dl_bits);
  }
  CSPM_CHECK(stats.fast_path);
  state.counters["dl_ratio_vs_cold"] = stats.dl_after_bits / cold_dl;
  state.counters["splits"] = static_cast<double>(stats.split_undos);
  state.counters["seeded"] = static_cast<double>(stats.reseeded_pairs);
}
BENCHMARK(BM_FastRemine)->Arg(4)->Arg(40)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Cold counterpart: re-mine the mutated graph from scratch (same options,
/// so the warm path above is bit-identical to this model).
void BM_ColdRemine(benchmark::State& state) {
  const UpdateFixture& f = UpdateFixture::Get();
  const auto ops = static_cast<uint32_t>(state.range(0));
  const graph::GraphDelta delta = MakeEdgeDelta(f.base, ops, 1234 + ops);
  const graph::AttributedGraph mutated =
      std::move(graph::ApplyDelta(f.base, delta).value().graph);
  for (auto _ : state) {
    auto session =
        std::move(engine::MiningSession::Create(mutated, UpdateMiningOptions()))
            .value();
    CSPM_CHECK(session.Mine().ok());
    benchmark::DoNotOptimize(session.stats().final_dl_bits);
  }
}
BENCHMARK(BM_ColdRemine)->Arg(4)->Arg(40)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cspm::bench

BENCHMARK_MAIN();
