// Reproduces Table II: statistics about datasets.
//
// Paper reference (Table II):
//   Dataset      DBLP    DBLP-Trend  USFlight  Pokec
//   #Nodes       2,723   2,723       280       1,632,803
//   #Total edges 3,464   3,464       4,030     30,622,564
//   |S^M_c|      127     271         70        914
//
// Our datasets are synthetic stand-ins shaped to those statistics (Pokec
// scaled down; set CSPM_BENCH_POKEC_VERTICES to change the scale).
#include <cstdio>

#include "bench_common.h"
#include "graph/stats.h"

int main() {
  using namespace cspm;
  std::printf("=== Table II: statistics about datasets (synthetic stand-ins) ===\n");
  std::printf("%-14s %10s %12s %8s %8s %10s\n", "Dataset", "#Nodes",
              "#TotalEdges", "|Sc|", "|A|", "avg-attrs");
  for (const auto& item : bench::MakeTable2Datasets()) {
    graph::GraphStats s = graph::ComputeStats(item.graph);
    std::printf("%-14s %10llu %12llu %8llu %8llu %10.2f\n",
                item.name.c_str(),
                static_cast<unsigned long long>(s.num_vertices),
                static_cast<unsigned long long>(s.num_edges),
                static_cast<unsigned long long>(s.num_coresets),
                static_cast<unsigned long long>(s.num_attribute_values),
                s.avg_attributes_per_vertex);
  }
  std::printf("\npaper: DBLP 2723/3464/127, DBLP-Trend 2723/3464/271, "
              "USFlight 280/4030/70, Pokec 1.6M/30.6M/914 (ours scaled)\n");
  return 0;
}
