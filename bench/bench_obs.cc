// Observability overhead benchmark: the instrumentation's own cost,
// measured instead of assumed.
//
// Primitive costs (BM_CounterAdd / BM_HistogramRecord / BM_TraceSpan) show
// the per-event price; the headline pair is BM_ScoreBatchObsOn vs
// BM_ScoreBatchObsOff — the full serving hot path with the runtime obs
// toggle on and off, in one binary and one run, so the on/off ratio is
// machine-normalized. ci/bench_gate.py gates that ratio against the
// BENCH_BASELINE.json `max_obs_overhead` key (1.02 = within 2%).
//
// CSPM_BENCH_OBS_VERTICES overrides the graph size.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "engine/serving.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace cspm::bench {
namespace {

uint32_t ObsBenchVertices() {
  if (const char* env = std::getenv("CSPM_BENCH_OBS_VERTICES")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 4000;
}

/// Vertices scored per iteration. Small enough that one iteration is tens
/// of milliseconds, so the on/off ratio averages over many iterations
/// instead of riding on two one-shot measurements.
constexpr size_t kBatchVertices = 256;

/// Mined-once fixture shared by the ScoreBatch on/off pair.
struct ObsFixture {
  graph::AttributedGraph graph;
  core::CspmModel model;
  std::vector<graph::VertexId> batch;

  static const ObsFixture& Get() {
    static ObsFixture* fixture = [] {
      // Leaky singleton: benches share one mined fixture and never
      // destroy it (destruction order vs static bench registration).
      auto* f = new ObsFixture();  // lint:allow naked-new
      f->graph = datasets::MakePokecLike(1, ObsBenchVertices()).value();
      engine::MiningOptions opts;
      opts.record_iteration_stats = false;
      f->model = engine::MineModel(f->graph, opts).value();
      const size_t n = std::min<size_t>(kBatchVertices,
                                        f->graph.num_vertices().index());
      for (graph::VertexId v(0); v.index() < n; ++v) {
        f->batch.push_back(v);
      }
      return f;
    }();
    return *fixture;
  }
};

/// One sharded counter increment — the contract's hot-path unit cost.
void BM_CounterAdd(benchmark::State& state) {
  obs::SetEnabled(true);
  obs::Counter* counter = obs::GetCounter("bench.obs.counter");
  for (auto _ : state) {
    counter->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

/// One histogram record: bucket shift + two relaxed adds + min/max CAS.
void BM_HistogramRecord(benchmark::State& state) {
  obs::SetEnabled(true);
  obs::Histogram* hist = obs::GetHistogram("bench.obs.hist");
  uint64_t ns = 1;
  for (auto _ : state) {
    hist->Record(ns);
    ns = (ns * 2862933555777941757ULL + 3037000493ULL) >> 32;  // cheap LCG
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/// Full hierarchical span lifecycle (cold-path cost: TLS push/pop, name
/// join, registry lookup, record).
void BM_TraceSpan(benchmark::State& state) {
  obs::SetEnabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench_span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan);

void RunScoreBatch(benchmark::State& state, bool obs_on) {
  const ObsFixture& f = ObsFixture::Get();
  auto engine = engine::ServingEngine::Create(f.graph, f.model).value();
  obs::SetEnabled(obs_on);
  // Untimed warmup so neither side pays first-touch cache misses.
  CSPM_CHECK(engine.ScoreBatch(f.batch).ok());
  for (auto _ : state) {
    auto batch = engine.ScoreBatch(f.batch);
    CSPM_CHECK(batch.ok());
    benchmark::DoNotOptimize(batch->data());
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.batch.size()));
}

/// Instrumented serving hot path (obs live).
void BM_ScoreBatchObsOn(benchmark::State& state) {
  RunScoreBatch(state, /*obs_on=*/true);
}
BENCHMARK(BM_ScoreBatchObsOn)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Same path with the runtime toggle off — the CSPM_OBS_OFF stand-in that
/// lives in the same binary, so the on/off ratio cancels machine speed.
void BM_ScoreBatchObsOff(benchmark::State& state) {
  RunScoreBatch(state, /*obs_on=*/false);
}
BENCHMARK(BM_ScoreBatchObsOff)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The gated measurement: every iteration scores the same batch once with
/// obs on and once with obs off, so slow drift (thermal throttling,
/// container co-tenants) hits both sides equally instead of biasing
/// whichever standalone bench ran later. The obs_overhead_ratio counter
/// (instrumented / obs-off wall time) is what ci/bench_gate.py gates
/// against BENCH_BASELINE.json max_obs_overhead.
void BM_ScoreBatchObsOverhead(benchmark::State& state) {
  const ObsFixture& f = ObsFixture::Get();
  auto engine = engine::ServingEngine::Create(f.graph, f.model).value();
  CSPM_CHECK(engine.ScoreBatch(f.batch).ok());  // untimed warmup
  double on_ns = 0.0;
  double off_ns = 0.0;
  for (auto _ : state) {
    obs::SetEnabled(true);
    WallTimer on_timer;
    auto on = engine.ScoreBatch(f.batch);
    on_ns += static_cast<double>(on_timer.ElapsedNanos());
    CSPM_CHECK(on.ok());
    benchmark::DoNotOptimize(on->data());
    obs::SetEnabled(false);
    WallTimer off_timer;
    auto off = engine.ScoreBatch(f.batch);
    off_ns += static_cast<double>(off_timer.ElapsedNanos());
    CSPM_CHECK(off.ok());
    benchmark::DoNotOptimize(off->data());
  }
  obs::SetEnabled(true);
  state.counters["obs_overhead_ratio"] = off_ns > 0.0 ? on_ns / off_ns : 1.0;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * f.batch.size()));
}
BENCHMARK(BM_ScoreBatchObsOverhead)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace cspm::bench

BENCHMARK_MAIN();
