// Serving-path benchmark: vertices/sec for the legacy per-vertex
// ScoreAttributes walk vs the compiled-plan batch path, serial and
// sharded. The headline number backing the batch serving design: the
// compiled plan must beat the legacy path by >= 2x single-threaded on the
// n=8000 synthetic pokec stand-in (postings turn the per-leafset scan
// into intersection counting, and ScoreInto recycles buffers).
//
// CSPM_BENCH_SERVING_VERTICES overrides the graph size (CI smoke-runs
// with a tiny n so the batch path is exercised in Release on every push).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "cspm/scoring.h"
#include "cspm/scoring_plan.h"
#include "engine/serving.h"
#include "engine/session.h"
#include "util/check.h"

namespace cspm::bench {
namespace {

uint32_t ServingBenchVertices() {
  if (const char* env = std::getenv("CSPM_BENCH_SERVING_VERTICES")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 8000;
}

/// Mined-once fixture shared by all serving benches.
struct ServingFixture {
  graph::AttributedGraph graph;
  core::CspmModel model;
  std::vector<graph::VertexId> all_vertices;

  static const ServingFixture& Get() {
    static ServingFixture* fixture = [] {
      // Leaky singleton: benches share one mined fixture and never
      // destroy it (destruction order vs static bench registration).
      auto* f = new ServingFixture();  // lint:allow naked-new
      f->graph = datasets::MakePokecLike(1, ServingBenchVertices()).value();
      engine::MiningOptions opts;
      opts.record_iteration_stats = false;
      f->model = engine::MineModel(f->graph, opts).value();
      for (graph::VertexId v(0); v < f->graph.num_vertices(); ++v) {
        f->all_vertices.push_back(v);
      }
      return f;
    }();
    return *fixture;
  }
};

/// The pre-plan serving path: one ScoreAttributes model walk per vertex,
/// re-deriving the neighbourhood and re-scanning every leafset each call.
void BM_LegacyPerVertex(benchmark::State& state) {
  const ServingFixture& f = ServingFixture::Get();
  for (auto _ : state) {
    for (graph::VertexId v : f.all_vertices) {
      auto scores = core::ScoreAttributes(f.graph, f.model, v);
      benchmark::DoNotOptimize(scores.raw.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.all_vertices.size()));
}
BENCHMARK(BM_LegacyPerVertex)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Compiled plan, serial: one ScoreBatch over every vertex.
void BM_PlanBatchSerial(benchmark::State& state) {
  const ServingFixture& f = ServingFixture::Get();
  auto engine = engine::ServingEngine::Create(f.graph, f.model).value();
  state.counters["plan_bytes"] =
      static_cast<double>(engine.plan().memory_bytes());
  for (auto _ : state) {
    auto batch = engine.ScoreBatch(f.all_vertices);
    CSPM_CHECK(batch.ok());
    benchmark::DoNotOptimize(batch->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.all_vertices.size()));
}
BENCHMARK(BM_PlanBatchSerial)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Compiled plan sharded across a thread pool (arg = threads, 0 = auto).
void BM_PlanBatchThreads(benchmark::State& state) {
  const ServingFixture& f = ServingFixture::Get();
  engine::ServingOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  auto engine = engine::ServingEngine::Create(f.graph, f.model, options).value();
  state.counters["threads"] = static_cast<double>(engine.num_threads());
  for (auto _ : state) {
    auto batch = engine.ScoreBatch(f.all_vertices);
    CSPM_CHECK(batch.ok());
    benchmark::DoNotOptimize(batch->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.all_vertices.size()));
}
BENCHMARK(BM_PlanBatchThreads)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Plan compile cost (amortized once per model load / hot swap).
void BM_PlanCompile(benchmark::State& state) {
  const ServingFixture& f = ServingFixture::Get();
  for (auto _ : state) {
    core::ScoringPlan plan =
        core::ScoringPlan::Compile(f.model, f.graph.num_attribute_values());
    benchmark::DoNotOptimize(plan.num_stars());
  }
}
BENCHMARK(BM_PlanCompile)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cspm::bench

BENCHMARK_MAIN();
