// Reproduces Fig. 6 and the Section VI-B pattern analysis: example a-stars
// mined from DBLP, DBLP-Trend, USFlight and Pokec.
//
// Paper examples:
//   DBLP:       ({ICDM, EDBT} -> {PODS, ICDM, EDBT})
//   DBLP-Trend: ({PAKDD-, ICDM=} -> {KDD=, SAC-, ICDE+, DMKD-})
//   USFlight:   ({NbDepart-} -> {NbDepart+, DelayArriv-})
//   Pokec:      ({rap} -> {rock, metal, pop, sladaky}),
//               ({disko} -> {oldies, disko})
//
// We print the shortest-code merged a-stars per dataset; the planted
// correlations should surface near the top.
#include <cstdio>

#include "bench_common.h"
#include "engine/session.h"

int main() {
  using namespace cspm;
  std::printf("=== Fig. 6 / Sec. VI-B: example a-stars "
              "(top merged patterns by code length) ===\n");
  for (const auto& item : bench::MakeTable2Datasets()) {
    engine::MiningOptions options;
    options.record_iteration_stats = false;
    auto model = engine::MineModel(item.graph, options).value();
    std::printf("%s (%zu a-stars, DL %.0f -> %.0f bits):\n",
                item.name.c_str(), model.astars.size(),
                model.stats.initial_dl_bits, model.stats.final_dl_bits);
    int shown = 0;
    for (const auto& s : model.PatternsWithMinLeaves(2)) {
      if (s.frequency < 3) continue;  // degenerate one-off lines
      std::printf("  %s\n", s.ToString(item.graph.dict()).c_str());
      if (++shown >= 5) break;
    }
    std::fflush(stdout);
  }
  return 0;
}
