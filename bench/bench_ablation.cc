// Ablation bench for the design choices called out in DESIGN.md:
//   (1) gain policy: pure-data gain (paper's Alg. 2 check) vs data+model;
//   (2) revalidate-on-pop in CSPM-Partial on vs off;
//   (3) ACOR with the temporal-precedence oracle vs the published
//       time-flattened variant.
#include <cstdio>

#include "alarm/acor.h"
#include "alarm/simulator.h"
#include "alarm/window_graph.h"
#include "bench_common.h"
#include "engine/session.h"

namespace {

void RunMinerVariant(const char* label, const cspm::graph::AttributedGraph& g,
                     cspm::engine::MiningOptions options) {
  options.record_iteration_stats = false;
  auto model = cspm::engine::MineModel(g, options).value();
  std::printf("  %-28s DL %.0f -> %.0f (ratio %.4f), %llu merges, "
              "%llu gain calcs, %.3fs\n",
              label, model.stats.initial_dl_bits, model.stats.final_dl_bits,
              model.stats.CompressionRatio(),
              static_cast<unsigned long long>(model.stats.iterations),
              static_cast<unsigned long long>(
                  model.stats.total_gain_computations),
              model.stats.runtime_seconds);
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace cspm;
  auto g = datasets::MakeDblpLike(1).value();

  std::printf("=== Ablation 1: gain policy (DBLP-like) ===\n");
  {
    engine::MiningOptions data_only;
    data_only.gain_policy = engine::Gain::kDataOnly;
    RunMinerVariant("data-only gain (Alg. 2)", g, data_only);
    engine::MiningOptions with_model;
    with_model.gain_policy = engine::Gain::kDataPlusModel;
    RunMinerVariant("data+model gain (MDL)", g, with_model);
  }

  std::printf("=== Ablation 2: revalidate-on-pop in Partial ===\n");
  {
    engine::MiningOptions on;
    on.revalidate_on_pop = true;
    RunMinerVariant("revalidate on", g, on);
    engine::MiningOptions off;
    off.revalidate_on_pop = false;
    RunMinerVariant("revalidate off", g, off);
  }

  std::printf("=== Ablation 3: ACOR direction signal (alarm sim) ===\n");
  {
    Rng rng(99);
    auto lib = alarm::RuleLibrary::Generate(8, 6, 10, 120, &rng);
    alarm::SimulationOptions options;
    options.num_devices = 120;
    options.num_alarm_types = 120;
    options.duration_minutes = 3000;
    options.cause_incidents = 3000;
    options.seed = 99;
    auto data = alarm::SimulateAlarms(options, lib).value();
    auto valid = lib.PairRules();
    for (bool oracle : {false, true}) {
      alarm::AcorOptions aopts;
      aopts.use_temporal_precedence = oracle;
      auto ranked = alarm::RunAcor(data, aopts);
      auto cov = alarm::CoverageAtK(ranked, valid,
                                    {valid.size(), 2 * valid.size()});
      std::printf("  ACOR %-22s coverage@%zu=%.3f  @%zu=%.3f\n",
                  oracle ? "(timestamp oracle)" : "(published, windowed)",
                  valid.size(), cov[0], 2 * valid.size(), cov[1]);
    }
  }
  return 0;
}
