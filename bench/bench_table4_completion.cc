// Reproduces Table IV: profiling evaluation for node attribute completion.
// Six baselines (NeighAggre, VAE, GCN, GAT, GraphSage, SAT) with and
// without the CSPM scoring fusion, on Cora-, Citeseer- and DBLP-like
// synthetic graphs, reporting Recall@K and NDCG@K.
//
// The shape to reproduce: CSPM+X >= X for every model X, with the largest
// uplift on the weak baselines (NeighAggre, VAE). Absolute values differ
// from the paper (synthetic data, compact models; see DESIGN.md §3).
#include <cstdio>
#include <cstdlib>

#include "completion/fusion.h"
#include "completion/models.h"
#include "completion/task.h"
#include "datasets/synthetic.h"
#include "engine/session.h"

namespace {

uint32_t Epochs() {
  if (const char* env = std::getenv("CSPM_BENCH_EPOCHS")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 80;
}

struct DatasetSpec {
  const char* name;
  cspm::graph::AttributedGraph graph;
  std::vector<size_t> ks;
};

void PrintRow(const char* name, const cspm::completion::CompletionMetrics& m) {
  std::printf("  %-18s", name);
  for (double r : m.recall) std::printf(" %7.4f", r);
  for (double n : m.ndcg) std::printf(" %7.4f", n);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace cspm;
  using namespace cspm::completion;

  std::vector<DatasetSpec> specs;
  specs.push_back({"Cora-like", datasets::MakeCoraLike(3).value(),
                   {10, 20, 50}});
  specs.push_back({"Citeseer-like", datasets::MakeCiteseerLike(3).value(),
                   {10, 20, 50}});
  specs.push_back({"DBLP-like", datasets::MakeDblpLike(3).value(),
                   {3, 5, 10}});

  std::printf("=== Table IV: node attribute completion "
              "(Recall@K then NDCG@K) ===\n");
  for (auto& spec : specs) {
    auto data = MakeCompletionTask(spec.graph, /*missing_fraction=*/0.3,
                                   /*seed=*/41).value();
    engine::MiningOptions mopts;
    mopts.record_iteration_stats = false;
    auto cspm_model =
        engine::MineModel(data.masked_graph, mopts).value();

    std::printf("%s (K = {%zu, %zu, %zu}):\n", spec.name, spec.ks[0],
                spec.ks[1], spec.ks[2]);
    std::printf("  %-18s", "Method");
    for (size_t k : spec.ks) std::printf("  Rec@%-3zu", k);
    for (size_t k : spec.ks) std::printf(" NDCG@%-2zu", k);
    std::printf("\n");

    ModelOptions options;
    options.epochs = Epochs();
    options.vae.epochs = Epochs();
    double base_recall_sum = 0.0;
    double fused_recall_sum = 0.0;
    for (auto& model : MakeAllModels(options)) {
      nn::Matrix base_scores = model->PredictScores(data);
      nn::Matrix fused_scores = FuseWithCspm(base_scores, data, cspm_model);
      auto base = EvaluateScores(data, base_scores, spec.ks);
      auto fused = EvaluateScores(data, fused_scores, spec.ks);
      PrintRow(model->name().c_str(), base);
      PrintRow(("CSPM+" + model->name()).c_str(), fused);
      base_recall_sum += base.recall[0];
      fused_recall_sum += fused.recall[0];
    }
    std::printf("  avg Recall@%zu uplift: %+.2f%%\n", spec.ks[0],
                base_recall_sum > 0
                    ? 100.0 * (fused_recall_sum - base_recall_sum) /
                          base_recall_sum
                    : 0.0);
  }
  std::printf("\npaper shape: CSPM+X >= X for every model, largest uplift "
              "on NeighAggre/VAE\n");
  return 0;
}
