// Store-layer benchmark: binary store save/load/open against the text
// round trip, on a model mined from the n=8000 synthetic dataset. The
// headline number backing the store design: ModelStore::Open + Get must
// beat LoadModelFromFile (text parse + name resolution) by a wide margin,
// and Open alone is O(1) in the model payload.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "cspm/serialization.h"
#include "engine/session.h"
#include "store/model_store.h"
#include "util/check.h"

namespace cspm::bench {
namespace {

/// Mined-once fixture shared by all store benches.
struct StoreFixture {
  graph::AttributedGraph graph;
  core::CspmModel model;
  std::string text;          // text serialization of `model`
  std::string text_path;     // committed text file
  std::string store_path;    // committed binary store (model + dict)

  static const StoreFixture& Get() {
    static StoreFixture* fixture = [] {
      // Leaky singleton: benches share one mined fixture and never
      // destroy it (destruction order vs static bench registration).
      auto* f = new StoreFixture();  // lint:allow naked-new
      f->graph = datasets::MakePokecLike(1, 8000).value();
      engine::MiningOptions opts;
      opts.record_iteration_stats = false;
      f->model = engine::MineModel(f->graph, opts).value();
      f->text = core::ModelToText(f->model, f->graph.dict());
      f->text_path = "bench_store_model.txt";
      CSPM_CHECK(
          core::SaveModelToFile(f->model, f->graph.dict(), f->text_path).ok());
      f->store_path = "bench_store_model.cspm";
      std::remove(f->store_path.c_str());
      auto store = store::ModelStore::Create(f->store_path).value();
      store::StoredModel stored;
      stored.model = f->model;
      stored.dict = f->graph.dict();
      CSPM_CHECK(store.Put("default", stored).ok());
      return f;
    }();
    return *fixture;
  }
};

void BM_TextSave(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const std::string path = "bench_store_save.txt";
  for (auto _ : state) {
    CSPM_CHECK(core::SaveModelToFile(f.model, f.graph.dict(), path).ok());
  }
  state.counters["bytes"] = static_cast<double>(f.text.size());
  std::remove(path.c_str());
}
BENCHMARK(BM_TextSave)->Unit(benchmark::kMicrosecond);

void BM_TextLoad(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto model = core::LoadModelFromFile(f.text_path, f.graph.dict());
    CSPM_CHECK(model.ok());
    benchmark::DoNotOptimize(model.value().astars.size());
  }
}
BENCHMARK(BM_TextLoad)->Unit(benchmark::kMicrosecond);

void BM_BinarySave(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const std::string path = "bench_store_save.cspm";
  store::StoredModel stored;
  stored.model = f.model;
  stored.dict = f.graph.dict();
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    state.ResumeTiming();
    auto store = store::ModelStore::Create(path).value();
    CSPM_CHECK(store.Put("default", stored).ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BinarySave)->Unit(benchmark::kMicrosecond);

void BM_BinaryLoad(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path).value();
    auto stored = store.Get("default");
    CSPM_CHECK(stored.ok());
    benchmark::DoNotOptimize(stored.value().model.astars.size());
  }
}
BENCHMARK(BM_BinaryLoad)->Unit(benchmark::kMicrosecond);

void BM_BinaryOpen(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path);
    CSPM_CHECK(store.ok());
    benchmark::DoNotOptimize(store.value().size());
  }
}
BENCHMARK(BM_BinaryOpen)->Unit(benchmark::kMicrosecond);

/// Session-level round trip through the auto-detecting facade paths.
void BM_SessionLoadBinary(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  auto session = std::move(engine::MiningSession::Create(f.graph)).value();
  for (auto _ : state) {
    CSPM_CHECK(session.LoadModel(f.store_path).ok());
    benchmark::DoNotOptimize(session.model().astars.size());
  }
}
BENCHMARK(BM_SessionLoadBinary)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cspm::bench

BENCHMARK_MAIN();
