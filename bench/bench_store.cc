// Store-layer benchmark: binary store save/load/open against the text
// round trip, on a model mined from the n=8000 synthetic dataset. The
// headline number backing the store design: ModelStore::Open + Get must
// beat LoadModelFromFile (text parse + name resolution) by a wide margin,
// and Open alone is O(1) in the model payload.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "cspm/scoring_plan.h"
#include "cspm/serialization.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "store/model_store.h"
#include "util/check.h"
#include "util/string_util.h"

namespace cspm::bench {
namespace {

/// Mined-once fixture shared by all store benches.
struct StoreFixture {
  graph::AttributedGraph graph;
  core::CspmModel model;
  std::string text;          // text serialization of `model`
  std::string text_path;     // committed text file
  std::string store_path;    // committed binary store (model + dict)

  static const StoreFixture& Get() {
    static StoreFixture* fixture = [] {
      // Leaky singleton: benches share one mined fixture and never
      // destroy it (destruction order vs static bench registration).
      auto* f = new StoreFixture();  // lint:allow naked-new
      f->graph = datasets::MakePokecLike(1, 8000).value();
      engine::MiningOptions opts;
      opts.record_iteration_stats = false;
      f->model = engine::MineModel(f->graph, opts).value();
      f->text = core::ModelToText(f->model, f->graph.dict());
      f->text_path = "bench_store_model.txt";
      CSPM_CHECK(
          core::SaveModelToFile(f->model, f->graph.dict(), f->text_path).ok());
      f->store_path = "bench_store_model.cspm";
      std::remove(f->store_path.c_str());
      auto store = store::ModelStore::Create(f->store_path).value();
      store::StoredModel stored;
      stored.model = f->model;
      stored.dict = f->graph.dict();
      CSPM_CHECK(store.Put("default", stored).ok());
      return f;
    }();
    return *fixture;
  }
};

void BM_TextSave(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const std::string path = "bench_store_save.txt";
  for (auto _ : state) {
    CSPM_CHECK(core::SaveModelToFile(f.model, f.graph.dict(), path).ok());
  }
  state.counters["bytes"] = static_cast<double>(f.text.size());
  std::remove(path.c_str());
}
BENCHMARK(BM_TextSave)->Unit(benchmark::kMicrosecond);

void BM_TextLoad(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto model = core::LoadModelFromFile(f.text_path, f.graph.dict());
    CSPM_CHECK(model.ok());
    benchmark::DoNotOptimize(model.value().astars.size());
  }
}
BENCHMARK(BM_TextLoad)->Unit(benchmark::kMicrosecond);

void BM_BinarySave(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const std::string path = "bench_store_save.cspm";
  store::StoredModel stored;
  stored.model = f.model;
  stored.dict = f.graph.dict();
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    state.ResumeTiming();
    auto store = store::ModelStore::Create(path).value();
    CSPM_CHECK(store.Put("default", stored).ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BinarySave)->Unit(benchmark::kMicrosecond);

void BM_BinaryLoad(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path).value();
    auto stored = store.Get("default");
    CSPM_CHECK(stored.ok());
    benchmark::DoNotOptimize(stored.value().model.astars.size());
  }
}
BENCHMARK(BM_BinaryLoad)->Unit(benchmark::kMicrosecond);

void BM_BinaryOpen(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path);
    CSPM_CHECK(store.ok());
    benchmark::DoNotOptimize(store.value().size());
  }
}
BENCHMARK(BM_BinaryOpen)->Unit(benchmark::kMicrosecond);

// --- cold open -> first scored vertex (v3 zero-copy contract) -------------

/// One pre-gathered neighbourhood: the "first batch" is deliberately the
/// single cheapest-to-score vertex (fewest posting entries touched), so
/// the measurement is dominated by how the plan comes into memory
/// (record decode + compile vs mmap), not by scoring throughput — a hub
/// vertex would add milliseconds of identical scoring work to both sides
/// and dilute the ratio this bench exists to expose.
const std::vector<graph::AttrId>& FirstVertexNeighbourhood() {
  static const std::vector<graph::AttrId>* attrs = [] {
    const StoreFixture& f = StoreFixture::Get();
    const auto plan = core::CompileSharedPlan(f.model, f.graph.dict().size());
    const auto& offsets = plan->slabs().posting_offsets;
    size_t best_vertex = 0;
    size_t best_cost = ~size_t{0};
    std::vector<graph::AttrId> nb;
    for (size_t v = 0; v < f.graph.num_vertices().index(); ++v) {
      nb.clear();
      core::GatherNeighbourhoodAttrs(f.graph, graph::VertexId(v), &nb);
      if (nb.empty()) continue;
      size_t cost = 0;
      for (graph::AttrId a : nb) {
        cost += offsets[a.index() + 1] - offsets[a.index()];
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_vertex = v;
      }
    }
    auto* out = new std::vector<graph::AttrId>();  // lint:allow naked-new
    core::GatherNeighbourhoodAttrs(f.graph, graph::VertexId(best_vertex), out);
    return out;
  }();
  return *attrs;
}

/// The pre-v3 serving path: open the store, decode the multi-MB record,
/// compile the plan, score the first vertex.
void BM_ColdOpenFirstBatchDecode(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const auto& neighbourhood = FirstVertexNeighbourhood();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path).value();
    auto stored = store.Get("default");
    CSPM_CHECK(stored.ok());
    auto plan =
        core::CompileSharedPlan(stored->model, stored->dict.size());
    auto scores = plan->Score(neighbourhood);
    benchmark::DoNotOptimize(scores.normalized.data());
  }
}
BENCHMARK(BM_ColdOpenFirstBatchDecode)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The v3 path: open the store, mmap the plan section, score the first
/// vertex — no record decode, no compile. The cold-open speedup gated by
/// ci/bench_gate.py is Decode/Mmap from one run of this binary.
void BM_ColdOpenFirstBatchMmap(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  const auto& neighbourhood = FirstVertexNeighbourhood();
  for (auto _ : state) {
    auto store = store::ModelStore::Open(f.store_path).value();
    auto plan = store.OpenPlan("default");
    CSPM_CHECK(plan.ok());
    auto scores = (*plan)->Score(neighbourhood);
    benchmark::DoNotOptimize(scores.normalized.data());
  }
}
BENCHMARK(BM_ColdOpenFirstBatchMmap)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- paged catalog index lookups ------------------------------------------

/// Built-once stores of n tiny models, for catalog-scale lookups.
const std::string& CatalogStorePath(int n) {
  static std::map<int, std::string>* paths = [] {
    return new std::map<int, std::string>();  // lint:allow naked-new
  }();
  auto it = paths->find(n);
  if (it != paths->end()) return it->second;
  const std::string path = StrFormat("bench_store_catalog_%d.cspm", n);
  std::remove(path.c_str());
  auto store = store::ModelStore::Create(path).value();
  std::vector<std::pair<std::string, store::StoredModel>> batch;
  batch.reserve(n);
  for (int i = 0; i < n; ++i) {
    batch.emplace_back(StrFormat("m%05d", i), store::StoredModel{});
  }
  CSPM_CHECK(store.PutMany(batch).ok());
  return paths->emplace(n, path).first->second;
}

/// Open + one name lookup on an n-model store: O(log n) index page reads
/// (reported per iteration) instead of decoding a linear catalog.
void BM_CatalogLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string& path = CatalogStorePath(n);
  const std::string probe = StrFormat("m%05d", n / 2);
  obs::Counter* reads = obs::GetCounter("store.catalog.index_page_reads");
  const uint64_t before = reads->Value();
  uint64_t iters = 0;
  for (auto _ : state) {
    auto store = store::ModelStore::Open(path).value();
    CSPM_CHECK(store.Contains(probe));
    benchmark::DoNotOptimize(store.size());
    ++iters;
  }
  state.counters["index_page_reads_per_open_lookup"] =
      iters > 0 ? static_cast<double>(reads->Value() - before) /
                      static_cast<double>(iters)
                : 0.0;
}
BENCHMARK(BM_CatalogLookup)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Session-level round trip through the auto-detecting facade paths.
void BM_SessionLoadBinary(benchmark::State& state) {
  const StoreFixture& f = StoreFixture::Get();
  auto session = std::move(engine::MiningSession::Create(f.graph)).value();
  for (auto _ : state) {
    CSPM_CHECK(session.LoadModel(f.store_path).ok());
    benchmark::DoNotOptimize(session.model().astars.size());
  }
}
BENCHMARK(BM_SessionLoadBinary)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cspm::bench

BENCHMARK_MAIN();
