// Network serving load generator: measures what the ISSUE's coalescing
// contract actually buys over the wire — batched throughput vs the
// per-request baseline (--max-batch 1 semantics), plus open-loop tail
// latency under a fixed offered load.
//
// Methodology (docs/OPERATIONS.md "Capacity planning"):
//
//  1. Closed-loop capacity, both modes, against an in-process Server
//     (real TCP + epoll + executor — only process isolation is skipped):
//       per-request: --max-batch 1 server, synchronous clients, one
//         vertex per request frame, one request in flight per
//         connection. Every vertex pays the full per-request cost —
//         frame parse, validation, dispatch, completion, reply write —
//         the classic RPC baseline a client without batching support is
//         stuck with.
//       batched: shipped server defaults, kBatchRequestVertices vertices
//         per frame, each connection streaming kPipelineDepth frames;
//         concurrent requests additionally coalesce into shared executor
//         flushes (up to 1024 vertices per ScoreBatch).
//     Sustained vertices/s per mode at the same 8 connections; the gated
//     `net_batch_speedup` is their ratio, measured in one run of one
//     binary on one machine, so runner speed cancels (ci/bench_gate.py
//     --loadgen, baseline key `min_net_batch_speedup`).
//
//  2. Open loop: requests arrive on a wall-clock schedule at ~4x the
//     per-request capacity (capped at 80% of batched capacity so the
//     batched side is measured stable, not at its own cliff). Senders
//     never wait for replies — queueing delay is visible, the way a real
//     overloaded service sees it. The batched server sustains the load;
//     the per-request server saturates and sheds with OVERLOADED.
//     Reported: p50/p99 reply latency, delivered vertices/s, overloaded
//     reply count per mode.
//
// Output is google-benchmark-compatible JSON ({"benchmarks": [...]}), so
// ci/bench_gate.py parses it with the same loader as the other benches.
//
//   bench_loadgen [--out FILE]
//
// CSPM_BENCH_LOADGEN_VERTICES overrides the dataset size (default 32 —
// small on purpose: per-vertex scoring compute stays cheap, so the
// measured gap is the per-request transport + dispatch overhead, which is
// the thing batching amortizes and this bench isolates; on big graphs
// scoring compute dominates both modes equally and the ratio tends to 1).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datasets/synthetic.h"
#include "engine/session.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/model_host.h"
#include "net/server.h"
#include "util/check.h"
#include "util/timer.h"

namespace cspm::bench {
namespace {

constexpr size_t kConnections = 8;
constexpr size_t kPipelineDepth = 8;
/// Vertices per request frame in batched mode. With kPipelineDepth frames
/// in flight per connection, up to kConnections * kPipelineDepth * this
/// many vertices coalesce server-side (1024 — a quarter of the default
/// admission bound).
constexpr uint32_t kBatchRequestVertices = 16;
constexpr char kModelName[] = "loadgen";

uint32_t LoadgenVertices() {
  if (const char* env = std::getenv("CSPM_BENCH_LOADGEN_VERTICES")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 32;
}

/// Mines the bench graph once and saves it into a store file the servers
/// under test open.
std::string MakeStore(uint32_t num_vertices) {
  const std::string path =
      "/tmp/cspm_bench_loadgen_" + std::to_string(::getpid()) + ".cspm";
  std::remove(path.c_str());
  graph::AttributedGraph graph =
      datasets::MakePokecLike(1, num_vertices).value();
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  auto session = engine::MiningSession::Create(graph, opts);
  CSPM_CHECK(session.ok());
  CSPM_CHECK(session.value().Mine().ok());
  engine::SaveModelOptions save;
  save.format = engine::ModelFileFormat::kBinaryStore;
  save.model_name = kModelName;
  save.include_graph = true;
  CSPM_CHECK(session.value().SaveModel(path, save).ok());
  return path;
}

std::unique_ptr<net::Server> StartServer(const std::string& store_path,
                                         size_t max_batch_vertices) {
  auto host = net::ModelHost::Open(store_path);
  CSPM_CHECK(host.ok());
  net::ServerOptions options;
  options.batching.max_batch_vertices = max_batch_vertices;
  // Same latency bound in both modes; with max_batch=1 it never fires
  // (every request flushes on arrival), so this isolates the coalescing
  // knob as the only difference between the two servers.
  options.batching.max_wait_us = 200;
  options.batching.max_queue_vertices = 4096;
  auto server = net::Server::Start(std::move(host).value(), options);
  CSPM_CHECK(server.ok());
  return std::move(server).value();
}

/// Pre-encoded score payload carrying `vertices_per_request` consecutive
/// vertex ids starting at `first` (mod n). Encoded once up front so the
/// load loops measure the serving stack, not request construction.
std::string ScorePayload(uint32_t first, uint32_t vertices_per_request,
                         uint32_t n) {
  net::ScoreRequest request;
  request.model = kModelName;
  request.k = 1;
  request.vertices.reserve(vertices_per_request);
  for (uint32_t i = 0; i < vertices_per_request; ++i) {
    request.vertices.push_back(graph::VertexId((first + i) % n));
  }
  return EncodeScoreRequest(request);
}

std::vector<std::string> MakePayloads(uint32_t n,
                                      uint32_t vertices_per_request) {
  std::vector<std::string> payloads;
  payloads.reserve(n);
  for (uint32_t v = 0; v < n; ++v) {
    payloads.push_back(ScorePayload(v, vertices_per_request, n));
  }
  return payloads;
}

struct ModeResult {
  double closed_loop_vps = 0.0;  ///< sustained closed-loop vertices/s
  double closed_loop_ms = 0.0;   ///< closed-loop phase wall time
  double p50_ms = 0.0;           ///< open-loop reply latency percentiles
  double p99_ms = 0.0;
  double open_loop_vps = 0.0;  ///< open-loop *delivered* vertices/s
  uint64_t overloaded = 0;     ///< open-loop OVERLOADED replies
  uint64_t open_loop_sent = 0;
};

/// Closed loop: every connection keeps `depth` requests in flight until
/// it has received `per_conn` replies. depth 1 is the per-request
/// baseline — synchronous RPC round trips, every request dispatched,
/// executed, completed and written on its own; depth kPipelineDepth is
/// the streaming mode the coalescing server was built for. Measures
/// sustained capacity.
double ClosedLoopVps(const net::Server& server,
                     const std::vector<std::string>& payloads,
                     size_t vertices_per_request, size_t depth,
                     size_t per_conn, double* elapsed_ms) {
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  std::atomic<uint64_t> delivered{0};
  WallTimer timer;
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", server.port());
      CSPM_CHECK(client.ok());
      size_t sent = 0;
      size_t received = 0;
      uint64_t ok = 0;
      while (sent < per_conn && sent < depth) {
        const size_t vertex = (c + sent * kConnections) % payloads.size();
        CSPM_CHECK(
            client.value().Send(net::Verb::kScore, payloads[vertex]).ok());
        ++sent;
      }
      while (received < per_conn) {
        auto reply = client.value().Receive();
        CSPM_CHECK(reply.ok());
        ++received;
        if (reply.value().status == net::WireStatus::kOk) ++ok;
        if (sent < per_conn) {
          const size_t vertex = (c + sent * kConnections) % payloads.size();
          CSPM_CHECK(
              client.value().Send(net::Verb::kScore, payloads[vertex]).ok());
          ++sent;
        }
      }
      // The closed-loop in-flight ceiling sits far below the admission
      // bound: every reply must be OK.
      CSPM_CHECK(ok == received);
      delivered.fetch_add(ok * vertices_per_request);
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  if (elapsed_ms != nullptr) *elapsed_ms = seconds * 1e3;
  return static_cast<double>(delivered.load()) / seconds;
}

/// Open loop: requests arrive on a wall-clock schedule at `offered_rps`
/// across all connections, senders never waiting for replies. Latencies
/// are recorded for OK replies; OVERLOADED sheds are counted.
void OpenLoop(const net::Server& server,
              const std::vector<std::string>& payloads,
              size_t vertices_per_request, double offered_vps,
              size_t total_requests, ModeResult* out) {
  const size_t per_conn = total_requests / kConnections;
  // offered_vps is in vertices/s; requests arrive at offered_vps / vpr.
  const double interval_ns = 1e9 * kConnections *
                             static_cast<double>(vertices_per_request) /
                             offered_vps;
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  std::mutex mu;
  std::vector<double> latencies_ms;
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint64_t> last_reply_ns{0};
  WallTimer timer;
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", server.port());
      CSPM_CHECK(client.ok());
      // Send timestamps indexed by request id (ids are assigned 1..N per
      // connection); written by the sender thread, read by the receiver
      // only after the reply arrived.
      std::vector<std::atomic<uint64_t>> send_ns(per_conn + 1);
      std::thread receiver([&] {
        std::vector<double> local_ms;
        local_ms.reserve(per_conn);
        uint64_t local_overloaded = 0;
        for (size_t i = 0; i < per_conn; ++i) {
          auto reply = client.value().Receive();
          CSPM_CHECK(reply.ok());
          const uint64_t now = timer.ElapsedNanos();
          if (reply.value().status == net::WireStatus::kOk) {
            const uint64_t sent =
                send_ns[reply.value().request_id].load(
                    std::memory_order_acquire);
            local_ms.push_back(static_cast<double>(now - sent) / 1e6);
          } else {
            CSPM_CHECK(reply.value().status == net::WireStatus::kOverloaded);
            ++local_overloaded;
          }
        }
        uint64_t prev = last_reply_ns.load();
        const uint64_t now = timer.ElapsedNanos();
        while (prev < now && !last_reply_ns.compare_exchange_weak(prev, now)) {
        }
        overloaded.fetch_add(local_overloaded);
        std::lock_guard<std::mutex> lock(mu);
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
      });
      // Sender: fire at the schedule, never waiting for replies. When the
      // clock has slipped past a slot, send immediately (the backlog is
      // the load, not a measurement artifact).
      for (size_t i = 0; i < per_conn; ++i) {
        const auto target_ns = static_cast<uint64_t>(
            (static_cast<double>(i) * kConnections + static_cast<double>(c)) /
            kConnections * interval_ns);
        const uint64_t now = timer.ElapsedNanos();
        if (now < target_ns) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(target_ns - now));
        }
        const size_t vertex = (c + i * kConnections) % payloads.size();
        uint32_t request_id = 0;
        CSPM_CHECK(client.value()
                       .Send(net::Verb::kScore, payloads[vertex], &request_id)
                       .ok());
        CSPM_CHECK(request_id <= per_conn);
        send_ns[request_id].store(timer.ElapsedNanos(),
                                  std::memory_order_release);
      }
      receiver.join();
    });
  }
  for (std::thread& t : threads) t.join();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size())));
    return latencies_ms[idx];
  };
  out->p50_ms = pct(0.50);
  out->p99_ms = pct(0.99);
  out->overloaded = overloaded.load();
  out->open_loop_sent = per_conn * kConnections;
  const double seconds = static_cast<double>(last_reply_ns.load()) / 1e9;
  out->open_loop_vps =
      static_cast<double>(latencies_ms.size() * vertices_per_request) /
      std::max(seconds, 1e-9);
}

void AppendBench(std::string* out, const std::string& name, double real_ms,
                 const std::vector<std::pair<std::string, double>>& counters,
                 bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\n      \"name\": \"%s\",\n"
                "      \"run_type\": \"iteration\",\n"
                "      \"real_time\": %.4f,\n      \"time_unit\": \"ms\"",
                name.c_str(), real_ms);
  *out += buf;
  for (const auto& [key, value] : counters) {
    std::snprintf(buf, sizeof(buf), ",\n      \"%s\": %.4f", key.c_str(),
                  value);
    *out += buf;
  }
  *out += last ? "\n    }\n" : "\n    },\n";
}

}  // namespace
}  // namespace cspm::bench

namespace bench = cspm::bench;

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  const uint32_t n = bench::LoadgenVertices();
  std::fprintf(stderr, "bench_loadgen: mining %u-vertex dataset...\n", n);
  const std::string store = bench::MakeStore(n);
  const std::vector<std::string> single = bench::MakePayloads(n, 1);
  const std::vector<std::string> multi =
      bench::MakePayloads(n, bench::kBatchRequestVertices);

  // Closed-loop capacity, per-request baseline first (it also sizes the
  // open-loop offered rate).
  constexpr size_t kPerRequestReplies = 2000;
  constexpr size_t kBatchedReplies = 1500;
  bench::ModeResult per_request;
  bench::ModeResult batched;
  {
    auto server = bench::StartServer(store, /*max_batch_vertices=*/1);
    per_request.closed_loop_vps = bench::ClosedLoopVps(
        *server, single, /*vertices_per_request=*/1, /*depth=*/1,
        kPerRequestReplies, &per_request.closed_loop_ms);
  }
  {
    auto server = bench::StartServer(store, /*max_batch_vertices=*/256);
    batched.closed_loop_vps = bench::ClosedLoopVps(
        *server, multi, bench::kBatchRequestVertices, bench::kPipelineDepth,
        kBatchedReplies, &batched.closed_loop_ms);
  }
  std::fprintf(stderr,
               "bench_loadgen: closed loop per-request %.0f v/s, "
               "batched %.0f v/s\n",
               per_request.closed_loop_vps, batched.closed_loop_vps);

  // Open loop at 4x the per-request capacity, capped at 80% of batched
  // capacity so the batched mode is measured in its stable region, not at
  // its own cliff. The offered rate is in vertices/s and identical for
  // both modes.
  const double offered = std::min(4.0 * per_request.closed_loop_vps,
                                  0.8 * batched.closed_loop_vps);
  const size_t total_vertices = std::min<size_t>(
      96000, std::max<size_t>(9600, static_cast<size_t>(offered)));
  {
    auto server = bench::StartServer(store, /*max_batch_vertices=*/1);
    bench::OpenLoop(*server, single, /*vertices_per_request=*/1, offered,
                    total_vertices, &per_request);
  }
  {
    auto server = bench::StartServer(store, /*max_batch_vertices=*/256);
    bench::OpenLoop(*server, multi, bench::kBatchRequestVertices, offered,
                    total_vertices / bench::kBatchRequestVertices, &batched);
  }
  std::remove(store.c_str());

  const double speedup =
      batched.closed_loop_vps / per_request.closed_loop_vps;
  std::string json = "{\n  \"context\": {\"executable\": \"bench_loadgen\"},\n"
                     "  \"benchmarks\": [\n";
  bench::AppendBench(
      &json, "BM_NetClosedLoopPerRequest/real_time",
      per_request.closed_loop_ms,
      {{"vertices_per_sec", per_request.closed_loop_vps}}, false);
  bench::AppendBench(&json, "BM_NetClosedLoopBatched/real_time",
                     batched.closed_loop_ms,
                     {{"vertices_per_sec", batched.closed_loop_vps},
                      {"net_batch_speedup", speedup}},
                     false);
  bench::AppendBench(
      &json, "BM_NetOpenLoopPerRequest/real_time", per_request.p50_ms,
      {{"p50_ms", per_request.p50_ms},
       {"p99_ms", per_request.p99_ms},
       {"vertices_per_sec", per_request.open_loop_vps},
       {"offered_per_sec", offered},
       {"requests_sent", static_cast<double>(per_request.open_loop_sent)},
       {"overloaded_replies", static_cast<double>(per_request.overloaded)}},
      false);
  bench::AppendBench(
      &json, "BM_NetOpenLoopBatched/real_time", batched.p50_ms,
      {{"p50_ms", batched.p50_ms},
       {"p99_ms", batched.p99_ms},
       {"vertices_per_sec", batched.open_loop_vps},
       {"offered_per_sec", offered},
       {"requests_sent", static_cast<double>(batched.open_loop_sent)},
       {"overloaded_replies", static_cast<double>(batched.overloaded)}},
      true);
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    CSPM_CHECK(f != nullptr);
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fprintf(stderr, "bench_loadgen: net_batch_speedup %.2fx\n", speedup);
  return 0;
}
