// Google-benchmark microbenchmarks for the CSPM core primitives:
// inverted-database construction, gain computation, merge application,
// end-to-end mining and the Algorithm 5 scoring path.
#include <benchmark/benchmark.h>

#include "cspm/gain.h"
#include "cspm/miner.h"
#include "cspm/scoring.h"
#include "graph/generators.h"

namespace {

using namespace cspm;

graph::AttributedGraph MakeBenchGraph(uint32_t n) {
  Rng rng(7);
  return graph::ErdosRenyi(n, 8.0 / n, 40, 3, &rng).value();
}

void BM_InvertedDbBuild(benchmark::State& state) {
  auto g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto idb = core::InvertedDatabase::FromGraph(g).value();
    benchmark::DoNotOptimize(idb.num_lines());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_InvertedDbBuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_GainComputation(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  auto idb = core::InvertedDatabase::FromGraph(g).value();
  core::CodeModel cm(g, idb);
  const auto& actives = idb.active_leafsets();
  size_t i = 0;
  size_t j = 1;
  for (auto _ : state) {
    auto gain = core::ComputeMergeGain(idb, cm, actives[i], actives[j]);
    benchmark::DoNotOptimize(gain.data_gain_bits);
    j = (j + 1) % actives.size();
    if (j == i) j = (j + 1) % actives.size();
    if (j == 0) i = (i + 1) % (actives.size() - 1);
  }
}
BENCHMARK(BM_GainComputation);

void BM_MergeApply(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  for (auto _ : state) {
    state.PauseTiming();
    auto idb = core::InvertedDatabase::FromGraph(g).value();
    core::CodeModel cm(g, idb);
    // Find one feasible pair.
    const auto actives = idb.active_leafsets();
    core::LeafsetId x = 0;
    core::LeafsetId y = 0;
    bool found = false;
    for (size_t a = 0; a < actives.size() && !found; ++a) {
      for (size_t b = a + 1; b < actives.size() && !found; ++b) {
        auto gain = core::ComputeMergeGain(idb, cm, actives[a], actives[b]);
        if (gain.feasible) {
          x = actives[a];
          y = actives[b];
          found = true;
        }
      }
    }
    state.ResumeTiming();
    if (found) {
      auto outcome = idb.MergeLeafsets(x, y);
      benchmark::DoNotOptimize(outcome.moved_positions);
    }
  }
}
BENCHMARK(BM_MergeApply)->Iterations(20);

void BM_MineEndToEnd(benchmark::State& state) {
  auto g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  core::CspmOptions options;
  options.record_iteration_stats = false;
  for (auto _ : state) {
    auto model = core::CspmMiner(options).Mine(g).value();
    benchmark::DoNotOptimize(model.astars.size());
  }
}
BENCHMARK(BM_MineEndToEnd)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ScoringModule(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  core::CspmOptions options;
  options.record_iteration_stats = false;
  auto model = core::CspmMiner(options).Mine(g).value();
  graph::VertexId v = 0;
  for (auto _ : state) {
    auto scores = core::ScoreAttributes(g, model, v);
    benchmark::DoNotOptimize(scores.normalized.data());
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_ScoringModule);

}  // namespace

BENCHMARK_MAIN();
