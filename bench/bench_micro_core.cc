// Google-benchmark microbenchmarks for the CSPM core primitives:
// inverted-database construction, gain computation, merge application,
// end-to-end mining and the Algorithm 5 scoring path. The hot paths run
// through the engine micro harness so this file compiles against the
// facade only; the loops themselves execute directly on the core.
#include <benchmark/benchmark.h>

#include "engine/micro.h"
#include "engine/session.h"
#include "graph/generators.h"

namespace {

using namespace cspm;

graph::AttributedGraph MakeBenchGraph(uint32_t n) {
  Rng rng(7);
  return graph::ErdosRenyi(n, 8.0 / n, 40, 3, &rng).value();
}

void BM_InvertedDbBuild(benchmark::State& state) {
  auto g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  engine::micro::CoreHarness harness(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.RebuildDatabase());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_InvertedDbBuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_GainComputation(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  engine::micro::CoreHarness harness(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.GainSweep(1));
  }
}
BENCHMARK(BM_GainComputation);

void BM_GainAllPairs(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  engine::micro::CoreHarness harness(g);
  const auto threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.GainSweepAllPairs(threads));
  }
  state.SetItemsProcessed(
      state.iterations() * harness.num_active_leafsets() *
      (harness.num_active_leafsets() - 1) / 2);
}
BENCHMARK(BM_GainAllPairs)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MergeApply(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  engine::micro::CoreHarness harness(g);
  for (auto _ : state) {
    state.PauseTiming();
    harness.RebuildDatabase();
    const bool found = harness.StageFirstFeasibleMerge();
    state.ResumeTiming();
    if (found) {
      benchmark::DoNotOptimize(harness.ApplyStagedMerge());
    }
  }
}
BENCHMARK(BM_MergeApply)->Iterations(20);

void BM_MineEndToEnd(benchmark::State& state) {
  auto g = MakeBenchGraph(static_cast<uint32_t>(state.range(0)));
  engine::MiningOptions options;
  options.record_iteration_stats = false;
  for (auto _ : state) {
    auto model = engine::MineModel(g, options).value();
    benchmark::DoNotOptimize(model.astars.size());
  }
}
BENCHMARK(BM_MineEndToEnd)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_MineBasicThreads(benchmark::State& state) {
  auto g = MakeBenchGraph(500);
  engine::MiningOptions options;
  options.strategy = engine::Search::kBasic;
  options.record_iteration_stats = false;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto model = engine::MineModel(g, options).value();
    benchmark::DoNotOptimize(model.astars.size());
  }
}
BENCHMARK(BM_MineBasicThreads)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ScoringModule(benchmark::State& state) {
  auto g = MakeBenchGraph(2000);
  engine::MiningOptions options;
  options.record_iteration_stats = false;
  auto session = engine::MiningSession::Create(g, options).value();
  if (!session.Mine().ok()) {
    state.SkipWithError("mining failed");
    return;
  }
  graph::VertexId v(0);
  for (auto _ : state) {
    auto scores = session.Score(v);
    benchmark::DoNotOptimize(scores.normalized.data());
    v = graph::VertexId((v.value() + 1) % g.num_vertices().value());
  }
}
BENCHMARK(BM_ScoringModule);

}  // namespace

BENCHMARK_MAIN();
