// Reproduces Table III: runtime comparison of SLIM, CSPM-Basic and
// CSPM-Partial on the four datasets.
//
// Paper reference (Table III, seconds):
//   Dataset     SLIM       CSPM-Basic  CSPM-Partial
//   DBLP        4.69       43.13       0.98
//   DBLP-Trend  48.69      956.61      25.46
//   USFlight    1.25       10.16       1.43
//   Pokec       166,678.3  --          1,403.21
//
// The shape to reproduce: Partial << SLIM << Basic, with Basic infeasible
// on the largest dataset. Long runs are wall-clock capped (reported as
// ">cap") so the harness stays bounded; set CSPM_BENCH_BUDGET_SECONDS to
// raise the cap.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "engine/session.h"
#include "itemset/slim.h"
#include "itemset/transaction_db.h"
#include "util/timer.h"

namespace {

double BudgetSeconds() {
  if (const char* env = std::getenv("CSPM_BENCH_BUDGET_SECONDS")) {
    return std::strtod(env, nullptr);
  }
  return 60.0;
}

struct Cell {
  double seconds = 0.0;
  bool capped = false;
  bool skipped = false;
};

void PrintCell(const Cell& cell) {
  if (cell.skipped) {
    std::printf(" %12s", "--");
  } else if (cell.capped) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ">%.1f", cell.seconds);
    std::printf(" %12s", buf);
  } else {
    std::printf(" %12.2f", cell.seconds);
  }
}

}  // namespace

int main() {
  using namespace cspm;
  const double budget = BudgetSeconds();
  std::printf("=== Table III: runtime comparison (seconds; cap %.0fs) ===\n",
              budget);
  std::printf("%-14s %12s %12s %12s\n", "Dataset", "SLIM", "CSPM-Basic",
              "CSPM-Partial");

  for (const auto& item : bench::MakeTable2Datasets()) {
    // SLIM on the star transactions (the paper's adaptation of SLIM to an
    // attributed graph).
    Cell slim_cell;
    {
      itemset::TransactionDb db =
          itemset::TransactionDb::FromStars(item.graph);
      itemset::SlimOptions options;
      options.max_seconds = budget;
      WallTimer t;
      auto result = itemset::RunSlim(db, options).value();
      slim_cell.seconds = t.ElapsedSeconds();
      slim_cell.capped = result.hit_time_budget;
    }
    // CSPM-Basic; skipped for the scaled Pokec (the paper reports "--"
    // after 48 hours).
    Cell basic_cell;
    if (item.graph.num_vertices().value() > 5000) {
      basic_cell.skipped = true;
    } else {
      engine::MiningOptions options;
      options.strategy = engine::Search::kBasic;
      options.record_iteration_stats = false;
      options.max_seconds = budget;
      auto model = engine::MineModel(item.graph, options).value();
      basic_cell.seconds = model.stats.runtime_seconds;
      basic_cell.capped = model.stats.hit_time_budget;
    }
    // CSPM-Partial (no cap needed; it is the fast one).
    Cell partial_cell;
    {
      engine::MiningOptions options;
      options.strategy = engine::Search::kPartial;
      options.record_iteration_stats = false;
      auto model = engine::MineModel(item.graph, options).value();
      partial_cell.seconds = model.stats.runtime_seconds;
    }
    std::printf("%-14s", item.name.c_str());
    PrintCell(slim_cell);
    PrintCell(basic_cell);
    PrintCell(partial_cell);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: Partial << SLIM << Basic; Basic infeasible "
              "on Pokec\n");
  return 0;
}
