// Shared helpers for the paper-table bench harnesses.
#ifndef CSPM_BENCH_BENCH_COMMON_H_
#define CSPM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datasets/synthetic.h"
#include "graph/attributed_graph.h"
#include "util/check.h"

namespace cspm::bench {

/// One Table II / Table III dataset instance.
struct NamedDataset {
  std::string name;
  graph::AttributedGraph graph;
};

/// Pokec stand-in size for the runtime benches. CSPM_BENCH_POKEC_VERTICES
/// overrides it (the real Pokec has 1.6M vertices; see DESIGN.md §3).
inline uint32_t PokecBenchVertices() {
  if (const char* env = std::getenv("CSPM_BENCH_POKEC_VERTICES")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 10000;
}

/// The four Table II datasets, generated deterministically.
inline std::vector<NamedDataset> MakeTable2Datasets() {
  std::vector<NamedDataset> sets;
  sets.push_back({"DBLP", datasets::MakeDblpLike(1).value()});
  sets.push_back({"DBLP-Trend", datasets::MakeDblpTrendLike(1).value()});
  sets.push_back({"USFlight", datasets::MakeUsflightLike(1).value()});
  sets.push_back(
      {"Pokec(scaled)", datasets::MakePokecLike(1, PokecBenchVertices()).value()});
  return sets;
}

}  // namespace cspm::bench

#endif  // CSPM_BENCH_BENCH_COMMON_H_
