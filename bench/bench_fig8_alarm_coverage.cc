// Reproduces Fig. 8: coverage ratio of ACOR and CSPM for alarm correlation
// analysis, as a function of top-K.
//
// Paper setting: 6M alarms over 5 days, 300 alarm types, 11 AABD rules
// decomposed into 121 pair rules; CSPM's curve dominates ACOR's and both
// reach 1.0. Our stand-in simulates a 300-type device network with a
// planted rule library of the same shape (see DESIGN.md §3).
#include <cstdio>

#include "alarm/acor.h"
#include "alarm/simulator.h"
#include "alarm/window_graph.h"
#include "engine/session.h"

int main() {
  using namespace cspm;
  using namespace cspm::alarm;

  Rng rng(2022);
  RuleLibrary lib = RuleLibrary::Generate(/*num_rules=*/11,
                                          /*min_derivatives=*/9,
                                          /*max_derivatives=*/13,
                                          /*num_types=*/300, &rng);
  SimulationOptions options;
  options.num_devices = 250;
  options.num_alarm_types = 300;
  options.duration_minutes = 5 * 24 * 60;  // five days
  options.background_alarms_per_device = 40;
  options.cause_incidents = 9000;
  options.seed = 2022;
  AlarmDataset data = SimulateAlarms(options, lib).value();
  const auto valid = lib.PairRules();
  std::printf("=== Fig. 8: coverage ratio vs top-K (%zu events, %zu valid "
              "pair rules) ===\n", data.events.size(), valid.size());

  auto wg = BuildWindowGraph(data, /*window_minutes=*/5.0).value();
  engine::MiningOptions mopts;
  mopts.record_iteration_stats = false;
  auto model = engine::MineModel(wg, mopts).value();
  auto cspm_ranked = SplitAStarsToPairs(model, wg.dict());
  auto acor_ranked = RunAcor(data, {});

  std::printf("%8s %10s %10s\n", "topK", "CSPM", "ACOR");
  std::vector<size_t> ks;
  for (size_t k = 0; k <= 2000; k += 250) ks.push_back(k);
  auto c_cspm = CoverageAtK(cspm_ranked, valid, ks);
  auto c_acor = CoverageAtK(acor_ranked, valid, ks);
  for (size_t i = 0; i < ks.size(); ++i) {
    std::printf("%8zu %10.3f %10.3f\n", ks[i], c_cspm[i], c_acor[i]);
  }
  std::printf("\npaper shape: both curves rise to 1.0 with CSPM above "
              "ACOR (valid rules ranked higher)\n");
  return 0;
}
