// Tests for the Algorithm 5 scoring module.
#include "cspm/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cspm/miner.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

// A hand-built model with two a-stars.
CspmModel HandModel() {
  CspmModel model;
  AStar s1;
  s1.core_values = {0};
  s1.leaf_values = {1, 2};
  s1.code_length_bits = 2.0;
  AStar s2;
  s2.core_values = {3};
  s2.leaf_values = {4};
  s2.code_length_bits = 5.0;
  model.astars = {s1, s2};
  return model;
}

TEST(ScoringTest, FullSimilarityGivesNegCodeLength) {
  CspmModel model = HandModel();
  // Neighbourhood contains both leaf values of s1: similarity 1, w = 1,
  // score = -code_length.
  auto scores = ScoreAttributesWithNeighbourhood(6, model, {1, 2});
  EXPECT_NEAR(scores.raw[0], -2.0, 1e-12);
  EXPECT_TRUE(std::isinf(scores.raw[3]));  // no evidence for s2's core
}

TEST(ScoringTest, PartialSimilarityPenalized) {
  CspmModel model = HandModel();
  // Only one of the two leaf values present: similarity 0.5, w = 2.
  auto scores = ScoreAttributesWithNeighbourhood(6, model, {1});
  EXPECT_NEAR(scores.raw[0], -4.0, 1e-12);
}

TEST(ScoringTest, NoOverlapGivesNoEvidence) {
  CspmModel model = HandModel();
  auto scores = ScoreAttributesWithNeighbourhood(6, model, {5});
  EXPECT_TRUE(std::isinf(scores.raw[0]));
  EXPECT_TRUE(std::isinf(scores.raw[3]));
  for (double v : scores.normalized) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ScoringTest, BestAStarWinsPerCoreValue) {
  CspmModel model = HandModel();
  AStar extra;
  extra.core_values = {0};
  extra.leaf_values = {1};
  extra.code_length_bits = 10.0;  // longer code, weaker pattern
  model.astars.push_back(extra);
  auto scores = ScoreAttributesWithNeighbourhood(6, model, {1, 2});
  // max(-2 (from s1), -10 (from extra)) = -2.
  EXPECT_NEAR(scores.raw[0], -2.0, 1e-12);
}

TEST(ScoringTest, NormalizedInUnitRange) {
  CspmModel model = HandModel();
  auto scores = ScoreAttributesWithNeighbourhood(6, model, {1, 2, 4});
  for (double v : scores.normalized) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Both cores have evidence; the better one normalizes higher.
  EXPECT_GT(scores.normalized[0], scores.normalized[3]);
}

TEST(ScoringTest, GraphPathUsesNeighbourAttributes) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  // Score vertex v1 (= id 0): neighbours carry a, b, c.
  auto scores = ScoreAttributes(g, model, 0);
  ASSERT_EQ(scores.raw.size(), 3u);
  int finite = 0;
  for (double v : scores.raw) finite += std::isfinite(v) ? 1 : 0;
  EXPECT_GT(finite, 0);
}

TEST(ScoringTest, PlantedCoreScoredAboveNoise) {
  graph::PlantedGraphOptions options;
  options.num_vertices = 300;
  options.noise_vocabulary = 12;
  options.seed = 21;
  std::vector<graph::PlantedAStar> rules = {
      {{"influencer"}, {"follower", "like"}, 0.95}};
  auto g = graph::PlantedAStarGraph(options, rules).value();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();

  const graph::AttrId influencer = g.dict().Find("influencer");
  ASSERT_NE(influencer, graph::AttributeDictionary::kNotFound);
  // For a synthetic neighbourhood that exactly matches the planted leaves,
  // the planted core should receive a competitive (finite) score.
  std::vector<graph::AttrId> neighbourhood = {g.dict().Find("follower"),
                                              g.dict().Find("like")};
  auto scores = ScoreAttributesWithNeighbourhood(g.num_attribute_values(),
                                                 model, neighbourhood);
  EXPECT_TRUE(std::isfinite(scores.raw[influencer]));
  EXPECT_GT(scores.normalized[influencer], 0.2);
}

}  // namespace
}  // namespace cspm::core
