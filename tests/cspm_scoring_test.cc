// Tests for the Algorithm 5 scoring module.
#include "cspm/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cspm/miner.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

/// Builds an AttrId list from raw values (strong ids ban implicit braces).
std::vector<graph::AttrId> Ids(std::initializer_list<uint32_t> raw) {
  std::vector<graph::AttrId> out;
  for (uint32_t a : raw) out.push_back(graph::AttrId(a));
  return out;
}

// A hand-built model with two a-stars.
CspmModel HandModel() {
  CspmModel model;
  AStar s1;
  s1.core_values = Ids({0});
  s1.leaf_values = Ids({1, 2});
  s1.code_length_bits = 2.0;
  AStar s2;
  s2.core_values = Ids({3});
  s2.leaf_values = Ids({4});
  s2.code_length_bits = 5.0;
  model.astars = {s1, s2};
  return model;
}

TEST(ScoringTest, FullSimilarityGivesNegCodeLength) {
  CspmModel model = HandModel();
  // Neighbourhood contains both leaf values of s1: similarity 1, w = 1,
  // score = -code_length.
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 2}));
  EXPECT_NEAR(scores.raw[0], -2.0, 1e-12);
  EXPECT_TRUE(std::isinf(scores.raw[3]));  // no evidence for s2's core
}

TEST(ScoringTest, PartialSimilarityPenalized) {
  CspmModel model = HandModel();
  // Only one of the two leaf values present: similarity 0.5, w = 2.
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({1}));
  EXPECT_NEAR(scores.raw[0], -4.0, 1e-12);
}

TEST(ScoringTest, NoOverlapGivesNoEvidence) {
  CspmModel model = HandModel();
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({5}));
  EXPECT_TRUE(std::isinf(scores.raw[0]));
  EXPECT_TRUE(std::isinf(scores.raw[3]));
  for (double v : scores.normalized) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ScoringTest, BestAStarWinsPerCoreValue) {
  CspmModel model = HandModel();
  AStar extra;
  extra.core_values = Ids({0});
  extra.leaf_values = Ids({1});
  extra.code_length_bits = 10.0;  // longer code, weaker pattern
  model.astars.push_back(extra);
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 2}));
  // max(-2 (from s1), -10 (from extra)) = -2.
  EXPECT_NEAR(scores.raw[0], -2.0, 1e-12);
}

TEST(ScoringTest, NormalizedInUnitRange) {
  CspmModel model = HandModel();
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 2, 4}));
  for (double v : scores.normalized) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Both cores have evidence; the better one normalizes higher.
  EXPECT_GT(scores.normalized[0], scores.normalized[3]);
}

TEST(ScoringTest, EmptyNeighbourhoodGivesNoEvidence) {
  CspmModel model = HandModel();
  auto scores = ScoreAttributesWithNeighbourhood(6, model, Ids({}));
  ASSERT_EQ(scores.raw.size(), 6u);
  for (double v : scores.raw) EXPECT_TRUE(std::isinf(v) && v < 0);
  for (double v : scores.normalized) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ScoringTest, OutOfRangeNeighbourhoodAttrsAreIgnored) {
  CspmModel model = HandModel();
  // Attr ids beyond the dictionary (masked / foreign ids) carry no
  // evidence; the result matches the in-range subset exactly.
  auto with_junk = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 2, 6, 1000}));
  auto clean = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 2}));
  EXPECT_EQ(with_junk.raw, clean.raw);
  EXPECT_EQ(with_junk.normalized, clean.normalized);
}

TEST(ScoringTest, AllMaskedNeighboursScoreLikeEmptyNeighbourhood) {
  // The completion task's masked graph: every neighbour of the probe
  // vertex has an empty attribute set, so the neighbourhood attribute set
  // is empty even though the vertex has neighbours.
  graph::GraphBuilder b;
  b.AddVertex({"a", "b"});  // v0: carries attrs so the dictionary is real
  b.AddVertex({});          // v1: masked
  b.AddVertex({});          // v2: masked
  CSPM_CHECK(b.AddEdge(VertexId(0), VertexId(1)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(1), VertexId(2)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(0), VertexId(2)).ok());
  auto g = std::move(b).Build().value();

  CspmModel model;
  AStar s;
  s.core_values = Ids({0});
  s.leaf_values = Ids({1});
  s.code_length_bits = 3.0;
  model.astars = {s};

  // v1's neighbours are v0 (attrs a,b) and v2 (masked): evidence flows.
  auto visible = ScoreAttributes(g, model, VertexId(1));
  EXPECT_NEAR(visible.raw[0], -3.0, 1e-12);
  // Make v0 the probe: its neighbours v1, v2 are both masked — identical
  // to scoring an explicitly empty neighbourhood.
  auto masked = ScoreAttributes(g, model, VertexId(0));
  auto empty = ScoreAttributesWithNeighbourhood(g.num_attribute_values(),
                                                model, Ids({}));
  EXPECT_EQ(masked.raw, empty.raw);
  EXPECT_EQ(masked.normalized, empty.normalized);
}

TEST(ScoringTest, SimilarityExactlyAtThresholdIsKept) {
  CspmModel model = HandModel();
  // s1 has leaves {1, 2}; neighbourhood {1} gives similarity exactly 0.5.
  ScoringOptions options;
  options.min_similarity = 0.5;
  auto kept = ScoreAttributesWithNeighbourhood(6, model, Ids({1}), options);
  // Not skipped: the guard is strictly `similarity < min_similarity`.
  EXPECT_NEAR(kept.raw[0], -4.0, 1e-12);

  // Nudge the threshold above 0.5 and the leafset is skipped.
  options.min_similarity = std::nextafter(0.5, 1.0);
  auto skipped = ScoreAttributesWithNeighbourhood(6, model, Ids({1}), options);
  EXPECT_TRUE(std::isinf(skipped.raw[0]));
}

TEST(ScoringTest, DuplicateNeighbourhoodAttrsCountOnce) {
  CspmModel model = HandModel();
  // The neighbourhood is a set: repeating an attr must not inflate
  // similarity (callers pass raw concatenations of neighbour attrs).
  auto repeated = ScoreAttributesWithNeighbourhood(6, model, Ids({1, 1, 1}));
  auto once = ScoreAttributesWithNeighbourhood(6, model, Ids({1}));
  EXPECT_EQ(repeated.raw, once.raw);
  EXPECT_EQ(repeated.normalized, once.normalized);
}

TEST(ScoringTest, GraphPathUsesNeighbourAttributes) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  // Score vertex v1 (= id 0): neighbours carry a, b, c.
  auto scores = ScoreAttributes(g, model, VertexId(0));
  ASSERT_EQ(scores.raw.size(), 3u);
  int finite = 0;
  for (double v : scores.raw) finite += std::isfinite(v) ? 1 : 0;
  EXPECT_GT(finite, 0);
}

TEST(ScoringTest, PlantedCoreScoredAboveNoise) {
  graph::PlantedGraphOptions options;
  options.num_vertices = 300;
  options.noise_vocabulary = 12;
  options.seed = 21;
  std::vector<graph::PlantedAStar> rules = {
      {{"influencer"}, {"follower", "like"}, 0.95}};
  auto g = graph::PlantedAStarGraph(options, rules).value();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();

  const graph::AttrId influencer = g.dict().Find("influencer");
  ASSERT_NE(influencer, graph::AttributeDictionary::kNotFound);
  // For a synthetic neighbourhood that exactly matches the planted leaves,
  // the planted core should receive a competitive (finite) score.
  std::vector<graph::AttrId> neighbourhood = {g.dict().Find("follower"),
                                              g.dict().Find("like")};
  auto scores = ScoreAttributesWithNeighbourhood(g.num_attribute_values(),
                                                 model, neighbourhood);
  EXPECT_TRUE(std::isfinite(scores.raw[influencer.index()]));
  EXPECT_GT(scores.normalized[influencer.index()], 0.2);
}

}  // namespace
}  // namespace cspm::core
