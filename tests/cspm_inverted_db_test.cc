// Unit tests for the inverted database against the paper's running example
// (Figs. 1, 2 and 4) and structural invariants.
#include "cspm/inverted_database.h"

#include <gtest/gtest.h>

#include "cspm/verify.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

using cspm::testing::PaperExampleGraph;

class InvertedDbPaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<graph::AttributedGraph>(PaperExampleGraph());
    a_ = g_->dict().Find("a");
    b_ = g_->dict().Find("b");
    c_ = g_->dict().Find("c");
    ASSERT_NE(a_, graph::AttributeDictionary::kNotFound);
    auto idb_or = InvertedDatabase::FromGraph(*g_);
    ASSERT_TRUE(idb_or.status().ok()) << idb_or.status().ToString();
    idb_ = std::make_unique<InvertedDatabase>(std::move(idb_or).value());
  }

  std::unique_ptr<graph::AttributedGraph> g_;
  std::unique_ptr<InvertedDatabase> idb_;
  AttrId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(InvertedDbPaperExample, MappingTableFrequencies) {
  // Fig. 2(a): a -> {v1,v2,v5}, b -> {v4,v5}, c -> {v2,v3}.
  EXPECT_EQ(idb_->CoresetFrequency(a_), 3u);
  EXPECT_EQ(idb_->CoresetFrequency(b_), 2u);
  EXPECT_EQ(idb_->CoresetFrequency(c_), 2u);
  EXPECT_EQ(idb_->total_coreset_frequency(), 7u);
}

TEST_F(InvertedDbPaperExample, InitialLinesMatchPaper) {
  // The blue record of Fig. 2(b): ({a}, {c}, {v2, v3}).
  const PosList* line = idb_->FindLine(c_, /*leafset=*/a_);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(*line, (PosList{1, 2}));  // v2=1, v3=2 (zero-based)

  // Core a: leaf a at {v1,v2}; leaf b at {v1,v5}; leaf c at {v1,v5}.
  ASSERT_NE(idb_->FindLine(a_, a_), nullptr);
  EXPECT_EQ(*idb_->FindLine(a_, a_), (PosList{0, 1}));
  ASSERT_NE(idb_->FindLine(a_, b_), nullptr);
  EXPECT_EQ(*idb_->FindLine(a_, b_), (PosList{0, 4}));
  ASSERT_NE(idb_->FindLine(a_, c_), nullptr);
  EXPECT_EQ(*idb_->FindLine(a_, c_), (PosList{0, 4}));

  // Core b: leaf a at {v4}; leaf b at {v4,v5}; leaf c at {v5}.
  EXPECT_EQ(*idb_->FindLine(b_, a_), (PosList{3}));
  EXPECT_EQ(*idb_->FindLine(b_, b_), (PosList{3, 4}));
  EXPECT_EQ(*idb_->FindLine(b_, c_), (PosList{4}));

  // Core c: leaf a at {v2,v3}; leaf b at {v3}; no leaf-c line.
  EXPECT_EQ(*idb_->FindLine(c_, b_), (PosList{2}));
  EXPECT_EQ(idb_->FindLine(c_, c_), nullptr);

  EXPECT_EQ(idb_->num_lines(), 8u);
  EXPECT_EQ(idb_->num_active_leafsets(), 3u);
}

TEST_F(InvertedDbPaperExample, CoreLineTotals) {
  // f_a = 2+2+2 = 6, f_b = 1+2+1 = 4, f_c = 2+1 = 3.
  EXPECT_EQ(idb_->CoreLineTotal(a_), 6u);
  EXPECT_EQ(idb_->CoreLineTotal(b_), 4u);
  EXPECT_EQ(idb_->CoreLineTotal(c_), 3u);
}

TEST_F(InvertedDbPaperExample, InitialStateIsLossless) {
  EXPECT_TRUE(VerifyLossless(*g_, *idb_).ok());
}

TEST_F(InvertedDbPaperExample, MergeBCMatchesFig4) {
  // Merge leafsets {b} and {c} (Section IV-E's worked example).
  MergeOutcome outcome = idb_->MergeLeafsets(b_, c_);
  ASSERT_FALSE(outcome.no_op);

  const LeafsetId bc = outcome.merged_id;
  std::vector<AttrId> expected{b_, c_};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(idb_->leafsets().Values(bc), expected);

  // Under core {a}: total merge — positions {v1, v5}.
  ASSERT_NE(idb_->FindLine(a_, bc), nullptr);
  EXPECT_EQ(*idb_->FindLine(a_, bc), (PosList{0, 4}));
  EXPECT_EQ(idb_->FindLine(a_, b_), nullptr);
  EXPECT_EQ(idb_->FindLine(a_, c_), nullptr);

  // Under core {b}: leaf {c} totally merged; ({b},{b}) remains at {v4}.
  ASSERT_NE(idb_->FindLine(b_, bc), nullptr);
  EXPECT_EQ(*idb_->FindLine(b_, bc), (PosList{4}));
  ASSERT_NE(idb_->FindLine(b_, b_), nullptr);
  EXPECT_EQ(*idb_->FindLine(b_, b_), (PosList{3}));
  EXPECT_EQ(idb_->FindLine(b_, c_), nullptr);

  // Leafset {c} is totally merged (no remaining line anywhere): the
  // ({c}, core c) lines never contained leaf c. {c} appeared only under
  // cores a and b.
  EXPECT_EQ(outcome.totally_merged.size(), 1u);
  EXPECT_EQ(outcome.totally_merged[0], c_);
  ASSERT_EQ(outcome.partly_merged.size(), 1u);
  EXPECT_EQ(outcome.partly_merged[0], b_);

  // f totals shrink by xy_e: f_a 6->4, f_b 4->3.
  EXPECT_EQ(idb_->CoreLineTotal(a_), 4u);
  EXPECT_EQ(idb_->CoreLineTotal(b_), 3u);
  EXPECT_EQ(idb_->CoreLineTotal(c_), 3u);

  EXPECT_TRUE(VerifyLossless(*g_, *idb_).ok());
}

TEST_F(InvertedDbPaperExample, MergeOfDisjointLeafsetsIsNoOp) {
  // Fabricate: leafsets that never co-occur under a shared coreset.
  // {a} and {b} share cores; but merging twice should eventually no-op.
  MergeOutcome first = idb_->MergeLeafsets(b_, c_);
  ASSERT_FALSE(first.no_op);
  // Merging {c} again: {c} has no lines left.
  MergeOutcome second = idb_->MergeLeafsets(b_, c_);
  EXPECT_TRUE(second.no_op);
}

TEST(InvertedDbRandom, LosslessOnRandomGraphs) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    Rng rng(seed);
    auto g_or = graph::ErdosRenyi(80, 0.08, 12, 3, &rng);
    ASSERT_TRUE(g_or.status().ok());
    auto idb_or = InvertedDatabase::FromGraph(*g_or);
    ASSERT_TRUE(idb_or.status().ok());
    EXPECT_TRUE(VerifyLossless(*g_or, *idb_or).ok()) << "seed " << seed;
  }
}

TEST(InvertedDbRandom, LosslessAfterRandomMergeSequence) {
  Rng rng(99);
  auto g_or = graph::ErdosRenyi(60, 0.1, 10, 3, &rng);
  ASSERT_TRUE(g_or.status().ok());
  auto idb_or = InvertedDatabase::FromGraph(*g_or);
  ASSERT_TRUE(idb_or.status().ok());
  InvertedDatabase idb = std::move(idb_or).value();
  // Apply random merges of active leafsets; losslessness must hold
  // regardless of gain.
  for (int step = 0; step < 25; ++step) {
    const auto& actives = idb.active_leafsets();
    if (actives.size() < 2) break;
    LeafsetId x = actives[rng.Uniform(actives.size())];
    LeafsetId y = actives[rng.Uniform(actives.size())];
    if (x == y) continue;
    idb.MergeLeafsets(x, y);
    ASSERT_TRUE(VerifyLossless(*g_or, idb).ok()) << "step " << step;
  }
}

}  // namespace
}  // namespace cspm::core
