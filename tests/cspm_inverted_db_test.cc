// Unit tests for the inverted database against the paper's running example
// (Figs. 1, 2 and 4) and structural invariants.
#include "cspm/inverted_database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "cspm/verify.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

using cspm::testing::PaperExampleGraph;

// Materializes a pool-backed view for comparisons; an absent line gives {}.
PosList ToVec(PosListView view) { return PosList(view.begin(), view.end()); }

// The paper's single-value-coreset mode: coreset ids and leafset ids start
// out coinciding with attribute-value ids. These spell that out.
CoreId C(AttrId a) { return CoreId(a.value()); }
LeafsetId L(AttrId a) { return LeafsetId(a.value()); }
PosList V(std::initializer_list<uint32_t> raw) {
  PosList out;
  for (uint32_t v : raw) out.push_back(VertexId(v));
  return out;
}

class InvertedDbPaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<graph::AttributedGraph>(PaperExampleGraph());
    a_ = g_->dict().Find("a");
    b_ = g_->dict().Find("b");
    c_ = g_->dict().Find("c");
    ASSERT_NE(a_, graph::AttributeDictionary::kNotFound);
    auto idb_or = InvertedDatabase::FromGraph(*g_);
    ASSERT_TRUE(idb_or.status().ok()) << idb_or.status().ToString();
    idb_ = std::make_unique<InvertedDatabase>(std::move(idb_or).value());
  }

  std::unique_ptr<graph::AttributedGraph> g_;
  std::unique_ptr<InvertedDatabase> idb_;
  AttrId a_{}, b_{}, c_{};
};

TEST_F(InvertedDbPaperExample, MappingTableFrequencies) {
  // Fig. 2(a): a -> {v1,v2,v5}, b -> {v4,v5}, c -> {v2,v3}.
  EXPECT_EQ(idb_->CoresetFrequency(C(a_)), 3u);
  EXPECT_EQ(idb_->CoresetFrequency(C(b_)), 2u);
  EXPECT_EQ(idb_->CoresetFrequency(C(c_)), 2u);
  EXPECT_EQ(idb_->total_coreset_frequency(), 7u);
}

TEST_F(InvertedDbPaperExample, InitialLinesMatchPaper) {
  // The blue record of Fig. 2(b): ({a}, {c}, {v2, v3}).
  EXPECT_EQ(ToVec(idb_->FindLine(C(c_), L(a_))),
            V({1, 2}));  // v2=1, v3=2 (zero-based)

  // Core a: leaf a at {v1,v2}; leaf b at {v1,v5}; leaf c at {v1,v5}.
  EXPECT_EQ(ToVec(idb_->FindLine(C(a_), L(a_))), V({0, 1}));
  EXPECT_EQ(ToVec(idb_->FindLine(C(a_), L(b_))), V({0, 4}));
  EXPECT_EQ(ToVec(idb_->FindLine(C(a_), L(c_))), V({0, 4}));

  // Core b: leaf a at {v4}; leaf b at {v4,v5}; leaf c at {v5}.
  EXPECT_EQ(ToVec(idb_->FindLine(C(b_), L(a_))), V({3}));
  EXPECT_EQ(ToVec(idb_->FindLine(C(b_), L(b_))), V({3, 4}));
  EXPECT_EQ(ToVec(idb_->FindLine(C(b_), L(c_))), V({4}));

  // Core c: leaf a at {v2,v3}; leaf b at {v3}; no leaf-c line.
  EXPECT_EQ(ToVec(idb_->FindLine(C(c_), L(b_))), V({2}));
  EXPECT_TRUE(idb_->FindLine(C(c_), L(c_)).empty());

  EXPECT_EQ(idb_->num_lines(), 8u);
  EXPECT_EQ(idb_->num_active_leafsets(), 3u);
}

TEST_F(InvertedDbPaperExample, CoreLineTotals) {
  // f_a = 2+2+2 = 6, f_b = 1+2+1 = 4, f_c = 2+1 = 3.
  EXPECT_EQ(idb_->CoreLineTotal(C(a_)), 6u);
  EXPECT_EQ(idb_->CoreLineTotal(C(b_)), 4u);
  EXPECT_EQ(idb_->CoreLineTotal(C(c_)), 3u);
}

TEST_F(InvertedDbPaperExample, InitialStateIsLossless) {
  EXPECT_TRUE(VerifyLossless(*g_, *idb_).ok());
}

TEST_F(InvertedDbPaperExample, MergeBCMatchesFig4) {
  // Merge leafsets {b} and {c} (Section IV-E's worked example).
  MergeOutcome outcome = idb_->MergeLeafsets(L(b_), L(c_));
  ASSERT_FALSE(outcome.no_op);

  const LeafsetId bc = outcome.merged_id;
  std::vector<AttrId> expected{b_, c_};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(idb_->leafsets().Values(bc), expected);

  // Under core {a}: total merge — positions {v1, v5}.
  EXPECT_EQ(ToVec(idb_->FindLine(C(a_), bc)), V({0, 4}));
  EXPECT_TRUE(idb_->FindLine(C(a_), L(b_)).empty());
  EXPECT_TRUE(idb_->FindLine(C(a_), L(c_)).empty());

  // Under core {b}: leaf {c} totally merged; ({b},{b}) remains at {v4}.
  EXPECT_EQ(ToVec(idb_->FindLine(C(b_), bc)), V({4}));
  EXPECT_EQ(ToVec(idb_->FindLine(C(b_), L(b_))), V({3}));
  EXPECT_TRUE(idb_->FindLine(C(b_), L(c_)).empty());

  // Leafset {c} is totally merged (no remaining line anywhere): the
  // ({c}, core c) lines never contained leaf c. {c} appeared only under
  // cores a and b.
  EXPECT_EQ(outcome.totally_merged.size(), 1u);
  EXPECT_EQ(outcome.totally_merged[0], L(c_));
  ASSERT_EQ(outcome.partly_merged.size(), 1u);
  EXPECT_EQ(outcome.partly_merged[0], L(b_));

  // f totals shrink by xy_e: f_a 6->4, f_b 4->3.
  EXPECT_EQ(idb_->CoreLineTotal(C(a_)), 4u);
  EXPECT_EQ(idb_->CoreLineTotal(C(b_)), 3u);
  EXPECT_EQ(idb_->CoreLineTotal(C(c_)), 3u);

  EXPECT_TRUE(VerifyLossless(*g_, *idb_).ok());
}

TEST_F(InvertedDbPaperExample, MergeOfDisjointLeafsetsIsNoOp) {
  // Fabricate: leafsets that never co-occur under a shared coreset.
  // {a} and {b} share cores; but merging twice should eventually no-op.
  MergeOutcome first = idb_->MergeLeafsets(L(b_), L(c_));
  ASSERT_FALSE(first.no_op);
  // Merging {c} again: {c} has no lines left.
  MergeOutcome second = idb_->MergeLeafsets(L(b_), L(c_));
  EXPECT_TRUE(second.no_op);
}

// Reference implementation of the merge semantics on the seed's storage
// layout (hash map of per-line vectors). Merge edge cases are asserted
// identically against this old-path model and the flat-pool database.
class ReferenceDb {
 public:
  explicit ReferenceDb(const InvertedDatabase& idb) {
    idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
      lines_[{e, l}] = PosList(positions.begin(), positions.end());
    });
    for (CoreId e(0); e.index() < idb.num_coresets(); ++e) {
      core_line_total_.push_back(idb.CoreLineTotal(e));
    }
  }

  struct Outcome {
    std::vector<LeafsetId> totally_merged;
    std::vector<LeafsetId> partly_merged;
    bool no_op = true;
  };

  Outcome Merge(LeafsetId x, LeafsetId y, LeafsetId u) {
    Outcome outcome;
    for (const auto& [key, px] : std::map<std::pair<CoreId, LeafsetId>,
                                          PosList>(lines_)) {
      if (key.second != x) continue;
      const CoreId e = key.first;
      auto ity = lines_.find({e, y});
      if (ity == lines_.end()) continue;
      PosList inter;
      std::set_intersection(px.begin(), px.end(), ity->second.begin(),
                            ity->second.end(), std::back_inserter(inter));
      if (inter.empty()) continue;
      outcome.no_op = false;
      for (LeafsetId half : {x, y}) {
        auto it = lines_.find({e, half});
        PosList rest;
        std::set_difference(it->second.begin(), it->second.end(),
                            inter.begin(), inter.end(),
                            std::back_inserter(rest));
        if (rest.empty()) {
          lines_.erase(it);
        } else {
          it->second = rest;
        }
      }
      PosList& target = lines_[{e, u}];
      PosList merged;
      std::merge(target.begin(), target.end(), inter.begin(), inter.end(),
                 std::back_inserter(merged));
      target = merged;
      core_line_total_[e.index()] -= inter.size();
    }
    if (outcome.no_op) return outcome;
    for (LeafsetId l : {x, y}) {
      if (HasLines(l)) {
        outcome.partly_merged.push_back(l);
      } else {
        outcome.totally_merged.push_back(l);
      }
    }
    return outcome;
  }

  bool HasLines(LeafsetId l) const {
    for (const auto& [key, positions] : lines_) {
      (void)positions;
      if (key.second == l) return true;
    }
    return false;
  }

  size_t num_lines() const { return lines_.size(); }
  uint64_t CoreLineTotal(CoreId e) const {
    return core_line_total_[e.index()];
  }
  const PosList* Find(CoreId e, LeafsetId l) const {
    auto it = lines_.find({e, l});
    return it == lines_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::pair<CoreId, LeafsetId>, PosList> lines_;
  std::vector<uint64_t> core_line_total_;
};

void ExpectMatchesReference(const InvertedDatabase& idb,
                            const ReferenceDb& ref) {
  EXPECT_EQ(idb.num_lines(), ref.num_lines());
  for (CoreId e(0); e.index() < idb.num_coresets(); ++e) {
    EXPECT_EQ(idb.CoreLineTotal(e), ref.CoreLineTotal(e)) << "core " << e;
  }
  size_t seen = 0;
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    ++seen;
    const PosList* expected = ref.Find(e, l);
    ASSERT_NE(expected, nullptr) << "line (" << e << ", " << l << ")";
    EXPECT_EQ(ToVec(positions), *expected) << "line (" << e << ", " << l
                                           << ")";
  });
  EXPECT_EQ(seen, ref.num_lines());
}

class MergeEdgeCases : public InvertedDbPaperExample {};

TEST_F(MergeEdgeCases, NoSharedCoresetIsNoOpAndMutatesNothing) {
  ReferenceDb ref(*idb_);
  const size_t lines_before = idb_->num_lines();
  const size_t active_before = idb_->num_active_leafsets();
  MergeOutcome outcome = idb_->MergeLeafsets(L(b_), L(c_));
  ASSERT_FALSE(outcome.no_op);
  // Re-merging the same pair: {c} lost its last line, nothing shared.
  MergeOutcome again = idb_->MergeLeafsets(L(b_), L(c_));
  EXPECT_TRUE(again.no_op);
  EXPECT_EQ(again.cores_touched, 0u);
  EXPECT_EQ(again.moved_positions, 0u);
  EXPECT_TRUE(again.totally_merged.empty());
  EXPECT_TRUE(again.partly_merged.empty());
  // The failed merge changed nothing relative to the reference replay.
  ref.Merge(L(b_), L(c_), outcome.merged_id);
  ExpectMatchesReference(*idb_, ref);
  // 8 lines - (a,b) - (a,c) - (b,c) + (a,{b,c}) + (b,{b,c}) = 7.
  EXPECT_EQ(idb_->num_lines(), lines_before - 1);
  EXPECT_EQ(idb_->num_active_leafsets(), active_before);  // {c} out, {b,c} in
}

TEST_F(MergeEdgeCases, TotallyVersusPartlyMergedClassification) {
  // Fig. 4's merge: {c} vanishes everywhere (totally merged), {b} keeps a
  // line under core b (partly merged).
  ReferenceDb ref(*idb_);
  MergeOutcome outcome = idb_->MergeLeafsets(L(b_), L(c_));
  ReferenceDb::Outcome ref_outcome = ref.Merge(L(b_), L(c_), outcome.merged_id);
  EXPECT_EQ(outcome.no_op, ref_outcome.no_op);
  EXPECT_EQ(outcome.totally_merged, ref_outcome.totally_merged);
  EXPECT_EQ(outcome.partly_merged, ref_outcome.partly_merged);
  ExpectMatchesReference(*idb_, ref);
}

TEST_F(MergeEdgeCases, CoreLineTotalInvariantsAfterChainedMerges) {
  // Chain merges (including no-ops) on a random graph; after every step
  // the flat-pool state must equal the old-path reference replay, and f_e
  // must equal the sum of the line frequencies under e.
  Rng rng(2024);
  auto g = graph::ErdosRenyi(70, 0.09, 10, 3, &rng).value();
  InvertedDatabase idb = InvertedDatabase::FromGraph(g).value();
  ReferenceDb ref(idb);
  for (int step = 0; step < 40; ++step) {
    const auto& actives = idb.active_leafsets();
    if (actives.size() < 2) break;
    const LeafsetId x = actives[rng.Uniform(actives.size())];
    const LeafsetId y = actives[rng.Uniform(actives.size())];
    if (x == y) continue;
    MergeOutcome outcome = idb.MergeLeafsets(x, y);
    if (!outcome.no_op) {
      ReferenceDb::Outcome ref_outcome = ref.Merge(x, y, outcome.merged_id);
      EXPECT_EQ(outcome.totally_merged, ref_outcome.totally_merged);
      EXPECT_EQ(outcome.partly_merged, ref_outcome.partly_merged);
    }
    ExpectMatchesReference(idb, ref);

    // f_e invariant, directly on the flat storage.
    std::vector<uint64_t> totals(idb.num_coresets(), 0);
    uint64_t lines = 0;
    idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
      (void)l;
      ASSERT_FALSE(positions.empty());
      totals[e.index()] += positions.size();
      ++lines;
    });
    EXPECT_EQ(lines, idb.num_lines());
    for (CoreId e(0); e.index() < idb.num_coresets(); ++e) {
      EXPECT_EQ(totals[e.index()], idb.CoreLineTotal(e)) << "step " << step;
    }
  }
}

TEST(InvertedDbRandom, LosslessOnRandomGraphs) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    Rng rng(seed);
    auto g_or = graph::ErdosRenyi(80, 0.08, 12, 3, &rng);
    ASSERT_TRUE(g_or.status().ok());
    auto idb_or = InvertedDatabase::FromGraph(*g_or);
    ASSERT_TRUE(idb_or.status().ok());
    EXPECT_TRUE(VerifyLossless(*g_or, *idb_or).ok()) << "seed " << seed;
  }
}

TEST(InvertedDbRandom, LosslessAfterRandomMergeSequence) {
  Rng rng(99);
  auto g_or = graph::ErdosRenyi(60, 0.1, 10, 3, &rng);
  ASSERT_TRUE(g_or.status().ok());
  auto idb_or = InvertedDatabase::FromGraph(*g_or);
  ASSERT_TRUE(idb_or.status().ok());
  InvertedDatabase idb = std::move(idb_or).value();
  // Apply random merges of active leafsets; losslessness must hold
  // regardless of gain.
  for (int step = 0; step < 25; ++step) {
    const auto& actives = idb.active_leafsets();
    if (actives.size() < 2) break;
    LeafsetId x = actives[rng.Uniform(actives.size())];
    LeafsetId y = actives[rng.Uniform(actives.size())];
    if (x == y) continue;
    idb.MergeLeafsets(x, y);
    ASSERT_TRUE(VerifyLossless(*g_or, idb).ok()) << "step " << step;
  }
}

}  // namespace
}  // namespace cspm::core
