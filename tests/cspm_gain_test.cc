// Gain-engine tests: the three merge cases of Eqs. 12-15, the worked
// example of Section IV-E, and consistency between predicted gain and the
// actual description-length change after a merge.
#include "cspm/gain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cspm/miner.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

using cspm::testing::PaperExampleGraph;

// Single-value-coreset mode: leafset ids start out coinciding with
// attribute-value ids; spell the correspondence out.
LeafsetId L(AttrId a) { return LeafsetId(a.value()); }

class GainPaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<graph::AttributedGraph>(PaperExampleGraph());
    a_ = g_->dict().Find("a");
    b_ = g_->dict().Find("b");
    c_ = g_->dict().Find("c");
    auto idb_or = InvertedDatabase::FromGraph(*g_);
    ASSERT_TRUE(idb_or.status().ok());
    idb_ = std::make_unique<InvertedDatabase>(std::move(idb_or).value());
    cm_ = std::make_unique<CodeModel>(*g_, *idb_);
  }

  std::unique_ptr<graph::AttributedGraph> g_;
  std::unique_ptr<InvertedDatabase> idb_;
  std::unique_ptr<CodeModel> cm_;
  AttrId a_{}, b_{}, c_{};
};

TEST_F(GainPaperExample, MergeBCDataGainMatchesHandComputation) {
  // Hand computation (Section IV-E example, log base 2):
  //   Core a: f=6, xy=2 (total merge of both lines, Case 2):
  //     P1_a = 6 log 6 - 4 log 4; P2_a = xy log xy = 2.
  //   Core b: f=4, x_e=2 (leaf {b}), y_e=1 (leaf {c}), xy=1 (Case 3):
  //     P1_b = 4 log 4 - 3 log 3; P2_b = 2 log 2 - (1 log 1 + 1 log 1) = 2.
  GainResult gr = ComputeMergeGain(*idb_, *cm_, L(b_), L(c_));
  ASSERT_TRUE(gr.feasible);
  const double p1 = (6 * std::log2(6.0) - 4 * std::log2(4.0)) +
                    (4 * std::log2(4.0) - 3 * std::log2(3.0));
  const double p2 = 2.0 + 2.0;
  EXPECT_NEAR(gr.data_gain_bits, p1 - p2, 1e-9);
  EXPECT_EQ(gr.cores_with_overlap, 2u);
  EXPECT_EQ(gr.total_overlap, 3u);
}

TEST_F(GainPaperExample, ModelDeltaMatchesHandComputation) {
  // ST lengths: a: -log2(3/7), b,c: -log2(2/7). Cores: same values.
  const double la = -std::log2(3.0 / 7.0);
  const double lb = -std::log2(2.0 / 7.0);
  // Added lines: ({b,c} under a), ({b,c} under b);
  // removed: ({b} under a), ({c} under a), ({c} under b).
  const double added = (2 * lb + la) + (2 * lb + lb);
  const double removed = (lb + la) + (lb + la) + (lb + lb);
  GainResult gr = ComputeMergeGain(*idb_, *cm_, L(b_), L(c_));
  EXPECT_NEAR(gr.model_delta_bits, added - removed, 1e-9);
}

TEST_F(GainPaperExample, GainPredictsActualDlChange) {
  // The data gain must equal the exact change of L(I|M), and the
  // data+model gain the change of the CTL-inclusive DL.
  const double data_before = idb_->DataCostBits();
  const double full_before = cm_->TotalDescriptionLengthBits(*idb_);
  GainResult gr = ComputeMergeGain(*idb_, *cm_, L(b_), L(c_));
  idb_->MergeLeafsets(L(b_), L(c_));
  const double data_after = idb_->DataCostBits();
  const double full_after = cm_->TotalDescriptionLengthBits(*idb_);
  EXPECT_NEAR(data_before - data_after, gr.data_gain_bits, 1e-9);
  // Full DL also shifts by the change in Code_L column (conditional code
  // lengths), which is part of L(CTL|I) but not of the model delta; the
  // invariant we check is directional: data+model gain positive implies
  // the two-part DL (ex Code_L column drift) shrinks.
  EXPECT_LT(full_after - full_before, gr.model_delta_bits + 1e-9);
}

TEST_F(GainPaperExample, InfeasiblePairHasZeroGain) {
  // After merging {b},{c}, leafset {c} has no lines; any pair with it is
  // infeasible.
  idb_->MergeLeafsets(L(b_), L(c_));
  GainResult gr = ComputeMergeGain(*idb_, *cm_, L(a_), L(c_));
  EXPECT_FALSE(gr.feasible);
  EXPECT_EQ(gr.data_gain_bits, 0.0);
}

TEST_F(GainPaperExample, SelfPairInfeasible) {
  GainResult gr = ComputeMergeGain(*idb_, *cm_, L(a_), L(a_));
  EXPECT_FALSE(gr.feasible);
}

TEST_F(GainPaperExample, SubsetPairInfeasible) {
  // Merge {b},{c} -> {b,c}; pairing {b,c} with {b} has union == {b,c},
  // which by the losslessness invariant can never overlap.
  MergeOutcome outcome = idb_->MergeLeafsets(L(b_), L(c_));
  GainResult gr = ComputeMergeGain(*idb_, *cm_, outcome.merged_id, L(b_));
  EXPECT_FALSE(gr.feasible);
}

// Property: on random graphs, for any feasible pair the predicted data gain
// equals the exact L(I|M) delta realized by the merge.
TEST(GainProperty, PredictedEqualsRealizedDataGain) {
  for (uint64_t seed : {3ull, 11ull, 23ull}) {
    Rng rng(seed);
    auto g_or = graph::ErdosRenyi(70, 0.09, 10, 3, &rng);
    ASSERT_TRUE(g_or.status().ok());
    auto idb_or = InvertedDatabase::FromGraph(*g_or);
    ASSERT_TRUE(idb_or.status().ok());
    InvertedDatabase idb = std::move(idb_or).value();
    CodeModel cm(*g_or, idb);
    int merges_done = 0;
    for (int step = 0; step < 60 && merges_done < 12; ++step) {
      const auto& actives = idb.active_leafsets();
      if (actives.size() < 2) break;
      LeafsetId x = actives[rng.Uniform(actives.size())];
      LeafsetId y = actives[rng.Uniform(actives.size())];
      if (x == y) continue;
      GainResult gr = ComputeMergeGain(idb, cm, x, y);
      if (!gr.feasible) continue;
      const double before = idb.DataCostBits();
      idb.MergeLeafsets(x, y);
      const double after = idb.DataCostBits();
      ASSERT_NEAR(before - after, gr.data_gain_bits, 1e-6)
          << "seed " << seed << " step " << step;
      ++merges_done;
    }
    ASSERT_GT(merges_done, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cspm::core
