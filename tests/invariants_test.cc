// Tests for the deep invariant validators: the graph / inverted-database /
// scoring-plan checkers must accept everything the library builds, and the
// store auditor (ModelStore::CheckInvariants / Fsck, `cspm_shell fsck`)
// must catch pointer-level corruption that the per-page CRCs cannot see —
// pages with valid checksums whose chain links were truncated, spliced
// into another chain, or bent into a cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "cspm/inverted_database.h"
#include "cspm/scoring_plan.h"
#include "cspm/verify.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "graph/validate.h"
#include "store/model_store.h"
#include "store/pager.h"
#include "store/plan_section.h"
#include "testing_util.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cspm {
namespace {

using cspm::testing::PaperExampleGraph;
using store::ModelStore;
using store::Pager;
using store::StoredModel;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

graph::AttributedGraph MediumGraph() {
  Rng rng(7);
  auto g = graph::BarabasiAlbert(/*n=*/300, /*m=*/3, /*vocabulary=*/25,
                                 /*attrs_per_vertex=*/3, &rng);
  CSPM_CHECK(g.ok());
  return std::move(g).value();
}

// --- validators accept healthy structures ---------------------------------

TEST(GraphInvariants, AcceptBuiltGraphs) {
  EXPECT_TRUE(graph::CheckInvariants(PaperExampleGraph()).ok());
  EXPECT_TRUE(graph::CheckInvariants(MediumGraph()).ok());
}

TEST(GraphInvariants, AcceptSplicedDelta) {
  const graph::AttributedGraph g = PaperExampleGraph();
  graph::GraphDelta delta;
  delta.AddVertex({"a", "c"});
  delta.AddEdge(g.num_vertices(), graph::VertexId(0));
  delta.RemoveEdge(graph::VertexId(0), graph::VertexId(1));
  delta.SetAttribute(graph::VertexId(3), "c");
  auto applied = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(graph::CheckInvariants(applied->graph).ok());
}

TEST(InvertedDbInvariants, AcceptBuildAndMerges) {
  auto idb = core::InvertedDatabase::FromGraph(PaperExampleGraph());
  ASSERT_TRUE(idb.ok());
  ASSERT_TRUE(core::CheckInvariants(*idb).ok());
  // Merge two active leafsets and re-validate the mutated structure.
  const auto& actives = idb->active_leafsets();
  ASSERT_GE(actives.size(), 2u);
  idb->MergeLeafsets(actives[0], actives[1]);
  EXPECT_TRUE(core::CheckInvariants(*idb).ok());
}

TEST(ScoringPlanInvariants, AcceptCompiledModel) {
  const graph::AttributedGraph g = MediumGraph();
  auto model = engine::MineModel(g);
  ASSERT_TRUE(model.ok());
  const core::ScoringPlan plan =
      core::ScoringPlan::Compile(*model, g.num_attribute_values());
  EXPECT_TRUE(plan.CheckInvariants().ok());
}

// --- store audit ----------------------------------------------------------

/// A store whose single record spans several pages (the corruption tests
/// bend mid-chain links, which needs a chain longer than one page).
void BuildStore(const std::string& path) {
  const graph::AttributedGraph g = MediumGraph();
  auto model = engine::MineModel(g);
  ASSERT_TRUE(model.ok());
  auto store = ModelStore::Create(path);
  ASSERT_TRUE(store.ok());
  StoredModel stored{*model, g.dict(), g};
  ASSERT_TRUE(store->Put("planted", stored).ok());
  graph::GraphDelta delta;
  delta.AddEdge(graph::VertexId(0), graph::VertexId(250));
  ASSERT_TRUE(store->AppendDelta("planted", delta).ok());
  ASSERT_GT(store->List()[0].bytes, Pager::kPagePayload)
      << "record must span several pages for the chain-corruption tests";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

uint32_t GetU32(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

/// Rewrites one page's `next` link and re-seals the page with a correct
/// CRC: the corruption is invisible to every checksum in the file.
void BendNextLink(const std::string& path, uint32_t page_id, uint32_t next) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), (page_id + 1) * size_t{Pager::kPageSize});
  char* page = bytes.data() + page_id * size_t{Pager::kPageSize};
  PutU32(page + 4, next);
  PutU32(page, Crc32(page + 4, Pager::kPageSize - 4));
  WriteFileBytes(path, bytes);
}

uint32_t CatalogHead(const std::string& path) {
  const std::string bytes = ReadFileBytes(path);
  return GetU32(bytes.data() + 24);
}

/// First page carrying a valid page header (CRC over [4, 4096) stored at
/// [0, 4)). The plan extent lands directly after the header page on a
/// fresh store and its raw section bytes do not checksum as pages, so
/// this finds the head of the first record chain regardless of how many
/// pages the extent took.
uint32_t FirstChainPage(const std::string& path) {
  const std::string bytes = ReadFileBytes(path);
  for (size_t p = 1; (p + 1) * size_t{Pager::kPageSize} <= bytes.size(); ++p) {
    const char* page = bytes.data() + p * Pager::kPageSize;
    if (GetU32(page) == Crc32(page + 4, Pager::kPageSize - 4)) {
      return static_cast<uint32_t>(p);
    }
  }
  ADD_FAILURE() << "no header-carrying page found in " << path;
  return Pager::kNoPage;
}

/// Byte offset of the first model's plan section: the extent is the first
/// thing Put allocates on a fresh store, so it starts at page 1.
constexpr size_t kPlanSectionOffset = Pager::kPageSize;

/// Rewrites field `field` (0 = offset, 1 = length, 2 = crc) of slab
/// table entry `slab` and re-seals the section header CRC — the
/// corruption survives the header checksum and must be caught by the
/// geometry (or slab-CRC) validation itself.
void BendSlabTable(const std::string& path, size_t slab, size_t field,
                   uint32_t value) {
  std::string bytes = ReadFileBytes(path);
  char* section = bytes.data() + kPlanSectionOffset;
  PutU32(section + 32 + slab * 12 + field * 4, value);
  PutU32(section + 104, Crc32(section, 104));
  WriteFileBytes(path, bytes);
}

TEST(StoreInvariants, AcceptHealthyStoreAcrossMutations) {
  const std::string path = TempPath("fsck_healthy.cspm");
  BuildStore(path);
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_TRUE(store->Fsck().ok());

  // Mutations recycle pages through the free list; the audit must keep
  // accounting for every page.
  StoredModel small{{}, graph::AttributeDictionary{}, std::nullopt};
  ASSERT_TRUE(store->Put("empty", small).ok());
  ASSERT_TRUE(store->Delete("planted").ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_TRUE(store->Fsck().ok());
}

// The corruption tests below all target the "planted" record chain,
// located via FirstChainPage (the plan extent sits between the header and
// the first chain page since v3).

TEST(StoreInvariants, DetectTruncatedChainThatCrcMisses) {
  const std::string path = TempPath("fsck_truncated.cspm");
  BuildStore(path);
  BendNextLink(path, FirstChainPage(path), Pager::kNoPage);

  // Every checksum is valid, so Open (header + catalog) succeeds...
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  // ...but the audit sees the record chain stop short of its byte count.
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("truncated or spliced"), std::string::npos)
      << audit.ToString();
  EXPECT_FALSE(store->Fsck().ok());
}

TEST(StoreInvariants, DetectChainSplicedIntoCatalog) {
  const std::string path = TempPath("fsck_spliced.cspm");
  BuildStore(path);
  const uint32_t catalog_head = CatalogHead(path);
  ASSERT_NE(catalog_head, Pager::kNoPage);
  BendNextLink(path, FirstChainPage(path), catalog_head);

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("claimed by both"), std::string::npos)
      << audit.ToString();
}

TEST(StoreInvariants, DetectChainCycle) {
  const std::string path = TempPath("fsck_cycle.cspm");
  BuildStore(path);
  const uint32_t head = FirstChainPage(path);
  BendNextLink(path, head, head);

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("cycles back"), std::string::npos)
      << audit.ToString();
}

// --- v3 plan sections and the catalog index -------------------------------

TEST(StoreInvariants, PlanSlabByteFlipPassesOpenButFailsFsck) {
  const std::string path = TempPath("fsck_slab_flip.cspm");
  BuildStore(path);
  // Flip one bit inside the first slab (slabs start at the fixed header
  // size). The two-tier contract: the O(1) serving open does not sweep
  // slab CRCs, fsck does.
  std::string bytes = ReadFileBytes(path);
  bytes[kPlanSectionOffset + store::kPlanSectionHeaderBytes + 7] ^= 0x20;
  WriteFileBytes(path, bytes);

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->OpenPlan("planted").ok());
  const Status fsck = store->Fsck();
  ASSERT_FALSE(fsck.ok());
  EXPECT_NE(fsck.message().find("plan section of 'planted'"),
            std::string::npos)
      << fsck.ToString();
}

TEST(StoreInvariants, DetectPlanSectionMisalignedSlabOffset) {
  const std::string path = TempPath("fsck_misaligned.cspm");
  BuildStore(path);
  // Shift the first slab off its 64-byte boundary (header CRC re-sealed,
  // so only the geometry check can see it). Already the O(1) tier — the
  // serving open itself — must refuse.
  BendSlabTable(path, /*slab=*/0, /*field=*/0,
                static_cast<uint32_t>(store::kPlanSectionHeaderBytes + 4));
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->OpenPlan("planted").ok());
  EXPECT_FALSE(store->Fsck().ok());
}

TEST(StoreInvariants, DetectPlanSectionOverlappingSlabs) {
  const std::string path = TempPath("fsck_overlap.cspm");
  BuildStore(path);
  // Point the second slab at the first slab's offset: lengths and
  // alignment stay plausible, but the ranges overlap.
  BendSlabTable(path, /*slab=*/1, /*field=*/0,
                static_cast<uint32_t>(store::kPlanSectionHeaderBytes));
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->OpenPlan("planted").ok());
  EXPECT_FALSE(store->Fsck().ok());
}

TEST(StoreInvariants, DetectPlanSectionTruncatedSlab) {
  const std::string path = TempPath("fsck_trunc_slab.cspm");
  BuildStore(path);
  // Shrink the postings slab's recorded length below what the header
  // counts promise.
  const std::string bytes = ReadFileBytes(path);
  const uint32_t len =
      GetU32(bytes.data() + kPlanSectionOffset + 32 + 5 * 12 + 4);
  ASSERT_GT(len, 0u);
  BendSlabTable(path, /*slab=*/5, /*field=*/1, len - 4);
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->OpenPlan("planted").ok());
  EXPECT_FALSE(store->Fsck().ok());
}

TEST(StoreInvariants, DetectCatalogIndexLeafCycle) {
  const std::string path = TempPath("fsck_index_cycle.cspm");
  auto store = ModelStore::Create(path);
  ASSERT_TRUE(store.ok());
  // Enough tiny models that the catalog index spans several leaves under
  // an interior root.
  std::vector<std::pair<std::string, StoredModel>> batch;
  for (int i = 0; i < 300; ++i) {
    batch.emplace_back(StrFormat("model-%04d", i),
                       StoredModel{{}, graph::AttributeDictionary{},
                                   std::nullopt});
  }
  ASSERT_TRUE(store->PutMany(batch).ok());

  // With single-page records (next == 0) and next-free interior nodes,
  // the only header-carrying pages with a nonzero next link are the
  // non-rightmost catalog leaves. Bend one into a self-loop.
  const std::string bytes = ReadFileBytes(path);
  uint32_t leaf = Pager::kNoPage;
  for (size_t p = 1; (p + 1) * size_t{Pager::kPageSize} <= bytes.size();
       ++p) {
    const char* page = bytes.data() + p * Pager::kPageSize;
    if (GetU32(page) == Crc32(page + 4, Pager::kPageSize - 4) &&
        GetU32(page + 4) != Pager::kNoPage) {
      leaf = static_cast<uint32_t>(p);
      break;
    }
  }
  ASSERT_NE(leaf, Pager::kNoPage) << "no multi-leaf catalog index built";
  BendNextLink(path, leaf, leaf);

  auto reopened = ModelStore::Open(path);
  ASSERT_TRUE(reopened.ok());  // open reads header + root only
  const Status audit = reopened->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  // The self-loop trips either the leaf-level link check or the duplicate
  // entry check, depending on which walk reaches it first.
  EXPECT_TRUE(audit.message().find("leaf level") != std::string::npos ||
              audit.message().find("duplicate") != std::string::npos)
      << audit.ToString();
  EXPECT_FALSE(reopened->Fsck().ok());
}

}  // namespace
}  // namespace cspm
