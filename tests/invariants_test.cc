// Tests for the deep invariant validators: the graph / inverted-database /
// scoring-plan checkers must accept everything the library builds, and the
// store auditor (ModelStore::CheckInvariants / Fsck, `cspm_shell fsck`)
// must catch pointer-level corruption that the per-page CRCs cannot see —
// pages with valid checksums whose chain links were truncated, spliced
// into another chain, or bent into a cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "cspm/inverted_database.h"
#include "cspm/scoring_plan.h"
#include "cspm/verify.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "graph/validate.h"
#include "store/model_store.h"
#include "store/pager.h"
#include "testing_util.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace cspm {
namespace {

using cspm::testing::PaperExampleGraph;
using store::ModelStore;
using store::Pager;
using store::StoredModel;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

graph::AttributedGraph MediumGraph() {
  Rng rng(7);
  auto g = graph::BarabasiAlbert(/*n=*/300, /*m=*/3, /*vocabulary=*/25,
                                 /*attrs_per_vertex=*/3, &rng);
  CSPM_CHECK(g.ok());
  return std::move(g).value();
}

// --- validators accept healthy structures ---------------------------------

TEST(GraphInvariants, AcceptBuiltGraphs) {
  EXPECT_TRUE(graph::CheckInvariants(PaperExampleGraph()).ok());
  EXPECT_TRUE(graph::CheckInvariants(MediumGraph()).ok());
}

TEST(GraphInvariants, AcceptSplicedDelta) {
  const graph::AttributedGraph g = PaperExampleGraph();
  graph::GraphDelta delta;
  delta.AddVertex({"a", "c"});
  delta.AddEdge(g.num_vertices(), graph::VertexId(0));
  delta.RemoveEdge(graph::VertexId(0), graph::VertexId(1));
  delta.SetAttribute(graph::VertexId(3), "c");
  auto applied = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(graph::CheckInvariants(applied->graph).ok());
}

TEST(InvertedDbInvariants, AcceptBuildAndMerges) {
  auto idb = core::InvertedDatabase::FromGraph(PaperExampleGraph());
  ASSERT_TRUE(idb.ok());
  ASSERT_TRUE(core::CheckInvariants(*idb).ok());
  // Merge two active leafsets and re-validate the mutated structure.
  const auto& actives = idb->active_leafsets();
  ASSERT_GE(actives.size(), 2u);
  idb->MergeLeafsets(actives[0], actives[1]);
  EXPECT_TRUE(core::CheckInvariants(*idb).ok());
}

TEST(ScoringPlanInvariants, AcceptCompiledModel) {
  const graph::AttributedGraph g = MediumGraph();
  auto model = engine::MineModel(g);
  ASSERT_TRUE(model.ok());
  const core::ScoringPlan plan =
      core::ScoringPlan::Compile(*model, g.num_attribute_values());
  EXPECT_TRUE(plan.CheckInvariants().ok());
}

// --- store audit ----------------------------------------------------------

/// A store whose single record spans several pages (the corruption tests
/// bend mid-chain links, which needs a chain longer than one page).
void BuildStore(const std::string& path) {
  const graph::AttributedGraph g = MediumGraph();
  auto model = engine::MineModel(g);
  ASSERT_TRUE(model.ok());
  auto store = ModelStore::Create(path);
  ASSERT_TRUE(store.ok());
  StoredModel stored{*model, g.dict(), g};
  ASSERT_TRUE(store->Put("planted", stored).ok());
  graph::GraphDelta delta;
  delta.AddEdge(graph::VertexId(0), graph::VertexId(250));
  ASSERT_TRUE(store->AppendDelta("planted", delta).ok());
  ASSERT_GT(store->List()[0].bytes, Pager::kPagePayload)
      << "record must span several pages for the chain-corruption tests";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

uint32_t GetU32(const char* src) {
  const auto* p = reinterpret_cast<const uint8_t*>(src);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

/// Rewrites one page's `next` link and re-seals the page with a correct
/// CRC: the corruption is invisible to every checksum in the file.
void BendNextLink(const std::string& path, uint32_t page_id, uint32_t next) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), (page_id + 1) * size_t{Pager::kPageSize});
  char* page = bytes.data() + page_id * size_t{Pager::kPageSize};
  PutU32(page + 4, next);
  PutU32(page, Crc32(page + 4, Pager::kPageSize - 4));
  WriteFileBytes(path, bytes);
}

uint32_t CatalogHead(const std::string& path) {
  const std::string bytes = ReadFileBytes(path);
  return GetU32(bytes.data() + 24);
}

TEST(StoreInvariants, AcceptHealthyStoreAcrossMutations) {
  const std::string path = TempPath("fsck_healthy.cspm");
  BuildStore(path);
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_TRUE(store->Fsck().ok());

  // Mutations recycle pages through the free list; the audit must keep
  // accounting for every page.
  StoredModel small{{}, graph::AttributeDictionary{}, std::nullopt};
  ASSERT_TRUE(store->Put("empty", small).ok());
  ASSERT_TRUE(store->Delete("planted").ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_TRUE(store->Fsck().ok());
}

// Page 1 is the head of the first record chain written after Create (the
// pager allocates sequentially from a fresh file), so the corruption tests
// below all target the "planted" record chain.

TEST(StoreInvariants, DetectTruncatedChainThatCrcMisses) {
  const std::string path = TempPath("fsck_truncated.cspm");
  BuildStore(path);
  BendNextLink(path, /*page_id=*/1, Pager::kNoPage);

  // Every checksum is valid, so Open (header + catalog) succeeds...
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  // ...but the audit sees the record chain stop short of its byte count.
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("truncated or spliced"), std::string::npos)
      << audit.ToString();
  EXPECT_FALSE(store->Fsck().ok());
}

TEST(StoreInvariants, DetectChainSplicedIntoCatalog) {
  const std::string path = TempPath("fsck_spliced.cspm");
  BuildStore(path);
  const uint32_t catalog_head = CatalogHead(path);
  ASSERT_NE(catalog_head, Pager::kNoPage);
  BendNextLink(path, /*page_id=*/1, catalog_head);

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("claimed by both"), std::string::npos)
      << audit.ToString();
}

TEST(StoreInvariants, DetectChainCycle) {
  const std::string path = TempPath("fsck_cycle.cspm");
  BuildStore(path);
  BendNextLink(path, /*page_id=*/1, /*next=*/1);

  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  const Status audit = store->CheckInvariants();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("cycles back"), std::string::npos)
      << audit.ToString();
}

}  // namespace
}  // namespace cspm
