// Tests for the util substrate: Status/StatusOr, deterministic RNG and
// string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cspm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad n");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad n");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so.value(), 42);
  EXPECT_EQ(*so, 42);
  EXPECT_TRUE(so.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::NotFound("nothing"));
  EXPECT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> so(std::string("payload"));
  std::string s = std::move(so).value();
  EXPECT_EQ(s, "payload");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 600);  // ~6 sigma
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  for (double mean : {0.5, 3.0, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.05) << "mean " << mean;
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(29);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(50, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[40] - 50);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Zipf(7, 1.5), 7u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Zipf(1, 1.5), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(37);
  auto s = rng.SampleWithoutReplacement(100, 30);
  std::set<uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (uint32_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(41);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(StringUtilTest, SplitBasic) {
  auto parts = SplitString("a b  c", ' ');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitEmptyAndNoDelimiter) {
  EXPECT_TRUE(SplitString("", ' ').empty());
  auto one = SplitString("abc", ' ');
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], "abc");
}

TEST(StringUtilTest, JoinRoundtrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, FormatNumbers) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, ParseUint32Strict) {
  uint32_t v = 123;
  EXPECT_TRUE(ParseUint32("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint32("4294967295", &v));
  EXPECT_EQ(v, 4294967295u);
  // Garbage never silently parses (and never touches the output).
  v = 77;
  EXPECT_FALSE(ParseUint32("", &v));
  EXPECT_FALSE(ParseUint32("x", &v));
  EXPECT_FALSE(ParseUint32("4x", &v));
  EXPECT_FALSE(ParseUint32(" 4", &v));
  EXPECT_FALSE(ParseUint32("-1", &v));
  EXPECT_FALSE(ParseUint32("4294967296", &v));  // one past uint32 max
  EXPECT_EQ(v, 77u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  const double first = t.ElapsedMillis();
  const double second = t.ElapsedMillis();
  EXPECT_LE(first, second);  // monotone
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace cspm
