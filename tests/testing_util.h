// Shared fixtures for the test suite: the paper's running example graph
// (Fig. 1) and small helpers.
#ifndef CSPM_TESTS_TESTING_UTIL_H_
#define CSPM_TESTS_TESTING_UTIL_H_

#include <string>
#include <vector>

#include "graph/attributed_graph.h"
#include "util/check.h"

namespace cspm::testing {

/// Builds the paper's Fig. 1 running example:
///   v1:{a} v2:{a,c} v3:{c} v4:{b} v5:{a,b}
///   edges: v1-v2, v1-v3, v1-v4, v3-v5, v4-v5
/// Vertex ids are zero-based (paper's v1 == id 0).
inline graph::AttributedGraph PaperExampleGraph() {
  graph::GraphBuilder b;
  b.AddVertex({"a"});           // v1 = 0
  b.AddVertex({"a", "c"});      // v2 = 1
  b.AddVertex({"c"});           // v3 = 2
  b.AddVertex({"b"});           // v4 = 3
  b.AddVertex({"a", "b"});      // v5 = 4
  CSPM_CHECK(b.AddEdge(VertexId(0), VertexId(1)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(0), VertexId(2)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(0), VertexId(3)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(2), VertexId(4)).ok());
  CSPM_CHECK(b.AddEdge(VertexId(3), VertexId(4)).ok());
  auto g = std::move(b).Build(/*require_connected=*/true);
  CSPM_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace cspm::testing

#endif  // CSPM_TESTS_TESTING_UTIL_H_
