// Tests for the network serving layer (src/net/): the CSN1 frame parser
// hardened against torn/hostile streams, the score coalescer's flush and
// backpressure contract, payload codec round trips, and end-to-end
// socket tests against a live server — including the cross-process
// bit-identity contract (wire scores == in-process ScoreBatch, bit for
// bit) and OVERLOADED under queue saturation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/session.h"
#include "graph/graph_delta.h"
#include "net/batcher.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/model_host.h"
#include "net/server.h"
#include "store/model_store.h"
#include "testing_util.h"
#include "util/check.h"
#include "util/status.h"

namespace cspm::net {
namespace {

using cspm::testing::PaperExampleGraph;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- frame encode/parse ----------------------------------------------------

Frame MakeScoreFrame(uint32_t id, const std::string& payload) {
  Frame f;
  f.verb = Verb::kScore;
  f.request_id = id;
  f.payload = payload;
  return f;
}

TEST(FrameParser, RoundTripsOneFrame) {
  const Frame sent = MakeScoreFrame(7, "payload-bytes");
  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(EncodeFrame(sent), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verb, Verb::kScore);
  EXPECT_EQ(out[0].status, WireStatus::kOk);
  EXPECT_EQ(out[0].request_id, 7u);
  EXPECT_EQ(out[0].payload, "payload-bytes");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParser, ReassemblesByteAtATimeFeeds) {
  // Torn everywhere: mid-magic, mid-length, mid-CRC, mid-payload.
  const std::string bytes = EncodeFrame(MakeScoreFrame(42, "torn"));
  FrameParser parser;
  std::vector<Frame> out;
  for (char byte : bytes) {
    ASSERT_TRUE(parser.Feed(std::string_view(&byte, 1), &out).ok());
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_id, 42u);
  EXPECT_EQ(out[0].payload, "torn");
}

TEST(FrameParser, ParsesSeveralFramesFromOneFeed) {
  std::string bytes;
  for (uint32_t id = 0; id < 5; ++id) {
    AppendFrame(MakeScoreFrame(id, std::string(id, 'x')), &bytes);
  }
  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(bytes, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  for (uint32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(out[id].request_id, id);
    EXPECT_EQ(out[id].payload.size(), id);
  }
}

TEST(FrameParser, TornMidLengthAcrossFeeds) {
  const std::string bytes = EncodeFrame(MakeScoreFrame(9, "abcdef"));
  FrameParser parser;
  std::vector<Frame> out;
  // Split inside the length field (bytes 12..15 of the header).
  ASSERT_TRUE(parser.Feed(bytes.substr(0, 14), &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.buffered_bytes(), 14u);
  ASSERT_TRUE(parser.Feed(bytes.substr(14), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "abcdef");
}

TEST(FrameParser, BadMagicPoisonsTheParser) {
  std::string bytes = EncodeFrame(MakeScoreFrame(1, "x"));
  bytes[0] = 'Z';
  FrameParser parser;
  std::vector<Frame> out;
  const Status first = parser.Feed(bytes, &out);
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
  // Poisoned: even a well-formed frame now fails with the same error.
  const Status second =
      parser.Feed(EncodeFrame(MakeScoreFrame(2, "ok")), &out);
  EXPECT_EQ(second.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST(FrameParser, OversizedLengthRejected) {
  FrameParser parser(/*max_payload_bytes=*/16);
  std::vector<Frame> out;
  const Status fed =
      parser.Feed(EncodeFrame(MakeScoreFrame(1, std::string(17, 'p'))), &out);
  EXPECT_EQ(fed.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST(FrameParser, CrcMismatchRejected) {
  std::string bytes = EncodeFrame(MakeScoreFrame(3, "checksummed"));
  bytes[bytes.size() - 1] ^= 0x40;  // flip a payload bit
  FrameParser parser;
  std::vector<Frame> out;
  const Status fed = parser.Feed(bytes, &out);
  EXPECT_EQ(fed.code(), StatusCode::kIOError);
  EXPECT_TRUE(out.empty());
}

TEST(FrameParser, NonzeroReservedBytesRejected) {
  std::string bytes = EncodeFrame(MakeScoreFrame(3, "x"));
  bytes[6] = 1;  // reserved bytes are offsets 6..7
  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_EQ(parser.Feed(bytes, &out).code(), StatusCode::kInvalidArgument);
}

TEST(FrameParser, FramesBeforeACorruptOneStillParse) {
  std::string bytes = EncodeFrame(MakeScoreFrame(1, "good"));
  std::string bad = EncodeFrame(MakeScoreFrame(2, "bad"));
  bad[0] = 'Z';
  bytes += bad;
  FrameParser parser;
  std::vector<Frame> out;
  const Status fed = parser.Feed(bytes, &out);
  EXPECT_EQ(fed.code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(out.size(), 1u);  // the good frame surfaced before the poison
  EXPECT_EQ(out[0].payload, "good");
}

TEST(FrameParser, InterleavedConnectionsDoNotMix) {
  // Two connections' streams arrive interleaved in small chunks; each
  // parser reassembles only its own bytes.
  const std::string a = EncodeFrame(MakeScoreFrame(100, "connection-a"));
  const std::string b = EncodeFrame(MakeScoreFrame(200, "conn-b"));
  FrameParser parser_a;
  FrameParser parser_b;
  std::vector<Frame> out_a;
  std::vector<Frame> out_b;
  size_t off_a = 0;
  size_t off_b = 0;
  while (off_a < a.size() || off_b < b.size()) {
    if (off_a < a.size()) {
      const size_t n = std::min<size_t>(3, a.size() - off_a);
      ASSERT_TRUE(parser_a.Feed(std::string_view(a).substr(off_a, n), &out_a)
                      .ok());
      off_a += n;
    }
    if (off_b < b.size()) {
      const size_t n = std::min<size_t>(5, b.size() - off_b);
      ASSERT_TRUE(parser_b.Feed(std::string_view(b).substr(off_b, n), &out_b)
                      .ok());
      off_b += n;
    }
  }
  ASSERT_EQ(out_a.size(), 1u);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(out_a[0].request_id, 100u);
  EXPECT_EQ(out_a[0].payload, "connection-a");
  EXPECT_EQ(out_b[0].request_id, 200u);
  EXPECT_EQ(out_b[0].payload, "conn-b");
}

// --- payload codecs --------------------------------------------------------

TEST(PayloadCodec, ScoreRequestRoundTrips) {
  ScoreRequest req;
  req.model = "er";
  req.k = 3;
  req.vertices = {graph::VertexId(0), graph::VertexId(7),
                  graph::VertexId(123456)};
  auto decoded = DecodeScoreRequest(EncodeScoreRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().model, "er");
  EXPECT_EQ(decoded.value().k, 3u);
  ASSERT_EQ(decoded.value().vertices.size(), 3u);
  EXPECT_EQ(decoded.value().vertices[2], graph::VertexId(123456));
}

TEST(PayloadCodec, ScoreResponseRoundTripsDoubleBitsExactly) {
  ScoreResponse resp;
  resp.results.push_back(
      {{graph::AttrId(1), 0.1 + 0.2},  // a value with messy low bits
       {graph::AttrId(0), -0.0}});
  resp.results.emplace_back();  // empty vertex result
  auto decoded = DecodeScoreResponse(EncodeScoreResponse(resp));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().results.size(), 2u);
  const auto& entries = decoded.value().results[0];
  ASSERT_EQ(entries.size(), 2u);
  const double expected = 0.1 + 0.2;
  EXPECT_EQ(std::memcmp(&entries[0].score, &expected, sizeof(double)), 0);
  const double negzero = -0.0;
  EXPECT_EQ(std::memcmp(&entries[1].score, &negzero, sizeof(double)), 0);
}

TEST(PayloadCodec, UpdateRequestRoundTrips) {
  graph::AttributedGraph g = PaperExampleGraph();
  auto delta_or = graph::MakeRandomEdgeRewires(g, 2, /*seed=*/5);
  ASSERT_TRUE(delta_or.ok());
  UpdateRequest req;
  req.model = "paper";
  req.mode = 1;
  req.delta = std::move(delta_or).value();
  auto decoded = DecodeUpdateRequest(EncodeUpdateRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().model, "paper");
  EXPECT_EQ(decoded.value().mode, 1);
  EXPECT_EQ(decoded.value().delta.num_ops(), req.delta.num_ops());
}

TEST(PayloadCodec, TruncatedPayloadsFailCleanly) {
  ScoreRequest req;
  req.model = "m";
  req.vertices = {graph::VertexId(1), graph::VertexId(2)};
  const std::string full = EncodeScoreRequest(req);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeScoreRequest(full.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeScoreRequest(full + "x").ok());
}

TEST(PayloadCodec, TopKScoresRanksLikeTheShell) {
  core::AttributeScores scores;
  scores.normalized = {0.2, 0.9, 0.9, 0.1};
  scores.raw = {1, 2, 3, 4};
  const auto all = TopKScores(scores, 0);
  ASSERT_EQ(all.size(), 4u);
  // Descending by score; attr id ascending breaks the 0.9 tie.
  EXPECT_EQ(all[0].attr, graph::AttrId(1));
  EXPECT_EQ(all[1].attr, graph::AttrId(2));
  EXPECT_EQ(all[2].attr, graph::AttrId(0));
  EXPECT_EQ(all[3].attr, graph::AttrId(3));
  const auto top2 = TopKScores(scores, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].attr, graph::AttrId(1));
  EXPECT_EQ(top2[1].attr, graph::AttrId(2));
}

// --- coalescer -------------------------------------------------------------

PendingScore Req(uint32_t id, size_t vertices) {
  PendingScore p;
  p.request_id = id;
  p.vertices.assign(vertices, graph::VertexId(0));
  return p;
}

TEST(ScoreBatcher, FlushesWhenMaxBatchReached) {
  BatchOptions opts;
  opts.max_batch_vertices = 4;
  opts.max_wait_us = 1000000;  // far away: only the size bound can fire
  opts.max_queue_vertices = 100;
  ScoreBatcher batcher(opts);
  EXPECT_EQ(batcher.Add(Req(1, 2), 10), ScoreBatcher::Admit::kAccepted);
  EXPECT_FALSE(batcher.Due(11));
  EXPECT_EQ(batcher.Add(Req(2, 2), 12), ScoreBatcher::Admit::kAccepted);
  EXPECT_TRUE(batcher.Due(13));  // 4 vertices queued == max_batch
  ScoreBatcher::FlushReason reason = ScoreBatcher::FlushReason::kMaxWait;
  const auto batch = batcher.TakeBatch(&reason);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(reason, ScoreBatcher::FlushReason::kMaxBatch);
  EXPECT_EQ(batcher.queued_vertices(), 0u);
}

TEST(ScoreBatcher, FlushesWhenOldestWaitedMaxWait) {
  BatchOptions opts;
  opts.max_batch_vertices = 100;
  opts.max_wait_us = 50;  // 50'000 ns
  ScoreBatcher batcher(opts);
  EXPECT_EQ(batcher.Add(Req(1, 1), 1000), ScoreBatcher::Admit::kAccepted);
  EXPECT_FALSE(batcher.Due(1000 + 49'999));
  EXPECT_TRUE(batcher.Due(1000 + 50'000));
  ASSERT_TRUE(batcher.NextDeadlineNs().has_value());
  EXPECT_EQ(*batcher.NextDeadlineNs(), 1000u + 50'000u);
  ScoreBatcher::FlushReason reason = ScoreBatcher::FlushReason::kMaxBatch;
  const auto batch = batcher.TakeBatch(&reason);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(reason, ScoreBatcher::FlushReason::kMaxWait);
}

TEST(ScoreBatcher, WholeRequestsNeverSplitAcrossBatches) {
  BatchOptions opts;
  opts.max_batch_vertices = 4;
  opts.max_queue_vertices = 100;
  ScoreBatcher batcher(opts);
  EXPECT_EQ(batcher.Add(Req(1, 3), 0), ScoreBatcher::Admit::kAccepted);
  EXPECT_EQ(batcher.Add(Req(2, 3), 0), ScoreBatcher::Admit::kAccepted);
  // 6 >= max_batch: due. But request 2 (3 vertices) does not fit next to
  // request 1 (3 vertices) in a 4-vertex batch — it stays whole, queued.
  EXPECT_TRUE(batcher.Due(1));
  auto first = batcher.TakeBatch();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].request_id, 1u);
  EXPECT_EQ(batcher.queued_vertices(), 3u);
  auto second = batcher.TakeBatch();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request_id, 2u);
}

TEST(ScoreBatcher, FifoOrderPreserved) {
  BatchOptions opts;
  opts.max_batch_vertices = 100;
  opts.max_queue_vertices = 100;
  ScoreBatcher batcher(opts);
  for (uint32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(batcher.Add(Req(id, 1), id), ScoreBatcher::Admit::kAccepted);
  }
  const auto batch = batcher.TakeBatch();
  ASSERT_EQ(batch.size(), 5u);
  for (uint32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(batch[id].request_id, id);
  }
}

TEST(ScoreBatcher, OverloadedBeyondQueueBoundThenRecovers) {
  BatchOptions opts;
  opts.max_batch_vertices = 2;
  opts.max_queue_vertices = 3;
  ScoreBatcher batcher(opts);
  EXPECT_EQ(batcher.Add(Req(1, 2), 0), ScoreBatcher::Admit::kAccepted);
  EXPECT_EQ(batcher.Add(Req(2, 1), 0), ScoreBatcher::Admit::kAccepted);
  // 3 queued + 1 > max_queue_vertices: rejected, nothing enqueued.
  EXPECT_EQ(batcher.Add(Req(3, 1), 0), ScoreBatcher::Admit::kOverloaded);
  EXPECT_EQ(batcher.queued_vertices(), 3u);
  // Draining the queue restores admission.
  while (!batcher.TakeBatch().empty()) {
  }
  EXPECT_EQ(batcher.Add(Req(4, 3), 0), ScoreBatcher::Admit::kAccepted);
}

TEST(ScoreBatcher, OversizedRequestAdmittedOnlyIntoEmptyQueue) {
  BatchOptions opts;
  opts.max_batch_vertices = 2;
  opts.max_queue_vertices = 4;
  ScoreBatcher batcher(opts);
  // Larger than the whole queue bound, but the queue is empty: admitted
  // (it forms its own batch — otherwise it could never be served).
  EXPECT_EQ(batcher.Add(Req(1, 10), 0), ScoreBatcher::Admit::kAccepted);
  EXPECT_EQ(batcher.Add(Req(2, 1), 0), ScoreBatcher::Admit::kOverloaded);
  const auto batch = batcher.TakeBatch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].vertices.size(), 10u);
}

TEST(ScoreBatcher, EmptyQueueHasNoDeadline) {
  ScoreBatcher batcher(BatchOptions{});
  EXPECT_FALSE(batcher.Due(123));
  EXPECT_FALSE(batcher.NextDeadlineNs().has_value());
  EXPECT_TRUE(batcher.TakeBatch().empty());
}

// --- end to end over sockets -----------------------------------------------

/// Mines the paper graph, saves it (with snapshot) into a fresh store
/// file, and returns the path.
std::string MakeServedStore(const std::string& file, const std::string& name) {
  const std::string path = TempPath(file);
  std::remove(path.c_str());
  graph::AttributedGraph g = PaperExampleGraph();
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  auto session = engine::MiningSession::Create(g, opts);
  CSPM_CHECK(session.ok());
  CSPM_CHECK(session.value().Mine().ok());
  engine::SaveModelOptions save;
  save.format = engine::ModelFileFormat::kBinaryStore;
  save.model_name = name;
  save.include_graph = true;
  CSPM_CHECK(session.value().SaveModel(path, save).ok());
  return path;
}

std::unique_ptr<Server> StartServer(const std::string& store_path,
                                    ServerOptions options = {}) {
  auto host = ModelHost::Open(store_path);
  CSPM_CHECK(host.ok());
  auto server = Server::Start(std::move(host).value(), std::move(options));
  CSPM_CHECK(server.ok());
  return std::move(server).value();
}

Client Dial(const Server& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  CSPM_CHECK(client.ok());
  return std::move(client).value();
}

TEST(ServerEndToEnd, PingListAndMetrics) {
  const std::string path = MakeServedStore("net_e2e_basic.cspm", "paper");
  auto server = StartServer(path);
  Client client = Dial(*server);
  ASSERT_TRUE(client.Ping().ok());
  auto models = client.List();
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models.value().size(), 1u);
  EXPECT_EQ(models.value()[0], "paper");
  auto metrics = client.MetricsJson();
  ASSERT_TRUE(metrics.ok());
  // SnapshotJson verbatim, with the net.* surface registered.
  EXPECT_NE(metrics.value().find("\"net.connections_accepted\""),
            std::string::npos);
  EXPECT_NE(metrics.value().find("\"net.request.score\""), std::string::npos);
}

TEST(ServerEndToEnd, WireScoresBitIdenticalToInProcessScoreBatch) {
  const std::string path = MakeServedStore("net_e2e_bits.cspm", "paper");
  // In-process reference: deterministic mining reproduces the stored
  // model, so a local session over the same graph is the served state.
  graph::AttributedGraph g = PaperExampleGraph();
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  auto session_or = engine::MiningSession::Create(g, opts);
  ASSERT_TRUE(session_or.ok());
  engine::MiningSession& session = session_or.value();
  ASSERT_TRUE(session.Mine().ok());

  auto server = StartServer(path);
  Client client = Dial(*server);
  ScoreRequest request;
  request.model = "paper";
  request.k = 0;  // every attribute value
  for (uint32_t v = 0; v < 5; ++v) {
    request.vertices.push_back(graph::VertexId(v));
  }
  auto response = client.Score(request);
  ASSERT_TRUE(response.ok());
  auto expected = session.ScoreBatch(request.vertices);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(response.value().results.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    const auto local = TopKScores(expected.value()[i], 0);
    const auto& wire = response.value().results[i];
    ASSERT_EQ(wire.size(), local.size());
    for (size_t j = 0; j < local.size(); ++j) {
      EXPECT_EQ(wire[j].attr, local[j].attr);
      // memcmp, not ==: the contract is bit-identity.
      EXPECT_EQ(std::memcmp(&wire[j].score, &local[j].score, sizeof(double)),
                0)
          << "vertex " << i << " rank " << j;
    }
  }
}

TEST(ServerEndToEnd, ConcurrentConnectionsAllScoreCorrectly) {
  const std::string path = MakeServedStore("net_e2e_conc.cspm", "paper");
  ServerOptions options;
  options.batching.max_batch_vertices = 8;  // force cross-request batches
  options.batching.max_wait_us = 2000;
  auto server = StartServer(path, options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &failures, t] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerThread; ++r) {
        ScoreRequest request;
        request.model = "paper";
        request.k = 2;
        request.vertices = {graph::VertexId(static_cast<uint32_t>((t + r) % 5))};
        auto response = client.value().Score(request);
        if (!response.ok() || response.value().results.size() != 1 ||
            response.value().results[0].size() != 2) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerEndToEnd, UpdateOverWireAppendsWalAndServesNewState) {
  const std::string path = MakeServedStore("net_e2e_update.cspm", "paper");
  {
    auto server = StartServer(path);
    Client client = Dial(*server);
    // Build a valid delta against the current (= snapshot) graph.
    graph::AttributedGraph g = PaperExampleGraph();
    auto delta = graph::MakeRandomEdgeRewires(g, 1, /*seed=*/3);
    ASSERT_TRUE(delta.ok());
    UpdateRequest request;
    request.model = "paper";
    request.mode = 0;  // exact
    request.delta = delta.value();
    auto response = client.Update(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // The server hot-swapped: scores now reflect the mutated graph. The
    // local reference replays the same path.
    engine::MiningOptions opts;
    opts.record_iteration_stats = false;
    opts.enable_updates = true;
    auto session = engine::MiningSession::Create(g, opts);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value().Mine().ok());
    ASSERT_TRUE(session.value()
                    .ApplyUpdates(delta.value(), engine::UpdateMode::kExact)
                    .ok());
    ScoreRequest score;
    score.model = "paper";
    score.k = 0;
    score.vertices = {graph::VertexId(0), graph::VertexId(4)};
    auto wire = client.Score(score);
    ASSERT_TRUE(wire.ok());
    auto local = session.value().ScoreBatch(score.vertices);
    ASSERT_TRUE(local.ok());
    for (size_t i = 0; i < score.vertices.size(); ++i) {
      const auto ranked = TopKScores(local.value()[i], 0);
      ASSERT_EQ(wire.value().results[i].size(), ranked.size());
      for (size_t j = 0; j < ranked.size(); ++j) {
        EXPECT_EQ(std::memcmp(&wire.value().results[i][j].score,
                              &ranked[j].score, sizeof(double)),
                  0);
      }
    }
  }  // server shuts down, releasing the store
  // The delta was WAL-logged durably: a fresh host replays it on open.
  auto store = store::ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  const auto infos = store.value().List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].wal_records, 1u);
}

TEST(ServerEndToEnd, OverloadedUnderQueueSaturation) {
  const std::string path = MakeServedStore("net_e2e_ovl.cspm", "paper");
  ServerOptions options;
  options.batching.max_batch_vertices = 64;
  options.batching.max_wait_us = 200000;  // hold the queue for 200ms
  options.batching.max_queue_vertices = 2;
  auto server = StartServer(path, options);
  Client client = Dial(*server);
  ScoreRequest request;
  request.model = "paper";
  request.k = 1;
  request.vertices = {graph::VertexId(0), graph::VertexId(1)};
  // Pipeline: the first request fills the queue (2 vertices) and waits
  // out max_wait; the second must bounce immediately with OVERLOADED.
  uint32_t first_id = 0;
  uint32_t second_id = 0;
  ASSERT_TRUE(client
                  .Send(Verb::kScore, EncodeScoreRequest(request), &first_id)
                  .ok());
  ASSERT_TRUE(client
                  .Send(Verb::kScore, EncodeScoreRequest(request), &second_id)
                  .ok());
  auto reply = client.Receive();
  ASSERT_TRUE(reply.ok());
  // The OVERLOADED bounce overtakes the queued request's reply.
  EXPECT_EQ(reply.value().request_id, second_id);
  EXPECT_EQ(reply.value().status, WireStatus::kOverloaded);
  auto queued_reply = client.Receive();
  ASSERT_TRUE(queued_reply.ok());
  EXPECT_EQ(queued_reply.value().request_id, first_id);
  EXPECT_EQ(queued_reply.value().status, WireStatus::kOk);
}

TEST(ServerEndToEnd, BadRequestsGetCleanErrors) {
  const std::string path = MakeServedStore("net_e2e_err.cspm", "paper");
  auto server = StartServer(path);
  Client client = Dial(*server);
  ScoreRequest unknown;
  unknown.model = "nope";
  unknown.vertices = {graph::VertexId(0)};
  auto r1 = client.Score(unknown);
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);
  ScoreRequest out_of_range;
  out_of_range.model = "paper";
  out_of_range.vertices = {graph::VertexId(99)};
  auto r2 = client.Score(out_of_range);
  EXPECT_EQ(r2.status().code(), StatusCode::kOutOfRange);
  // Empty vertex list: trivially OK, zero results, served inline.
  ScoreRequest empty;
  empty.model = "paper";
  auto r3 = client.Score(empty);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().results.empty());
  // The connection survived all of that.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerEndToEnd, FramingErrorClosesTheConnection) {
  const std::string path = MakeServedStore("net_e2e_close.cspm", "paper");
  auto server = StartServer(path);
  Client client = Dial(*server);
  ASSERT_TRUE(client.Ping().ok());
  // Write garbage that cannot be a CSN1 header; the server must drop us.
  const std::string garbage(64, 'Z');
  ASSERT_EQ(::write(client.fd(), garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  auto reply = client.Receive();
  EXPECT_EQ(reply.status().code(), StatusCode::kIOError);  // closed
  // The server itself is fine: new connections work.
  Client again = Dial(*server);
  EXPECT_TRUE(again.Ping().ok());
}

TEST(ModelHost, ReplaysPendingWalOnOpen) {
  const std::string path = MakeServedStore("net_host_replay.cspm", "paper");
  // Apply + log an update the way a live server (or shell) would, then
  // "crash": the record is stale, the WAL carries the delta.
  graph::AttributedGraph g = PaperExampleGraph();
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  auto session_or = engine::MiningSession::Create(g, opts);
  ASSERT_TRUE(session_or.ok());
  engine::MiningSession& session = session_or.value();
  ASSERT_TRUE(session.Mine().ok());
  auto delta = graph::MakeRandomEdgeRewires(g, 2, /*seed=*/11);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(
      session.ApplyUpdates(delta.value(), engine::UpdateMode::kExact).ok());
  {
    auto store = store::ModelStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()
                    .AppendDelta("paper", delta.value(),
                                 store::WalDeltaMode::kExact)
                    .ok());
  }
  // A fresh host must serve the *replayed* state, not the stale record.
  auto host = ModelHost::Open(path);
  ASSERT_TRUE(host.ok());
  std::vector<graph::VertexId> vertices = {graph::VertexId(0),
                                           graph::VertexId(3)};
  auto served = host.value()->Score("paper", vertices);
  ASSERT_TRUE(served.ok());
  auto expected = session.ScoreBatch(vertices);
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < vertices.size(); ++i) {
    ASSERT_EQ(served.value()[i].normalized.size(),
              expected.value()[i].normalized.size());
    for (size_t j = 0; j < served.value()[i].normalized.size(); ++j) {
      EXPECT_EQ(std::memcmp(&served.value()[i].normalized[j],
                            &expected.value()[i].normalized[j],
                            sizeof(double)),
                0);
    }
  }
}

}  // namespace
}  // namespace cspm::net
