// The live-update suite: transactional graph deltas, the incremental
// inverted-database patch, warm re-mining through MiningSession::
// ApplyUpdates (always compared bit-for-bit against a cold re-mine of the
// mutated graph), serving hot-swap, and WAL crash recovery. Runs under
// the ASan job in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "cspm/code_model.h"
#include "cspm/gain.h"
#include "cspm/inverted_database.h"
#include "cspm/miner.h"
#include "cspm/serialization.h"
#include "cspm/verify.h"
#include "datasets/synthetic.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "store/model_store.h"
#include "testing_util.h"
#include "util/rng.h"

namespace cspm {
namespace {

using core::InvertedDatabase;
using graph::AttributedGraph;
using graph::DeltaApplication;
using graph::GraphDelta;
using graph::VertexId;
using testing::PaperExampleGraph;

// --- helpers --------------------------------------------------------------

/// Structural fingerprint of a graph, for patched-vs-rebuilt comparisons.
std::string GraphFingerprint(const AttributedGraph& g) {
  std::string out;
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    // Sequential appends, not `"v" + std::to_string(...) + ":"`: the
    // temporary-chain form trips g++ 12's libstdc++ operator+ -Wrestrict
    // false positive under -Werror (GCC PR105651).
    out += "v";
    out += std::to_string(v.value());
    out += ":";
    for (graph::AttrId a : g.Attributes(v)) out += g.dict().Name(a) + ",";
    out += "|";
    for (VertexId w : g.Neighbors(v)) out += std::to_string(w.value()) + ",";
    out += "\n";
  }
  for (graph::AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    out += g.dict().Name(a) + ":";
    for (VertexId v : g.VerticesWithAttribute(a)) {
      out += std::to_string(v.value()) + ",";
    }
    out += "\n";
  }
  return out;
}

/// Rebuilds a graph from another graph's data through GraphBuilder — the
/// ground truth the CSR splice must match.
AttributedGraph RebuildFromScratch(const AttributedGraph& g) {
  graph::GraphBuilder b;
  for (graph::AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    b.InternAttribute(g.dict().Name(a));
  }
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    auto attrs = g.Attributes(v);
    b.AddVertexWithIds({attrs.begin(), attrs.end()});
  }
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (v < w) {
        EXPECT_TRUE(b.AddEdge(v, w).ok());
      }
    }
  }
  return std::move(std::move(b).Build()).value();
}

/// Full observable state of an inverted database: every line keyed by
/// (coreset values, leafset values) with its positions, plus the dynamic
/// totals the gain formulas consume.
std::string IdbFingerprint(const InvertedDatabase& idb) {
  std::string out;
  idb.ForEachLine([&](core::CoreId e, core::LeafsetId l,
                      core::PosListView positions) {
    out += "e";  // sequential appends: see GraphFingerprint's -Wrestrict note
    out += std::to_string(e.value());
    out += "[";
    for (graph::AttrId a : idb.CoresetValues(e)) {
      out += std::to_string(a.value()) + ",";
    }
    out += "]L[";
    for (graph::AttrId a : idb.leafsets().Values(l)) {
      out += std::to_string(a.value()) + ",";
    }
    out += "]:";
    for (VertexId v : positions) out += std::to_string(v.value()) + ",";
    out += " f_e=" + std::to_string(idb.CoreLineTotal(e));
    out += " freq=" + std::to_string(idb.CoresetFrequency(e));
    out += "\n";
  });
  out += "lines=" + std::to_string(idb.num_lines());
  out += " active=" + std::to_string(idb.num_active_leafsets());
  out += " total_freq=" + std::to_string(idb.total_coreset_frequency());
  out += " data_bits=" + std::to_string(idb.DataCostBits());
  return out;
}

/// Asserts that patching the old graph's initial database yields exactly
/// the database a cold FromGraph build of the new graph produces.
void ExpectPatchMatchesColdBuild(const AttributedGraph& g,
                                 const GraphDelta& delta) {
  auto applied_or = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied_or.ok()) << applied_or.status().ToString();
  const DeltaApplication& applied = applied_or.value();

  InvertedDatabase patched = std::move(InvertedDatabase::FromGraph(g)).value();
  core::DeltaPatchStats stats;
  ASSERT_TRUE(patched
                  .ApplyDelta(g, applied.graph, applied.dirty_vertices, &stats)
                  .ok());
  InvertedDatabase cold =
      std::move(InvertedDatabase::FromGraph(applied.graph)).value();
  EXPECT_EQ(IdbFingerprint(patched), IdbFingerprint(cold));
}

engine::MiningOptions UpdatableOptions() {
  engine::MiningOptions opts;
  opts.enable_updates = true;
  return opts;
}

/// Mines `g` under `options`, applies `deltas` one by one through
/// ApplyUpdates, and asserts the resulting model is bit-identical
/// (serialized text, DL, iteration count) to a cold re-mine of the final
/// mutated graph.
void ExpectWarmEqualsColdRemineWith(const AttributedGraph& g,
                                    const std::vector<GraphDelta>& deltas,
                                    engine::MiningOptions options,
                                    bool expect_warm) {
  auto session_or = engine::MiningSession::Create(g, options);
  ASSERT_TRUE(session_or.ok());
  engine::MiningSession session = std::move(session_or).value();
  ASSERT_TRUE(session.Mine().ok());
  engine::UpdateStats stats;
  for (const GraphDelta& delta : deltas) {
    Status st = session.ApplyUpdates(delta, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(stats.warm_path, expect_warm);
  }

  auto cold_or = engine::MiningSession::Create(session.graph(), options);
  ASSERT_TRUE(cold_or.ok());
  engine::MiningSession cold = std::move(cold_or).value();
  ASSERT_TRUE(cold.Mine().ok());

  EXPECT_EQ(session.SerializeModel(), cold.SerializeModel());
  EXPECT_EQ(session.stats().final_dl_bits, cold.stats().final_dl_bits);
  EXPECT_EQ(session.stats().initial_dl_bits, cold.stats().initial_dl_bits);
  EXPECT_EQ(session.stats().iterations, cold.stats().iterations);
}

void ExpectWarmEqualsColdRemine(const AttributedGraph& g,
                                const std::vector<GraphDelta>& deltas) {
  ExpectWarmEqualsColdRemineWith(g, deltas, UpdatableOptions(),
                                 /*expect_warm=*/true);
}

AttributedGraph SmallCommunityGraph(uint64_t seed) {
  Rng rng(seed);
  return std::move(graph::ErdosRenyi(160, 0.06, 14, 3, &rng)).value();
}

GraphDelta RandomEdgeDelta(const AttributedGraph& g, uint32_t ops,
                           uint64_t seed) {
  auto delta = graph::MakeRandomEdgeRewires(g, ops, seed);
  EXPECT_TRUE(delta.ok());
  return std::move(delta).value();
}

// --- graph-level delta tests ----------------------------------------------

TEST(GraphDeltaTest, EdgeOpsMatchRebuiltGraph) {
  AttributedGraph g = SmallCommunityGraph(3);
  GraphDelta delta = RandomEdgeDelta(g, 12, 99);
  auto applied = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(applied->attributes_changed);
  EXPECT_EQ(GraphFingerprint(applied->graph),
            GraphFingerprint(RebuildFromScratch(applied->graph)));
  EXPECT_EQ(applied->graph.num_edges(), g.num_edges());  // rewires balance
}

TEST(GraphDeltaTest, AttributeAndVertexOpsMatchRebuiltGraph) {
  AttributedGraph g = PaperExampleGraph();
  GraphDelta delta;
  delta.SetAttribute(VertexId(0), "d");            // new attribute value
  delta.ClearAttribute(VertexId(1), "c");
  const size_t idx = delta.AddVertex({"a", "d"});
  delta.AddEdge(VertexId(g.num_vertices().value() + static_cast<uint32_t>(idx)),
                VertexId(2));
  delta.RemoveEdge(VertexId(0), VertexId(3));
  auto applied = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied->attributes_changed);
  EXPECT_EQ(applied->first_new_vertex, g.num_vertices());
  EXPECT_EQ(applied->graph.num_vertices().value(), g.num_vertices().value() + 1);
  EXPECT_TRUE(applied->graph.HasAttribute(
      VertexId(0), applied->graph.dict().Find("d")));
  EXPECT_EQ(GraphFingerprint(applied->graph),
            GraphFingerprint(RebuildFromScratch(applied->graph)));
}

TEST(GraphDeltaTest, RejectsInvalidOpsWithoutApplying) {
  AttributedGraph g = PaperExampleGraph();
  {
    GraphDelta d;
    d.RemoveEdge(VertexId(0), VertexId(4));  // not an edge
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
  {
    GraphDelta d;
    d.AddEdge(VertexId(0), VertexId(1));  // already present
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
  {
    GraphDelta d;
    d.AddEdge(VertexId(2), VertexId(2));  // self-loop
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
  {
    GraphDelta d;
    d.SetAttribute(VertexId(1), "a");  // vertex 1 already carries a
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
  {
    GraphDelta d;
    d.ClearAttribute(VertexId(0), "b");  // vertex 0 does not carry b
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
  {
    GraphDelta d;
    d.AddEdge(VertexId(0), VertexId(99));  // unknown vertex
    EXPECT_FALSE(graph::ApplyDelta(g, d).ok());
  }
}

TEST(GraphDeltaTest, AttributeOpMarksNeighboursDirty) {
  AttributedGraph g = PaperExampleGraph();
  GraphDelta delta;
  delta.ClearAttribute(VertexId(4), "b");  // v5; neighbours v3 (2) and v4 (3)
  auto applied = graph::ApplyDelta(g, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->dirty_vertices, (std::vector<VertexId>{VertexId(2), VertexId(3), VertexId(4)}));
}

// --- inverted-database patch tests ----------------------------------------

TEST(InvertedDeltaTest, PatchMatchesColdBuildAcrossGraphsAndDeltas) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    AttributedGraph g = SmallCommunityGraph(seed);
    ExpectPatchMatchesColdBuild(g, RandomEdgeDelta(g, 10, seed * 7 + 1));
  }
  AttributedGraph dblp = std::move(datasets::MakeDblpLike(1, 250)).value();
  ExpectPatchMatchesColdBuild(dblp, RandomEdgeDelta(dblp, 8, 5));

  // Attribute + vertex ops on the paper example.
  AttributedGraph g = PaperExampleGraph();
  GraphDelta delta;
  delta.SetAttribute(VertexId(2), "b");
  delta.ClearAttribute(VertexId(1), "a");
  delta.AddVertex({"c", "d"});
  delta.AddEdge(VertexId(5), VertexId(0));
  ExpectPatchMatchesColdBuild(g, delta);
}

TEST(InvertedDeltaTest, RemoveLastEdgeOfStar) {
  // v0:{a} - v1:{b} plus a far pair keeping the graph non-trivial. Removing
  // v0-v1 erases the last line of leafset {b} under core a (and vice
  // versa); the leafsets must deactivate exactly as in a cold build.
  graph::GraphBuilder b;
  b.AddVertex({"a"});
  b.AddVertex({"b"});
  b.AddVertex({"c"});
  b.AddVertex({"c"});
  EXPECT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  EXPECT_TRUE(b.AddEdge(VertexId(2), VertexId(3)).ok());
  AttributedGraph g = std::move(std::move(b).Build()).value();
  GraphDelta delta;
  delta.RemoveEdge(VertexId(0), VertexId(1));
  ExpectPatchMatchesColdBuild(g, delta);
  ExpectWarmEqualsColdRemine(g, {delta});
}

TEST(InvertedDeltaTest, DeltaOnVertexAbsentFromEveryLeafset) {
  // Vertex 2 carries no attributes: it appears in no line's positions
  // under any coreset and in no leafset. Rewiring it must still patch its
  // neighbours' lines correctly.
  graph::GraphBuilder b;
  b.AddVertex({"a"});
  b.AddVertex({"b"});
  b.AddVertexWithIds({});  // attribute-less vertex 2
  b.AddVertex({"a", "b"});
  EXPECT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  EXPECT_TRUE(b.AddEdge(VertexId(1), VertexId(2)).ok());
  EXPECT_TRUE(b.AddEdge(VertexId(2), VertexId(3)).ok());
  AttributedGraph g = std::move(std::move(b).Build()).value();
  GraphDelta delta;
  delta.RemoveEdge(VertexId(1), VertexId(2));
  delta.AddEdge(VertexId(0), VertexId(2));
  ExpectPatchMatchesColdBuild(g, delta);
  ExpectWarmEqualsColdRemine(g, {delta});
}

// --- end-to-end ApplyUpdates bit-identity ----------------------------------

TEST(ApplyUpdatesTest, EdgeDeltaBitIdenticalToColdRemine) {
  for (uint64_t seed : {1u, 4u}) {
    AttributedGraph g = SmallCommunityGraph(seed);
    ExpectWarmEqualsColdRemine(g, {RandomEdgeDelta(g, 8, seed + 10)});
  }
  AttributedGraph dblp = std::move(datasets::MakeDblpLike(2, 300)).value();
  ExpectWarmEqualsColdRemine(dblp, {RandomEdgeDelta(dblp, 6, 11)});
}

TEST(ApplyUpdatesTest, AttributeDeltaBitIdenticalToColdRemine) {
  // Any attribute-frequency change invalidates the whole code model; the
  // warm path regenerates every candidate but still reuses the patched
  // database — and must stay bit-identical.
  AttributedGraph g = SmallCommunityGraph(2);
  GraphDelta delta;
  delta.SetAttribute(VertexId(3), "brand-new-value");
  delta.ClearAttribute(VertexId(0),
                       g.dict().Name(g.Attributes(VertexId(0))[0]));
  ExpectWarmEqualsColdRemine(g, {delta});
}

TEST(ApplyUpdatesTest, AddVertexWithEdgesBitIdenticalToColdRemine) {
  AttributedGraph g = SmallCommunityGraph(5);
  GraphDelta delta;
  delta.AddVertex(
      {g.dict().Name(graph::AttrId(0)), g.dict().Name(graph::AttrId(1))});
  delta.AddEdge(g.num_vertices(), VertexId(0));
  delta.AddEdge(g.num_vertices(), VertexId(17));
  ExpectWarmEqualsColdRemine(g, {delta});
}

TEST(ApplyUpdatesTest, SequentialUpdatesStayBitIdentical) {
  AttributedGraph g = SmallCommunityGraph(6);
  std::vector<GraphDelta> deltas;
  // The graph evolves between deltas, so later ops are sampled blind; the
  // helper applies them in order against the evolving session.
  deltas.push_back(RandomEdgeDelta(g, 4, 21));
  {
    GraphDelta d2;
    d2.SetAttribute(VertexId(7), "late-value");
    deltas.push_back(d2);
  }
  {
    GraphDelta d3;
    d3.ClearAttribute(VertexId(7), "late-value");
    deltas.push_back(d3);
  }
  ExpectWarmEqualsColdRemine(g, deltas);
}

TEST(ApplyUpdatesTest, AttributeClearedThenReAddedRestoresModel) {
  AttributedGraph g = SmallCommunityGraph(8);
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  const std::string original = session.SerializeModel();
  const std::string name = g.dict().Name(g.Attributes(VertexId(12))[0]);
  GraphDelta clear;
  clear.ClearAttribute(VertexId(12), name);
  ASSERT_TRUE(session.ApplyUpdates(clear, nullptr).ok());
  GraphDelta re_add;
  re_add.SetAttribute(VertexId(12), name);
  ASSERT_TRUE(session.ApplyUpdates(re_add, nullptr).ok());
  EXPECT_EQ(session.SerializeModel(), original);
}

TEST(ApplyUpdatesTest, ColdFallbackWithoutWarmState) {
  AttributedGraph g = SmallCommunityGraph(9);
  ExpectWarmEqualsColdRemineWith(g, {RandomEdgeDelta(g, 4, 33)},
                                 engine::MiningOptions{},
                                 /*expect_warm=*/false);
}

TEST(ApplyUpdatesTest, RequiresAMinedModel) {
  AttributedGraph g = PaperExampleGraph();
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  GraphDelta delta;
  delta.RemoveEdge(VertexId(0), VertexId(1));
  EXPECT_FALSE(session.ApplyUpdates(delta, nullptr).ok());
}

TEST(ApplyUpdatesTest, InvalidDeltaLeavesSessionUntouched) {
  AttributedGraph g = SmallCommunityGraph(10);
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  const std::string before = session.SerializeModel();
  GraphDelta bad;
  bad.AddEdge(VertexId(0), VertexId(0));  // self-loop
  EXPECT_FALSE(session.ApplyUpdates(bad, nullptr).ok());
  EXPECT_EQ(session.SerializeModel(), before);
  EXPECT_EQ(&session.graph(), &g);  // graph not swapped
  // The session still updates fine afterwards.
  engine::UpdateStats stats;
  ASSERT_TRUE(session.ApplyUpdates(RandomEdgeDelta(g, 2, 51), &stats).ok());
  EXPECT_TRUE(stats.warm_path);
}

// --- fast (continue-from-final-model) updates -------------------------------

/// Mines warm, applies `deltas` in fast mode, and asserts the DL-ε
/// contract: the session's final description length stays within 1% of a
/// cold mine of the final mutated graph. (It may be *better* — the repair
/// re-judges neighbourhoods the partial heuristic never revisits — hence
/// the generous lower bound.)
void ExpectFastDlWithinEpsilon(const AttributedGraph& g,
                               const std::vector<GraphDelta>& deltas) {
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  engine::UpdateStats stats;
  for (const GraphDelta& delta : deltas) {
    Status st = session.ApplyUpdates(delta, engine::UpdateMode::kFast, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(stats.fast_path);
    EXPECT_TRUE(stats.warm_path);
    EXPECT_GT(stats.dl_before_bits, 0.0);
    EXPECT_GT(stats.dl_after_bits, 0.0);
  }

  auto cold_or = engine::MiningSession::Create(session.graph(),
                                               UpdatableOptions());
  ASSERT_TRUE(cold_or.ok());
  engine::MiningSession cold = std::move(cold_or).value();
  ASSERT_TRUE(cold.Mine().ok());
  const double ratio =
      session.stats().final_dl_bits / cold.stats().final_dl_bits;
  EXPECT_LE(ratio, 1.01) << "fast model DL drifted above the ε contract";
  EXPECT_GE(ratio, 0.90) << "fast model DL implausibly low — check gains";
}

TEST(FastUpdateTest, EdgeDeltaDlWithinEpsilon) {
  for (uint64_t seed : {1u, 4u}) {
    AttributedGraph g = SmallCommunityGraph(seed);
    ExpectFastDlWithinEpsilon(g, {RandomEdgeDelta(g, 8, seed + 10)});
  }
  AttributedGraph dblp = std::move(datasets::MakeDblpLike(2, 300)).value();
  ExpectFastDlWithinEpsilon(dblp, {RandomEdgeDelta(dblp, 6, 11)});
}

TEST(FastUpdateTest, AttributeDeltaDlWithinEpsilon) {
  // Attribute changes force the all-dirty fallback inside the fast seed
  // (every gain input may have moved with the code model); the DL-ε
  // contract must hold through it.
  AttributedGraph g = SmallCommunityGraph(2);
  GraphDelta delta;
  delta.SetAttribute(VertexId(3), "brand-new-value");
  delta.ClearAttribute(VertexId(0),
                       g.dict().Name(g.Attributes(VertexId(0))[0]));
  ExpectFastDlWithinEpsilon(g, {delta});
}

TEST(FastUpdateTest, AddVertexWithEdgesDlWithinEpsilon) {
  AttributedGraph g = SmallCommunityGraph(5);
  GraphDelta delta;
  delta.AddVertex(
      {g.dict().Name(graph::AttrId(0)), g.dict().Name(graph::AttrId(1))});
  delta.AddEdge(g.num_vertices(), VertexId(0));
  delta.AddEdge(g.num_vertices(), VertexId(17));
  ExpectFastDlWithinEpsilon(g, {delta});
}

TEST(FastUpdateTest, SequentialFastUpdatesDlWithinEpsilon) {
  // Each fast update repairs final_db in place; the next one continues
  // from the repaired state, so the ε bound must survive chaining.
  AttributedGraph g = SmallCommunityGraph(6);
  std::vector<GraphDelta> deltas;
  deltas.push_back(RandomEdgeDelta(g, 4, 21));
  {
    GraphDelta d2;
    d2.SetAttribute(VertexId(7), "late-value");
    deltas.push_back(d2);
  }
  {
    GraphDelta d3;
    d3.ClearAttribute(VertexId(7), "late-value");
    deltas.push_back(d3);
  }
  ExpectFastDlWithinEpsilon(g, deltas);
}

TEST(FastUpdateTest, RemoveLastEdgeOfStarDlWithinEpsilon) {
  // The tiny graph whose delta erases a leafset's final line; the merged
  // patch must deactivate it and the fast re-mine must stay valid.
  graph::GraphBuilder b;
  b.AddVertex({"a"});
  b.AddVertex({"b"});
  b.AddVertex({"c"});
  b.AddVertex({"c"});
  EXPECT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  EXPECT_TRUE(b.AddEdge(VertexId(2), VertexId(3)).ok());
  AttributedGraph g = std::move(std::move(b).Build()).value();
  GraphDelta delta;
  delta.RemoveEdge(VertexId(0), VertexId(1));
  ExpectFastDlWithinEpsilon(g, {delta});
}

TEST(FastUpdateTest, ExactUpdateAfterFastRebuildsBitIdentity) {
  // A fast update leaves the exact path's pristine database stale; the
  // next kExact update must rebuild it and land bit-identical to a cold
  // mine of the final graph — the two-mode contract's hard edge.
  AttributedGraph g = SmallCommunityGraph(11);
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  engine::UpdateStats stats;
  ASSERT_TRUE(session
                  .ApplyUpdates(RandomEdgeDelta(g, 4, 61),
                                engine::UpdateMode::kFast, &stats)
                  .ok());
  ASSERT_TRUE(stats.fast_path);
  ASSERT_TRUE(session
                  .ApplyUpdates(RandomEdgeDelta(session.graph(), 4, 62),
                                engine::UpdateMode::kExact, &stats)
                  .ok());
  EXPECT_FALSE(stats.fast_path);
  EXPECT_TRUE(stats.warm_path);

  auto cold = std::move(engine::MiningSession::Create(session.graph(),
                                                      UpdatableOptions()))
                  .value();
  ASSERT_TRUE(cold.Mine().ok());
  EXPECT_EQ(session.SerializeModel(), cold.SerializeModel());
  EXPECT_EQ(session.stats().final_dl_bits, cold.stats().final_dl_bits);
  EXPECT_EQ(session.stats().iterations, cold.stats().iterations);
}

TEST(FastUpdateTest, FastModeFallsBackToExactWithoutWarmState) {
  // Without enable_updates there is no warm state: kFast degrades to the
  // cold-rebuild behaviour and still reports an honest fast_path=false.
  AttributedGraph g = SmallCommunityGraph(9);
  auto session =
      std::move(engine::MiningSession::Create(g, engine::MiningOptions{}))
          .value();
  ASSERT_TRUE(session.Mine().ok());
  engine::UpdateStats stats;
  ASSERT_TRUE(session
                  .ApplyUpdates(RandomEdgeDelta(g, 4, 33),
                                engine::UpdateMode::kFast, &stats)
                  .ok());
  EXPECT_FALSE(stats.fast_path);
  EXPECT_FALSE(stats.warm_path);

  auto cold = std::move(engine::MiningSession::Create(session.graph(),
                                                      engine::MiningOptions{}))
                  .value();
  ASSERT_TRUE(cold.Mine().ok());
  EXPECT_EQ(session.SerializeModel(), cold.SerializeModel());
}

TEST(FastUpdateTest, ApplyDeltaMergedKeepsDbValidAndLossless) {
  // The merged-database patch must leave a structurally sound, lossless
  // cover of the new graph (the repair pass assumes both).
  for (uint64_t seed : {1u, 2u, 3u}) {
    AttributedGraph g = SmallCommunityGraph(seed);
    core::CspmMiner miner{core::CspmOptions{}};
    core::WarmState warm;
    ASSERT_TRUE(miner.MineWithWarmState(g, &warm).ok());
    ASSERT_GT(warm.final_db.num_coresets(), 0u);

    GraphDelta delta = RandomEdgeDelta(g, 6, seed * 3 + 2);
    auto applied = std::move(graph::ApplyDelta(g, delta)).value();
    core::DeltaPatchStats stats;
    Status st = warm.final_db.ApplyDeltaMerged(g, applied.graph,
                                               applied.dirty_vertices, &stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(stats.touched_leafsets.size(),
              stats.touched_position_moves.size());
    Status invariants = core::CheckInvariants(warm.final_db);
    EXPECT_TRUE(invariants.ok()) << invariants.ToString();
    Status lossless = core::VerifyLossless(applied.graph, warm.final_db);
    EXPECT_TRUE(lossless.ok()) << lossless.ToString();
  }
}

TEST(FastUpdateTest, SplitGainMatchesDataCostDelta) {
  // ComputeSplitGain's data term must be the exact negated change of
  // DataCostBits when the line is actually split.
  AttributedGraph g = SmallCommunityGraph(7);
  InvertedDatabase idb = std::move(InvertedDatabase::FromGraph(g)).value();
  const core::CodeModel cm(g, idb);

  // Merge the first feasible pair so there is a multi-value line to split.
  core::LeafsetId merged{};
  bool found = false;
  const std::vector<core::LeafsetId> actives = idb.active_leafsets();
  for (size_t i = 0; i < actives.size() && !found; ++i) {
    for (size_t j = i + 1; j < actives.size() && !found; ++j) {
      if (core::ComputeMergeGain(idb, cm, actives[i], actives[j]).feasible) {
        merged = idb.MergeLeafsets(actives[i], actives[j]).merged_id;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  while (!idb.CoresOf(merged).empty()) {
    const core::CoreId e = idb.CoresOf(merged)[0];
    core::GainResult split = core::ComputeSplitGain(idb, cm, e, merged);
    ASSERT_TRUE(split.feasible);
    const double before = idb.DataCostBits();
    ASSERT_TRUE(idb.SplitLine(e, merged).ok());
    EXPECT_NEAR(split.data_gain_bits, before - idb.DataCostBits(), 1e-6);
  }
  Status invariants = core::CheckInvariants(idb);
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();

  // Infeasible shapes: a singleton line and an absent line.
  const std::vector<core::LeafsetId> singletons = idb.active_leafsets();
  ASSERT_FALSE(singletons.empty());
  const core::LeafsetId s = singletons[0];
  ASSERT_FALSE(idb.CoresOf(s).empty());
  EXPECT_FALSE(core::ComputeSplitGain(idb, cm, idb.CoresOf(s)[0], s).feasible);
  EXPECT_FALSE(idb.SplitLine(idb.CoresOf(s)[0], merged).ok());
}

// --- serving hot-swap -------------------------------------------------------

TEST(HotSwapTest, InFlightEngineKeepsOldTripleNewServeSeesUpdate) {
  AttributedGraph g = SmallCommunityGraph(11);
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  auto old_engine = std::move(session.Serve()).value();
  const auto old_scores = old_engine.ScoreAll();

  engine::ModelRegistry registry;
  ASSERT_TRUE(session.Publish(registry, "live").ok());
  auto old_handle = registry.Get("live");

  GraphDelta delta = RandomEdgeDelta(g, 6, 77);
  ASSERT_TRUE(session.ApplyUpdates(delta, nullptr).ok());
  ASSERT_TRUE(session.Publish(registry, "live").ok());

  // The pre-update engine still scores the old graph+model+plan triple,
  // bit-identically, even though the session moved on.
  const auto replay = old_engine.ScoreAll();
  ASSERT_EQ(replay.size(), old_scores.size());
  for (size_t v = 0; v < replay.size(); ++v) {
    EXPECT_EQ(replay[v].raw, old_scores[v].raw) << "vertex " << v;
  }
  // The pre-update registry handle still holds the old triple; the swap
  // installed a distinct handle for new lookups.
  EXPECT_NE(old_handle, registry.Get("live"));

  // A fresh engine sees the updated model; it matches a cold session over
  // the mutated graph.
  auto new_engine = std::move(session.Serve()).value();
  auto cold = std::move(engine::MiningSession::Create(session.graph(),
                                                      UpdatableOptions()))
                  .value();
  ASSERT_TRUE(cold.Mine().ok());
  auto cold_engine = std::move(cold.Serve()).value();
  const auto new_scores = new_engine.ScoreAll();
  const auto cold_scores = cold_engine.ScoreAll();
  ASSERT_EQ(new_scores.size(), cold_scores.size());
  for (size_t v = 0; v < new_scores.size(); ++v) {
    EXPECT_EQ(new_scores[v].raw, cold_scores[v].raw) << "vertex " << v;
  }
}

TEST(HotSwapTest, PublishedHandleOutlivesCallerGraph) {
  // Pre-update sessions alias the caller's graph; Publish must snapshot
  // it so registry handles never dangle with the caller's scope (caught
  // under ASan).
  engine::ModelRegistry registry;
  {
    AttributedGraph g = SmallCommunityGraph(13);
    auto session =
        std::move(engine::MiningSession::Create(g, UpdatableOptions()))
            .value();
    ASSERT_TRUE(session.Mine().ok());
    ASSERT_TRUE(session.Publish(registry, "ephemeral").ok());
  }  // caller's graph destroyed here
  auto handle = registry.Get("ephemeral");
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(handle->ScoreVertex(VertexId(0)).ok());
}

// --- WAL crash recovery -----------------------------------------------------

TEST(WalReplayTest, CrashTruncatedTailRecoversPrefixBitIdentical) {
  const std::string path = ::testing::TempDir() + "/cspm_wal_crash.cspm";
  std::remove(path.c_str());
  AttributedGraph g = SmallCommunityGraph(12);
  GraphDelta d1 = RandomEdgeDelta(g, 4, 41);
  // d2 carries a long marker attribute name so the test can locate its WAL
  // record's bytes in the file and corrupt them (the simulated torn tail).
  const std::string marker = "CANARY_ATTRIBUTE_VALUE_FOR_TAIL_RECORD";
  GraphDelta d2;
  d2.SetAttribute(VertexId(0), marker);

  {
    auto session =
        std::move(engine::MiningSession::Create(g, UpdatableOptions()))
            .value();
    ASSERT_TRUE(session.Mine().ok());
    engine::SaveModelOptions save;
    save.include_graph = true;
    ASSERT_TRUE(session.SaveModel(path, save).ok());
    auto store = std::move(store::ModelStore::Open(path)).value();
    ASSERT_TRUE(store.AppendDelta("default", d1).ok());
    ASSERT_TRUE(store.AppendDelta("default", d2).ok());
  }

  // Crash simulation: flip a byte inside the tail WAL record's page.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const size_t at = bytes.find(marker);
  ASSERT_NE(at, std::string::npos);
  bytes[at] ^= 0x5a;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Reopen: the valid prefix (d1) replays; the torn tail is dropped.
  auto store = std::move(store::ModelStore::Open(path)).value();
  auto replay = store.ReadWal("default");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->truncated);
  EXPECT_EQ(replay->dropped, 1u);
  ASSERT_EQ(replay->deltas.size(), 1u);

  auto stored = std::move(store.Get("default")).value();
  ASSERT_TRUE(stored.graph.has_value());
  AttributedGraph snapshot = std::move(*stored.graph);
  auto session =
      std::move(engine::MiningSession::Create(snapshot, UpdatableOptions()))
          .value();
  ASSERT_TRUE(session.Mine().ok());
  for (const GraphDelta& delta : replay->deltas) {
    ASSERT_TRUE(session.ApplyUpdates(delta, nullptr).ok());
  }

  // Bit-identical to a cold re-mine of the mutated graph.
  auto cold_app = std::move(graph::ApplyDelta(g, d1)).value();
  auto cold = std::move(engine::MiningSession::Create(cold_app.graph,
                                                      UpdatableOptions()))
                  .value();
  ASSERT_TRUE(cold.Mine().ok());
  EXPECT_EQ(session.SerializeModel(), cold.SerializeModel());
  EXPECT_EQ(session.stats().final_dl_bits, cold.stats().final_dl_bits);
}

TEST(WalReplayTest, AppendDeltaRecordsModePerRecord) {
  // The WAL's v2 record carries how the live session re-mined, so replay
  // can roll forward each delta in its original mode.
  const std::string path = ::testing::TempDir() + "/cspm_wal_mode.cspm";
  std::remove(path.c_str());
  AttributedGraph g = SmallCommunityGraph(14);
  auto session = std::move(engine::MiningSession::Create(g, UpdatableOptions()))
                     .value();
  ASSERT_TRUE(session.Mine().ok());
  engine::SaveModelOptions save;
  save.include_graph = true;
  ASSERT_TRUE(session.SaveModel(path, save).ok());

  auto store = std::move(store::ModelStore::Open(path)).value();
  GraphDelta d1 = RandomEdgeDelta(g, 2, 71);
  GraphDelta d2 = RandomEdgeDelta(g, 2, 72);
  ASSERT_TRUE(store.AppendDelta("default", d1).ok());  // default: exact
  ASSERT_TRUE(
      store.AppendDelta("default", d2, store::WalDeltaMode::kFast).ok());

  auto replay = std::move(store.ReadWal("default")).value();
  EXPECT_FALSE(replay.truncated);
  ASSERT_EQ(replay.deltas.size(), 2u);
  ASSERT_EQ(replay.modes.size(), 2u);
  EXPECT_EQ(replay.modes[0], store::WalDeltaMode::kExact);
  EXPECT_EQ(replay.modes[1], store::WalDeltaMode::kFast);
}

}  // namespace
}  // namespace cspm
