// Determinism regression: the thread-pooled gain-evaluation paths must
// produce bit-identical models and DL totals to the serial paths. Every
// gain is computed from the same inputs and the parallel reductions follow
// the serial pair order, so equality here is exact, not approximate.
#include <gtest/gtest.h>

#include "cspm/miner.h"
#include "datasets/synthetic.h"
#include "graph/generators.h"
#include "util/thread_pool.h"

namespace cspm::core {
namespace {

void ExpectIdenticalModels(const CspmModel& a, const CspmModel& b) {
  // Bit-identical DL totals (EXPECT_EQ on doubles is deliberate).
  EXPECT_EQ(a.stats.initial_dl_bits, b.stats.initial_dl_bits);
  EXPECT_EQ(a.stats.final_dl_bits, b.stats.final_dl_bits);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.total_gain_computations, b.stats.total_gain_computations);
  ASSERT_EQ(a.astars.size(), b.astars.size());
  for (size_t i = 0; i < a.astars.size(); ++i) {
    EXPECT_EQ(a.astars[i].core_values, b.astars[i].core_values) << i;
    EXPECT_EQ(a.astars[i].leaf_values, b.astars[i].leaf_values) << i;
    EXPECT_EQ(a.astars[i].frequency, b.astars[i].frequency) << i;
    EXPECT_EQ(a.astars[i].core_total, b.astars[i].core_total) << i;
    EXPECT_EQ(a.astars[i].code_length_bits, b.astars[i].code_length_bits)
        << i;
  }
}

CspmModel MineWith(const graph::AttributedGraph& g, SearchStrategy strategy,
                   uint32_t num_threads) {
  CspmOptions options;
  options.strategy = strategy;
  options.num_threads = num_threads;
  return CspmMiner(options).Mine(g).value();
}

TEST(ParallelDeterminism, BasicSearchOnSyntheticDatasets) {
  auto usflight = datasets::MakeUsflightLike(/*seed=*/3, /*num_airports=*/160)
                      .value();
  auto dblp = datasets::MakeDblpLike(/*seed=*/5, /*num_vertices=*/260).value();
  for (const auto* g : {&usflight, &dblp}) {
    CspmModel serial = MineWith(*g, SearchStrategy::kBasic, 1);
    CspmModel parallel = MineWith(*g, SearchStrategy::kBasic, 4);
    ExpectIdenticalModels(serial, parallel);
  }
}

TEST(ParallelDeterminism, PartialSearchOnSyntheticDatasets) {
  auto usflight = datasets::MakeUsflightLike(/*seed=*/7).value();
  auto dblp = datasets::MakeDblpLike(/*seed=*/9, /*num_vertices=*/800).value();
  for (const auto* g : {&usflight, &dblp}) {
    CspmModel serial = MineWith(*g, SearchStrategy::kPartial, 1);
    CspmModel parallel = MineWith(*g, SearchStrategy::kPartial, 4);
    ExpectIdenticalModels(serial, parallel);
  }
}

TEST(ParallelDeterminism, AutoThreadsMatchesSerial) {
  Rng rng(21);
  auto g = graph::ErdosRenyi(200, 0.05, 16, 3, &rng).value();
  CspmModel serial = MineWith(g, SearchStrategy::kPartial, 1);
  CspmModel auto_threads = MineWith(g, SearchStrategy::kPartial, 0);
  ExpectIdenticalModels(serial, auto_threads);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<uint32_t>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << i;
  }
  // Reusable across calls, including empty ones.
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  std::atomic<size_t> count{0};
  pool.ParallelFor(17, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 17u);
}

}  // namespace
}  // namespace cspm::core
