// Parameterized property sweeps over random graphs: the library-wide
// invariants of DESIGN.md checked across a grid of sizes, densities,
// vocabularies and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "cspm/miner.h"
#include "cspm/verify.h"
#include "graph/generators.h"
#include "mdl/codes.h"

namespace cspm::core {
namespace {

// (num_vertices, edge_probability, vocabulary, attrs_per_vertex, seed)
using GraphParams = std::tuple<uint32_t, double, uint32_t, uint32_t, uint64_t>;

class RandomGraphProperties : public ::testing::TestWithParam<GraphParams> {
 protected:
  graph::AttributedGraph MakeGraph() const {
    auto [n, p, vocab, apv, seed] = GetParam();
    Rng rng(seed);
    return graph::ErdosRenyi(n, p, vocab, apv, &rng).value();
  }
};

TEST_P(RandomGraphProperties, MiningIsLosslessAndMonotone) {
  auto g = MakeGraph();
  CspmOptions options;
  options.record_iteration_stats = true;
  auto artifacts = CspmMiner(options).MineWithArtifacts(g).value();
  // Losslessness of the final inverted database.
  ASSERT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok());
  // DL never increases.
  EXPECT_LE(artifacts.model.stats.final_dl_bits,
            artifacts.model.stats.initial_dl_bits + 1e-6);
  // Every accepted merge had positive gain.
  for (const auto& it : artifacts.model.stats.per_iteration) {
    if (it.iteration == 0) continue;
    EXPECT_GT(it.accepted_gain_bits, 0.0);
  }
}

TEST_P(RandomGraphProperties, AStarFrequenciesConsistent) {
  auto g = MakeGraph();
  auto artifacts =
      CspmMiner(CspmOptions{}).MineWithArtifacts(g).value();
  const auto& idb = artifacts.inverted_db;
  // Per-coreset dynamic totals equal the sum of line frequencies.
  std::vector<uint64_t> totals(idb.num_coresets(), 0);
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    (void)l;
    totals[e.index()] += positions.size();
  });
  for (CoreId e(0); e.index() < idb.num_coresets(); ++e) {
    EXPECT_EQ(totals[e.index()], idb.CoreLineTotal(e)) << "coreset " << e;
  }
  // Model a-stars mirror the lines: frequency <= core total and positive
  // code lengths.
  for (const auto& s : artifacts.model.astars) {
    EXPECT_GT(s.frequency, 0u);
    EXPECT_LE(s.frequency, s.core_total);
    EXPECT_GE(s.code_length_bits, 0.0);
  }
}

TEST_P(RandomGraphProperties, DataCostMatchesEq8Identity) {
  auto g = MakeGraph();
  auto idb = InvertedDatabase::FromGraph(g).value();
  // Collect the joint count table and compare Eq. 8 evaluated both ways.
  std::vector<std::vector<uint64_t>> joint(idb.num_coresets());
  idb.ForEachLine([&](CoreId e, LeafsetId l, PosListView positions) {
    (void)l;
    joint[e.index()].push_back(positions.size());
  });
  EXPECT_NEAR(idb.DataCostBits(), mdl::InvertedDbCostBits(joint), 1e-6);
}

TEST_P(RandomGraphProperties, BasicPartialAgreement) {
  auto g = MakeGraph();
  CspmOptions basic;
  basic.strategy = SearchStrategy::kBasic;
  CspmOptions partial;
  partial.strategy = SearchStrategy::kPartial;
  auto mb = CspmMiner(basic).Mine(g).value();
  auto mp = CspmMiner(partial).Mine(g).value();
  // Both must compress; Partial is an approximation of Basic (the paper's
  // rdict heuristic can skip merges), so allow a bounded shortfall.
  EXPECT_LE(mb.stats.final_dl_bits, mb.stats.initial_dl_bits + 1e-6);
  EXPECT_LE(mp.stats.final_dl_bits, mp.stats.initial_dl_bits + 1e-6);
  EXPECT_NEAR(mb.stats.final_dl_bits, mp.stats.final_dl_bits,
              0.16 * mb.stats.initial_dl_bits + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphProperties,
    ::testing::Values(
        GraphParams{40, 0.10, 8, 2, 1},
        GraphParams{40, 0.10, 8, 2, 2},
        GraphParams{60, 0.06, 12, 3, 3},
        GraphParams{60, 0.06, 12, 3, 4},
        GraphParams{80, 0.04, 6, 2, 5},
        GraphParams{80, 0.12, 20, 4, 6},
        GraphParams{120, 0.03, 10, 3, 7},
        GraphParams{120, 0.03, 30, 2, 8},
        GraphParams{160, 0.02, 16, 3, 9},
        GraphParams{200, 0.015, 24, 3, 10}));

// Sparse/edge-case shapes.
class EdgeCaseGraphs : public ::testing::Test {};

TEST_F(EdgeCaseGraphs, SingleVertexNoEdges) {
  graph::GraphBuilder b;
  b.AddVertex({"solo"});
  auto g = std::move(b).Build().value();
  auto artifacts =
      CspmMiner(CspmOptions{}).MineWithArtifacts(g).value();
  EXPECT_EQ(artifacts.model.stats.iterations, 0u);
  EXPECT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok());
}

TEST_F(EdgeCaseGraphs, VerticesWithoutAttributes) {
  graph::GraphBuilder b;
  b.AddVertex({});
  b.AddVertex({"x"});
  b.AddVertex({});
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  ASSERT_TRUE(b.AddEdge(VertexId(1), VertexId(2)).ok());
  auto g = std::move(b).Build().value();
  auto artifacts =
      CspmMiner(CspmOptions{}).MineWithArtifacts(g).value();
  EXPECT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok());
}

TEST_F(EdgeCaseGraphs, CompleteBipartiteWithOppositeAttributes) {
  // K_{3,3}: left vertices carry L, right carry R. Expect the single
  // deterministic relationship L <-> R, fully compressible.
  graph::GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddVertex({"L"});
  for (int i = 0; i < 3; ++i) b.AddVertex({"R"});
  for (uint32_t l = 0; l < 3; ++l) {
    for (uint32_t r = 3; r < 6; ++r) {
      ASSERT_TRUE(b.AddEdge(graph::VertexId(l), graph::VertexId(r)).ok());
    }
  }
  auto g = std::move(b).Build().value();
  auto artifacts =
      CspmMiner(CspmOptions{}).MineWithArtifacts(g).value();
  // Two lines (L->R, R->L); nothing to merge; data cost is zero because
  // each coreset has exactly one deterministic line.
  EXPECT_EQ(artifacts.inverted_db.num_lines(), 2u);
  EXPECT_NEAR(artifacts.inverted_db.DataCostBits(), 0.0, 1e-9);
}

TEST_F(EdgeCaseGraphs, StarGraphCoreSeesAllLeaves) {
  // A hub with k leaves, hub has "hub", leaves have "leaf_i": all leaf
  // lines for core "hub" have frequency 1 and are mergeable pairwise.
  graph::GraphBuilder b;
  b.AddVertex({"hub"});
  const int k = 6;
  for (int i = 1; i <= k; ++i) {
    b.AddVertex({"leafA", "leafB"});
    ASSERT_TRUE(
        b.AddEdge(graph::VertexId(0), graph::VertexId(static_cast<uint32_t>(i)))
            .ok());
  }
  auto g = std::move(b).Build().value();
  auto artifacts =
      CspmMiner(CspmOptions{}).MineWithArtifacts(g).value();
  EXPECT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok());
  // leafA and leafB always co-occur around "hub" and around each other:
  // expect a merged leafset {leafA, leafB} somewhere.
  bool merged = false;
  for (const auto& s : artifacts.model.astars) {
    if (s.leaf_values.size() == 2) merged = true;
  }
  EXPECT_TRUE(merged);
}

}  // namespace
}  // namespace cspm::core
