// Tests for the obs/ metrics registry and phase tracing: counter and
// histogram correctness, quantile accuracy against exact percentiles,
// snapshot-while-writing consistency, and the runtime enable toggle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cspm::obs {
namespace {

#ifndef CSPM_OBS_OFF

TEST(ObsCounterTest, SameNameSamePointer) {
  Counter* a = GetCounter("test.counter.identity");
  Counter* b = GetCounter("test.counter.identity");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, GetCounter("test.counter.other"));
}

TEST(ObsCounterTest, AddAccumulatesAcrossResets) {
  Counter* c = GetCounter("test.counter.add");
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(ObsGaugeTest, SetIsLastWriteWins) {
  Gauge* g = GetGauge("test.gauge.set");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->Value(), -3.25);
}

TEST(ObsHistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 38)), 39u);
  // Values past the top bucket clamp instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(ObsHistogramTest, CountSumMinMax) {
  Histogram* h = GetHistogram("test.hist.basic");
  h->Reset();
  h->Record(100);
  h->Record(200);
  h->Record(700);
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_ns, 1000u);
  EXPECT_EQ(snap.min_ns, 100u);
  EXPECT_EQ(snap.max_ns, 700u);
  EXPECT_GE(snap.p50_ns, snap.min_ns);
  EXPECT_LE(snap.p99_ns, snap.max_ns);
}

TEST(ObsHistogramTest, QuantilesWithinFactorTwoOfExactPercentiles) {
  // Power-of-two buckets put the estimate in the same bucket as the exact
  // rank value, so estimate / exact is bounded by the bucket width (2x).
  Histogram* h = GetHistogram("test.hist.quantiles");
  h->Reset();
  Rng rng(1234);
  std::vector<uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~[256ns, 16ms]: every magnitude the engine's spans
    // actually cover.
    const double e = 8.0 + 16.0 * rng.UniformDouble();
    values.push_back(static_cast<uint64_t>(std::pow(2.0, e)));
  }
  for (uint64_t v : values) h->Record(v);
  std::sort(values.begin(), values.end());
  const Histogram::Snapshot snap = h->Snap();
  ASSERT_EQ(snap.count, values.size());
  const auto exact = [&](double q) {
    return static_cast<double>(
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))]);
  };
  for (const auto& [est, q] : {std::pair{snap.p50_ns, 0.50},
                               std::pair{snap.p90_ns, 0.90},
                               std::pair{snap.p99_ns, 0.99}}) {
    EXPECT_GE(est, exact(q) / 2.0) << "q=" << q;
    EXPECT_LE(est, exact(q) * 2.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, SnapshotWhileWritingIsMonotonicAndConvergent) {
  Histogram* h = GetHistogram("test.hist.concurrent");
  h->Reset();
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) h->Record(i % 4096);
    });
  }
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const Histogram::Snapshot snap = h->Snap();
      EXPECT_GE(snap.count, last);  // merged counts never go backwards
      EXPECT_LE(snap.count, kWriters * kPerWriter);
      last = snap.count;
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h->Snap().count, kWriters * kPerWriter);
}

TEST(ObsRegistryTest, SnapshotJsonHasStableSchema) {
  GetCounter("test.json.counter")->Add(7);
  GetGauge("test.json.gauge")->Set(2.5);
  GetHistogram("test.json.hist")->Record(1000);
  const std::string json = MetricsRegistry::Global().SnapshotJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "snapshot must be 1 line";
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\":{\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
}

TEST(ObsTraceTest, NestedSpansJoinNamesWithDots) {
  Histogram* outer = GetHistogram("phase.obs_test_outer");
  Histogram* inner = GetHistogram("phase.obs_test_outer.inner");
  outer->Reset();
  inner->Reset();
  {
    TraceSpan span_outer("obs_test_outer");
    TraceSpan span_inner("inner");
  }
  EXPECT_EQ(outer->Snap().count, 1u);
  EXPECT_EQ(inner->Snap().count, 1u);
  // Sibling span after the nest: path must have been popped correctly.
  {
    TraceSpan span_outer("obs_test_outer");
  }
  EXPECT_EQ(outer->Snap().count, 2u);
  EXPECT_EQ(inner->Snap().count, 1u);
}

TEST(ObsTraceTest, ScopedPhaseTimerRecordsElapsed) {
  Histogram* h = GetHistogram("test.scoped.timer");
  h->Reset();
  {
    ScopedPhaseTimer t(h);
  }
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, 1u);
}

TEST(ObsEnableToggleTest, DisabledMeansNoWrites) {
  Counter* c = GetCounter("test.toggle.counter");
  Histogram* h = GetHistogram("test.toggle.hist");
  c->Reset();
  h->Reset();
  SetEnabled(false);
  c->Add(5);
  h->Record(100);
  {
    TraceSpan span("toggle_span");
    ScopedPhaseTimer t(h);
  }
  SetEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snap().count, 0u);
  c->Add(5);
  EXPECT_EQ(c->Value(), 5u);
}

#else  // CSPM_OBS_OFF

TEST(ObsCompiledOutTest, EverythingIsANoOp) {
  EXPECT_FALSE(Enabled());
  Counter* c = GetCounter("test.off.counter");
  c->Add(5);
  EXPECT_EQ(c->Value(), 0u);
  Histogram* h = GetHistogram("test.off.hist");
  h->Record(100);
  EXPECT_EQ(h->Snap().count, 0u);
  {
    TraceSpan span("off_span");
    ScopedPhaseTimer t(h);
  }
  EXPECT_EQ(h->Snap().count, 0u);
}

#endif  // CSPM_OBS_OFF

TEST(ObsTimerTest, ElapsedNanosTracksTheSameClock) {
  WallTimer timer;
  const uint64_t a = timer.ElapsedNanos();
  // Burn a little real time so the clock visibly advances.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  const uint64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0u);
  const double secs = timer.ElapsedSeconds();
  EXPECT_GE(secs * 1e9, static_cast<double>(b) * 0.5);
}

}  // namespace
}  // namespace cspm::obs
