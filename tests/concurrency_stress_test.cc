// ThreadSanitizer stress suite for the concurrent layers: ThreadPool
// dispatch/shutdown churn, ModelRegistry readers racing Put/Remove,
// ScoreBatch traffic across serving engines while a mining session
// hot-swaps the published model, and parallel gain evaluation under CPU
// contention. Every test also passes in a plain build; run them under
// -DCSPM_TSAN=ON (the dedicated CI job) to turn latent races into
// failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cspm/scoring_plan.h"
#include "engine/model_registry.h"
#include "engine/serving.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "obs/metrics.h"
#include "store/model_store.h"
#include "testing_util.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cspm {
namespace {

graph::AttributedGraph StressGraph(uint64_t seed = 11) {
  Rng rng(seed);
  auto g = graph::BarabasiAlbert(/*n=*/240, /*m=*/3, /*vocabulary=*/20,
                                 /*attrs_per_vertex=*/3, &rng);
  CSPM_CHECK(g.ok());
  return std::move(g).value();
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolStress, ShutdownRacesWorkersParkedOnDrainedJob) {
  // The destructor fires immediately after a busy burst, while workers may
  // still be unwinding from their (fully drained) snapshot of the job —
  // the exact window the generation/pending handshake exists for.
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    {
      util::ThreadPool pool(4);
      pool.ParallelFor(1000, [&](size_t i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
    }
    EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
  }
}

TEST(ThreadPoolStress, PoolChurnAcrossOwnerThreads) {
  std::vector<std::thread> owners;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    owners.emplace_back([&failures] {
      for (int round = 0; round < 20; ++round) {
        util::ThreadPool pool(3);
        std::atomic<uint64_t> count{0};
        pool.ParallelFor(
            500, [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); });
        if (count.load() != 500) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : owners) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolStress, BackToBackDispatchesReuseWorkers) {
  util::ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (int round = 0; round < 40; ++round) {
      std::atomic<uint64_t> count{0};
      pool.ParallelFor(
          n, [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); });
      ASSERT_EQ(count.load(), n);
    }
  }
}

// --- ModelRegistry --------------------------------------------------------

engine::ServableModel MakeServable(const graph::AttributedGraph& g) {
  engine::ServableModel sm;
  sm.model = engine::MineModel(g).value();
  sm.dict = g.dict();
  sm.graph = std::make_shared<const graph::AttributedGraph>(g);
  return sm;
}

TEST(ModelRegistryStress, ConcurrentGetPutRemove) {
  const graph::AttributedGraph g = StressGraph();
  const engine::ServableModel prototype = MakeServable(g);

  engine::ModelRegistry registry;
  registry.Put("hot", prototype);
  std::atomic<bool> stop{false};
  std::atomic<int> scored{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint32_t v = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // A reader either sees a fully registered model or nothing — a
        // nullptr between Remove and the next Put is fine, a torn model
        // is what TSan is here to catch.
        if (engine::ModelRegistry::Handle h = registry.Get("hot")) {
          auto scores = h->ScoreVertex(
              graph::VertexId(v % h->graph->num_vertices().value()));
          if (scores.ok()) scored.fetch_add(1, std::memory_order_relaxed);
        }
        ++v;
        (void)registry.List();
        (void)registry.size();
      }
    });
  }

  for (int round = 0; round < 60; ++round) {
    registry.Put("hot", prototype);
    registry.Put("side", prototype);
    registry.Remove(round % 2 == 0 ? "hot" : "side");
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(scored.load(), 0);
}

// --- serving vs hot swap --------------------------------------------------

TEST(ServingStress, ScoreBatchAcrossEnginesDuringHotSwap) {
  auto shared_graph =
      std::make_shared<const graph::AttributedGraph>(StressGraph(23));
  engine::MiningOptions options;
  options.enable_updates = true;
  options.num_threads = 2;
  auto session = engine::MiningSession::Create(shared_graph, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Mine().ok());

  engine::ModelRegistry registry;
  ASSERT_TRUE(session->Publish(registry, "live").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> batches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 3; ++t) {
    scorers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        engine::ModelRegistry::Handle h = registry.Get("live");
        if (h == nullptr) continue;
        engine::ServingOptions serve_options;
        serve_options.num_threads = 2;
        auto engine = h->Serve(serve_options);
        if (!engine.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The handle's graph snapshot is immutable, so every id below
        // num_vertices stays valid however many swaps happen meanwhile.
        std::vector<graph::VertexId> batch;
        for (uint32_t v = 0; v < h->graph->num_vertices().value(); v += 7) {
          batch.push_back(graph::VertexId(v));
        }
        auto scores = engine->ScoreBatch(batch);
        if (!scores.ok() || scores->size() != batch.size()) {
          failures.fetch_add(1);
        } else {
          batches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer: grow the graph, warm re-mine, hot-swap the published model.
  for (int update = 0; update < 6; ++update) {
    graph::GraphDelta delta;
    const size_t fresh = delta.AddVertex({"u", "v"});
    delta.AddEdge(session->graph().num_vertices(),
                  graph::VertexId(static_cast<uint32_t>(update)));
    ASSERT_EQ(fresh, 0u);  // first new vertex of this delta
    ASSERT_TRUE(session->ApplyUpdates(delta).ok());
    ASSERT_TRUE(session->Publish(registry, "live").ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : scorers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(batches.load(), 0);
}

// --- obs under concurrency ------------------------------------------------

TEST(ObsStress, ConcurrentIncrementsAreExactOnceWritersJoin) {
  obs::Counter* counter = obs::GetCounter("stress.obs.counter");
  obs::Histogram* hist = obs::GetHistogram("stress.obs.hist");
  counter->Reset();
  hist->Reset();
  constexpr int kWriters = 6;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<bool> stop_reader{false};
  // The reader snapshots mid-write: counts may trail in-flight increments
  // but must never exceed the writers' total or go backwards.
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const uint64_t now = counter->Value();
      EXPECT_GE(now, last);
      EXPECT_LE(now, kWriters * kPerWriter);
      last = now;
      (void)hist->Snap();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter->Add(1);
        hist->Record((i % 1024) + static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  if (obs::Enabled()) {
    EXPECT_EQ(counter->Value(), kWriters * kPerWriter);
    EXPECT_EQ(hist->Snap().count, kWriters * kPerWriter);
  } else {
    EXPECT_EQ(counter->Value(), 0u);
  }
}

TEST(ObsStress, SnapshotJsonRacesServingAndHotSwap) {
  auto shared_graph =
      std::make_shared<const graph::AttributedGraph>(StressGraph(37));
  engine::MiningOptions options;
  options.enable_updates = true;
  auto session = engine::MiningSession::Create(shared_graph, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Mine().ok());
  engine::ModelRegistry registry;
  ASSERT_TRUE(session->Publish(registry, "live").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> snapshots{0};
  // Snapshotters race the instrumented hot paths (ScoreBatch's timers and
  // counters, Publish's hot-swap histogram): a torn read here is exactly
  // what the relaxed-atomics contract must rule out under TSan.
  std::vector<std::thread> snapshotters;
  for (int t = 0; t < 2; ++t) {
    snapshotters.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string json = obs::MetricsRegistry::Global().SnapshotJson();
        EXPECT_FALSE(json.empty());
        EXPECT_EQ(json.front(), '{');
        EXPECT_EQ(json.back(), '}');
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread scorer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      engine::ModelRegistry::Handle h = registry.Get("live");
      if (h == nullptr) continue;
      engine::ServingOptions serve_options;
      serve_options.num_threads = 2;
      auto engine = h->Serve(serve_options);
      if (!engine.ok()) continue;
      std::vector<graph::VertexId> batch;
      for (uint32_t v = 0; v < h->graph->num_vertices().value(); v += 11) {
        batch.push_back(graph::VertexId(v));
      }
      (void)engine->ScoreBatch(batch);
    }
  });
  for (int update = 0; update < 4; ++update) {
    auto delta = graph::MakeRandomEdgeRewires(
        session->graph(), /*num_ops=*/3,
        /*seed=*/100 + static_cast<uint64_t>(update));
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(session->ApplyUpdates(*delta).ok());
    ASSERT_TRUE(session->Publish(registry, "live").ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : snapshotters) t.join();
  scorer.join();
  EXPECT_GT(snapshots.load(), 0);
}

// --- parallel gain evaluation under contention ----------------------------

void ExpectSameModel(const core::CspmModel& a, const core::CspmModel& b) {
  ASSERT_EQ(a.astars.size(), b.astars.size());
  for (size_t i = 0; i < a.astars.size(); ++i) {
    EXPECT_EQ(a.astars[i].core_values, b.astars[i].core_values) << i;
    EXPECT_EQ(a.astars[i].leaf_values, b.astars[i].leaf_values) << i;
    EXPECT_EQ(a.astars[i].frequency, b.astars[i].frequency) << i;
    EXPECT_DOUBLE_EQ(a.astars[i].code_length_bits, b.astars[i].code_length_bits)
        << i;
  }
}

TEST(MinerStress, ParallelGainEvalBitIdenticalUnderContention) {
  const graph::AttributedGraph g = StressGraph(31);
  engine::MiningOptions serial;
  serial.num_threads = 1;
  auto reference = engine::MineModel(g, serial);
  ASSERT_TRUE(reference.ok());

  // Two parallel miners share the machine: their pools contend for cores,
  // which perturbs gain-evaluation interleavings without being allowed to
  // perturb results.
  engine::MiningOptions parallel;
  parallel.num_threads = 4;
  std::vector<core::CspmModel> models(2);
  std::vector<std::thread> miners;
  std::atomic<int> failures{0};
  for (size_t t = 0; t < models.size(); ++t) {
    miners.emplace_back([&, t] {
      auto model = engine::MineModel(g, parallel);
      if (model.ok()) {
        models[t] = std::move(model).value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : miners) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (const core::CspmModel& m : models) ExpectSameModel(*reference, m);
}

// --- plan cache under concurrency -----------------------------------------

// Readers continuously open mmap plans through the shared registry cache
// and score through them while a churn thread invalidates entries and
// shrinks/grows the capacity, forcing evictions mid-score. The contract
// under test (with TSan watching): an evicted mapping stays valid for
// every plan copy already handed out, and a subsequent open simply maps
// afresh. Each reader opens its own ModelStore — the store is
// single-writer/multi-reader by design; only the registry is shared.
TEST(PlanCacheStress, EvictionWhileServingAndReopen) {
  const std::string path =
      ::testing::TempDir() + "plan_cache_stress.cspm";
  std::remove(path.c_str());
  const graph::AttributedGraph g = StressGraph();
  const core::CspmModel model = engine::MineModel(g).value();
  {
    auto store = store::ModelStore::Create(path);
    CSPM_CHECK(store.ok());
    for (int i = 0; i < 4; ++i) {
      CSPM_CHECK(
          store->Put(StrFormat("m%d", i), {model, g.dict(), std::nullopt})
              .ok());
    }
  }
  const size_t plan_bytes =
      core::ScoringPlan::Compile(model, g.num_attribute_values())
          .ApproxBytes();

  engine::ModelRegistry registry;
  // Room for roughly one plan: every second open evicts.
  registry.SetPlanCacheCapacity(plan_bytes * 3 / 2);
  std::atomic<bool> stop{false};
  std::atomic<int> scored{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      auto store = store::ModelStore::Open(path);
      if (!store.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<graph::AttrId> neighbourhood;
      uint32_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto plan = registry.OpenPlan(*store, StrFormat("m%u", (t + i) % 4));
        if (!plan.ok()) {
          failures.fetch_add(1);
          return;
        }
        neighbourhood.clear();
        core::GatherNeighbourhoodAttrs(
            g, graph::VertexId(i % g.num_vertices().value()),
            &neighbourhood);
        const core::AttributeScores scores = (*plan)->Score(neighbourhood);
        if (!scores.normalized.empty()) {
          scored.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  // Churn until the readers have demonstrably scored through plans that
  // were being evicted underneath them (failures break the loop via the
  // reader threads exiting and scored never advancing past the cap).
  for (int round = 0; scored.load(std::memory_order_relaxed) < 400 &&
                      failures.load() == 0 && round < 2000000;
       ++round) {
    registry.InvalidateCachedPlan(path, StrFormat("m%d", round % 4));
    if (round % 8 == 0) {
      registry.SetPlanCacheCapacity(round % 16 == 0 ? plan_bytes
                                                    : plan_bytes * 4);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(scored.load(), 0);

  // Evict-then-reopen round trip: after all the churn, a fresh open maps
  // and serves, bit-identical to a compile.
  auto store = store::ModelStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto plan = registry.OpenPlan(*store, "m0");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->is_view());
  std::vector<graph::AttrId> neighbourhood;
  core::GatherNeighbourhoodAttrs(g, graph::VertexId(0), &neighbourhood);
  const core::ScoringPlan compiled =
      core::ScoringPlan::Compile(model, g.num_attribute_values());
  const core::AttributeScores a = (*plan)->Score(neighbourhood);
  const core::AttributeScores b = compiled.Score(neighbourhood);
  ASSERT_EQ(a.normalized.size(), b.normalized.size());
  for (size_t i = 0; i < a.normalized.size(); ++i) {
    EXPECT_EQ(a.normalized[i], b.normalized[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cspm
