// Tests for the NN substrate: matrix algebra against hand results,
// numerical gradient checks for every layer, metrics, and VAE training.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/adjacency.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "nn/vae.h"
#include "testing_util.h"

namespace cspm::nn {
namespace {

TEST(MatrixTest, MatMulHandComputed) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data().begin());
  std::copy(bv, bv + 6, b.data().begin());
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposeVariantsAgree) {
  Rng rng(3);
  Matrix a = Matrix::Glorot(4, 3, &rng);
  Matrix b = Matrix::Glorot(4, 5, &rng);
  // A^T B == MatMulTransposeA(a, b).
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  Matrix expect = MatMul(at, b);
  Matrix got = MatMulTransposeA(a, b);
  for (size_t i = 0; i < expect.rows(); ++i) {
    for (size_t j = 0; j < expect.cols(); ++j) {
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, ReluAndBackward) {
  Matrix x(1, 4);
  x(0, 0) = -1;
  x(0, 1) = 0;
  x(0, 2) = 2;
  x(0, 3) = -0.5;
  Matrix y = Relu(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 2.0);
  Matrix g(1, 4);
  g.Fill(1.0);
  Matrix gx = ReluBackward(g, x);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gx(0, 2), 1.0);
}

TEST(MatrixTest, SigmoidRange) {
  Matrix x(1, 3);
  x(0, 0) = -100;
  x(0, 1) = 0;
  x(0, 2) = 100;
  Matrix y = Sigmoid(x);
  EXPECT_NEAR(y(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(y(0, 2), 1.0, 1e-12);
}

TEST(AdjacencyTest, NormalizedAdjacencyRowsOfRegularGraph) {
  // Triangle: every vertex has degree 2; Â entries are 1/3 everywhere.
  graph::GraphBuilder b;
  b.AddVertex({"x"});
  b.AddVertex({"x"});
  b.AddVertex({"x"});
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  ASSERT_TRUE(b.AddEdge(VertexId(1), VertexId(2)).ok());
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(2)).ok());
  auto g = std::move(b).Build().value();
  SparseMatrix adj = SparseMatrix::NormalizedAdjacency(g);
  Matrix ones(3, 1);
  ones.Fill(1.0);
  Matrix y = adj.Multiply(ones);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(y(i, 0), 1.0, 1e-12);
}

TEST(AdjacencyTest, MeanNeighborsAverages) {
  auto g = cspm::testing::PaperExampleGraph();
  SparseMatrix mean = SparseMatrix::MeanNeighbors(g);
  Matrix x(5, 1);
  for (size_t i = 0; i < 5; ++i) x(i, 0) = static_cast<double>(i + 1);
  Matrix y = mean.Multiply(x);
  // v1 (id 0) has neighbours 1,2,3 -> mean of (2,3,4) = 3.
  EXPECT_NEAR(y(0, 0), 3.0, 1e-12);
  // v2 (id 1) has neighbour 0 -> 1.
  EXPECT_NEAR(y(1, 0), 1.0, 1e-12);
}

TEST(AdjacencyTest, MultiplyTransposeIsAdjoint) {
  // <A x, y> == <x, A^T y>.
  auto g = cspm::testing::PaperExampleGraph();
  SparseMatrix mean = SparseMatrix::MeanNeighbors(g);
  Rng rng(5);
  Matrix x = Matrix::Glorot(5, 2, &rng);
  Matrix y = Matrix::Glorot(5, 2, &rng);
  Matrix ax = mean.Multiply(x);
  Matrix aty = mean.MultiplyTranspose(y);
  double lhs = 0;
  double rhs = 0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      lhs += ax(i, j) * y(i, j);
      rhs += x(i, j) * aty(i, j);
    }
  }
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

// ---------------------------------------------------------------------------
// Numerical gradient checking machinery: loss = sum(output ⊙ R) for a fixed
// random R, so dLoss/dOutput = R.
double DotAll(const Matrix& a, const Matrix& b) {
  double s = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    s += a.data()[i] * b.data()[i];
  }
  return s;
}

// Checks d(sum(layer(x) ⊙ R))/d(param) and /d(x) numerically.
template <typename LayerT>
void CheckLayerGradients(LayerT* layer, Matrix* x, double tol = 2e-5) {
  Rng rng(99);
  Matrix out = layer->Forward(*x);
  Matrix r = Matrix::Glorot(out.rows(), out.cols(), &rng);
  ParamRefs refs;
  layer->CollectParams(&refs);
  layer->ZeroGrad();
  Matrix out2 = layer->Forward(*x);  // refresh caches
  Matrix gx = layer->Backward(r);

  const double h = 1e-6;
  // Parameter gradients.
  for (size_t k = 0; k < refs.params.size(); ++k) {
    Matrix* p = refs.params[k];
    Matrix* g = refs.grads[k];
    for (size_t idx = 0; idx < std::min<size_t>(p->data().size(), 24);
         ++idx) {
      const double orig = p->data()[idx];
      p->data()[idx] = orig + h;
      const double lp = DotAll(layer->Forward(*x), r);
      p->data()[idx] = orig - h;
      const double lm = DotAll(layer->Forward(*x), r);
      p->data()[idx] = orig;
      const double numeric = (lp - lm) / (2 * h);
      EXPECT_NEAR(g->data()[idx], numeric, tol)
          << "param " << k << " index " << idx;
    }
  }
  // Input gradients.
  for (size_t idx = 0; idx < std::min<size_t>(x->data().size(), 24); ++idx) {
    const double orig = x->data()[idx];
    x->data()[idx] = orig + h;
    const double lp = DotAll(layer->Forward(*x), r);
    x->data()[idx] = orig - h;
    const double lm = DotAll(layer->Forward(*x), r);
    x->data()[idx] = orig;
    const double numeric = (lp - lm) / (2 * h);
    EXPECT_NEAR(gx.data()[idx], numeric, tol) << "input index " << idx;
  }
}

TEST(GradCheckTest, DenseLayer) {
  Rng rng(7);
  DenseLayer layer(5, 4, &rng);
  Matrix x = Matrix::Glorot(6, 5, &rng);
  CheckLayerGradients(&layer, &x);
}

TEST(GradCheckTest, GcnConvLayer) {
  Rng rng(11);
  auto g = cspm::testing::PaperExampleGraph();
  SparseMatrix adj = SparseMatrix::NormalizedAdjacency(g);
  GcnConvLayer layer(&adj, 3, 4, &rng);
  Matrix x = Matrix::Glorot(5, 3, &rng);
  CheckLayerGradients(&layer, &x);
}

TEST(GradCheckTest, SageConvLayer) {
  Rng rng(13);
  auto g = cspm::testing::PaperExampleGraph();
  SparseMatrix mean = SparseMatrix::MeanNeighbors(g);
  SageConvLayer layer(&mean, 3, 4, &rng);
  Matrix x = Matrix::Glorot(5, 3, &rng);
  CheckLayerGradients(&layer, &x);
}

TEST(GradCheckTest, GatConvLayer) {
  Rng rng(17);
  auto g = cspm::testing::PaperExampleGraph();
  AttentionGraph ag = AttentionGraph::FromGraph(g);
  GatConvLayer layer(&ag, 3, 4, &rng);
  Matrix x = Matrix::Glorot(5, 3, &rng);
  CheckLayerGradients(&layer, &x, /*tol=*/5e-5);
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(19);
  Matrix logits = Matrix::Glorot(4, 3, &rng);
  Matrix targets(4, 3);
  targets(0, 0) = 1;
  targets(1, 2) = 1;
  targets(3, 1) = 1;
  std::vector<bool> mask = {true, true, false, true};
  Matrix grad;
  BceWithLogits(logits, targets, mask, &grad);
  const double h = 1e-6;
  for (size_t idx = 0; idx < logits.data().size(); ++idx) {
    const double orig = logits.data()[idx];
    Matrix tmp;
    logits.data()[idx] = orig + h;
    const double lp = BceWithLogits(logits, targets, mask, &tmp);
    logits.data()[idx] = orig - h;
    const double lm = BceWithLogits(logits, targets, mask, &tmp);
    logits.data()[idx] = orig;
    EXPECT_NEAR(grad.data()[idx], (lp - lm) / (2 * h), 1e-6);
  }
}

TEST(OptimizerTest, AdamReducesQuadratic) {
  // Minimize ||p - t||^2 for a fixed target.
  Matrix p(1, 4);
  Matrix g(1, 4);
  Matrix t(1, 4);
  t(0, 0) = 1;
  t(0, 1) = -2;
  t(0, 2) = 0.5;
  t(0, 3) = 3;
  ParamRefs refs;
  refs.params = {&p};
  refs.grads = {&g};
  AdamOptimizer adam(refs, 0.05);
  for (int step = 0; step < 500; ++step) {
    for (size_t i = 0; i < 4; ++i) g(0, i) = 2 * (p(0, i) - t(0, i));
    adam.Step();
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(p(0, i), t(0, i), 1e-2);
}

TEST(OptimizerTest, SgdReducesQuadratic) {
  Matrix p(1, 2);
  Matrix g(1, 2);
  ParamRefs refs;
  refs.params = {&p};
  refs.grads = {&g};
  SgdOptimizer sgd(refs, 0.1);
  p(0, 0) = 5;
  p(0, 1) = -5;
  for (int step = 0; step < 200; ++step) {
    g(0, 0) = 2 * p(0, 0);
    g(0, 1) = 2 * p(0, 1);
    sgd.Step();
  }
  EXPECT_NEAR(p(0, 0), 0.0, 1e-3);
  EXPECT_NEAR(p(0, 1), 0.0, 1e-3);
}

TEST(MetricsTest, TopKOrder) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.9};
  auto top = TopK(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);  // tie broken by lower index
  EXPECT_EQ(top[1], 3u);
}

TEST(MetricsTest, RecallHandComputed) {
  std::vector<double> scores = {0.9, 0.8, 0.1, 0.7};
  std::vector<bool> truth = {true, false, true, false};
  // top2 = {0, 1}: hits 1 of 2 true.
  EXPECT_NEAR(RecallAtK(scores, truth, 2), 0.5, 1e-12);
  // top4 catches both.
  EXPECT_NEAR(RecallAtK(scores, truth, 4), 1.0, 1e-12);
}

TEST(MetricsTest, RecallEmptyTruthIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({0.5, 0.4}, {false, false}, 2), 0.0);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  std::vector<double> scores = {0.9, 0.8, 0.1, 0.05};
  std::vector<bool> truth = {true, true, false, false};
  EXPECT_NEAR(NdcgAtK(scores, truth, 4), 1.0, 1e-12);
}

TEST(MetricsTest, NdcgHandComputed) {
  // Truth at positions ranked 1st and 3rd.
  std::vector<double> scores = {0.9, 0.5, 0.7};
  std::vector<bool> truth = {true, true, false};
  // Ranked: 0 (rel), 2 (non), 1 (rel).
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  const double ideal = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(scores, truth, 3), dcg / ideal, 1e-12);
}

TEST(MetricsTest, NdcgWorseRankingScoresLower) {
  std::vector<bool> truth = {true, false, false, false};
  std::vector<double> good = {0.9, 0.1, 0.1, 0.1};
  std::vector<double> bad = {0.1, 0.9, 0.8, 0.7};
  EXPECT_GT(NdcgAtK(good, truth, 4), NdcgAtK(bad, truth, 4));
}

TEST(VaeTest, TrainingReducesLoss) {
  Rng rng(23);
  // Structured binary data: two prototype rows plus noise.
  Matrix x(40, 12);
  for (size_t i = 0; i < x.rows(); ++i) {
    const size_t proto = i % 2;
    for (size_t j = 0; j < 6; ++j) x(i, proto * 6 + j) = 1.0;
    if (rng.Bernoulli(0.3)) x(i, rng.Uniform(12)) = 1.0;
  }
  std::vector<bool> mask(40, true);
  VaeOptions options;
  options.epochs = 1;
  options.seed = 5;
  Vae vae(12, options);
  Rng step_rng(31);
  double first = vae.TrainStep(x, mask, &step_rng);
  double last = first;
  for (int e = 0; e < 150; ++e) last = vae.TrainStep(x, mask, &step_rng);
  EXPECT_LT(last, first * 0.8);
}

TEST(VaeTest, EncodeDecodeShapes) {
  VaeOptions options;
  options.hidden = 8;
  options.latent = 4;
  options.epochs = 2;
  Vae vae(10, options);
  Matrix x(6, 10);
  std::vector<bool> mask(6, true);
  vae.Train(x, mask);
  Matrix mu = vae.EncodeMean(x);
  EXPECT_EQ(mu.rows(), 6u);
  EXPECT_EQ(mu.cols(), 4u);
  Matrix probs = vae.DecodeProbabilities(mu);
  EXPECT_EQ(probs.rows(), 6u);
  EXPECT_EQ(probs.cols(), 10u);
  for (double v : probs.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace cspm::nn
