// Tests for the itemset substrate: transaction db, Eclat, the Krimp code
// table / cover, and the Krimp and SLIM compressors.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "itemset/code_table.h"
#include "itemset/eclat.h"
#include "itemset/krimp.h"
#include "itemset/slim.h"
#include "itemset/transaction_db.h"
#include "testing_util.h"
#include "util/rng.h"

namespace cspm::itemset {
namespace {

TransactionDb SmallDb() {
  // Classic example: {a,b} co-occur strongly.
  TransactionDb db;
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({0, 1, 3});
  db.Add({2, 3});
  db.Add({0, 1, 2, 3});
  return db;
}

TEST(TransactionDbTest, FrequenciesAndDedup) {
  TransactionDb db;
  db.Add({3, 1, 3, 1});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.transaction(0), (Itemset{1, 3}));
  EXPECT_EQ(db.ItemFrequency(1), 1u);
  EXPECT_EQ(db.ItemFrequency(3), 1u);
  EXPECT_EQ(db.ItemFrequency(0), 0u);
  EXPECT_EQ(db.total_occurrences(), 2u);
  EXPECT_EQ(db.num_items(), 4u);
}

TEST(TransactionDbTest, FromVertexAttributes) {
  auto g = cspm::testing::PaperExampleGraph();
  TransactionDb db = TransactionDb::FromVertexAttributes(g);
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.total_occurrences(), 7u);
}

TEST(TransactionDbTest, FromStarsIncludesNeighbourAttributes) {
  auto g = cspm::testing::PaperExampleGraph();
  TransactionDb db = TransactionDb::FromStars(g);
  EXPECT_EQ(db.size(), 5u);
  // v1 = {a} plus neighbours v2{a,c}, v3{c}, v4{b} -> {a, b, c}.
  EXPECT_EQ(db.transaction(0).size(), 3u);
}

TEST(SubsetUnionTest, Helpers) {
  EXPECT_TRUE(IsSubset({1, 3}, {0, 1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 4}, {0, 1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {0}));
  EXPECT_EQ(UnionOf({0, 2}, {1, 2, 5}), (Itemset{0, 1, 2, 5}));
}

// Brute-force support count.
uint64_t CountSupport(const TransactionDb& db, const Itemset& items) {
  uint64_t n = 0;
  for (const auto& t : db.transactions()) n += IsSubset(items, t) ? 1 : 0;
  return n;
}

TEST(EclatTest, FindsAllFrequentPairsOnSmallDb) {
  TransactionDb db = SmallDb();
  EclatOptions options;
  options.min_support = 2;
  auto result = MineFrequentItemsets(db, options).value();
  // Verify against brute force over all itemsets of size 2..4.
  std::map<Itemset, uint64_t> expected;
  for (Item a = 0; a < 4; ++a) {
    for (Item b = a + 1; b < 4; ++b) {
      Itemset s{a, b};
      uint64_t sup = CountSupport(db, s);
      if (sup >= 2) expected[s] = sup;
      for (Item c = b + 1; c < 4; ++c) {
        Itemset s3{a, b, c};
        uint64_t sup3 = CountSupport(db, s3);
        if (sup3 >= 2) expected[s3] = sup3;
      }
    }
  }
  Itemset all{0, 1, 2, 3};
  if (CountSupport(db, all) >= 2) expected[all] = CountSupport(db, all);

  std::map<Itemset, uint64_t> mined;
  for (const auto& f : result) mined[f.items] = f.support;
  EXPECT_EQ(mined, expected);
}

TEST(EclatTest, RespectsMaxSize) {
  TransactionDb db = SmallDb();
  EclatOptions options;
  options.min_support = 1;
  options.max_size = 2;
  auto result = MineFrequentItemsets(db, options).value();
  for (const auto& f : result) EXPECT_LE(f.items.size(), 2u);
}

TEST(EclatTest, StandardCandidateOrder) {
  TransactionDb db = SmallDb();
  EclatOptions options;
  options.min_support = 2;
  auto result = MineFrequentItemsets(db, options).value();
  for (size_t i = 1; i < result.size(); ++i) {
    const auto& prev = result[i - 1];
    const auto& cur = result[i];
    EXPECT_TRUE(prev.support > cur.support ||
                (prev.support == cur.support &&
                 prev.items.size() >= cur.items.size()) ||
                (prev.support == cur.support &&
                 prev.items.size() == cur.items.size() &&
                 prev.items < cur.items));
  }
}

TEST(EclatTest, RejectsZeroSupport) {
  TransactionDb db = SmallDb();
  EclatOptions options;
  options.min_support = 0;
  EXPECT_FALSE(MineFrequentItemsets(db, options).status().ok());
}

TEST(CodeTableTest, StandardTableCoversEveryTransaction) {
  TransactionDb db = SmallDb();
  CodeTable ct(&db);
  ct.CoverDb();
  // With singletons only, total usage equals total item occurrences.
  EXPECT_EQ(ct.total_usage(), db.total_occurrences());
  // Singleton usage equals item frequency.
  for (Item i = 0; i < db.num_items(); ++i) {
    size_t idx = ct.Find({i});
    ASSERT_NE(idx, CodeTable::npos);
    EXPECT_EQ(ct.entries()[idx].usage, db.ItemFrequency(i));
  }
}

TEST(CodeTableTest, InsertedPatternTakesPrecedence) {
  TransactionDb db = SmallDb();
  CodeTable ct(&db);
  ct.Insert({0, 1}, CountSupport(db, {0, 1}));
  ct.CoverDb();
  size_t idx = ct.Find({0, 1});
  ASSERT_NE(idx, CodeTable::npos);
  // {0,1} appears in 4 transactions; the pattern covers all of them.
  EXPECT_EQ(ct.entries()[idx].usage, 4u);
  // Singletons 0 and 1 now cover only the remainder (one {2,3}-transaction
  // has neither).
  EXPECT_EQ(ct.entries()[ct.Find({0})].usage, 0u);
  EXPECT_EQ(ct.entries()[ct.Find({1})].usage, 0u);
}

TEST(CodeTableTest, PatternReducesTotalLength) {
  TransactionDb db = SmallDb();
  CodeTable ct(&db);
  ct.CoverDb();
  const double base = ct.TotalLength();
  ct.Insert({0, 1}, 4);
  ct.CoverDb();
  EXPECT_LT(ct.TotalLength(), base);
}

TEST(CodeTableTest, RemoveRestoresState) {
  TransactionDb db = SmallDb();
  CodeTable ct(&db);
  ct.CoverDb();
  const double base = ct.TotalLength();
  ct.Insert({0, 1}, 4);
  ct.CoverDb();
  ct.Remove({0, 1});
  ct.CoverDb();
  EXPECT_NEAR(ct.TotalLength(), base, 1e-9);
}

TEST(CodeTableTest, UsageTidsTracked) {
  TransactionDb db = SmallDb();
  CodeTable ct(&db, /*track_usage_tids=*/true);
  ct.CoverDb();
  size_t idx = ct.Find({0});
  ASSERT_NE(idx, CodeTable::npos);
  EXPECT_EQ(ct.entries()[idx].usage_tids.size(), ct.entries()[idx].usage);
  EXPECT_TRUE(std::is_sorted(ct.entries()[idx].usage_tids.begin(),
                             ct.entries()[idx].usage_tids.end()));
}

TEST(KrimpTest, CompressesCorrelatedData) {
  // 40 transactions where {0,1,2} always co-occur plus noise items.
  TransactionDb db;
  Rng rng(4);
  for (int t = 0; t < 40; ++t) {
    Itemset items = {0, 1, 2};
    items.push_back(3 + static_cast<Item>(rng.Uniform(5)));
    db.Add(std::move(items));
  }
  KrimpOptions options;
  options.min_support = 2;
  auto result = RunKrimp(db, options).value();
  EXPECT_LT(result.final_length, result.standard_length);
  EXPECT_GT(result.accepted_patterns, 0u);
  // The core pattern {0,1,2} (or a superset thereof) must be in the table.
  bool found = false;
  for (const auto& e : result.code_table->entries()) {
    if (e.items.size() >= 3 && e.usage > 0 && IsSubset({0, 1, 2}, e.items)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KrimpTest, EmptyDbRejected) {
  TransactionDb db;
  EXPECT_FALSE(RunKrimp(db, {}).status().ok());
}

TEST(SlimTest, CompressesCorrelatedData) {
  TransactionDb db;
  Rng rng(6);
  for (int t = 0; t < 60; ++t) {
    Itemset items = rng.Bernoulli(0.5) ? Itemset{0, 1, 2} : Itemset{3, 4};
    items.push_back(5 + static_cast<Item>(rng.Uniform(4)));
    db.Add(std::move(items));
  }
  auto result = RunSlim(db, {}).value();
  EXPECT_LT(result.final_length, result.standard_length);
  EXPECT_GT(result.accepted_patterns, 0u);
  EXPECT_LE(result.compression_ratio, 1.0);
}

TEST(SlimTest, FinalLengthNeverAboveStandard) {
  // SLIM only accepts improving merges, so it can never do worse than ST.
  Rng rng(8);
  for (int trial = 0; trial < 3; ++trial) {
    TransactionDb db;
    for (int t = 0; t < 30; ++t) {
      Itemset items;
      for (int i = 0; i < 4; ++i) {
        items.push_back(static_cast<Item>(rng.Uniform(12)));
      }
      db.Add(std::move(items));
    }
    auto result = RunSlim(db, {}).value();
    EXPECT_LE(result.final_length, result.standard_length + 1e-9);
  }
}

TEST(SlimTest, MaxPatternsCapRespected) {
  TransactionDb db;
  Rng rng(10);
  for (int t = 0; t < 50; ++t) {
    Itemset items = {0, 1, 2, 3};
    items.push_back(4 + static_cast<Item>(rng.Uniform(6)));
    db.Add(std::move(items));
  }
  SlimOptions options;
  options.max_patterns = 1;
  auto result = RunSlim(db, options).value();
  EXPECT_LE(result.accepted_patterns, 1u);
}

TEST(SlimTest, EmptyDbRejected) {
  TransactionDb db;
  EXPECT_FALSE(RunSlim(db, {}).status().ok());
}

TEST(KrimpVsSlimTest, BothReachSimilarCompression) {
  // On strongly structured data both should find the main pattern.
  TransactionDb db;
  Rng rng(14);
  for (int t = 0; t < 80; ++t) {
    Itemset items = (t % 2 == 0) ? Itemset{0, 1, 2, 3} : Itemset{4, 5};
    items.push_back(6 + static_cast<Item>(rng.Uniform(3)));
    db.Add(std::move(items));
  }
  auto krimp = RunKrimp(db, {}).value();
  auto slim = RunSlim(db, {}).value();
  EXPECT_LT(krimp.compression_ratio, 0.95);
  EXPECT_LT(slim.compression_ratio, 0.95);
  EXPECT_NEAR(krimp.final_length, slim.final_length,
              0.25 * krimp.standard_length);
}

}  // namespace
}  // namespace cspm::itemset
