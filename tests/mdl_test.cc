// Tests for the MDL code-length primitives (Eqs. 5-8 building blocks).
#include "mdl/codes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cspm::mdl {
namespace {

TEST(Log2Test, PositiveValues) {
  EXPECT_DOUBLE_EQ(Log2(8.0), 3.0);
  EXPECT_DOUBLE_EQ(Log2(1.0), 0.0);
}

TEST(Log2Test, NonPositiveIsZero) {
  EXPECT_DOUBLE_EQ(Log2(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2(-3.0), 0.0);
}

TEST(XLog2XTest, Convention) {
  EXPECT_DOUBLE_EQ(XLog2X(0.0), 0.0);
  EXPECT_DOUBLE_EQ(XLog2X(1.0), 0.0);
  EXPECT_DOUBLE_EQ(XLog2X(4.0), 8.0);
}

TEST(ShannonTest, MatchesDefinition) {
  EXPECT_NEAR(ShannonCodeLength(1, 2), 1.0, 1e-12);
  EXPECT_NEAR(ShannonCodeLength(1, 8), 3.0, 1e-12);
  EXPECT_NEAR(ShannonCodeLength(8, 8), 0.0, 1e-12);
}

TEST(ShannonTest, ZeroCountIsInfinite) {
  EXPECT_TRUE(std::isinf(ShannonCodeLength(0, 5)));
}

TEST(ConditionalCodeLengthTest, Eq6) {
  // -log2(fL / fc)
  EXPECT_NEAR(ConditionalCodeLength(2, 8), 2.0, 1e-12);
  EXPECT_NEAR(ConditionalCodeLength(8, 8), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(ConditionalCodeLength(0, 4)));
}

TEST(UniversalCodeTest, MonotoneAndPositive) {
  double prev = 0.0;
  for (uint64_t n : {1ull, 2ull, 3ull, 10ull, 100ull, 1000000ull}) {
    double len = UniversalCodeLength(n);
    EXPECT_GT(len, 0.0);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

TEST(UniversalCodeTest, KnownShape) {
  // L_N(1) = log2(c0) since log2(1) = 0 terminates immediately.
  EXPECT_NEAR(UniversalCodeLength(1), std::log2(2.865064), 1e-9);
}

TEST(EntropyTest, UniformIsLogN) {
  EXPECT_NEAR(EntropyBits({1, 1, 1, 1}), 2.0, 1e-12);
  EXPECT_NEAR(EntropyBits({5, 5}), 1.0, 1e-12);
}

TEST(EntropyTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(EntropyBits({42}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({0, 0, 7}), 0.0);
}

TEST(EntropyTest, ZerosIgnored) {
  EXPECT_NEAR(EntropyBits({3, 0, 3}), 1.0, 1e-12);
}

TEST(ConditionalEntropyTest, IndependentOfXWhenRowsUniform) {
  // Each coreset has a uniform 2-way split: H(Y|X) = 1 bit.
  EXPECT_NEAR(ConditionalEntropyBits({{2, 2}, {8, 8}}), 1.0, 1e-12);
}

TEST(ConditionalEntropyTest, DeterministicIsZero) {
  EXPECT_NEAR(ConditionalEntropyBits({{4}, {9}}), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(ConditionalEntropyBits({}), 0.0);
  EXPECT_DOUBLE_EQ(ConditionalEntropyBits({{}, {}}), 0.0);
}

TEST(ConditionalEntropyTest, BoundedByMarginalEntropy) {
  // H(Y|X) <= H(Y): conditioning never increases entropy.
  std::vector<std::vector<uint64_t>> joint = {{3, 1, 2}, {1, 4, 1}};
  std::vector<uint64_t> y_marginal = {4, 5, 3};
  EXPECT_LE(ConditionalEntropyBits(joint), EntropyBits(y_marginal) + 1e-12);
}

TEST(InvertedDbCostTest, MatchesEq8Identity) {
  // Eq. 8: L(I|M) = s * H(Y|X) with s = total count.
  std::vector<std::vector<uint64_t>> joint = {{2, 2}, {1, 3, 4}};
  double s = 2 + 2 + 1 + 3 + 4;
  EXPECT_NEAR(InvertedDbCostBits(joint), s * ConditionalEntropyBits(joint),
              1e-9);
}

TEST(InvertedDbCostTest, SingleLinePerCoresetIsFree) {
  // One deterministic line per coreset encodes in zero bits.
  EXPECT_NEAR(InvertedDbCostBits({{7}, {3}}), 0.0, 1e-12);
}

}  // namespace
}  // namespace cspm::mdl
